//! Sweep the full 16-model MobileNetV1 grid through the memory-driven
//! procedure (paper Figure 3): for each model, report which tensors the
//! algorithms cut and what the resulting footprint and latency are.
//!
//! Run with: `cargo run --release --example mixed_precision_search`

use mixq::core::memory::{mib, QuantScheme};
use mixq::core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq::mcu::{CortexM7CycleModel, Device};
use mixq::models::mobilenet::MobileNetConfig;
use mixq::quant::BitWidth;

fn main() {
    let device = Device::stm32h7();
    let scheme = QuantScheme::PerChannelIcn;
    let model = CortexM7CycleModel::default();
    println!(
        "== MixQ-PC-ICN assignments for all 16 MobileNetV1 models on {} ==",
        device
    );
    println!(
        "{:<10} {:>6} {:>6} {:>10} {:>9} {:>8}  cut tensors",
        "model", "w-cuts", "a-cuts", "flash", "ram", "fps"
    );
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        let cfg = MixedPrecisionConfig::new(device.budget(), scheme);
        match assign_bits(&spec, &cfg) {
            Ok(a) => {
                let w_cuts = a.weight_bits.iter().filter(|&&b| b != BitWidth::W8).count();
                let a_cuts = a.act_bits.iter().filter(|&&b| b != BitWidth::W8).count();
                let flash = a.flash_bytes(&spec, scheme);
                let ram = a.peak_rw_bytes(&spec);
                let cycles = model.network_cycles(&spec, &a, scheme);
                let cut_names: Vec<String> = spec
                    .layers()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| a.weight_bits[*i] != BitWidth::W8)
                    .map(|(i, l)| format!("{}:w{}", l.name(), a.weight_bits[i].bits()))
                    .take(4)
                    .collect();
                println!(
                    "{:<10} {:>6} {:>6} {:>8.2}Mi {:>7.0}Ki {:>8.2}  {}{}",
                    cfg_m.label(),
                    w_cuts,
                    a_cuts,
                    mib(flash),
                    ram as f64 / 1024.0,
                    device.fps(cycles),
                    cut_names.join(" "),
                    if w_cuts > 4 { " ..." } else { "" }
                );
            }
            Err(e) => println!("{:<10} INFEASIBLE: {e}", cfg_m.label()),
        }
    }
}
