//! End-to-end integer inference of a trained MobileNet-like network with
//! residual bottlenecks: the full 27-conv-layer MobileNetV1 topology
//! (width-scaled, 64 px) plus MobileNetV2-style identity skips, trained on
//! synthetic data, lowered onto the `QGraph` DAG executor and priced layer
//! by layer with the Cortex-M7 cycle model — including the `QAdd` residual
//! join nodes and the liveness-planned peak-RAM accounting.
//!
//! Run with: `cargo run --release --example mobilenet_e2e`

use std::time::Instant;

use mixq::core::memory::QuantScheme;
use mixq::core::pipeline::{deploy, PipelineConfig};
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::kernels::{AnyOp, OpKind};
use mixq::mcu::{CortexM7CycleModel, Device};
use mixq::models::micro::mobilenet_like_residual;
use mixq::nn::train::TrainConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let res = 64usize;
    let ds = DatasetSpec::new(SyntheticKind::Bars, res, res, 3, 2)
        .with_samples(48)
        .with_noise(0.05)
        .generate(9);
    // MobileNetV1 topology at width/8 with identity residuals on every
    // stride-1 same-channel pair (8 skips at this scale).
    let spec = mobilenet_like_residual(res, 3, 8, 2);
    println!(
        "mobilenet-like {}px, {} conv blocks, {} residual skips",
        res,
        spec.blocks().len(),
        spec.residuals().len()
    );

    let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn)
        .with_training(TrainConfig::fast(6), TrainConfig::fast(3));
    let t0 = Instant::now();
    let (int_net, report) = deploy(&spec, &ds, &cfg)?;
    println!(
        "== deployment (trained in {:.1?}) ==\n{report}\n",
        t0.elapsed()
    );

    let adds = int_net
        .graph()
        .nodes()
        .iter()
        .filter(|n| matches!(n.op(), AnyOp::Add(_)))
        .count();
    println!(
        "graph: {} nodes ({} convs, {adds} adds, pool, head)",
        int_net.graph().len(),
        int_net.layers().len()
    );

    // One inference, keeping the per-layer ledger.
    let run = int_net.infer_detailed(&ds.sample(0).images);
    let model = CortexM7CycleModel::default();
    let breakdown = model.breakdown_from_runs(&run.layers);
    let total_cycles: u64 = breakdown.iter().map(|l| l.cycles).sum();

    println!("\n== per-layer breakdown (measured ledger × Cortex-M7 model) ==");
    println!(
        "{:<10} {:<8} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "layer", "kind", "macs", "cycles", "in B", "out B", "share"
    );
    for (latency, layer) in breakdown.iter().zip(&run.layers) {
        println!(
            "{:<10} {:<8} {:>10} {:>10} {:>8} {:>8} {:>6.1}%",
            latency.name,
            layer.kind.label(),
            latency.macs,
            latency.cycles,
            layer.in_bytes,
            layer.out_bytes,
            100.0 * latency.cycles as f64 / total_cycles as f64
        );
    }
    let add_cycles: u64 = breakdown
        .iter()
        .zip(&run.layers)
        .filter(|(_, l)| l.kind == OpKind::Add)
        .map(|(b, _)| b.cycles)
        .sum();
    let device = Device::stm32h7();
    println!(
        "\ntotal: {} cycles ≈ {:.2} ms ({:.1} fps) on {}; residual joins cost {:.2}%",
        total_cycles,
        device.latency_ms(total_cycles),
        device.fps(total_cycles),
        device,
        100.0 * add_cycles as f64 / total_cycles as f64
    );
    println!(
        "memory: flash {} B; planner peak RAM {} B, measured high-water mark {} B ({})",
        int_net.flash_bytes(),
        int_net.peak_ram_bytes(),
        run.peak_live_bytes,
        if int_net.peak_ram_bytes() == run.peak_live_bytes {
            "exact match"
        } else {
            "MISMATCH"
        }
    );

    // Sharded evaluation: one arena per worker, identical results.
    let t_seq = Instant::now();
    let (acc_seq, ops_seq) = int_net.evaluate(&ds);
    let t_seq = t_seq.elapsed();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let t_par = Instant::now();
    let (acc_par, ops_par) = int_net.evaluate_parallel(&ds, workers);
    let t_par = t_par.elapsed();
    assert_eq!((acc_seq, ops_seq), (acc_par, ops_par), "shards must agree");
    println!(
        "\nevaluate {} samples: sequential {:.2?} | {} workers {:.2?} (accuracy {:.1}%, identical ledgers)",
        ds.len(),
        t_seq,
        workers,
        t_par,
        acc_par * 100.0
    );
    Ok(())
}
