//! The Table-2-shaped experiment on synthetic data: compare the four
//! deployment schemes at INT8, INT4 and INT2, demonstrating the paper's
//! central accuracy claims —
//!
//! * PL+FB holds at INT8 but collapses at INT4 (folding batch-norm scale
//!   diversity into per-layer-quantized weights destroys the low-magnitude
//!   folded channels, and with them the class bits those channels carry);
//! * PL+ICN recovers training, PC+ICN does at least as well;
//! * thresholds track ICN (the conversion itself is lossless);
//! * the integer-only model tracks the fake-quantized one.
//!
//! The task is `ChannelBits`: channel `c` carries bit `c` of the class
//! label at amplitude `40^c`, and the network opens with a depthwise layer,
//! so per-layer folded quantization provably loses class bits. See
//! `DESIGN.md` ("Substitutions") for why this reproduces the ImageNet
//! mechanism.
//!
//! Run with: `cargo run --release --example qat_synthetic`

use mixq::core::convert::{convert, scheme_granularity};
use mixq::core::memory::QuantScheme;
use mixq::data::{Dataset, DatasetSpec, SyntheticKind};
use mixq::models::micro::folding_stress_cnn;
use mixq::nn::qat::QatNetwork;
use mixq::nn::train::{evaluate, train, TrainConfig};
use mixq::quant::BitWidth;

struct Row {
    fake_quant_train: f32,
    int_test: f32,
    flash_bytes: usize,
}

/// Trains and converts the stress micro-CNN at an explicit weight
/// precision under one deployment scheme.
fn run(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
) -> Result<Row, Box<dyn std::error::Error>> {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, 4242);
    let _ = train(&mut net, train_set, &TrainConfig::fast(14));
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let qat_cfg = if scheme == QuantScheme::PerLayerFolded {
        TrainConfig::fast(10).with_folding_from(1)
    } else {
        TrainConfig::fast(10)
    };
    let _ = train(&mut net, train_set, &qat_cfg);
    let fake_quant_train = evaluate(&net, train_set);
    let int_net = convert(&net, scheme)?;
    let (int_test, _) = int_net.evaluate(test_set);
    Ok(Row {
        fake_quant_train,
        int_test,
        flash_bytes: int_net.flash_bytes(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Channel 1 is 40x louder than channel 0: batch-norm absorbs the spread
    // in per-channel σ, and folding pushes it into the weights.
    let dataset = DatasetSpec::new(SyntheticKind::ChannelBits, 12, 12, 2, 4)
        .with_samples(384)
        .with_noise(0.06)
        .with_amplitude_base(40.0)
        .generate(11);
    let split = dataset.split(0.8, 3);

    println!("== Table-2-shaped synthetic experiment (folding-stress CNN, 4 classes) ==");
    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>10}",
        "scheme", "bits", "fq-train-acc", "int-test", "flash(B)"
    );
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for scheme in QuantScheme::ALL {
            let row = run(&split.train, &split.test, scheme, bits)?;
            println!(
                "{:<16} {:>6} {:>13.1}% {:>11.1}% {:>10}",
                scheme.label(),
                bits.to_string(),
                row.fake_quant_train * 100.0,
                row.int_test * 100.0,
                row.flash_bytes
            );
        }
        println!();
    }
    println!("expected shape (paper Table 2): PL+FB holds at INT8 but degrades hard at");
    println!("INT4/INT2; ICN schemes stay accurate; PC+ICN >= PL+ICN; thresholds track ICN.");
    Ok(())
}
