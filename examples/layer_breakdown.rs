//! Per-layer latency breakdown of an executed deployment graph.
//!
//! Trains a MobileNet-style depthwise-separable micro CNN, converts it to
//! the integer-only graph `g'(x)`, runs one inference through the `QGraph`
//! executor, and prices each layer's measured `OpCounts` ledger with the
//! Cortex-M7 cycle model — the instrumentation-side twin of Figure 2's
//! shape-level latency analysis.
//!
//! Run with: `cargo run --release --example layer_breakdown`

use mixq::core::memory::QuantScheme;
use mixq::core::pipeline::{deploy, PipelineConfig};
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::kernels::BackendKind;
use mixq::mcu::{CortexM7CycleModel, Device};
use mixq::nn::qat::MicroCnnSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::new(SyntheticKind::Bars, 12, 12, 2, 3)
        .with_samples(96)
        .with_noise(0.05)
        .generate(7);
    let spec = MicroCnnSpec::separable(12, 12, 2, 3, &[6, 8]);
    // The tiled backend lowers standard convolutions onto the blocked GEMM
    // at graph build time; logits are bit-identical to the reference
    // backend, only the per-node kernel choice (and its cycle price)
    // changes.
    let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn).with_backend(BackendKind::tiled());
    let (int_net, report) = deploy(&spec, &ds, &cfg)?;
    println!("== deployment ==\n{report}\n");

    // One inference, keeping the per-layer ledger.
    let run = int_net.infer_detailed(&ds.sample(0).images);
    let model = CortexM7CycleModel::default();
    let breakdown = model.breakdown_from_runs(&run.layers);
    let total_cycles: u64 = breakdown.iter().map(|l| l.cycles).sum();

    println!("== per-layer breakdown (measured ledger × Cortex-M7 model) ==");
    println!(
        "{:<10} {:<8} {:<13} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "layer", "kind", "kernel", "macs", "cycles", "in B", "out B", "share"
    );
    for (latency, layer) in breakdown.iter().zip(&run.layers) {
        println!(
            "{:<10} {:<8} {:<13} {:>10} {:>10} {:>8} {:>8} {:>6.1}%",
            latency.name,
            layer.kind.label(),
            layer.choice.label(),
            latency.macs,
            latency.cycles,
            layer.in_bytes,
            layer.out_bytes,
            100.0 * latency.cycles as f64 / total_cycles as f64
        );
    }

    let device = Device::stm32h7();
    println!(
        "\ntotal: {} cycles ≈ {:.3} ms ({:.1} fps) on {}",
        total_cycles,
        device.latency_ms(total_cycles),
        device.fps(total_cycles),
        device
    );
    println!(
        "graph: flash {} B, peak activation RAM {} B, im2col scratch of selected kernels {} B",
        int_net.flash_bytes(),
        int_net.peak_ram_bytes(),
        int_net
            .graph()
            .peak_scratch_bytes(ds.sample(0).images.shape(), mixq::quant::BitWidth::W8)
    );
    Ok(())
}
