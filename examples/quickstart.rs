//! Quickstart: train a micro-CNN on synthetic data, quantize it with the
//! paper's PC+ICN scheme, convert it to an integer-only model and verify
//! that the deployment graph matches the fake-quantized one.
//!
//! Run with: `cargo run --release --example quickstart`

use mixq::core::memory::QuantScheme;
use mixq::core::pipeline::{deploy, PipelineConfig};
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::nn::qat::MicroCnnSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-class orientation task on 8x8 synthetic images (the ImageNet
    // stand-in; see DESIGN.md "Substitutions").
    let dataset = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 4)
        .with_samples(256)
        .with_noise(0.05)
        .generate(7);
    let split = dataset.split(0.8, 1);

    // Fig. 1 flow: float training -> fake-quantized QAT -> integer-only
    // conversion with Integer Channel-Normalization activations.
    let spec = MicroCnnSpec::new(8, 8, 1, 4, &[8, 16]);
    let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn);
    let (int_net, report) = deploy(&spec, &split.train, &cfg)?;

    println!("== quickstart: PC+ICN deployment of a micro-CNN ==");
    println!("{report}");
    let (test_acc, ops) = int_net.evaluate(&split.test);
    println!(
        "held-out test accuracy of the integer-only model: {:.1}%",
        test_acc * 100.0
    );
    println!("total kernel ops across the test set: {ops}");
    println!(
        "flash footprint: {} bytes ({} weights layers + classifier)",
        int_net.flash_bytes(),
        int_net.layers().len()
    );
    Ok(())
}
