//! Exercise the sub-byte integer kernels directly: pack a 2-bit weight
//! tensor, run the ICN convolution, inspect the op-count ledger and the
//! modelled Cortex-M7 cost — the microscope view of what the extended
//! CMSIS-NN library does on the device.
//!
//! Run with: `cargo run --release --example kernel_playground`

use mixq::kernels::{
    OpCounts, QActivation, QAvgPool, QConv2d, QConvWeights, Requantizer, ThresholdChannel,
    WeightOffset,
};
use mixq::mcu::CortexM7CycleModel;
use mixq::quant::{BitWidth, FixedPointMultiplier, PackedTensor};
use mixq::tensor::{ConvGeometry, Padding, Shape};

fn main() {
    println!("== sub-byte packing ==");
    let codes: Vec<u8> = (0..12).map(|i| i % 4).collect();
    let packed = PackedTensor::pack(&codes, BitWidth::W2);
    println!(
        "12 2-bit codes -> {} bytes: {:02x?}",
        packed.byte_len(),
        packed.as_bytes()
    );

    println!("\n== ICN convolution at 2-bit weights, 4-bit activations ==");
    // 3x3 depthwise over an 8x8x2 map.
    let weights = QConvWeights::new(
        Shape::new(2, 3, 3, 1),
        true,
        &[1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2],
        BitWidth::W2,
        WeightOffset::PerChannel(vec![1, 2]),
    );
    let requant = Requantizer::icn(
        vec![4, -4],
        vec![
            FixedPointMultiplier::from_real(0.11),
            FixedPointMultiplier::from_real(0.07),
        ],
        0,
        BitWidth::W4,
    );
    let conv = QConv2d::new(weights, ConvGeometry::new(3, 3, 1, Padding::Same), requant);
    let act_codes: Vec<u8> = (0..128).map(|i| (i % 13) as u8).collect();
    let x = QActivation::from_codes(Shape::feature_map(8, 8, 2), &act_codes, BitWidth::W4, 3);
    let mut ops = OpCounts::default();
    let y = conv.execute(&x, &mut ops);
    println!(
        "output shape {}, first row {:?}",
        y.shape(),
        &y.codes()[..8]
    );
    println!("ledger: {ops}");
    let model = CortexM7CycleModel::default();
    println!(
        "modelled Cortex-M7 cost: ~{} cycles",
        model.cycles_from_counts(&ops)
    );

    println!("\n== thresholds vs ICN on one channel ==");
    let m = 0.04375;
    let icn = Requantizer::icn(
        vec![17],
        vec![FixedPointMultiplier::from_real(m)],
        0,
        BitWidth::W4,
    );
    let thr = ThresholdChannel::from_affine(m, 17, 0, BitWidth::W4);
    let mut diffs = 0;
    let (mut r, mut c) = (0, 0);
    for phi in -300..300i64 {
        let a = icn.apply(0, phi, &mut r, &mut c);
        let b = thr.eval(phi, &mut c);
        if a != b {
            diffs += 1;
        }
    }
    println!(
        "codes over 600 accumulator values: {} disagreements \
         (ICN pays Q31 mantissa rounding; thresholds are exact)",
        diffs
    );

    println!("\n== integer average pooling ==");
    let mut ops = OpCounts::default();
    let pooled = QAvgPool.execute(&y, &mut ops);
    println!("pooled codes: {:?}", pooled.codes());
}
