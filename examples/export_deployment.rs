//! Produce the final deployment artifacts for a trained model: the C
//! header with all flash-resident arrays, the memory fit report, and the
//! latency/energy budget — everything a firmware engineer needs to drop
//! the network into an STM32H7 project.
//!
//! Run with: `cargo run --release --example export_deployment`

use mixq::core::export::emit_c_header;
use mixq::core::memory::QuantScheme;
use mixq::core::pipeline::{deploy, PipelineConfig};
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::mcu::{CortexM7CycleModel, Device, EnergyModel};
use mixq::nn::qat::MicroCnnSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 4)
        .with_samples(192)
        .generate(3);
    let spec = MicroCnnSpec::new(8, 8, 1, 4, &[8, 16]);
    let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn);
    let (int_net, report) = deploy(&spec, &dataset, &cfg)?;
    println!("trained + converted: {report}\n");

    // C header.
    let header = emit_c_header(&int_net, "keyword_net");
    let path = std::env::temp_dir().join("keyword_net.h");
    std::fs::write(&path, &header)?;
    println!(
        "wrote {} ({} bytes); first lines:",
        path.display(),
        header.len()
    );
    for line in header.lines().take(8) {
        println!("  {line}");
    }

    // Latency + energy budget on the device.
    let device = Device::stm32h7();
    let (_, ops) = int_net.infer(&dataset.sample(0).images);
    let cycles = CortexM7CycleModel::default().cycles_from_counts(&ops);
    let energy = EnergyModel::stm32h7();
    println!();
    println!("deployment budget on {device}:");
    println!(
        "  latency ~{:.2} ms ({:.0} fps max)",
        device.latency_ms(cycles),
        device.fps(cycles)
    );
    println!(
        "  energy  ~{:.3} mJ per inference",
        energy.inference_energy_mj(&device, cycles)
    );
    if let Some(days) = energy.battery_life_days(&device, cycles, 1.0, 4000.0) {
        println!("  battery: {days:.0} days at 1 inference/s on a 4 Wh cell");
    }
    Ok(())
}
