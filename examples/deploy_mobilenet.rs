//! Deploy-plan a MobileNetV1 onto the STM32H7 (the paper's §5–§6 flow at
//! shape level): run the memory-driven mixed-precision assignment, print
//! the per-layer bit map, the memory fit report and the simulated latency.
//!
//! Run with: `cargo run --release --example deploy_mobilenet -- 192 0.5`
//! (default model: 192_0.5, the paper's highlighted configuration).

use mixq::core::memory::{mib, QuantScheme};
use mixq::core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq::mcu::{CortexM7CycleModel, Device};
use mixq::models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};

fn parse_args() -> MobileNetConfig {
    let args: Vec<String> = std::env::args().collect();
    let res = match args.get(1).map(String::as_str) {
        Some("128") => Resolution::R128,
        Some("160") => Resolution::R160,
        Some("224") => Resolution::R224,
        _ => Resolution::R192,
    };
    let width = match args.get(2).map(String::as_str) {
        Some("0.25") => WidthMultiplier::X0_25,
        Some("0.75") => WidthMultiplier::X0_75,
        Some("1.0") => WidthMultiplier::X1_0,
        _ => WidthMultiplier::X0_5,
    };
    MobileNetConfig::new(res, width)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = parse_args();
    let spec = model.build();
    let device = Device::stm32h7();
    println!(
        "== deploying MobileNetV1_{} onto {} ==",
        model.label(),
        device
    );

    for scheme in [QuantScheme::PerLayerIcn, QuantScheme::PerChannelIcn] {
        let cfg = MixedPrecisionConfig::new(device.budget(), scheme);
        let assignment = assign_bits(&spec, &cfg)?;
        let fit = device.fit_report(&spec, &assignment, scheme);
        let cycles = CortexM7CycleModel::default().network_cycles(&spec, &assignment, scheme);
        println!("\n-- scheme {scheme} --");
        println!("memory: {fit}");
        println!(
            "latency: {:.1} ms ({:.2} fps)",
            device.latency_ms(cycles),
            device.fps(cycles)
        );
        if assignment.has_cuts() {
            println!("cuts (layer: weights / output activation):");
            for (i, layer) in spec.layers().iter().enumerate() {
                let wq = assignment.weight_bits[i];
                let aq = assignment.act_bits[i + 1];
                if wq != mixq::quant::BitWidth::W8 || aq != mixq::quant::BitWidth::W8 {
                    println!("  {:>6}: w{} / a{}", layer.name(), wq.bits(), aq.bits());
                }
            }
        } else {
            println!("no cuts needed: the 8-bit model already fits");
        }
        println!(
            "flash {:.3} MiB of {:.0} MiB, peak RAM {:.0} KiB of {} KiB",
            mib(fit.flash_bytes),
            mib(fit.flash_budget),
            fit.ram_bytes as f64 / 1024.0,
            fit.ram_budget / 1024
        );
    }
    Ok(())
}
