#!/usr/bin/env bash
# Regenerates the golden-output regression files under tests/goldens/.
#
# Run after an *intentional* change to the Table 1/2/4 or Figure 3
# reproductions, review the diff, and commit the updated goldens. The CI
# golden-regression job diffs freshly emitted JSON against these files, so
# an unreviewed change to any checked-in number fails the build.
#
# Bench binaries run with the package directory as CWD, hence the absolute
# paths.
set -euo pipefail
cd "$(dirname "$0")/.."
root="$PWD"
for bench in table1_layer_memory table2_int4_mobilenet \
             table4_mixed_accuracy figure3_bit_assignment \
             table_backend_kernels table_batch_throughput \
             table_walk_scaling table_serve_load verify_zoo; do
  echo "== $bench =="
  cargo bench --bench "$bench" -- --json "$root/tests/goldens/$bench.json" >/dev/null
done
echo "goldens updated:"
git status --short tests/goldens/
