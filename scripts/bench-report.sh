#!/usr/bin/env bash
# Emits the machine-readable performance report BENCH_batch.json at the
# repo root: measured host throughput (samples/sec) of the residual
# MobileNet per batch size and backend, the per-call-packing PR-4
# baseline, and the batch-8 speedup of the prepacked tiled path.
#
# Unlike the deterministic goldens under tests/goldens/ (shape math,
# byte-diffed in CI), this file holds *measured* numbers: commit it after
# an intentional perf change so future PRs have a throughput trajectory
# to compare against. Never golden-diffed.
set -euo pipefail
cd "$(dirname "$0")/.."
root="$PWD"
cargo bench --bench table_batch_throughput -- \
  --bench-json "$root/BENCH_batch.json"
echo "perf report written:"
cat "$root/BENCH_batch.json"
