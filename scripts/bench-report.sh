#!/usr/bin/env bash
# Emits the machine-readable performance reports at the repo root:
#
#   BENCH_batch.json — measured host throughput (samples/sec) of the
#     residual MobileNet per batch size and backend, the per-call-packing
#     PR-4 baseline, and the batch-8 speedup of the prepacked tiled path.
#   BENCH_walk.json  — the SIMD × threads scaling table of one batch-8
#     walk: forced-scalar vs auto-detected SIMD at 1 thread, and the
#     intra-walk worker-pool sweep, with kernel-level gemv2 ratios.
#   BENCH_serve.json — the serving-load table: p50/p99 latency, shed and
#     degradation splits of the mixq-serve runtime per offered
#     inter-arrival gap × worker count (4-worker target null/skipped on
#     hosts that cannot run 4 genuine workers).
#
# Unlike the deterministic goldens under tests/goldens/ (shape math,
# byte-diffed in CI), these files hold *measured* numbers: commit them
# after an intentional perf change so future PRs have a throughput
# trajectory to compare against. Never golden-diffed. Each report stamps
# the rustc host target, detected CPU features and thread count so a
# number is never read without its machine context.
set -euo pipefail
cd "$(dirname "$0")/.."
root="$PWD"
MIXQ_RUSTC_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
export MIXQ_RUSTC_TARGET
cargo bench --bench table_batch_throughput -- \
  --bench-json "$root/BENCH_batch.json"
cargo bench --bench table_walk_scaling -- \
  --bench-json "$root/BENCH_walk.json"
cargo bench --bench table_serve_load -- \
  --bench-json "$root/BENCH_serve.json"
echo "perf reports written:"
cat "$root/BENCH_batch.json" "$root/BENCH_walk.json" "$root/BENCH_serve.json"
