//! Concurrency stress for [`ThreadPool::broadcast_slices2`]: many epochs
//! of disjoint two-buffer handoff under contention, interleaved worker
//! panics with recovery, and degenerate split tables — the loom-style
//! schedule exploration this air-gapped build can't vendor, approximated
//! by volume and by panic-injection instead.

use std::sync::atomic::{AtomicUsize, Ordering};

use mixq_kernels::{partition_bounds, ThreadPool, MAX_POOL_THREADS};

/// Every epoch writes a worker-stamped pattern into disjoint ranges of two
/// differently-typed buffers; the join then checks every element was
/// written exactly once by the owning worker — any aliasing or lost
/// handoff corrupts the stamp.
#[test]
fn disjoint_two_buffer_handoff_under_contention() {
    let threads = MAX_POOL_THREADS.min(4);
    let pool = ThreadPool::new(threads);
    let mut out = vec![0u8; 4097]; // odd length: uneven final part
    let mut acc = vec![0u64; 257];
    let mut bounds_a = vec![0usize; threads + 1];
    let mut bounds_b = vec![0usize; threads + 1];
    for epoch in 0..500usize {
        let parts = partition_bounds(out.len(), threads, &mut bounds_a);
        let parts_b = partition_bounds(acc.len(), parts, &mut bounds_b);
        assert_eq!(parts, parts_b, "both tables must agree on parts");
        let touched = AtomicUsize::new(0);
        pool.broadcast_slices2(
            &mut out,
            &bounds_a[..=parts],
            &mut acc,
            &bounds_b[..=parts],
            |worker, chunk, accs| {
                for v in chunk.iter_mut() {
                    *v = (worker + 1) as u8;
                }
                for v in accs.iter_mut() {
                    *v = (epoch * 31 + worker) as u64;
                }
                touched.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(touched.load(Ordering::Relaxed), parts);
        for (w, pair) in bounds_a[..=parts].windows(2).enumerate() {
            assert!(
                out[pair[0]..pair[1]].iter().all(|&v| v == (w + 1) as u8),
                "epoch {epoch}: range of worker {w} corrupted"
            );
        }
        for (w, pair) in bounds_b[..=parts].windows(2).enumerate() {
            assert!(
                acc[pair[0]..pair[1]]
                    .iter()
                    .all(|&v| v == (epoch * 31 + w) as u64),
                "epoch {epoch}: acc range of worker {w} corrupted"
            );
        }
    }
}

/// A worker panicking mid-broadcast must propagate to the caller after the
/// join, and the pool must keep serving subsequent epochs correctly —
/// repeatedly, so a worker left wedged by recovery shows up as a hang or
/// a corrupt follow-up epoch.
#[test]
fn panic_recovery_across_epochs() {
    let threads = MAX_POOL_THREADS.min(4);
    let pool = ThreadPool::new(threads);
    let mut out = vec![0u32; 1024];
    let mut acc = vec![0u32; 128];
    let mut bounds_a = vec![0usize; threads + 1];
    let mut bounds_b = vec![0usize; threads + 1];
    let parts = partition_bounds(out.len(), threads, &mut bounds_a);
    assert_eq!(parts, partition_bounds(acc.len(), parts, &mut bounds_b));
    for round in 0..50usize {
        let victim = round % parts;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast_slices2(
                &mut out,
                &bounds_a[..=parts],
                &mut acc,
                &bounds_b[..=parts],
                |worker, _, _| {
                    if worker == victim {
                        panic!("boom {round}");
                    }
                },
            );
        }));
        let payload = caught.expect_err("victim panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, format!("boom {round}"));

        // The pool must be fully functional right after recovery.
        pool.broadcast_slices2(
            &mut out,
            &bounds_a[..=parts],
            &mut acc,
            &bounds_b[..=parts],
            |worker, chunk, accs| {
                chunk.fill(worker as u32 + 1);
                accs.fill(worker as u32 + 1);
            },
        );
        for (w, pair) in bounds_a[..=parts].windows(2).enumerate() {
            assert!(out[pair[0]..pair[1]].iter().all(|&v| v == w as u32 + 1));
        }
    }
}

/// Degenerate split tables: single part, empty middle parts, zero-length
/// buffer ranges — the shapes `partition_bounds` can emit at small `n`.
#[test]
fn degenerate_split_tables() {
    let pool = ThreadPool::new(MAX_POOL_THREADS.min(4));
    // One part: everything on the broadcasting thread's worker 0.
    let mut a = vec![7u8; 5];
    let mut b = vec![9u16; 3];
    pool.broadcast_slices2(&mut a, &[0, 5], &mut b, &[0, 3], |w, ca, cb| {
        assert_eq!(w, 0);
        ca.fill(1);
        cb.fill(2);
    });
    assert!(a.iter().all(|&v| v == 1) && b.iter().all(|&v| v == 2));

    // Zero-length ranges are valid parts and must not alias neighbours.
    let mut a = vec![0u8; 2];
    let mut b = vec![0u8; 2];
    pool.broadcast_slices2(&mut a, &[0, 1, 1, 2], &mut b, &[0, 0, 2, 2], |w, ca, cb| {
        for v in ca.iter_mut() {
            *v = w as u8 + 1;
        }
        for v in cb.iter_mut() {
            *v = w as u8 + 1;
        }
    });
    assert_eq!(a, [1, 3]);
    assert_eq!(b, [2, 2]);
}

/// Mismatched or non-covering split tables must be rejected before any
/// worker runs (the validation the verifier's schedule checks mirror at
/// graph level).
#[test]
fn malformed_split_tables_rejected() {
    let pool = ThreadPool::new(2);
    let mut a = vec![0u8; 4];
    let mut b = vec![0u8; 4];
    for (bounds_a, bounds_b) in [
        (vec![0usize, 2, 3], vec![0usize, 4]), // part counts disagree
        (vec![0, 2, 5], vec![0, 2, 4]),        // does not cover buffer a
        (vec![1, 2, 4], vec![0, 2, 4]),        // does not start at 0
        (vec![0, 3, 2], vec![0, 2, 4]),        // not monotone
    ] {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast_slices2(&mut a, &bounds_a, &mut b, &bounds_b, |_, _, _| {
                unreachable!("no worker may run on malformed tables")
            });
        }));
        assert!(caught.is_err(), "tables {bounds_a:?}/{bounds_b:?} accepted");
    }
}
