use mixq_quant::{BitWidth, FixedPointMultiplier};

/// Threshold table for one output channel (PC+Thresholds method,
/// Umuroglu & Jahre / IFQ-Net): the accumulator values at which the output
/// code increments.
///
/// For a non-decreasing transfer function (positive multiplier) the output
/// code equals the number of thresholds `≤ Φ`; for a negative multiplier
/// the comparison flips.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThresholdChannel {
    thresholds: Vec<i64>,
    ascending: bool,
    constant: u8,
}

impl ThresholdChannel {
    /// Builds the exact threshold table for the ICN transfer function
    /// `q(Φ) = clamp(zy + floor(m·(Φ + bq)), 0, 2^Q − 1)` using the real
    /// multiplier `m` (no fixed-point rounding — this is why the thresholds
    /// method is lossless, Table 2).
    pub fn from_affine(m: f64, bq: i64, zy: i32, bits: BitWidth) -> Self {
        let qmax = bits.qmax() as i32;
        if m == 0.0 || !m.is_finite() {
            return ThresholdChannel {
                thresholds: Vec::new(),
                ascending: true,
                constant: zy.clamp(0, qmax) as u8,
            };
        }
        // Work on v = Φ + bq so the boundary (q − zy)/m is computed once in
        // f64 and shifted by the *integer* bq exactly.
        let mut raw = Vec::with_capacity(qmax as usize);
        for q in 1..=qmax {
            raw.push((q - zy) as f64 / m);
        }
        if m > 0.0 {
            ThresholdChannel {
                thresholds: raw.iter().map(|v| v.ceil() as i64 - bq).collect(),
                ascending: true,
                constant: 0,
            }
        } else {
            ThresholdChannel {
                thresholds: raw.iter().map(|v| v.floor() as i64 - bq).collect(),
                ascending: false,
                constant: 0,
            }
        }
    }

    /// Builds the exact threshold table for the general transfer
    /// `q(Φ) = clamp(zy + floor(m·Φ + t), 0, 2^Q − 1)` with a *real-valued*
    /// offset `t` — the fully lossless form used by the conversion (the
    /// batch-norm offset need not be rounded to an integer `Bq` first).
    pub fn from_transfer(m: f64, t: f64, zy: i32, bits: BitWidth) -> Self {
        let qmax = bits.qmax() as i32;
        if m == 0.0 || !m.is_finite() || !t.is_finite() {
            let constant = (zy as i64 + if t.is_finite() { t.floor() as i64 } else { 0 })
                .clamp(0, qmax as i64) as u8;
            return ThresholdChannel {
                thresholds: Vec::new(),
                ascending: true,
                constant,
            };
        }
        let qmax = bits.qmax() as i32;
        let mut raw = Vec::with_capacity(qmax as usize);
        for q in 1..=qmax {
            // zy + floor(m·Φ + t) ≥ q ⟺ m·Φ ≥ q − zy − t.
            raw.push(((q - zy) as f64 - t) / m);
        }
        if m > 0.0 {
            ThresholdChannel {
                // Φ ≥ boundary: minimal integer is the ceiling.
                thresholds: raw.iter().map(|v| v.ceil() as i64).collect(),
                ascending: true,
                constant: 0,
            }
        } else {
            ThresholdChannel {
                // Dividing by negative m flipped the inequality: Φ ≤ boundary.
                thresholds: raw.iter().map(|v| v.floor() as i64).collect(),
                ascending: false,
                constant: 0,
            }
        }
    }

    /// Number of stored thresholds (`2^Q − 1`; Table 1 budgets `2^Q` slots).
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// The stored threshold values (ascending or descending per the
    /// multiplier sign). Exposed so deployments can check they fit the
    /// INT16 storage Table 2's footprint implies.
    pub fn thresholds(&self) -> &[i64] {
        &self.thresholds
    }

    /// A copy with every threshold saturated to the INT16 range — the
    /// behaviour of a deployment that stores the tables at Table 2's
    /// implied datatype. Lossless whenever the saturated thresholds are
    /// unreachable by the layer's accumulator; lossy otherwise (see the
    /// `ablation_mixed_precision` bench).
    pub fn saturated_i16(&self) -> ThresholdChannel {
        ThresholdChannel {
            thresholds: self
                .thresholds
                .iter()
                .map(|&t| t.clamp(i16::MIN as i64, i16::MAX as i64))
                .collect(),
            ascending: self.ascending,
            constant: self.constant,
        }
    }

    /// Whether the table is empty (constant channel).
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }

    /// Whether the table counts thresholds `≤ Φ` (positive multiplier) as
    /// opposed to `≥ Φ` (negative multiplier). Exposed so the vectorized
    /// epilogue ([`crate::simd::requant`]) can build per-channel compare
    /// masks that reproduce [`ThresholdChannel::eval`] bit-for-bit.
    pub fn is_ascending(&self) -> bool {
        self.ascending
    }

    /// The constant output code of an empty table (irrelevant otherwise).
    pub fn constant_code(&self) -> u8 {
        self.constant
    }

    /// Evaluates the output code for accumulator `phi`, counting the number
    /// of comparisons into `cmps` (binary search, as a branch-efficient MCU
    /// implementation would).
    pub fn eval(&self, phi: i64, cmps: &mut u64) -> u8 {
        if self.thresholds.is_empty() {
            return self.constant;
        }
        // Count thresholds satisfied by phi. Tables are monotone by
        // construction, so binary search applies.
        let mut lo = 0usize;
        let mut hi = self.thresholds.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            *cmps += 1;
            let hit = if self.ascending {
                self.thresholds[mid] <= phi
            } else {
                self.thresholds[mid] >= phi
            };
            if hit {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u8
    }
}

/// The requantization stage that maps an `i32` accumulator `Φ` to an output
/// code — one of the three deployment schemes of §4 (see Table 1 for their
/// memory cost).
#[derive(Debug, Clone, PartialEq)]
pub enum Requantizer {
    /// Per-layer folded fixed-point (PL+FB, Jacob et al.): a single
    /// `M0·2^N0` for the whole layer, per-channel bias only.
    FoldedPerLayer {
        /// Quantized biases `Bq` (per output channel).
        bq: Vec<i32>,
        /// The layer-wide fixed-point multiplier.
        mult: FixedPointMultiplier,
        /// Output zero-point `Zy`.
        zy: i32,
        /// Output precision.
        out_bits: BitWidth,
    },
    /// Integer Channel-Normalization (Eq. 5): per-channel `Bq`, `M0`, `N0`.
    Icn {
        /// Quantized biases `Bq`.
        bq: Vec<i32>,
        /// Per-channel fixed-point multipliers `M0·2^N0`.
        mult: Vec<FixedPointMultiplier>,
        /// Output zero-point `Zy`.
        zy: i32,
        /// Output precision.
        out_bits: BitWidth,
    },
    /// Integer thresholds (per channel, exact).
    Thresholds {
        /// Per-channel threshold tables.
        channels: Vec<ThresholdChannel>,
        /// Output zero-point `Zy` (already baked into the tables; kept for
        /// downstream layers, which need to know the code of real zero).
        zy: i32,
        /// Output precision.
        out_bits: BitWidth,
    },
}

impl Requantizer {
    /// Convenience constructor for [`Requantizer::Icn`].
    pub fn icn(bq: Vec<i32>, mult: Vec<FixedPointMultiplier>, zy: i32, out_bits: BitWidth) -> Self {
        assert_eq!(bq.len(), mult.len(), "Bq and M0/N0 must align");
        Requantizer::Icn {
            bq,
            mult,
            zy,
            out_bits,
        }
    }

    /// Convenience constructor for [`Requantizer::FoldedPerLayer`].
    pub fn folded(bq: Vec<i32>, mult: FixedPointMultiplier, zy: i32, out_bits: BitWidth) -> Self {
        Requantizer::FoldedPerLayer {
            bq,
            mult,
            zy,
            out_bits,
        }
    }

    /// Convenience constructor for [`Requantizer::Thresholds`].
    pub fn thresholds(channels: Vec<ThresholdChannel>, zy: i32, out_bits: BitWidth) -> Self {
        Requantizer::Thresholds {
            channels,
            zy,
            out_bits,
        }
    }

    /// The output zero-point `Zy` — the code the *next* layer must treat as
    /// real zero.
    pub fn zero_point(&self) -> i32 {
        match self {
            Requantizer::FoldedPerLayer { zy, .. }
            | Requantizer::Icn { zy, .. }
            | Requantizer::Thresholds { zy, .. } => *zy,
        }
    }

    /// Output precision.
    pub fn out_bits(&self) -> BitWidth {
        match self {
            Requantizer::FoldedPerLayer { out_bits, .. }
            | Requantizer::Icn { out_bits, .. }
            | Requantizer::Thresholds { out_bits, .. } => *out_bits,
        }
    }

    /// Flash bytes of the stored requantization parameters (Table 1,
    /// §4.1 datatypes, excluding `Zx`/`Zy`/`Zw`): `Bq` INT32, `M0` INT32 +
    /// `N0` INT8 (5 bytes per multiplier), threshold entries INT16.
    pub fn flash_bytes(&self) -> usize {
        match self {
            Requantizer::FoldedPerLayer { bq, .. } => 4 * bq.len() + 4 + 1,
            Requantizer::Icn { bq, mult, .. } => 4 * bq.len() + 5 * mult.len(),
            Requantizer::Thresholds { channels, .. } => {
                channels.iter().map(|c| 2 * c.len()).sum::<usize>()
            }
        }
    }

    /// Number of output channels covered.
    pub fn channels(&self) -> usize {
        match self {
            Requantizer::FoldedPerLayer { bq, .. } => bq.len(),
            Requantizer::Icn { bq, .. } => bq.len(),
            Requantizer::Thresholds { channels, .. } => channels.len(),
        }
    }

    /// A copy with every threshold table saturated to the INT16 storage
    /// range (see [`ThresholdChannel::saturated_i16`]); non-threshold
    /// schemes, whose parameters already fit their §4.1 datatypes, are
    /// returned unchanged.
    pub fn saturated_i16(&self) -> Requantizer {
        match self {
            Requantizer::Thresholds {
                channels,
                zy,
                out_bits,
            } => Requantizer::Thresholds {
                channels: channels.iter().map(|c| c.saturated_i16()).collect(),
                zy: *zy,
                out_bits: *out_bits,
            },
            other => other.clone(),
        }
    }

    /// Maps accumulator `phi` of output channel `c` to its output code,
    /// incrementing `requants`/`cmps` cost counters.
    #[inline]
    pub fn apply(&self, c: usize, phi: i64, requants: &mut u64, cmps: &mut u64) -> u8 {
        match self {
            Requantizer::FoldedPerLayer {
                bq,
                mult,
                zy,
                out_bits,
            } => {
                *requants += 1;
                let v = phi + bq[c] as i64;
                let r = mult.apply(saturate_i32(v)) as i64;
                (*zy as i64 + r).clamp(0, out_bits.qmax() as i64) as u8
            }
            Requantizer::Icn {
                bq,
                mult,
                zy,
                out_bits,
            } => {
                *requants += 1;
                let v = phi + bq[c] as i64;
                let r = mult[c].apply(saturate_i32(v)) as i64;
                (*zy as i64 + r).clamp(0, out_bits.qmax() as i64) as u8
            }
            Requantizer::Thresholds { channels, .. } => channels[c].eval(phi, cmps),
        }
    }
}

#[inline]
fn saturate_i32(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icn_matches_direct_formula() {
        let bits = BitWidth::W4;
        let m = 0.037;
        let req = Requantizer::icn(vec![10], vec![FixedPointMultiplier::from_real(m)], 2, bits);
        let mut r = 0;
        let mut c = 0;
        for phi in -500..500i64 {
            let expected = (2 + ((m * (phi + 10) as f64).floor() as i64)).clamp(0, 15) as u8;
            let got = req.apply(0, phi, &mut r, &mut c);
            assert!(
                (got as i64 - expected as i64).abs() <= 1,
                "phi={phi}: {got} vs {expected}"
            );
        }
        assert!(r > 0);
        assert_eq!(c, 0);
    }

    #[test]
    fn thresholds_match_exact_affine_everywhere() {
        let bits = BitWidth::W4;
        for &(m, bq, zy) in &[
            (0.05f64, 7i64, 0i32),
            (0.011, -3, 2),
            (1.5, 0, 0),
            (-0.08, 5, 15),
            (-0.5, -2, 7),
        ] {
            let ch = ThresholdChannel::from_affine(m, bq, zy, bits);
            assert_eq!(ch.len(), 15);
            let mut cmps = 0;
            for phi in -400..400i64 {
                let exact = (zy as i64 + (m * (phi + bq) as f64).floor() as i64).clamp(0, 15) as u8;
                let got = ch.eval(phi, &mut cmps);
                assert_eq!(got, exact, "m={m} bq={bq} zy={zy} phi={phi}");
            }
            assert!(cmps > 0);
        }
    }

    #[test]
    fn zero_multiplier_is_constant_channel() {
        let ch = ThresholdChannel::from_affine(0.0, 0, 9, BitWidth::W4);
        assert!(ch.is_empty());
        let mut cmps = 0;
        assert_eq!(ch.eval(-1000, &mut cmps), 9);
        assert_eq!(ch.eval(1000, &mut cmps), 9);
        assert_eq!(cmps, 0);
    }

    #[test]
    fn folded_uses_single_multiplier() {
        let req = Requantizer::folded(
            vec![0, 100],
            FixedPointMultiplier::from_real(0.5),
            0,
            BitWidth::W8,
        );
        let mut r = 0;
        let mut c = 0;
        assert_eq!(req.apply(0, 10, &mut r, &mut c), 5);
        assert_eq!(req.apply(1, 10, &mut r, &mut c), 55); // (10+100)/2
        assert_eq!(req.channels(), 2);
        assert_eq!(req.out_bits(), BitWidth::W8);
    }

    #[test]
    fn saturation_at_code_range() {
        let req = Requantizer::icn(
            vec![0],
            vec![FixedPointMultiplier::from_real(1.0)],
            0,
            BitWidth::W2,
        );
        let mut r = 0;
        let mut c = 0;
        assert_eq!(req.apply(0, -100, &mut r, &mut c), 0);
        assert_eq!(req.apply(0, 100, &mut r, &mut c), 3);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn icn_length_mismatch_panics() {
        let _ = Requantizer::icn(
            vec![0, 1],
            vec![FixedPointMultiplier::ZERO],
            0,
            BitWidth::W8,
        );
    }

    #[test]
    fn saturated_i16_matches_within_reach_and_saturates_beyond() {
        // A tiny multiplier puts thresholds far outside i16.
        let ch = ThresholdChannel::from_affine(1e-5, 0, 0, BitWidth::W4);
        let sat = ch.saturated_i16();
        assert!(sat.thresholds().iter().all(|&t| t <= i16::MAX as i64));
        let mut cmps = 0;
        // Within i16 reach the two agree...
        for phi in [-30000i64, -100, 0, 100, 30000] {
            assert_eq!(
                ch.eval(phi, &mut cmps),
                sat.eval(phi, &mut cmps),
                "phi={phi}"
            );
        }
        // ...beyond it the saturated table is lossy: every (clamped)
        // threshold looks crossed even though the exact transfer is still 0.
        assert_eq!(ch.eval(40_000, &mut cmps), 0, "exact: floor(0.4) = 0");
        assert_eq!(sat.eval(40_000, &mut cmps), 15, "saturated table overfires");
    }

    #[test]
    fn negative_multiplier_thresholds_are_monotone_decreasing() {
        let ch = ThresholdChannel::from_affine(-0.1, 0, 15, BitWidth::W4);
        let mut cmps = 0;
        // Large phi → small code; small phi → large code.
        let hi = ch.eval(1000, &mut cmps);
        let lo = ch.eval(-1000, &mut cmps);
        assert!(hi < lo);
    }
}
