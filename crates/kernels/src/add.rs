use mixq_quant::{BitWidth, FixedPointMultiplier};
use mixq_tensor::Shape;

use crate::{simd, OpCounts, QActivation};

/// The requantizing residual add that joins two graph branches — the
/// integer lowering of a MobileNetV2-style skip connection
/// `y = quant(a + b)` where `a` and `b` live on different quantization
/// grids.
///
/// With `a = S_a·(q_a − Z_a)` and `b = S_b·(q_b − Z_b)`, the output code at
/// scale `S_y` is
///
/// ```text
/// q_y = clamp(Z_y + M_a·(q_a − Z_a) + M_b·(q_b − Z_b), 0, 2^Q − 1),
/// M_a = S_a/S_y,  M_b = S_b/S_y
/// ```
///
/// with each branch multiplier realized as an `M0·2^N0` fixed-point
/// product (Eq. 5's decomposition), exactly as the extended CMSIS-NN add
/// kernel would — two widening multiplies and shifts per element, no
/// floats.
///
/// # Examples
///
/// ```
/// use mixq_kernels::{OpCounts, QActivation, QAdd};
/// use mixq_quant::BitWidth;
/// use mixq_tensor::Shape;
///
/// // Both branches on the same unit grid: plain saturating code addition.
/// let add = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8);
/// let a = QActivation::from_codes(Shape::feature_map(1, 2, 1), &[3, 250], BitWidth::W8, 0);
/// let b = QActivation::from_codes(Shape::feature_map(1, 2, 1), &[4, 10], BitWidth::W8, 0);
/// let mut ops = OpCounts::default();
/// let y = add.execute(&a, &b, &mut ops);
/// assert_eq!(y.codes(), vec![7, 255]); // 3+4, 250+10 saturates
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QAdd {
    ma: FixedPointMultiplier,
    mb: FixedPointMultiplier,
    za: u8,
    zb: u8,
    zy: i32,
    out_bits: BitWidth,
    /// The real scales `(S_a, S_b, S_y)` this add was derived from, when
    /// built via [`QAdd::from_scales`] — kept so a static pass can check
    /// the fixed-point multipliers actually realize `S_a/S_y`, `S_b/S_y`
    /// (a mismatched join scale is otherwise invisible at the integer
    /// level). `None` for adds assembled from raw multipliers.
    declared_scales: Option<(f64, f64, f64)>,
}

impl QAdd {
    /// Assembles an add from already-decomposed branch multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `zy` is not a representable output code (`0 ≤ zy ≤
    /// 2^Q − 1`) — downstream ops read the zero-point back from the output
    /// activation, so an out-of-range value would silently shift every
    /// consumer.
    pub fn new(
        ma: FixedPointMultiplier,
        mb: FixedPointMultiplier,
        za: u8,
        zb: u8,
        zy: i32,
        out_bits: BitWidth,
    ) -> Self {
        assert!(
            (0..=out_bits.qmax() as i32).contains(&zy),
            "output zero-point {zy} is not a {out_bits:?} code"
        );
        QAdd {
            ma,
            mb,
            za,
            zb,
            zy,
            out_bits,
            declared_scales: None,
        }
    }

    /// Builds the add from the real scales of both branches and the output:
    /// `M_a = S_a/S_y`, `M_b = S_b/S_y`.
    ///
    /// # Panics
    ///
    /// Panics if `s_out` is not positive.
    pub fn from_scales(
        s_a: f64,
        s_b: f64,
        s_out: f64,
        za: u8,
        zb: u8,
        zy: i32,
        out_bits: BitWidth,
    ) -> Self {
        assert!(s_out > 0.0, "output scale must be positive");
        let mut add = QAdd::new(
            FixedPointMultiplier::from_real(s_a / s_out),
            FixedPointMultiplier::from_real(s_b / s_out),
            za,
            zb,
            zy,
            out_bits,
        );
        add.declared_scales = Some((s_a, s_b, s_out));
        add
    }

    /// Overrides the recorded real scales (testing hook: lets a verifier
    /// test forge a join whose declared scales disagree with the baked
    /// multipliers, the failure mode `from_scales` can never produce).
    pub fn with_declared_scales(mut self, s_a: f64, s_b: f64, s_out: f64) -> Self {
        self.declared_scales = Some((s_a, s_b, s_out));
        self
    }

    /// The real scales `(S_a, S_b, S_y)` recorded at construction, if any.
    pub fn declared_scales(&self) -> Option<(f64, f64, f64)> {
        self.declared_scales
    }

    /// The branch zero-points `(Z_a, Z_b)`.
    pub fn input_zero_points(&self) -> (u8, u8) {
        (self.za, self.zb)
    }

    /// Output precision `Q`.
    pub fn out_bits(&self) -> BitWidth {
        self.out_bits
    }

    /// Output zero-point `Z_y`.
    pub fn zero_point(&self) -> i32 {
        self.zy
    }

    /// The branch multipliers `(M_a, M_b)`.
    pub fn multipliers(&self) -> (FixedPointMultiplier, FixedPointMultiplier) {
        (self.ma, self.mb)
    }

    /// Flash bytes of the stored parameters: two `M0`/`N0` pairs (5 bytes
    /// each, §4.1 datatypes) plus `Z_a`, `Z_b`, `Z_y` (UINT8 each).
    pub fn flash_bytes(&self) -> usize {
        2 * 5 + 3
    }

    /// Runs the add, allocating the output tensor.
    ///
    /// # Panics
    ///
    /// Panics if the branch shapes disagree.
    pub fn execute(&self, a: &QActivation, b: &QActivation, ops: &mut OpCounts) -> QActivation {
        let mut codes = Vec::new();
        let shape = self.execute_codes(a, b, &mut codes, ops);
        QActivation::from_codes(shape, &codes, self.out_bits, self.zy as u8)
    }

    /// The codes-only core: writes output codes into `out_codes` (cleared
    /// and resized in place), returning the output shape.
    ///
    /// # Panics
    ///
    /// Panics if the branch shapes disagree.
    pub fn execute_codes(
        &self,
        a: &QActivation,
        b: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let shape = a.shape();
        assert_eq!(shape, b.shape(), "residual branches must agree in shape");
        let n = shape.volume();
        let qmax = self.out_bits.qmax() as i64;
        let (za, zb, zy) = (self.za as i32, self.zb as i32, self.zy as i64);
        out_codes.clear();
        out_codes.resize(n, 0);
        if !a.needs_unpack() && !b.needs_unpack() {
            // Flat fast path: both branches store one code per byte, and
            // each branch's fixed-point product is a pure function of its
            // ≤ 256 possible codes — so two stack lookup tables replace
            // the per-element multiplies *exactly* (same `apply` results,
            // bit-identical output), and the element loop is a linear
            // table-gather over the raw byte storage.
            let mut lut_a = [0i64; 256];
            let mut lut_b = [0i64; 256];
            for q in 0..256 {
                lut_a[q] = self.ma.apply(q as i32 - za) as i64;
                lut_b[q] = self.mb.apply(q as i32 - zb) as i64;
            }
            simd::requant::qadd_lut(
                simd::active_level(),
                &lut_a,
                &lut_b,
                a.as_bytes(),
                b.as_bytes(),
                zy,
                qmax,
                out_codes,
            );
        } else {
            let mut i = 0usize;
            for n_ in 0..shape.n {
                for y in 0..shape.h {
                    for x in 0..shape.w {
                        for c in 0..shape.c {
                            let va = self.ma.apply(a.get(n_, y, x, c) as i32 - za) as i64;
                            let vb = self.mb.apply(b.get(n_, y, x, c) as i32 - zb) as i64;
                            out_codes[i] = (zy + va + vb).clamp(0, qmax) as u8;
                            i += 1;
                        }
                    }
                }
            }
        }
        // Abstract ledger: the modeled work is per-element regardless of
        // the host dataflow (the LUT build is host bookkeeping).
        ops.requants += 2 * n as u64; // one fixed-point multiply per branch
        ops.act_loads += 2 * n as u64;
        ops.act_stores += n as u64;
        ops.unpacks += (a.needs_unpack() as u64 + b.needs_unpack() as u64) * n as u64;
        shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(codes: &[u8], bits: BitWidth, z: u8) -> QActivation {
        QActivation::from_codes(Shape::feature_map(1, codes.len(), 1), codes, bits, z)
    }

    #[test]
    fn matches_real_arithmetic_within_one_lsb() {
        // S_a = 0.3, S_b = 0.7, S_y = 0.5; zero-points 2, 0, 1.
        let (sa, sb, sy) = (0.3f64, 0.7, 0.5);
        let add = QAdd::from_scales(sa, sb, sy, 2, 0, 1, BitWidth::W8);
        let a = act(&[0, 2, 7, 100, 255], BitWidth::W8, 2);
        let b = act(&[0, 5, 3, 50, 255], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = add.execute(&a, &b, &mut ops);
        for i in 0..5 {
            let real = sa * (a.codes()[i] as f64 - 2.0) + sb * b.codes()[i] as f64;
            let exact = (1.0 + real / sy).floor().clamp(0.0, 255.0);
            let got = y.codes()[i] as f64;
            assert!(
                (got - exact).abs() <= 1.0,
                "element {i}: {got} vs exact {exact}"
            );
        }
        assert_eq!(y.zero_point(), 1);
        assert_eq!(y.bits(), BitWidth::W8);
    }

    #[test]
    fn ledger_charges_two_requants_per_element() {
        let add = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W4);
        let a = act(&[1, 2, 3], BitWidth::W4, 0);
        let b = act(&[3, 2, 1], BitWidth::W4, 0);
        let mut ops = OpCounts::default();
        let y = add.execute(&a, &b, &mut ops);
        assert_eq!(y.codes(), vec![4, 4, 4]);
        assert_eq!(ops.requants, 6);
        assert_eq!(ops.act_loads, 6);
        assert_eq!(ops.act_stores, 3);
        assert_eq!(ops.unpacks, 6, "both 4-bit branches unpack");
        assert_eq!(ops.macs, 0, "adds are MAC-free");
    }

    #[test]
    fn saturates_at_code_range() {
        let add = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W2);
        let a = act(&[3], BitWidth::W2, 0);
        let b = act(&[3], BitWidth::W2, 0);
        let mut ops = OpCounts::default();
        assert_eq!(add.execute(&a, &b, &mut ops).codes(), vec![3]);
    }

    #[test]
    fn accessors_and_flash() {
        let add = QAdd::from_scales(0.25, 0.5, 1.0, 0, 0, 3, BitWidth::W8);
        assert_eq!(add.out_bits(), BitWidth::W8);
        assert_eq!(add.zero_point(), 3);
        assert_eq!(add.flash_bytes(), 13);
        let (ma, mb) = add.multipliers();
        assert!((ma.to_real() - 0.25).abs() < 1e-9);
        assert!((mb.to_real() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not a W4 code")]
    fn out_of_range_zero_point_rejected() {
        let _ = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 20, BitWidth::W4);
    }

    #[test]
    #[should_panic(expected = "agree in shape")]
    fn shape_mismatch_panics() {
        let add = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8);
        let a = act(&[1, 2], BitWidth::W8, 0);
        let b = act(&[1], BitWidth::W8, 0);
        let _ = add.execute(&a, &b, &mut OpCounts::default());
    }
}
