//! Runtime-dispatched SIMD primitives for the blocked GEMM's u8×u8
//! inner kernel — the host-side analogue of the PULP-NN vectorized dot
//! products (arXiv:2007.07759) that give mixed-precision conv kernels
//! their throughput on real silicon.
//!
//! Three facts make an **exact** (bit-identical) SIMD path possible:
//!
//! * the blocked kernel's double zero-point hoisting (see
//!   [`crate::blocked`]) reduces the inner loop to plain `Σ X·W` and
//!   `Σ X` over `u8` operands — no per-element offsets, no rounding;
//! * integer addition is associative and commutative, so *any* summation
//!   order (vector lanes, horizontal reductions, scalar tails) produces
//!   the same integer as the scalar loop;
//! * `u8·u8 ≤ 255²` products accumulate safely in 32-bit lanes for the
//!   whole patch: `k ≤ MAX_DOT_LEN` keeps even an all-255 row inside
//!   `i32` (bounds proven per backend below).
//!
//! The core primitive is a **channel-vectorized dual-row GEMV**
//! ([`gemv2`]): instead of vectorizing along the patch (`k`) axis — which
//! starves on the small `k ∈ {4..128}` patches a width-scaled MobileNet
//! actually has — it broadcasts two activation codes at a time and
//! multiply-accumulates them against *all output channels at once*, using
//! the pair-interleaved panel layout of
//! [`PackedPanels`](crate::PackedPanels). Eight (or four) channels
//! advance per vector op regardless of how small `k` is.
//!
//! The dispatched backends:
//!
//! | level | arch | widening multiply-accumulate |
//! |---|---|---|
//! | [`SimdLevel::Scalar`] | any | portable dual-row channel loop (always available) |
//! | [`SimdLevel::Sse2`] | x86_64 | `punpck*` zero-extend + `pmaddwd`, `psadbw` row sums |
//! | [`SimdLevel::Avx2`] | x86_64 | `vpmovzxbw` + `vpmaddwd` (the `maddubs`-family widening multiply-add, minus its signed-saturating hazard: both operands are zero-extended to `i16`, so every pairwise product is exact) |
//! | [`SimdLevel::Neon`] | aarch64 | `vld2` de-interleave + `vmull_u8` widening multiply |
//!
//! The level is detected once per process ([`detected_level`]), can be
//! pinned down with the `MIXQ_FORCE_SCALAR=1` environment variable (CI's
//! fallback-coverage leg), and can be narrowed programmatically with
//! [`set_forced`] (the scaling bench measures scalar and SIMD in one
//! process). Forcing a level the CPU does not support is rejected —
//! every reachable `unsafe` call is guarded by the detection.
//!
//! None of this touches the abstract [`OpCounts`](crate::OpCounts)
//! ledger: SIMD reorganizes host arithmetic, not the modeled MCU work,
//! so modeled Cortex-M7 cycles are invariant under the level (asserted
//! by the cycle-model tests).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod requant;

/// Largest patch length [`gemv2`] accepts per call: every channel's
/// accumulator holds `Σ u8·u8` in `i32`, and `32768 · 255² < 2³¹`.
pub const MAX_DOT_LEN: usize = 32768;

/// A vector instruction level the GEMV primitives can run at.
///
/// Ordered from the always-available scalar fallback up; the enum is
/// defined on every architecture (so labels, CLI flags and JSON stamps
/// are portable) while the non-native variants simply fail
/// [`SimdLevel::available`] and fall back to scalar if dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar dual-row channel loop — always available.
    Scalar,
    /// x86_64 SSE2: 128-bit `pmaddwd` over zero-extended bytes.
    Sse2,
    /// x86_64 AVX2: 256-bit `vpmaddwd` over zero-extended bytes.
    Avx2,
    /// aarch64 NEON: `vld2`/`vmull_u8` widening multiply-accumulate.
    Neon,
}

impl SimdLevel {
    /// Stable lowercase label (bench JSON, `--help` text, log lines).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Whether the *running* CPU can execute this level.
    pub fn available(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    fn to_code(self) -> u8 {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 3,
            SimdLevel::Neon => 4,
        }
    }

    fn from_code(code: u8) -> Option<SimdLevel> {
        match code {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Sse2),
            3 => Some(SimdLevel::Avx2),
            4 => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

/// Process-wide programmatic override (0 = none); see [`set_forced`].
static FORCED: AtomicU8 = AtomicU8::new(0);

static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

/// The level runtime feature detection picked for this process: the
/// widest available backend, or [`SimdLevel::Scalar`] when the
/// `MIXQ_FORCE_SCALAR` environment variable is set to anything but `0`
/// (the escape hatch CI uses to keep the fallback path exercised).
/// Detected once and cached.
pub fn detected_level() -> SimdLevel {
    *DETECTED.get_or_init(|| {
        let forced_scalar =
            std::env::var_os("MIXQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        if forced_scalar {
            return SimdLevel::Scalar;
        }
        if SimdLevel::Avx2.available() {
            SimdLevel::Avx2
        } else if SimdLevel::Sse2.available() {
            SimdLevel::Sse2
        } else if SimdLevel::Neon.available() {
            SimdLevel::Neon
        } else {
            SimdLevel::Scalar
        }
    })
}

/// Pins the active level for the whole process (`None` restores
/// detection). Benches and tests use this to measure forced-scalar and
/// auto-detected paths in one run; all levels are bit-identical, so a
/// mid-inference switch changes timing, never results.
///
/// # Panics
///
/// Panics if the CPU cannot execute `level` — the guard that keeps every
/// `unsafe` backend call behind a positive feature detection.
pub fn set_forced(level: Option<SimdLevel>) {
    if let Some(l) = level {
        assert!(
            l.available(),
            "SIMD level {:?} not available on this CPU",
            l
        );
    }
    FORCED.store(level.map_or(0, SimdLevel::to_code), Ordering::Release);
    // The sub-byte pack/unpack kernels live in `mixq-quant` (which cannot
    // depend on this crate); keep its independent force switch in step so
    // "forced scalar" means the whole pipeline, packing included.
    mixq_quant::packing::set_force_scalar(level == Some(SimdLevel::Scalar));
}

/// The level kernels should dispatch to *now*: the [`set_forced`]
/// override when present, otherwise [`detected_level`].
pub fn active_level() -> SimdLevel {
    SimdLevel::from_code(FORCED.load(Ordering::Acquire)).unwrap_or_else(detected_level)
}

/// `Σ x[i]` as an exact `i64` (the hoisted `Σ X` row term). Any length.
#[inline]
pub fn row_sum(level: SimdLevel, x: &[u8]) -> i64 {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `available()` was asserted when the level was forced, or
        // the level came from runtime detection on this CPU.
        SimdLevel::Sse2 => unsafe { x86::row_sum_sse2(x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 is positively detected before dispatch.
        SimdLevel::Avx2 => unsafe { x86::row_sum_avx2(x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::row_sum_neon(x) },
        #[allow(unreachable_patterns)]
        _ => x.iter().map(|&v| v as i64).sum(),
    }
}

/// The channel-vectorized dual-row GEMV over one pair-interleaved weight
/// panel: adds `Σ_i x_r[i] · w[co][i]` into `acc_r[co]` for both rows
/// and **every** output channel.
///
/// Operand layout (built by
/// [`QConv2d::prepack_panels`](crate::QConv2d::prepack_panels)):
/// `pairs[(p·c_o + co)·2 + s]` holds `w[co][2p + s]` — column pairs
/// interleaved per channel, so a 16-byte load covers 8 channels' pairs
/// and one widening multiply-add (`pmaddwd` against the broadcast
/// activation pair) advances all of them one column pair. `tail[co]`
/// holds the last column when `k` is odd.
///
/// Exactness: products are `≤ 255²`, each accumulator gathers `k ≤`
/// [`MAX_DOT_LEN`] of them, and `32768·255² < 2³¹` keeps the `i32` lanes
/// from wrapping — so every backend returns the same integers and the
/// caller's `i64` math sees exact sums.
///
/// # Panics
///
/// Debug-asserts the layout invariants (`x0.len() == x1.len() == k ≤
/// MAX_DOT_LEN`, `pairs.len() == (k/2)·c_o·2`, `tail.len() == c_o·(k&1)`,
/// `acc0.len() == acc1.len() == c_o`).
#[inline]
pub fn gemv2(
    level: SimdLevel,
    x0: &[u8],
    x1: &[u8],
    pairs: &[u8],
    tail: &[u8],
    acc0: &mut [i32],
    acc1: &mut [i32],
) {
    let k = x0.len();
    let co_n = acc0.len();
    debug_assert!(k <= MAX_DOT_LEN);
    debug_assert_eq!(x1.len(), k);
    debug_assert_eq!(acc1.len(), co_n);
    debug_assert_eq!(pairs.len(), (k / 2) * co_n * 2);
    debug_assert_eq!(tail.len(), co_n * (k & 1));
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level is positively feature-detected (see `row_sum`).
        SimdLevel::Sse2 => unsafe { x86::gemv2_sse2(x0, x1, pairs, tail, acc0, acc1) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::gemv2_avx2(x0, x1, pairs, tail, acc0, acc1) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::gemv2_neon(x0, x1, pairs, tail, acc0, acc1) },
        #[allow(unreachable_patterns)]
        _ => gemv2_scalar(x0, x1, pairs, tail, acc0, acc1),
    }
}

/// The portable GEMV: one column pair broadcast over all channels, two
/// rows sharing each weight load — the exact arithmetic every vector
/// backend must reproduce (and a shape LLVM can auto-vectorize).
fn gemv2_scalar(
    x0: &[u8],
    x1: &[u8],
    pairs: &[u8],
    tail: &[u8],
    acc0: &mut [i32],
    acc1: &mut [i32],
) {
    let k = x0.len();
    let co_n = acc0.len();
    for (p, wrow) in pairs.chunks_exact(co_n * 2).enumerate() {
        let xa0 = x0[2 * p] as i32;
        let xa1 = x0[2 * p + 1] as i32;
        let xb0 = x1[2 * p] as i32;
        let xb1 = x1[2 * p + 1] as i32;
        for ((w, a0), a1) in wrow
            .chunks_exact(2)
            .zip(acc0.iter_mut())
            .zip(acc1.iter_mut())
        {
            let w0 = w[0] as i32;
            let w1 = w[1] as i32;
            *a0 += xa0 * w0 + xa1 * w1;
            *a1 += xb0 * w0 + xb1 * w1;
        }
    }
    if k & 1 == 1 {
        let xa = x0[k - 1] as i32;
        let xb = x1[k - 1] as i32;
        for ((&w, a0), a1) in tail.iter().zip(acc0.iter_mut()).zip(acc1.iter_mut()) {
            *a0 += xa * w as i32;
            *a1 += xb * w as i32;
        }
    }
}

/// Scalar channel-remainder helper for the vector backends: channels
/// `[co_lo, co_n)` of the same pair-interleaved panel.
fn gemv2_channel_tail(
    x0: &[u8],
    x1: &[u8],
    pairs: &[u8],
    tail: &[u8],
    co_lo: usize,
    acc0: &mut [i32],
    acc1: &mut [i32],
) {
    let k = x0.len();
    let co_n = acc0.len();
    for p in 0..k / 2 {
        let xa0 = x0[2 * p] as i32;
        let xa1 = x0[2 * p + 1] as i32;
        let xb0 = x1[2 * p] as i32;
        let xb1 = x1[2 * p + 1] as i32;
        let base = p * co_n * 2;
        for co in co_lo..co_n {
            let w0 = pairs[base + co * 2] as i32;
            let w1 = pairs[base + co * 2 + 1] as i32;
            acc0[co] += xa0 * w0 + xa1 * w1;
            acc1[co] += xb0 * w0 + xb1 * w1;
        }
    }
    if k & 1 == 1 {
        let xa = x0[k - 1] as i32;
        let xb = x1[k - 1] as i32;
        for co in co_lo..co_n {
            let w = tail[co] as i32;
            acc0[co] += xa * w;
            acc1[co] += xb * w;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2/AVX2 backends. Overflow bound (per `i32` accumulator lane,
    //! `k ≤ 32768`): each `pmaddwd` adds one column pair
    //! `≤ 2·255² = 130050`, so a full-length row contributes
    //! `16384 · 130050 < 2³¹`. `psadbw` partials (`≤ 8·255`) accumulate
    //! in 64-bit lanes.

    use super::gemv2_channel_tail;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have detected AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_sum_avx2(x: &[u8]) -> i64 {
        let n = x.len();
        let mut acc = _mm256_setzero_si256();
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
            i += 32;
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total: i64 = lanes.iter().sum();
        for &v in &x[i..] {
            total += v as i64;
        }
        total
    }

    /// # Safety
    /// Caller must have detected SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn row_sum_sse2(x: &[u8]) -> i64 {
        let n = x.len();
        let mut acc = _mm_setzero_si128();
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm_loadu_si128(x.as_ptr().add(i) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(v, zero));
            i += 16;
        }
        let mut lanes = [0i64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
        let mut total = lanes[0] + lanes[1];
        for &v in &x[i..] {
            total += v as i64;
        }
        total
    }

    /// Column pairs per splat-buffer chunk: both rows' pre-packed
    /// broadcast words fit comfortably on the stack (2 × 256 × 4 bytes).
    const PAIR_CHUNK: usize = 256;

    /// # Safety
    /// Caller must have detected AVX2; layout invariants as in [`super::gemv2`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemv2_avx2(
        x0: &[u8],
        x1: &[u8],
        pairs: &[u8],
        tail: &[u8],
        acc0: &mut [i32],
        acc1: &mut [i32],
    ) {
        let k = x0.len();
        let co_n = acc0.len();
        let co8 = co_n & !7;
        let wp = pairs.as_ptr();
        // Pack each row's activation pairs into broadcast-ready i32 words
        // once per chunk (not once per channel tile): the inner loop is
        // then pure vpbroadcastd-from-memory + vpmaddwd + vpaddd, with the
        // weight load shared by both rows. Accumulators live in registers
        // across each chunk (safe — see the module overflow bound) and in
        // `acc` between chunks.
        let mut xs0 = [0i32; PAIR_CHUNK];
        let mut xs1 = [0i32; PAIR_CHUNK];
        let mut p0 = 0usize;
        while p0 < k / 2 {
            let pn = (k / 2 - p0).min(PAIR_CHUNK);
            for p in 0..pn {
                let i = (p0 + p) * 2;
                xs0[p] = (x0[i] as i32) | ((x0[i + 1] as i32) << 16);
                xs1[p] = (x1[i] as i32) | ((x1[i + 1] as i32) << 16);
            }
            let mut ct = 0;
            while ct < co8 {
                let mut a0 = _mm256_loadu_si256(acc0.as_ptr().add(ct) as *const __m256i);
                let mut a1 = _mm256_loadu_si256(acc1.as_ptr().add(ct) as *const __m256i);
                for p in 0..pn {
                    // 16 bytes = 8 channels' (w₂ₚ, w₂ₚ₊₁) pairs,
                    // zero-extended to 16 i16 lanes; pmaddwd against the
                    // broadcast activation pair yields one i32 per channel.
                    let w = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                        wp.add(((p0 + p) * co_n + ct) * 2) as *const __m128i,
                    ));
                    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(_mm256_set1_epi32(xs0[p]), w));
                    a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(_mm256_set1_epi32(xs1[p]), w));
                }
                _mm256_storeu_si256(acc0.as_mut_ptr().add(ct) as *mut __m256i, a0);
                _mm256_storeu_si256(acc1.as_mut_ptr().add(ct) as *mut __m256i, a1);
                ct += 8;
            }
            p0 += pn;
        }
        if k & 1 == 1 {
            // Odd last column: zero-extend 8 tail weights to i32 lanes and
            // multiply by the broadcast activation.
            let xa = _mm256_set1_epi32(x0[k - 1] as i32);
            let xb = _mm256_set1_epi32(x1[k - 1] as i32);
            let mut ct = 0;
            while ct < co8 {
                let wt =
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(tail.as_ptr().add(ct) as *const __m128i));
                let a0 = _mm256_loadu_si256(acc0.as_ptr().add(ct) as *const __m256i);
                let a1 = _mm256_loadu_si256(acc1.as_ptr().add(ct) as *const __m256i);
                _mm256_storeu_si256(
                    acc0.as_mut_ptr().add(ct) as *mut __m256i,
                    _mm256_add_epi32(a0, _mm256_mullo_epi32(wt, xa)),
                );
                _mm256_storeu_si256(
                    acc1.as_mut_ptr().add(ct) as *mut __m256i,
                    _mm256_add_epi32(a1, _mm256_mullo_epi32(wt, xb)),
                );
                ct += 8;
            }
        }
        if co8 < co_n {
            gemv2_channel_tail(x0, x1, pairs, tail, co8, acc0, acc1);
        }
    }

    /// # Safety
    /// Caller must have detected SSE2; layout invariants as in [`super::gemv2`].
    #[target_feature(enable = "sse2")]
    pub unsafe fn gemv2_sse2(
        x0: &[u8],
        x1: &[u8],
        pairs: &[u8],
        tail: &[u8],
        acc0: &mut [i32],
        acc1: &mut [i32],
    ) {
        let k = x0.len();
        let co_n = acc0.len();
        let co4 = co_n & !3;
        let zero = _mm_setzero_si128();
        let wp = pairs.as_ptr();
        // Same splat-buffer chunking as the AVX2 backend, at 128-bit width.
        let mut xs0 = [0i32; PAIR_CHUNK];
        let mut xs1 = [0i32; PAIR_CHUNK];
        let mut p0 = 0usize;
        while p0 < k / 2 {
            let pn = (k / 2 - p0).min(PAIR_CHUNK);
            for p in 0..pn {
                let i = (p0 + p) * 2;
                xs0[p] = (x0[i] as i32) | ((x0[i + 1] as i32) << 16);
                xs1[p] = (x1[i] as i32) | ((x1[i + 1] as i32) << 16);
            }
            let mut ct = 0;
            while ct < co4 {
                let mut a0 = _mm_loadu_si128(acc0.as_ptr().add(ct) as *const __m128i);
                let mut a1 = _mm_loadu_si128(acc1.as_ptr().add(ct) as *const __m128i);
                for p in 0..pn {
                    // 8 bytes = 4 channels' pairs; punpcklbw against zero
                    // is the SSE2 zero-extension to 8 i16 lanes.
                    let wb = _mm_loadl_epi64(wp.add(((p0 + p) * co_n + ct) * 2) as *const __m128i);
                    let w = _mm_unpacklo_epi8(wb, zero);
                    a0 = _mm_add_epi32(a0, _mm_madd_epi16(_mm_set1_epi32(xs0[p]), w));
                    a1 = _mm_add_epi32(a1, _mm_madd_epi16(_mm_set1_epi32(xs1[p]), w));
                }
                _mm_storeu_si128(acc0.as_mut_ptr().add(ct) as *mut __m128i, a0);
                _mm_storeu_si128(acc1.as_mut_ptr().add(ct) as *mut __m128i, a1);
                ct += 4;
            }
            p0 += pn;
        }
        // Odd last column (no SSE2 32-bit mullo: scalar, once per call)
        // and the channel remainder.
        if k & 1 == 1 {
            let xa = x0[k - 1] as i32;
            let xb = x1[k - 1] as i32;
            for co in 0..co4 {
                let w = tail[co] as i32;
                acc0[co] += xa * w;
                acc1[co] += xb * w;
            }
        }
        if co4 < co_n {
            gemv2_channel_tail(x0, x1, pairs, tail, co4, acc0, acc1);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON backend. Overflow bound (per accumulator lane, `k ≤ 32768`):
    //! products are `≤ 255² = 65025` in `u16`; each column adds one into
    //! a 32-bit lane, so a full-length row contributes
    //! `32768 · 65025 < 2³¹`.

    use super::gemv2_channel_tail;
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// # Safety
    /// NEON is baseline on aarch64.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_sum_neon(x: &[u8]) -> i64 {
        let n = x.len();
        let mut total = 0i64;
        let mut i = 0;
        while i + 16 <= n {
            let v = vld1q_u8(x.as_ptr().add(i));
            total += vaddlvq_u8(v) as i64;
            i += 16;
        }
        for &v in &x[i..] {
            total += v as i64;
        }
        total
    }

    /// # Safety
    /// NEON is baseline on aarch64; layout invariants as in [`super::gemv2`].
    #[target_feature(enable = "neon")]
    pub unsafe fn gemv2_neon(
        x0: &[u8],
        x1: &[u8],
        pairs: &[u8],
        tail: &[u8],
        acc0: &mut [i32],
        acc1: &mut [i32],
    ) {
        let k = x0.len();
        let co_n = acc0.len();
        let kp = k / 2;
        let co8 = co_n & !7;
        let wp = pairs.as_ptr();
        let mut ct = 0;
        while ct < co8 {
            let mut a0_lo = vld1q_u32(acc0.as_ptr().add(ct) as *const u32);
            let mut a0_hi = vld1q_u32(acc0.as_ptr().add(ct + 4) as *const u32);
            let mut a1_lo = vld1q_u32(acc1.as_ptr().add(ct) as *const u32);
            let mut a1_hi = vld1q_u32(acc1.as_ptr().add(ct + 4) as *const u32);
            for p in 0..kp {
                // vld2 de-interleaves 16 bytes into the 8 channels' first
                // and second column weights.
                let w = vld2_u8(wp.add((p * co_n + ct) * 2));
                // One u8×u8 product per u16 lane: chaining the pair's two
                // products via `vmlal_u8` would overflow u16
                // (2 · 255² = 130050 > 65535), so each product widens into
                // the u32 accumulators on its own.
                let pa0 = vmull_u8(w.0, vdup_n_u8(x0[2 * p]));
                let pa1 = vmull_u8(w.1, vdup_n_u8(x0[2 * p + 1]));
                let pb0 = vmull_u8(w.0, vdup_n_u8(x1[2 * p]));
                let pb1 = vmull_u8(w.1, vdup_n_u8(x1[2 * p + 1]));
                a0_lo = vaddw_u16(a0_lo, vget_low_u16(pa0));
                a0_hi = vaddw_high_u16(a0_hi, pa0);
                a0_lo = vaddw_u16(a0_lo, vget_low_u16(pa1));
                a0_hi = vaddw_high_u16(a0_hi, pa1);
                a1_lo = vaddw_u16(a1_lo, vget_low_u16(pb0));
                a1_hi = vaddw_high_u16(a1_hi, pb0);
                a1_lo = vaddw_u16(a1_lo, vget_low_u16(pb1));
                a1_hi = vaddw_high_u16(a1_hi, pb1);
            }
            if k & 1 == 1 {
                let wt = vld1_u8(tail.as_ptr().add(ct));
                let pa = vmull_u8(wt, vdup_n_u8(x0[k - 1]));
                let pb = vmull_u8(wt, vdup_n_u8(x1[k - 1]));
                a0_lo = vaddw_u16(a0_lo, vget_low_u16(pa));
                a0_hi = vaddw_high_u16(a0_hi, pa);
                a1_lo = vaddw_u16(a1_lo, vget_low_u16(pb));
                a1_hi = vaddw_high_u16(a1_hi, pb);
            }
            vst1q_u32(acc0.as_mut_ptr().add(ct) as *mut u32, a0_lo);
            vst1q_u32(acc0.as_mut_ptr().add(ct + 4) as *mut u32, a0_hi);
            vst1q_u32(acc1.as_mut_ptr().add(ct) as *mut u32, a1_lo);
            vst1q_u32(acc1.as_mut_ptr().add(ct + 4) as *mut u32, a1_hi);
            ct += 8;
        }
        if co8 < co_n {
            gemv2_channel_tail(x0, x1, pairs, tail, co8, acc0, acc1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (no external RNG dependency).
    fn lcg_bytes(seed: u64, n: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    fn levels_to_test() -> Vec<SimdLevel> {
        [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Neon,
        ]
        .into_iter()
        .filter(|l| l.available())
        .collect()
    }

    /// Builds the pair-interleaved panel from row-major weights.
    fn interleave(w: &[Vec<u8>], k: usize) -> (Vec<u8>, Vec<u8>) {
        let co_n = w.len();
        let mut pairs = Vec::with_capacity((k / 2) * co_n * 2);
        for p in 0..k / 2 {
            for wc in w {
                pairs.push(wc[2 * p]);
                pairs.push(wc[2 * p + 1]);
            }
        }
        let tail = if k & 1 == 1 {
            w.iter().map(|wc| wc[k - 1]).collect()
        } else {
            Vec::new()
        };
        (pairs, tail)
    }

    fn reference(x: &[u8], w: &[Vec<u8>]) -> Vec<i64> {
        w.iter()
            .map(|wc| {
                x.iter()
                    .zip(wc)
                    .map(|(&a, &b)| a as i64 * b as i64)
                    .sum::<i64>()
            })
            .collect()
    }

    #[test]
    fn all_available_levels_match_reference() {
        // k hits: empty, odd tails, exact pair counts; co_n hits: below
        // one vector tile, exact tiles, tile remainders of 1–7.
        for k in [0, 1, 2, 3, 4, 7, 9, 16, 27, 64, 100, 255] {
            for co_n in [1, 3, 4, 5, 8, 11, 16, 37] {
                let x0 = lcg_bytes(3 + (k * co_n) as u64, k);
                let x1 = lcg_bytes(5 + (k * co_n) as u64, k);
                let w: Vec<Vec<u8>> = (0..co_n)
                    .map(|co| lcg_bytes(11 + co as u64 + k as u64, k))
                    .collect();
                let (pairs, tail) = interleave(&w, k);
                let want0 = reference(&x0, &w);
                let want1 = reference(&x1, &w);
                for level in levels_to_test() {
                    let mut acc0 = vec![1i32; co_n]; // nonzero: gemv2 adds
                    let mut acc1 = vec![2i32; co_n];
                    gemv2(level, &x0, &x1, &pairs, &tail, &mut acc0, &mut acc1);
                    for co in 0..co_n {
                        assert_eq!(
                            acc0[co] as i64,
                            want0[co] + 1,
                            "{level:?} k={k} co_n={co_n} co={co}"
                        );
                        assert_eq!(
                            acc1[co] as i64,
                            want1[co] + 2,
                            "{level:?} k={k} co_n={co_n}"
                        );
                    }
                    let want_sum: i64 = x0.iter().map(|&v| v as i64).sum();
                    assert_eq!(row_sum(level, &x0), want_sum, "{level:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn saturating_values_stay_exact() {
        // All-255 operands at a long odd length: the case a maddubs-style
        // saturating path (or a u16 accumulator) would corrupt — the
        // zero-extended formulation must stay exact.
        let k = 8193;
        let co_n = 16;
        let x = vec![255u8; k];
        let w: Vec<Vec<u8>> = (0..co_n).map(|_| vec![255u8; k]).collect();
        let (pairs, tail) = interleave(&w, k);
        let want = (k as i64) * 255 * 255;
        for level in levels_to_test() {
            let mut acc0 = vec![0i32; co_n];
            let mut acc1 = vec![0i32; co_n];
            gemv2(level, &x, &x, &pairs, &tail, &mut acc0, &mut acc1);
            for co in 0..co_n {
                assert_eq!(acc0[co] as i64, want, "{level:?} co={co}");
                assert_eq!(acc1[co] as i64, want, "{level:?} co={co}");
            }
            assert_eq!(row_sum(level, &x), k as i64 * 255, "{level:?}");
        }
    }

    #[test]
    fn forced_level_round_trips() {
        set_forced(Some(SimdLevel::Scalar));
        assert_eq!(active_level(), SimdLevel::Scalar);
        set_forced(None);
        assert_eq!(active_level(), detected_level());
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn forcing_unavailable_level_panics() {
        #[cfg(target_arch = "x86_64")]
        set_forced(Some(SimdLevel::Neon));
        #[cfg(not(target_arch = "x86_64"))]
        set_forced(Some(SimdLevel::Avx2));
    }
}
