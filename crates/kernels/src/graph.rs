//! The layer-graph executor: a uniform [`QOp`] abstraction over the
//! integer kernels and a sequential [`QGraph`] that runs any topology of
//! them — the deployment graph `g'(x)` of §4 as an executable object
//! rather than a hardcoded conv-stack.
//!
//! The executor owns an [`ActivationArena`]: two preallocated code buffers
//! that ping-pong between a layer's input and output, mirroring the
//! double-buffered activation memory a real MCU deployment uses and whose
//! peak pair is exactly the Eq. 7 read-write footprint the memory model in
//! `mixq-core` budgets.
//!
//! Every layer executed through the graph records a [`LayerRun`]: its
//! [`OpCounts`] ledger, activation bytes and operator class. Cycle models
//! (`mixq-mcu`) consume the ledger for per-layer latency breakdowns.
//!
//! # Examples
//!
//! ```
//! use mixq_kernels::{OpCounts, QActivation, QAvgPool, QConv2d, QConvWeights, QGraph,
//!                    Requantizer, WeightOffset};
//! use mixq_quant::{BitWidth, FixedPointMultiplier};
//! use mixq_tensor::{ConvGeometry, Shape};
//!
//! let w = QConvWeights::new(Shape::new(1, 1, 1, 1), false, &[2], BitWidth::W4,
//!                           WeightOffset::PerLayer(0));
//! let requant = Requantizer::icn(vec![0], vec![FixedPointMultiplier::from_real(1.0)],
//!                                0, BitWidth::W8);
//! let mut graph = QGraph::new();
//! graph.push("pw", QConv2d::new(w, ConvGeometry::pointwise(), requant));
//! graph.push("pool", QAvgPool);
//!
//! let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[3], BitWidth::W8, 0);
//! let run = graph.run(x);
//! assert_eq!(run.output.as_ref().unwrap().codes(), vec![6]); // 3 × 2
//! assert_eq!(run.layers.len(), 2);
//! assert_eq!(run.total_ops().macs, 1);
//! ```

use mixq_quant::BitWidth;
use mixq_tensor::Shape;

use crate::gemm::im2col_scratch_bytes;
use crate::{OpCounts, QActivation, QAvgPool, QConv2d, QLinear};

/// Coarse operator class of a graph node — what a cycle model needs to
/// pick the right per-MAC rate (dense convolutions stream through the
/// dual-MAC `SMLAD`; depthwise kernels have poor data reuse; the
/// fully-connected head is a single dot-product sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Standard or pointwise convolution.
    Conv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Global average pooling.
    Pool,
    /// Fully-connected classifier head.
    Linear,
}

impl OpKind {
    /// Short human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            OpKind::Conv => "conv",
            OpKind::DepthwiseConv => "dwconv",
            OpKind::Pool => "pool",
            OpKind::Linear => "linear",
        }
    }
}

/// What executing one op produces: the next activation tensor, or — for a
/// terminal classifier head — the `i32` logits (which cannot be
/// represented as sub-byte codes without loss).
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// A quantized activation feeding the next layer.
    Act(QActivation),
    /// Terminal integer logits.
    Logits(Vec<i32>),
}

/// A single integer-inference operator, executable inside a [`QGraph`].
///
/// The contract mirrors the deployment memory model: `flash_bytes` is the
/// op's read-only footprint (packed weights + §4.1 static parameters),
/// `output_bytes` its contribution to the Eq. 7 activation pair, and
/// `scratch_bytes` any transient buffer (e.g. an im2col expansion) a
/// lowered implementation would need on top of the activation pair.
pub trait QOp {
    /// Operator class (for cycle models and reporting).
    fn kind(&self) -> OpKind;

    /// Runs the op, charging `ops`.
    fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> OpOutput {
        self.execute_into(x, &mut Vec::new(), ops)
    }

    /// Runs the op writing unpacked output codes through `out_codes` — the
    /// arena hook. Implementations that produce no code tensor (the
    /// classifier head) ignore the buffer.
    fn execute_into(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> OpOutput;

    /// Output shape for a given input shape.
    fn output_shape(&self, input: Shape) -> Shape;

    /// Output activation precision given the input precision. For the
    /// classifier head the value is nominal (its real output is `i32`
    /// logits, accounted by [`QOp::output_bytes`]).
    fn out_bits(&self, in_bits: BitWidth) -> BitWidth;

    /// RAM bytes of this op's output tensor (`mem(y, Q_y)` of Eq. 7).
    fn output_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        self.out_bits(in_bits)
            .bytes_for(self.output_shape(input).volume())
    }

    /// Flash bytes of the op: packed weights plus §4.1 static parameters.
    fn flash_bytes(&self) -> usize;

    /// Transient scratch bytes a lowered implementation needs over `input`
    /// (zero for ops that run in place over the activation pair).
    fn scratch_bytes(&self, input: Shape) -> usize {
        let _ = input;
        0
    }
}

impl QOp for QConv2d {
    fn kind(&self) -> OpKind {
        if self.weights().is_depthwise() {
            OpKind::DepthwiseConv
        } else {
            OpKind::Conv
        }
    }

    fn execute_into(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> OpOutput {
        OpOutput::Act(self.execute_buffered(x, out_codes, ops))
    }

    fn output_shape(&self, input: Shape) -> Shape {
        QConv2d::output_shape(self, input)
    }

    fn out_bits(&self, _in_bits: BitWidth) -> BitWidth {
        self.requant().out_bits()
    }

    fn flash_bytes(&self) -> usize {
        // Packed weights + Zw + Zx/Zy + requant parameters (Table 1 row).
        self.weights().byte_len()
            + self.weights().offset().flash_bytes()
            + 2
            + self.requant().flash_bytes()
    }

    fn scratch_bytes(&self, input: Shape) -> usize {
        if self.weights().is_depthwise() {
            // CMSIS-NN lowers depthwise directly, no im2col buffer.
            0
        } else {
            im2col_scratch_bytes(self, input)
        }
    }
}

impl QOp for QAvgPool {
    fn kind(&self) -> OpKind {
        OpKind::Pool
    }

    fn execute_into(
        &self,
        x: &QActivation,
        _out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> OpOutput {
        OpOutput::Act(self.execute(x, ops))
    }

    fn output_shape(&self, input: Shape) -> Shape {
        Shape::new(input.n, 1, 1, input.c)
    }

    fn out_bits(&self, in_bits: BitWidth) -> BitWidth {
        in_bits
    }

    fn flash_bytes(&self) -> usize {
        0
    }
}

impl QOp for QLinear {
    fn kind(&self) -> OpKind {
        OpKind::Linear
    }

    fn execute_into(
        &self,
        x: &QActivation,
        _out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> OpOutput {
        OpOutput::Logits(self.execute(x, ops))
    }

    fn output_shape(&self, input: Shape) -> Shape {
        Shape::new(input.n, 1, 1, self.out_features())
    }

    fn out_bits(&self, in_bits: BitWidth) -> BitWidth {
        in_bits
    }

    fn output_bytes(&self, _input: Shape, _in_bits: BitWidth) -> usize {
        // The head's output is i32 logits, one per class.
        4 * self.out_features()
    }

    fn flash_bytes(&self) -> usize {
        // Packed weights + Zw + Zx/Zy + Bq (i32) and M0/N0 (5 bytes) per
        // class when a rescale is present.
        self.weights().byte_len()
            + self.weights().offset().flash_bytes()
            + 2
            + 4 * self.bq().len()
            + self.rescale().map_or(0, |r| 5 * r.len())
    }
}

/// Closed set of graph node operators.
///
/// The graph stores this enum rather than `Box<dyn QOp>` so that networks
/// stay `Clone`/`PartialEq` (conversion tests compare whole deployments)
/// and dispatch stays static — the executor adds no indirection over the
/// kernels it schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOp {
    /// Convolution (standard, pointwise or depthwise).
    Conv(QConv2d),
    /// Global average pooling.
    Pool(QAvgPool),
    /// Fully-connected classifier head.
    Linear(QLinear),
}

impl From<QConv2d> for AnyOp {
    fn from(op: QConv2d) -> Self {
        AnyOp::Conv(op)
    }
}

impl From<QAvgPool> for AnyOp {
    fn from(op: QAvgPool) -> Self {
        AnyOp::Pool(op)
    }
}

impl From<QLinear> for AnyOp {
    fn from(op: QLinear) -> Self {
        AnyOp::Linear(op)
    }
}

macro_rules! dispatch {
    ($self:expr, $op:ident => $call:expr) => {
        match $self {
            AnyOp::Conv($op) => $call,
            AnyOp::Pool($op) => $call,
            AnyOp::Linear($op) => $call,
        }
    };
}

impl QOp for AnyOp {
    fn kind(&self) -> OpKind {
        dispatch!(self, op => op.kind())
    }

    fn execute_into(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> OpOutput {
        dispatch!(self, op => op.execute_into(x, out_codes, ops))
    }

    fn output_shape(&self, input: Shape) -> Shape {
        dispatch!(self, op => QOp::output_shape(op, input))
    }

    fn out_bits(&self, in_bits: BitWidth) -> BitWidth {
        dispatch!(self, op => op.out_bits(in_bits))
    }

    fn output_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        dispatch!(self, op => op.output_bytes(input, in_bits))
    }

    fn flash_bytes(&self) -> usize {
        dispatch!(self, op => QOp::flash_bytes(op))
    }

    fn scratch_bytes(&self, input: Shape) -> usize {
        dispatch!(self, op => op.scratch_bytes(input))
    }
}

/// A named node of a [`QGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphNode {
    name: String,
    op: AnyOp,
}

impl GraphNode {
    /// Node name (layer label in breakdowns and exports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> &AnyOp {
        &self.op
    }
}

/// The per-layer record the executor writes: the ledger a cycle model
/// turns into a latency breakdown, plus the activation traffic of the
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRun {
    /// Node name.
    pub name: String,
    /// Operator class.
    pub kind: OpKind,
    /// Abstract operation counts charged by this layer alone.
    pub ops: OpCounts,
    /// Input activation bytes (packed, `mem(x, Q_x)` of Eq. 7).
    pub in_bytes: usize,
    /// Output bytes (packed activation, or `4·classes` for the head).
    pub out_bytes: usize,
    /// Output shape.
    pub out_shape: Shape,
}

/// Result of one [`QGraph::run`]: the terminal product plus the per-layer
/// ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRun {
    /// Integer logits, when the graph ends in a classifier head.
    pub logits: Option<Vec<i32>>,
    /// Final activation, when the graph ends in a code-producing op.
    pub output: Option<QActivation>,
    /// One record per executed node, in execution order.
    pub layers: Vec<LayerRun>,
}

impl GraphRun {
    /// Folds the per-layer ledgers into network totals.
    pub fn total_ops(&self) -> OpCounts {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// The logits of a head-terminated graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not end in a classifier head.
    pub fn into_logits(self) -> Vec<i32> {
        self.logits
            .expect("graph does not end in a classifier head")
    }
}

/// The double-buffered activation arena: two reusable unpacked-code
/// buffers that alternate between consecutive layers, so the per-layer
/// output-code scratch is allocated once per run (and once per *dataset*
/// via [`QGraph::run_with_arena`]) instead of once per layer. Packed
/// activations are still allocated per layer for now — making packing
/// arena-aware is a tracked follow-up.
///
/// The arena is the executor-side twin of the Eq. 7 accounting: at any
/// step exactly two activation tensors are live (the running layer's input
/// and output), and [`QGraph::peak_ram_bytes`] reports the largest such
/// pair in packed bytes.
#[derive(Debug, Default)]
pub struct ActivationArena {
    buffers: [Vec<u8>; 2],
    cursor: usize,
}

impl ActivationArena {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        ActivationArena::default()
    }

    /// Preallocates both buffers to `code_capacity` unpacked codes.
    pub fn with_capacity(code_capacity: usize) -> Self {
        ActivationArena {
            buffers: [
                Vec::with_capacity(code_capacity),
                Vec::with_capacity(code_capacity),
            ],
            cursor: 0,
        }
    }

    /// Hands out the next buffer of the ping-pong pair.
    pub fn checkout(&mut self) -> &mut Vec<u8> {
        self.cursor ^= 1;
        &mut self.buffers[self.cursor]
    }

    /// Current allocated capacity across both buffers, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.capacity()).sum()
    }
}

/// A sequential graph of integer ops — the executable deployment model.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QGraph {
    nodes: Vec<GraphNode>,
}

impl QGraph {
    /// An empty graph.
    pub fn new() -> Self {
        QGraph::default()
    }

    /// Appends a named node.
    pub fn push(&mut self, name: impl Into<String>, op: impl Into<AnyOp>) {
        self.nodes.push(GraphNode {
            name: name.into(),
            op: op.into(),
        });
    }

    /// The nodes, in execution order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All convolution nodes, in order.
    pub fn convs(&self) -> Vec<&QConv2d> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                AnyOp::Conv(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The classifier head, if the graph has one.
    pub fn head(&self) -> Option<&QLinear> {
        self.nodes.iter().find_map(|n| match &n.op {
            AnyOp::Linear(l) => Some(l),
            _ => None,
        })
    }

    /// Total flash footprint of the graph (packed weights + §4.1 static
    /// parameters of every node).
    pub fn flash_bytes(&self) -> usize {
        self.nodes.iter().map(|n| QOp::flash_bytes(&n.op)).sum()
    }

    /// Peak activation RAM (Eq. 7): the largest input+output byte pair
    /// across the nodes, each tensor at its deployed precision.
    pub fn peak_ram_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        let mut shape = input;
        let mut bits = in_bits;
        let mut peak = 0usize;
        for node in &self.nodes {
            let pair = bits.bytes_for(shape.volume()) + node.op.output_bytes(shape, bits);
            peak = peak.max(pair);
            shape = node.op.output_shape(shape);
            bits = node.op.out_bits(bits);
        }
        peak
    }

    /// Largest transient scratch buffer any node would need when lowered
    /// (e.g. im2col expansions), on top of the activation pair.
    pub fn peak_scratch_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        let mut shape = input;
        let mut bits = in_bits;
        let mut peak = 0usize;
        for node in &self.nodes {
            peak = peak.max(node.op.scratch_bytes(shape));
            shape = node.op.output_shape(shape);
            bits = node.op.out_bits(bits);
        }
        peak
    }

    /// Shape of the graph's terminal output for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Shape {
        self.nodes.iter().fold(input, |s, n| n.op.output_shape(s))
    }

    /// Largest unpacked output code count across the nodes — the arena
    /// preallocation size.
    fn peak_code_volume(&self, input: Shape) -> usize {
        let mut shape = input;
        let mut peak = 0usize;
        for node in &self.nodes {
            shape = node.op.output_shape(shape);
            peak = peak.max(shape.volume());
        }
        peak
    }

    /// Runs the graph on `input` with a freshly planned arena.
    ///
    /// # Panics
    ///
    /// Panics if a classifier head appears before the last node (logits
    /// cannot feed a code-consuming op).
    pub fn run(&self, input: QActivation) -> GraphRun {
        let mut arena = ActivationArena::with_capacity(self.peak_code_volume(input.shape()));
        self.run_with_arena(input, &mut arena)
    }

    /// Runs the graph reusing a caller-owned arena (amortizes the working
    /// set across inferences, e.g. over a whole evaluation set).
    ///
    /// # Panics
    ///
    /// Panics if a classifier head appears before the last node.
    pub fn run_with_arena(&self, input: QActivation, arena: &mut ActivationArena) -> GraphRun {
        let mut layers = Vec::with_capacity(self.nodes.len());
        let mut cur = input;
        let mut logits = None;
        for node in &self.nodes {
            assert!(
                logits.is_none(),
                "classifier head must be the terminal node (violated at `{}`)",
                node.name
            );
            let in_shape = cur.shape();
            let in_bits = cur.bits();
            let mut ops = OpCounts::default();
            let out = node.op.execute_into(&cur, arena.checkout(), &mut ops);
            let (out_bytes, out_shape) = match &out {
                OpOutput::Act(a) => (a.byte_len(), a.shape()),
                OpOutput::Logits(l) => (4 * l.len(), node.op.output_shape(in_shape)),
            };
            layers.push(LayerRun {
                name: node.name.clone(),
                kind: node.op.kind(),
                ops,
                in_bytes: in_bits.bytes_for(in_shape.volume()),
                out_bytes,
                out_shape,
            });
            match out {
                OpOutput::Act(a) => cur = a,
                OpOutput::Logits(l) => logits = Some(l),
            }
        }
        GraphRun {
            output: if logits.is_none() { Some(cur) } else { None },
            logits,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QConvWeights, Requantizer, WeightOffset};
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::{ConvGeometry, Padding};

    fn identity_requant(channels: usize, bits: BitWidth) -> Requantizer {
        Requantizer::icn(
            vec![0; channels],
            vec![FixedPointMultiplier::from_real(1.0); channels],
            0,
            bits,
        )
    }

    fn pointwise(ci: usize, co: usize, wcode: u8) -> QConv2d {
        let shape = Shape::new(co, 1, 1, ci);
        let w = QConvWeights::new(
            shape,
            false,
            &vec![wcode; shape.volume()],
            BitWidth::W4,
            WeightOffset::PerLayer(0),
        );
        QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(co, BitWidth::W8),
        )
    }

    fn depthwise(c: usize, wcode: u8) -> QConv2d {
        let shape = Shape::new(c, 3, 3, 1);
        let w = QConvWeights::new(
            shape,
            true,
            &vec![wcode; shape.volume()],
            BitWidth::W4,
            WeightOffset::PerChannel(vec![0; c]),
        );
        QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(c, BitWidth::W8),
        )
    }

    #[test]
    fn kinds_distinguish_depthwise() {
        assert_eq!(QOp::kind(&pointwise(2, 3, 1)), OpKind::Conv);
        assert_eq!(QOp::kind(&depthwise(2, 1)), OpKind::DepthwiseConv);
        assert_eq!(QAvgPool.kind(), OpKind::Pool);
        assert_eq!(OpKind::DepthwiseConv.label(), "dwconv");
    }

    #[test]
    fn graph_matches_manual_layer_loop() {
        // A depthwise-separable block graph must be bit-identical, op for
        // op, with the hand-rolled loop over the same layers.
        let dw = depthwise(2, 2);
        let pw = pointwise(2, 4, 1);
        let shape = Shape::feature_map(5, 5, 2);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 11) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);

        let mut graph = QGraph::new();
        graph.push("dw", dw.clone());
        graph.push("pw", pw.clone());
        graph.push("pool", QAvgPool);
        let run = graph.run(x.clone());

        let mut ops = OpCounts::default();
        let manual = QAvgPool.execute(&pw.execute(&dw.execute(&x, &mut ops), &mut ops), &mut ops);
        assert_eq!(run.output, Some(manual));
        assert_eq!(run.total_ops(), ops);
        assert_eq!(run.layers.len(), 3);
        assert_eq!(run.layers[0].kind, OpKind::DepthwiseConv);
        assert_eq!(run.layers[1].kind, OpKind::Conv);
        // The ledger decomposes: depthwise layer charges its own MACs only.
        assert_eq!(run.layers[0].ops.macs + run.layers[1].ops.macs, ops.macs);
    }

    #[test]
    fn arena_reuse_is_bit_identical_across_runs() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(3, 1));
        graph.push("pw", pointwise(3, 3, 2));
        let shape = Shape::feature_map(4, 4, 3);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 7) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
        let mut arena = ActivationArena::with_capacity(shape.volume());
        let a = graph.run_with_arena(x.clone(), &mut arena);
        let b = graph.run_with_arena(x.clone(), &mut arena);
        let c = graph.run(x);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(arena.capacity_bytes() >= 2 * shape.volume());
    }

    #[test]
    fn peak_ram_matches_manual_pair_walk() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(4, 1));
        graph.push("pw", pointwise(4, 8, 1));
        graph.push("pool", QAvgPool);
        let input = Shape::feature_map(6, 6, 4);
        // dw: 144 in + 144 out; pw: 144 in + 288 out (8 ch); pool: 288 + 8.
        assert_eq!(graph.peak_ram_bytes(input, BitWidth::W8), 144 + 288);
        // A 4-bit input halves the first pair's input tensor; the binding
        // pair here is pw (all-W8), so the peak cannot grow.
        assert!(graph.peak_ram_bytes(input, BitWidth::W4) <= 144 + 288);
        // When the first pair binds, the saving is strict.
        let mut dw_only = QGraph::new();
        dw_only.push("dw", depthwise(4, 1));
        assert_eq!(dw_only.peak_ram_bytes(input, BitWidth::W8), 144 + 144);
        assert_eq!(dw_only.peak_ram_bytes(input, BitWidth::W4), 72 + 144);
    }

    #[test]
    fn flash_bytes_sums_nodes() {
        let dw = depthwise(2, 1);
        let pw = pointwise(2, 3, 1);
        let mut graph = QGraph::new();
        graph.push("dw", dw.clone());
        graph.push("pw", pw.clone());
        graph.push("pool", QAvgPool);
        assert_eq!(
            graph.flash_bytes(),
            QOp::flash_bytes(&dw) + QOp::flash_bytes(&pw)
        );
        assert!(graph.flash_bytes() > 0);
    }

    #[test]
    fn scratch_reports_im2col_for_dense_only() {
        let dense = QConv2d::new(
            QConvWeights::new(
                Shape::new(2, 3, 3, 3),
                false,
                &[0; 54],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(2, BitWidth::W8),
        );
        let input = Shape::feature_map(8, 8, 3);
        assert_eq!(dense.scratch_bytes(input), 8 * 8 * 9 * 3);
        assert_eq!(depthwise(3, 1).scratch_bytes(input), 0);
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(3, 1));
        graph.push("c", dense);
        assert_eq!(graph.peak_scratch_bytes(input, BitWidth::W8), 8 * 8 * 9 * 3);
    }

    #[test]
    #[should_panic(expected = "terminal node")]
    fn head_must_be_terminal() {
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(2, 1, 1, 3),
                false,
                &[1; 6],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            vec![0, 0],
            None,
        );
        let mut graph = QGraph::new();
        graph.push("fc", head);
        graph.push("pool", QAvgPool);
        let x = QActivation::from_codes(Shape::new(1, 1, 1, 3), &[1, 2, 3], BitWidth::W8, 0);
        let _ = graph.run(x);
    }

    #[test]
    fn head_terminated_graph_yields_logits() {
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(2, 1, 1, 2),
                false,
                &[1, 0, 0, 1],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            vec![10, 20],
            None,
        );
        let mut graph = QGraph::new();
        graph.push("pool", QAvgPool);
        graph.push("fc", head.clone());
        let shape = Shape::feature_map(2, 2, 2);
        let x = QActivation::from_codes(shape, &[4, 8, 4, 8, 4, 8, 4, 8], BitWidth::W8, 0);
        let run = graph.run(x.clone());
        // Pool → [4, 8]; identity weights + bias.
        assert_eq!(run.clone().into_logits(), vec![14, 28]);
        assert!(run.output.is_none());
        // Ledger bytes: head output is 4 bytes per class.
        assert_eq!(run.layers.last().unwrap().out_bytes, 8);
        assert_eq!(run.layers.last().unwrap().kind, OpKind::Linear);
        // Head accounting hooks.
        assert_eq!(head.output_bytes(Shape::new(1, 1, 1, 2), BitWidth::W8), 8);
        assert_eq!(
            QOp::output_shape(&head, Shape::new(1, 1, 1, 2)),
            Shape::new(1, 1, 1, 2)
        );
    }
}
