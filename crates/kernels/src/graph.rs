//! The layer-graph executor: a uniform [`QOp`] abstraction over the
//! integer kernels and a [`QGraph`] **DAG** that runs any topology of them
//! — the deployment graph `g'(x)` of §4 as an executable object rather
//! than a hardcoded conv-stack.
//!
//! Nodes reference explicit input *tensor ids* (id 0 is the graph input,
//! id `k + 1` the output of node `k`), so residual branches — the
//! [`QAdd`]-joined skips MobileNetV2-style bottlenecks need — are first
//! class: [`QGraph::push`] keeps the familiar chain behaviour, while
//! [`QGraph::push_node`] wires arbitrary predecessors.
//!
//! The executor owns an [`ActivationArena`]: a liveness-planned buffer
//! pool. The node order is already a topological schedule (inputs must be
//! defined before use), per-tensor live ranges follow from each tensor's
//! last consumer, and packed activation storage is recycled the moment a
//! tensor dies. [`QGraph::peak_ram_bytes`] reports the true multi-branch
//! high-water mark of that schedule per Eq. 7 — for a chain it degenerates
//! to the classic input+output pair, for a residual graph it prices the
//! extra live skip tensor; [`GraphRun::peak_live_bytes`] is the measured
//! twin recorded by the executor.
//!
//! Every layer executed through the graph records a [`LayerRun`]: its
//! [`OpCounts`] ledger, activation bytes and operator class. Cycle models
//! (`mixq-mcu`) consume the ledger for per-layer latency breakdowns.
//!
//! Host-side execution speed is independent of that model: the blocked
//! GEMM, depthwise and [`QAdd`] nodes requantize their accumulators
//! through the vectorized epilogue in [`crate::simd::requant`] (and
//! sub-byte activations pack/unpack through the SIMD kernels in
//! `mixq_quant::packing`), while codes **and** ledger stay bit-identical
//! to the scalar reference at every [`crate::simd::SimdLevel`].
//!
//! # Examples
//!
//! ```
//! use mixq_kernels::{OpCounts, QActivation, QAvgPool, QConv2d, QConvWeights, QGraph,
//!                    Requantizer, WeightOffset};
//! use mixq_quant::{BitWidth, FixedPointMultiplier};
//! use mixq_tensor::{ConvGeometry, Shape};
//!
//! let w = QConvWeights::new(Shape::new(1, 1, 1, 1), false, &[2], BitWidth::W4,
//!                           WeightOffset::PerLayer(0));
//! let requant = Requantizer::icn(vec![0], vec![FixedPointMultiplier::from_real(1.0)],
//!                                0, BitWidth::W8);
//! let mut graph = QGraph::new();
//! graph.push("pw", QConv2d::new(w, ConvGeometry::pointwise(), requant));
//! graph.push("pool", QAvgPool);
//!
//! let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[3], BitWidth::W8, 0);
//! let run = graph.run(x);
//! assert_eq!(run.output.as_ref().unwrap().codes(), vec![6]); // 3 × 2
//! assert_eq!(run.layers.len(), 2);
//! assert_eq!(run.total_ops().macs, 1);
//! ```
//!
//! A residual branch joined by a requantizing add:
//!
//! ```
//! use mixq_kernels::{QActivation, QAdd, QGraph};
//! use mixq_quant::BitWidth;
//! use mixq_tensor::Shape;
//!
//! let mut graph = QGraph::new();
//! // Identity add of the input with itself: ids [0, 0].
//! graph.push_node("res", QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8), &[0, 0]);
//! let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[5], BitWidth::W8, 0);
//! assert_eq!(graph.run(x).output.unwrap().codes(), vec![10]);
//! ```

use std::mem;
use std::sync::Arc;

use mixq_quant::BitWidth;
use mixq_tensor::Shape;

use crate::backend::{Backend, KernelChoice};
use crate::blocked::PackedPanels;
use crate::gemm::im2col_scratch_bytes;
use crate::threadpool::ThreadPool;
use crate::{OpCounts, QActivation, QAdd, QAvgPool, QConv2d, QLinear};

/// A node's prepacked weight operand, built **once** when the node's
/// kernel choice is resolved and consumed by every subsequent execution
/// (and every sample of a batch) — the steady-state optimization of
/// production int8 GEMMs, where weights are immutable flash constants and
/// packing them per call is pure waste.
///
/// What gets cached follows the resolved [`KernelChoice`]:
///
/// * a [`KernelChoice::BlockedGemm`] convolution caches its interleaved
///   [`PackedPanels`] (pair-interleaved GEMV weight panels + hoisted
///   `Σ W`/zero-point tables), so the per-call panel build of the PR-4
///   kernel disappears;
/// * a direct or im2col-GEMM convolution — and the classifier head — with
///   **sub-byte** weights caches the codes decoded to one per byte in
///   `(c_o, k_h, k_w, c_i)` order, so the inner loop stops mask-and-shift
///   extracting every operand (8-bit weights already read their packed
///   bytes directly and cache nothing);
/// * pooling and residual adds have no weights and cache nothing.
///
/// The artifact is read-only and weight-derived: deployment rewrites that
/// keep the weights (e.g. threshold saturation) keep it valid. Its
/// footprint is reported by [`PrepackedWeights::bytes`] — flash-side
/// accounting, never part of the Eq. 7 activation live set.
#[derive(Debug, Clone, PartialEq)]
pub enum PrepackedWeights {
    /// Interleaved blocked-GEMM panels with hoisted per-channel terms.
    Panels(PackedPanels),
    /// Weight codes decoded one-per-byte in `(c_o, k_h, k_w, c_i)` order.
    Codes(Vec<u8>),
}

impl PrepackedWeights {
    /// The decoded-code cache, if that is the cached form.
    pub fn codes(&self) -> Option<&[u8]> {
        match self {
            PrepackedWeights::Codes(c) => Some(c),
            PrepackedWeights::Panels(_) => None,
        }
    }

    /// The blocked-GEMM panel cache, if that is the cached form.
    pub fn panels(&self) -> Option<&PackedPanels> {
        match self {
            PrepackedWeights::Panels(p) => Some(p),
            PrepackedWeights::Codes(_) => None,
        }
    }

    /// Read-only footprint of the cached artifact in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            PrepackedWeights::Panels(p) => p.bytes(),
            PrepackedWeights::Codes(c) => c.len(),
        }
    }
}

/// Coarse operator class of a graph node — what a cycle model needs to
/// pick the right per-MAC rate (dense convolutions stream through the
/// dual-MAC `SMLAD`; depthwise kernels have poor data reuse; the
/// fully-connected head is a single dot-product sweep; residual adds are
/// MAC-free requantization traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Standard or pointwise convolution.
    Conv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Global average pooling.
    Pool,
    /// Fully-connected classifier head.
    Linear,
    /// Requantizing residual add.
    Add,
}

impl OpKind {
    /// Short human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            OpKind::Conv => "conv",
            OpKind::DepthwiseConv => "dwconv",
            OpKind::Pool => "pool",
            OpKind::Linear => "linear",
            OpKind::Add => "add",
        }
    }
}

/// What executing one op produces: the next activation tensor, or — for a
/// terminal classifier head — the `i32` logits (which cannot be
/// represented as sub-byte codes without loss).
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// A quantized activation feeding the next layer.
    Act(QActivation),
    /// Terminal integer logits.
    Logits(Vec<i32>),
}

/// A single integer-inference operator, executable inside a [`QGraph`].
///
/// Ops take a slice of input activations (`arity` of them — one for the
/// kernels, two for the residual add) and produce one output. The contract
/// mirrors the deployment memory model: `flash_bytes` is the op's
/// read-only footprint (packed weights + §4.1 static parameters),
/// `output_bytes` its contribution to the Eq. 7 live set, and
/// `scratch_bytes` any transient buffer (e.g. an im2col expansion) a
/// lowered implementation would need on top of the live activations.
pub trait QOp {
    /// Operator class (for cycle models and reporting).
    fn kind(&self) -> OpKind;

    /// Number of input tensors the op consumes.
    fn arity(&self) -> usize {
        1
    }

    /// The kernel implementations this op can execute with; the first entry
    /// is the reference (direct) kernel every op supports. A [`Backend`]'s
    /// selection must come from this list.
    fn supported_kernels(&self) -> &'static [KernelChoice] {
        &[KernelChoice::DirectConv]
    }

    /// Builds the prepacked weight operand for the given kernel choice —
    /// what a [`GraphNode`] caches at selection time — together with the
    /// one-time [`OpCounts`] ledger of the packing work itself (decode
    /// unpacks, panel stores). Ops with nothing to cache return
    /// `(None, OpCounts::default())`, the default.
    fn prepack(&self, choice: KernelChoice) -> (Option<PrepackedWeights>, OpCounts) {
        let _ = choice;
        (None, OpCounts::default())
    }

    /// Runs the op with a throwaway arena, no prepack cache and the
    /// reference kernel, charging `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` (implementations index the
    /// slice directly).
    fn execute(&self, inputs: &[&QActivation], ops: &mut OpCounts) -> OpOutput {
        self.execute_kernel(
            KernelChoice::DirectConv,
            None,
            inputs,
            &mut ActivationArena::new(),
            ops,
        )
    }

    /// Runs the op with the given kernel implementation, drawing scratch
    /// and packed output storage from `arena` — the buffer-pool hook that
    /// makes steady-state inference allocation-free. This is the executor's
    /// dispatch point: each graph node passes its build-time-resolved
    /// [`KernelChoice`] and its [`PrepackedWeights`] cache here; a `None`
    /// cache falls back to per-call packing (bit-identical, just slower).
    ///
    /// # Panics
    ///
    /// Panics if the choice is not in [`QOp::supported_kernels`], the
    /// input count disagrees with the arity, or the cache was built for a
    /// different kernel choice or layer.
    fn execute_kernel(
        &self,
        choice: KernelChoice,
        cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput;

    /// Output shape for the given input shapes.
    fn output_shape(&self, inputs: &[Shape]) -> Shape;

    /// Output activation precision given the input precisions. For the
    /// classifier head the value is nominal (its real output is `i32`
    /// logits, accounted by [`QOp::output_bytes`]).
    fn out_bits(&self, in_bits: &[BitWidth]) -> BitWidth;

    /// RAM bytes of this op's output tensor (`mem(y, Q_y)` of Eq. 7).
    fn output_bytes(&self, inputs: &[Shape], in_bits: &[BitWidth]) -> usize {
        self.out_bits(in_bits)
            .bytes_for(self.output_shape(inputs).volume())
    }

    /// Flash bytes of the op: packed weights plus §4.1 static parameters.
    fn flash_bytes(&self) -> usize;

    /// Transient scratch bytes the given kernel implementation needs over
    /// the inputs at their precisions (e.g. the im2col expansion of a GEMM
    /// lowering; zero for kernels that run in place over the live
    /// activations).
    fn scratch_bytes(&self, choice: KernelChoice, inputs: &[Shape], in_bits: &[BitWidth]) -> usize {
        let _ = (choice, inputs, in_bits);
        0
    }
}

impl QOp for QConv2d {
    fn kind(&self) -> OpKind {
        if self.weights().is_depthwise() {
            OpKind::DepthwiseConv
        } else {
            OpKind::Conv
        }
    }

    fn supported_kernels(&self) -> &'static [KernelChoice] {
        if self.weights().is_depthwise() {
            // CMSIS-NN lowers depthwise directly; there is no im2col form.
            &[KernelChoice::DirectConv]
        } else {
            &[
                KernelChoice::DirectConv,
                KernelChoice::Im2colGemm,
                KernelChoice::BlockedGemm,
            ]
        }
    }

    fn prepack(&self, choice: KernelChoice) -> (Option<PrepackedWeights>, OpCounts) {
        prepack_conv_weights(self.weights(), choice, || self.prepack_panels())
    }

    fn execute_kernel(
        &self,
        choice: KernelChoice,
        cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput {
        let mut codes = arena.take_scratch();
        let wcodes = cache.and_then(PrepackedWeights::codes);
        // Clone the pool handle out so the `&mut` buffer takes below stay
        // disjoint borrows; the intra-node split is described on each
        // `*_pooled`/`*_parallel` kernel.
        let pool = arena.pool_handle();
        let pool = pool.as_deref();
        let shape = match choice {
            KernelChoice::DirectConv => {
                let mut aux = arena.take_aux();
                let shape =
                    self.execute_codes_pooled(wcodes, inputs[0], &mut codes, &mut aux, pool, ops);
                arena.put_aux(aux);
                shape
            }
            KernelChoice::Im2colGemm => {
                let mut aux = arena.take_aux();
                let shape = self.execute_gemm_codes_parallel(
                    wcodes, inputs[0], &mut aux, &mut codes, pool, ops,
                );
                arena.put_aux(aux);
                shape
            }
            KernelChoice::BlockedGemm => {
                let mut aux = arena.take_aux();
                let mut acc = arena.take_acc();
                let owned;
                let panels = match cache.and_then(PrepackedWeights::panels) {
                    Some(p) => p,
                    None => {
                        owned = self.prepack_panels();
                        &owned
                    }
                };
                let shape = self.execute_blocked_prepacked_pooled(
                    panels, inputs[0], &mut aux, &mut acc, &mut codes, pool, ops,
                );
                arena.put_acc(acc);
                arena.put_aux(aux);
                shape
            }
        };
        let act = QActivation::from_codes_in(
            shape,
            &codes,
            self.requant().out_bits(),
            self.out_zero_point(),
            arena.take_packed(),
        );
        arena.put_scratch(codes);
        OpOutput::Act(act)
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        QConv2d::output_shape(self, inputs[0])
    }

    fn out_bits(&self, _in_bits: &[BitWidth]) -> BitWidth {
        self.requant().out_bits()
    }

    fn flash_bytes(&self) -> usize {
        // Packed weights + Zw + Zx/Zy + requant parameters (Table 1 row).
        self.weights().byte_len()
            + self.weights().offset().flash_bytes()
            + 2
            + self.requant().flash_bytes()
    }

    fn scratch_bytes(&self, choice: KernelChoice, inputs: &[Shape], in_bits: &[BitWidth]) -> usize {
        match choice {
            // The direct loop reads the packed input in place.
            KernelChoice::DirectConv => 0,
            KernelChoice::Im2colGemm => im2col_scratch_bytes(self, inputs[0]),
            // The blocked kernel's pointwise identity fast path borrows an
            // 8-bit input's packed storage zero-copy — no expansion at all.
            KernelChoice::BlockedGemm => {
                if self.blocked_borrows_input(in_bits[0]) {
                    0
                } else {
                    im2col_scratch_bytes(self, inputs[0])
                }
            }
        }
    }
}

impl QOp for QAvgPool {
    fn kind(&self) -> OpKind {
        OpKind::Pool
    }

    fn execute_kernel(
        &self,
        _choice: KernelChoice,
        _cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput {
        let x = inputs[0];
        let mut codes = arena.take_scratch();
        let shape = self.execute_codes(x, &mut codes, ops);
        let act = QActivation::from_codes_in(
            shape,
            &codes,
            x.bits(),
            x.zero_point(),
            arena.take_packed(),
        );
        arena.put_scratch(codes);
        OpOutput::Act(act)
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        let input = inputs[0];
        Shape::new(input.n, 1, 1, input.c)
    }

    fn out_bits(&self, in_bits: &[BitWidth]) -> BitWidth {
        in_bits[0]
    }

    fn flash_bytes(&self) -> usize {
        0
    }
}

impl QOp for QLinear {
    fn kind(&self) -> OpKind {
        OpKind::Linear
    }

    fn prepack(&self, choice: KernelChoice) -> (Option<PrepackedWeights>, OpCounts) {
        let _ = choice; // the head has a single kernel implementation
        prepack_decoded_codes(self.weights())
    }

    fn execute_kernel(
        &self,
        _choice: KernelChoice,
        cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        _arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput {
        let mut logits = Vec::with_capacity(inputs[0].shape().n * self.out_features());
        self.execute_into_with(
            cache.and_then(PrepackedWeights::codes),
            inputs[0],
            &mut logits,
            ops,
        );
        OpOutput::Logits(logits)
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        Shape::new(inputs[0].n, 1, 1, self.out_features())
    }

    fn out_bits(&self, in_bits: &[BitWidth]) -> BitWidth {
        in_bits[0]
    }

    fn output_bytes(&self, inputs: &[Shape], _in_bits: &[BitWidth]) -> usize {
        // The head's output is i32 logits, one per class per batch item.
        4 * inputs[0].n * self.out_features()
    }

    fn flash_bytes(&self) -> usize {
        // Packed weights + Zw + Zx/Zy + Bq (i32) and M0/N0 (5 bytes) per
        // class when a rescale is present.
        self.weights().byte_len()
            + self.weights().offset().flash_bytes()
            + 2
            + 4 * self.bq().len()
            + self.rescale().map_or(0, |r| 5 * r.len())
    }
}

impl QOp for QAdd {
    fn kind(&self) -> OpKind {
        OpKind::Add
    }

    fn arity(&self) -> usize {
        2
    }

    fn execute_kernel(
        &self,
        _choice: KernelChoice,
        _cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput {
        let mut codes = arena.take_scratch();
        let shape = self.execute_codes(inputs[0], inputs[1], &mut codes, ops);
        let act = QActivation::from_codes_in(
            shape,
            &codes,
            QAdd::out_bits(self),
            self.zero_point() as u8, // validated to be a code at construction
            arena.take_packed(),
        );
        arena.put_scratch(codes);
        OpOutput::Act(act)
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        inputs[0]
    }

    fn out_bits(&self, _in_bits: &[BitWidth]) -> BitWidth {
        QAdd::out_bits(self)
    }

    fn flash_bytes(&self) -> usize {
        QAdd::flash_bytes(self)
    }
}

/// Prepack rule shared by the convolution kernels: a blocked-GEMM node
/// caches its interleaved panels; any other choice caches the decoded
/// codes when (and only when) the weights are sub-byte — 8-bit weights
/// already read their packed bytes directly.
fn prepack_conv_weights(
    weights: &crate::QConvWeights,
    choice: KernelChoice,
    build_panels: impl FnOnce() -> PackedPanels,
) -> (Option<PrepackedWeights>, OpCounts) {
    let vol = weights.shape().volume() as u64;
    match choice {
        KernelChoice::BlockedGemm => {
            // One-time work: read every code (decoding sub-byte ones),
            // store it into the interleaved panel.
            let ops = OpCounts {
                unpacks: if weights.needs_unpack() { vol } else { 0 },
                act_loads: vol,
                act_stores: vol,
                ..OpCounts::default()
            };
            (Some(PrepackedWeights::Panels(build_panels())), ops)
        }
        _ => prepack_decoded_codes(weights),
    }
}

/// The decoded-code prepack for direct/im2col kernels and the head: only
/// sub-byte weights gain anything (one unpack + one store per code, once).
fn prepack_decoded_codes(weights: &crate::QConvWeights) -> (Option<PrepackedWeights>, OpCounts) {
    if !weights.needs_unpack() {
        return (None, OpCounts::default());
    }
    let vol = weights.shape().volume() as u64;
    let ops = OpCounts {
        unpacks: vol,
        act_stores: vol,
        ..OpCounts::default()
    };
    (Some(PrepackedWeights::Codes(weights.codes())), ops)
}

/// Closed set of graph node operators.
///
/// The graph stores this enum rather than `Box<dyn QOp>` so that networks
/// stay `Clone`/`PartialEq` (conversion tests compare whole deployments)
/// and dispatch stays static — the executor adds no indirection over the
/// kernels it schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOp {
    /// Convolution (standard, pointwise or depthwise).
    Conv(QConv2d),
    /// Global average pooling.
    Pool(QAvgPool),
    /// Fully-connected classifier head.
    Linear(QLinear),
    /// Requantizing residual add.
    Add(QAdd),
}

impl From<QConv2d> for AnyOp {
    fn from(op: QConv2d) -> Self {
        AnyOp::Conv(op)
    }
}

impl From<QAvgPool> for AnyOp {
    fn from(op: QAvgPool) -> Self {
        AnyOp::Pool(op)
    }
}

impl From<QLinear> for AnyOp {
    fn from(op: QLinear) -> Self {
        AnyOp::Linear(op)
    }
}

impl From<QAdd> for AnyOp {
    fn from(op: QAdd) -> Self {
        AnyOp::Add(op)
    }
}

macro_rules! dispatch {
    ($self:expr, $op:ident => $call:expr) => {
        match $self {
            AnyOp::Conv($op) => $call,
            AnyOp::Pool($op) => $call,
            AnyOp::Linear($op) => $call,
            AnyOp::Add($op) => $call,
        }
    };
}

impl QOp for AnyOp {
    fn kind(&self) -> OpKind {
        dispatch!(self, op => op.kind())
    }

    fn arity(&self) -> usize {
        dispatch!(self, op => QOp::arity(op))
    }

    fn supported_kernels(&self) -> &'static [KernelChoice] {
        dispatch!(self, op => QOp::supported_kernels(op))
    }

    fn prepack(&self, choice: KernelChoice) -> (Option<PrepackedWeights>, OpCounts) {
        dispatch!(self, op => QOp::prepack(op, choice))
    }

    fn execute_kernel(
        &self,
        choice: KernelChoice,
        cache: Option<&PrepackedWeights>,
        inputs: &[&QActivation],
        arena: &mut ActivationArena,
        ops: &mut OpCounts,
    ) -> OpOutput {
        dispatch!(self, op => QOp::execute_kernel(op, choice, cache, inputs, arena, ops))
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        dispatch!(self, op => QOp::output_shape(op, inputs))
    }

    fn out_bits(&self, in_bits: &[BitWidth]) -> BitWidth {
        dispatch!(self, op => QOp::out_bits(op, in_bits))
    }

    fn output_bytes(&self, inputs: &[Shape], in_bits: &[BitWidth]) -> usize {
        dispatch!(self, op => op.output_bytes(inputs, in_bits))
    }

    fn flash_bytes(&self) -> usize {
        dispatch!(self, op => QOp::flash_bytes(op))
    }

    fn scratch_bytes(&self, choice: KernelChoice, inputs: &[Shape], in_bits: &[BitWidth]) -> usize {
        dispatch!(self, op => op.scratch_bytes(choice, inputs, in_bits))
    }
}

/// A named node of a [`QGraph`] with its input tensor ids and the kernel
/// implementation it resolved to at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphNode {
    name: String,
    op: AnyOp,
    inputs: Vec<usize>,
    choice: KernelChoice,
    cache: Option<PrepackedWeights>,
    prepack_ops: OpCounts,
}

impl GraphNode {
    /// Node name (layer label in breakdowns and exports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> &AnyOp {
        &self.op
    }

    /// Mutable operator (deployment rewrites, e.g. threshold saturation).
    /// The node's kernel choice and prepack cache are preserved across
    /// rewrites — the cache is weight-derived, so rewrites that keep the
    /// weights (requantizer changes) keep it valid.
    pub fn op_mut(&mut self) -> &mut AnyOp {
        &mut self.op
    }

    /// Input tensor ids (0 = graph input, `k + 1` = output of node `k`).
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// The kernel implementation this node executes with — resolved by a
    /// [`Backend`] at build time ([`QGraph::push_node_with`] /
    /// [`QGraph::select_kernels`]); [`KernelChoice::DirectConv`] for nodes
    /// pushed without a backend.
    pub fn choice(&self) -> KernelChoice {
        self.choice
    }

    /// The node's prepacked weight operand, built once when the kernel
    /// choice was resolved; `None` when the op has nothing to cache (or
    /// after [`QGraph::clear_prepack`]).
    pub fn prepacked(&self) -> Option<&PrepackedWeights> {
        self.cache.as_ref()
    }

    /// The one-time [`OpCounts`] ledger of building this node's prepack
    /// cache (zero when nothing is cached) — what cycle models report
    /// separately from the steady-state per-inference work.
    pub fn prepack_ops(&self) -> OpCounts {
        self.prepack_ops
    }

    /// Read-only bytes of the node's prepack cache (zero when none).
    pub fn prepacked_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, PrepackedWeights::bytes)
    }

    /// (Re)builds the prepack cache from the op and the resolved choice.
    fn build_prepack(&mut self) {
        let (cache, ops) = self.op.prepack(self.choice);
        self.cache = cache;
        self.prepack_ops = ops;
    }
}

/// The per-layer record the executor writes: the ledger a cycle model
/// turns into a latency breakdown, plus the activation traffic of the
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRun {
    /// Node name.
    pub name: String,
    /// Operator class.
    pub kind: OpKind,
    /// The kernel implementation the node executed with (cycle models price
    /// per choice).
    pub choice: KernelChoice,
    /// Abstract operation counts charged by this layer alone.
    pub ops: OpCounts,
    /// One-time packing work of the node's prepack cache (zero when the
    /// node caches nothing). Charged at graph build, **not** per inference
    /// — cycle models report it separately from the steady-state cost.
    pub prepack: OpCounts,
    /// Input activation bytes (packed, summed over all inputs —
    /// `mem(x, Q_x)` of Eq. 7).
    pub in_bytes: usize,
    /// Output bytes (packed activation, or `4·classes` for the head).
    pub out_bytes: usize,
    /// Output shape.
    pub out_shape: Shape,
}

/// Result of one [`QGraph::run`]: the terminal product plus the per-layer
/// ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRun {
    /// Integer logits, when the graph ends in a classifier head.
    pub logits: Option<Vec<i32>>,
    /// Final activation, when the graph ends in a code-producing op.
    pub output: Option<QActivation>,
    /// One record per executed node, in execution order.
    pub layers: Vec<LayerRun>,
    /// Measured high-water mark of live activation bytes across the run —
    /// the executor-side twin of [`QGraph::peak_ram_bytes`].
    pub peak_live_bytes: usize,
}

impl GraphRun {
    /// Folds the per-layer ledgers into network totals.
    pub fn total_ops(&self) -> OpCounts {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// The logits of a head-terminated graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not end in a classifier head.
    pub fn into_logits(self) -> Vec<i32> {
        self.logits
            .expect("graph does not end in a classifier head")
    }
}

/// The liveness-planned activation buffer pool: one shared unpacked-code
/// scratch plus a free list of recycled packed-storage buffers, so that —
/// after a warm-up run — steady-state inference through
/// [`QGraph::infer_pooled`] performs **zero heap allocations**.
///
/// The arena is the executor-side twin of the Eq. 7 accounting: the
/// schedule keeps a tensor's storage exactly as long as a consumer still
/// needs it, recycling it the instant the tensor dies, and
/// [`QGraph::peak_ram_bytes`] prices the largest live set that plan ever
/// holds.
#[derive(Debug, Default)]
pub struct ActivationArena {
    scratch: Vec<u8>,
    aux: Vec<u8>,
    acc: Vec<i32>,
    packed: Vec<Vec<u8>>,
    slots: Vec<Option<QActivation>>,
    last_uses: Vec<usize>,
    pool: Option<Arc<ThreadPool>>,
}

impl ActivationArena {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        ActivationArena::default()
    }

    /// Preallocates the code scratch for `code_capacity` unpacked codes.
    pub fn with_capacity(code_capacity: usize) -> Self {
        ActivationArena {
            scratch: Vec::with_capacity(code_capacity),
            ..ActivationArena::default()
        }
    }

    /// Takes ownership of the unpacked-code scratch buffer. Pair with
    /// [`ActivationArena::put_scratch`]; takes nested between a take and
    /// its put see an empty buffer.
    pub fn take_scratch(&mut self) -> Vec<u8> {
        mem::take(&mut self.scratch)
    }

    /// Returns the scratch buffer taken by
    /// [`ActivationArena::take_scratch`].
    pub fn put_scratch(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    /// Takes ownership of the auxiliary expansion buffer (im2col matrices,
    /// sub-byte linear unpacks) — the second scratch GEMM-lowered kernels
    /// need alongside the output-code scratch. Pair with
    /// [`ActivationArena::put_aux`].
    pub fn take_aux(&mut self) -> Vec<u8> {
        mem::take(&mut self.aux)
    }

    /// Returns the buffer taken by [`ActivationArena::take_aux`].
    pub fn put_aux(&mut self, buf: Vec<u8>) {
        self.aux = buf;
    }

    /// Takes ownership of the 32-bit accumulator scratch the blocked
    /// GEMV writes per-channel partial sums into (one `2·c_o` slice per
    /// pool worker). Pair with [`ActivationArena::put_acc`].
    pub fn take_acc(&mut self) -> Vec<i32> {
        mem::take(&mut self.acc)
    }

    /// Returns the buffer taken by [`ActivationArena::take_acc`].
    pub fn put_acc(&mut self, buf: Vec<i32>) {
        self.acc = buf;
    }

    /// Hands out a recycled packed-storage buffer (empty if the pool is
    /// dry).
    pub fn take_packed(&mut self) -> Vec<u8> {
        self.packed.pop().unwrap_or_default()
    }

    /// Recycles a dead activation's packed storage into the pool.
    pub fn recycle(&mut self, act: QActivation) {
        self.packed.push(act.into_storage());
    }

    /// Current allocated capacity across scratch and pooled buffers, in
    /// bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.scratch.capacity()
            + self.aux.capacity()
            + self.acc.capacity() * 4
            + self.packed.iter().map(|b| b.capacity()).sum::<usize>()
    }

    /// Number of packed buffers currently waiting in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.packed.len()
    }

    /// Attaches a [`ThreadPool`] so every node executed through this
    /// arena splits its work across the pool's workers — the intra-walk
    /// parallelism of [`QGraph::infer_batch`]. The pool is created once
    /// by the caller and reused across walks (steady state stays
    /// allocation-free); results are bit-identical with or without one.
    pub fn set_pool(&mut self, pool: Arc<ThreadPool>) {
        self.pool = Some(pool);
    }

    /// Detaches the worker pool (subsequent walks run serially).
    pub fn clear_pool(&mut self) {
        self.pool = None;
    }

    /// A handle to the attached worker pool, if any — cloned out so
    /// kernels can hold it alongside `&mut` borrows of the arena's
    /// buffers.
    pub fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        self.pool.clone()
    }
}

/// A DAG of integer ops — the executable deployment model.
///
/// Nodes are appended in topological order: every input tensor id must
/// already be defined, so the node order doubles as the execution
/// schedule. See the [module docs](self) for examples.
///
/// Each node carries the [`KernelChoice`] it executes with. Plain
/// [`QGraph::push`]/[`QGraph::push_node`] resolve every node to the direct
/// reference kernel (bit-identical to the pre-backend executor); declaring
/// the input with [`QGraph::with_input`] enables build-time [`Backend`]
/// selection through [`QGraph::push_with`]/[`QGraph::push_node_with`], and
/// [`QGraph::select_kernels`] re-resolves a whole graph against a backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QGraph {
    nodes: Vec<GraphNode>,
    input: Option<(Shape, BitWidth)>,
}

impl QGraph {
    /// An empty graph with no declared input (backend selection needs
    /// [`QGraph::with_input`]).
    pub fn new() -> Self {
        QGraph::default()
    }

    /// An empty graph with a declared input tensor, enabling build-time
    /// kernel selection: backends see each node's input shapes and
    /// precisions, derived from this declaration through the ops already
    /// pushed.
    pub fn with_input(input: Shape, in_bits: BitWidth) -> Self {
        QGraph {
            nodes: Vec::new(),
            input: Some((input, in_bits)),
        }
    }

    /// The declared input tensor, if any.
    pub fn input_decl(&self) -> Option<(Shape, BitWidth)> {
        self.input
    }

    /// Appends a chain node consuming the most recent tensor (the previous
    /// node's output, or the graph input for the first node). Returns the
    /// new node's output tensor id. The node runs the direct reference
    /// kernel.
    pub fn push(&mut self, name: impl Into<String>, op: impl Into<AnyOp>) -> usize {
        let prev = self.nodes.len();
        self.push_node(name, op, &[prev])
    }

    /// [`QGraph::push`] with build-time kernel selection: `backend` picks
    /// the node's [`KernelChoice`] from its input shapes and precisions.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no declared input ([`QGraph::with_input`])
    /// or the backend returns an unsupported choice.
    pub fn push_with(
        &mut self,
        name: impl Into<String>,
        op: impl Into<AnyOp>,
        backend: &dyn Backend,
    ) -> usize {
        let prev = self.nodes.len();
        self.push_node_with(name, op, &[prev], backend)
    }

    /// Appends a node with explicit input tensor ids (0 = graph input,
    /// `k + 1` = output of node `k`). Returns the new node's output tensor
    /// id. The node runs the direct reference kernel.
    ///
    /// # Panics
    ///
    /// Panics if an input id is not yet defined or the input count does
    /// not match the op's arity.
    pub fn push_node(
        &mut self,
        name: impl Into<String>,
        op: impl Into<AnyOp>,
        inputs: &[usize],
    ) -> usize {
        self.push_resolved(name.into(), op.into(), inputs, KernelChoice::DirectConv)
    }

    /// [`QGraph::push_node`] with build-time kernel selection: `backend`
    /// picks the node's [`KernelChoice`] from the shapes and precisions of
    /// its input tensors (derived from the declared graph input).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no declared input ([`QGraph::with_input`]),
    /// the backend returns a choice outside the op's
    /// [`QOp::supported_kernels`], or the [`QGraph::push_node`] conditions
    /// are violated.
    pub fn push_node_with(
        &mut self,
        name: impl Into<String>,
        op: impl Into<AnyOp>,
        inputs: &[usize],
        backend: &dyn Backend,
    ) -> usize {
        let name = name.into();
        let op = op.into();
        let (input, in_bits) = self.input.unwrap_or_else(|| {
            panic!(
                "node `{name}`: backend selection needs a declared graph input \
                 (build the graph with QGraph::with_input)"
            )
        });
        let (shapes, bits) = self.tensor_plan(input, in_bits);
        let in_shapes: Vec<Shape> = inputs.iter().map(|&t| shapes[t]).collect();
        let in_bits_v: Vec<BitWidth> = inputs.iter().map(|&t| bits[t]).collect();
        let choice = resolve_choice(backend, &name, &op, &in_shapes, &in_bits_v);
        self.push_resolved(name, op, inputs, choice)
    }

    fn push_resolved(
        &mut self,
        name: String,
        op: AnyOp,
        inputs: &[usize],
        choice: KernelChoice,
    ) -> usize {
        let out_id = self.nodes.len() + 1;
        assert_eq!(
            inputs.len(),
            QOp::arity(&op),
            "node `{name}`: {} inputs for an arity-{} op",
            inputs.len(),
            QOp::arity(&op)
        );
        for &t in inputs {
            assert!(
                t < out_id,
                "node `{name}`: input tensor {t} is not defined yet (next id is {out_id})"
            );
        }
        let mut node = GraphNode {
            name,
            op,
            inputs: inputs.to_vec(),
            choice,
            cache: None,
            prepack_ops: OpCounts::default(),
        };
        node.build_prepack();
        self.nodes.push(node);
        out_id
    }

    /// Re-resolves every node's [`KernelChoice`] against `backend` —
    /// retargeting an already-built graph (e.g. a converted network) to a
    /// different backend without rebuilding it.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no declared input ([`QGraph::with_input`])
    /// or the backend returns an unsupported choice for some node.
    pub fn select_kernels(&mut self, backend: &dyn Backend) {
        let (input, in_bits) = self
            .input
            .expect("backend selection needs a declared graph input (QGraph::with_input)");
        let (shapes, bits) = self.tensor_plan(input, in_bits);
        let mut in_shapes = Vec::new();
        let mut in_bits_v = Vec::new();
        for node in &mut self.nodes {
            in_shapes.clear();
            in_bits_v.clear();
            for &t in &node.inputs {
                in_shapes.push(shapes[t]);
                in_bits_v.push(bits[t]);
            }
            let choice = resolve_choice(backend, &node.name, &node.op, &in_shapes, &in_bits_v);
            // Rebuild the cache only when the choice changed (a different
            // artifact form applies) or none is held (first selection, or
            // after `clear_prepack`) — re-selecting with the same backend
            // must not redo the sub-byte decode per node.
            if choice != node.choice || node.cache.is_none() {
                node.choice = choice;
                node.build_prepack();
            }
        }
    }

    /// Drops every node's prepack cache, reverting execution to per-call
    /// packing (bit-identical, slower) — for RAM-constrained deployments
    /// that cannot afford the panel copies, and for benchmarking the
    /// amortization itself.
    pub fn clear_prepack(&mut self) {
        for node in &mut self.nodes {
            node.cache = None;
            node.prepack_ops = OpCounts::default();
        }
    }

    /// Total read-only bytes of all nodes' prepack caches — the flash-side
    /// cost of the steady-state packing amortization, reported separately
    /// from the Table-1 flash model ([`QGraph::flash_bytes`]) and from the
    /// Eq. 7 activation RAM ([`QGraph::peak_ram_bytes`]).
    pub fn prepacked_bytes(&self) -> usize {
        self.nodes.iter().map(GraphNode::prepacked_bytes).sum()
    }

    /// The resolved [`KernelChoice`] of every node, in schedule order.
    pub fn kernel_choices(&self) -> Vec<KernelChoice> {
        self.nodes.iter().map(|n| n.choice).collect()
    }

    /// The nodes, in schedule order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Mutable nodes (deployment rewrites keep the topology intact).
    pub fn nodes_mut(&mut self) -> &mut [GraphNode] {
        &mut self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All convolution nodes, in order.
    pub fn convs(&self) -> Vec<&QConv2d> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                AnyOp::Conv(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The classifier head, if the graph has one.
    pub fn head(&self) -> Option<&QLinear> {
        self.nodes.iter().find_map(|n| match &n.op {
            AnyOp::Linear(l) => Some(l),
            _ => None,
        })
    }

    /// Total flash footprint of the graph (packed weights + §4.1 static
    /// parameters of every node).
    pub fn flash_bytes(&self) -> usize {
        self.nodes.iter().map(|n| QOp::flash_bytes(&n.op)).sum()
    }

    /// Shape and precision of every tensor (index = tensor id): entry 0 is
    /// the graph input, entry `k + 1` the output of node `k`. This is the
    /// same plan the executor's arena planner uses, exposed so static
    /// analyses (`mixq-verify`) can reason about the exact deployed
    /// schedule rather than a reconstruction of it.
    pub fn tensor_plan(&self, input: Shape, in_bits: BitWidth) -> (Vec<Shape>, Vec<BitWidth>) {
        let mut shapes = Vec::with_capacity(self.nodes.len() + 1);
        let mut bits = Vec::with_capacity(self.nodes.len() + 1);
        shapes.push(input);
        bits.push(in_bits);
        let mut in_shapes = Vec::new();
        let mut in_bits_v = Vec::new();
        for node in &self.nodes {
            in_shapes.clear();
            in_bits_v.clear();
            for &t in &node.inputs {
                in_shapes.push(shapes[t]);
                in_bits_v.push(bits[t]);
            }
            shapes.push(node.op.output_shape(&in_shapes));
            bits.push(node.op.out_bits(&in_bits_v));
        }
        (shapes, bits)
    }

    /// Last schedule step at which each tensor is still needed: the index
    /// of its final consuming node, its defining node when unused, and a
    /// past-the-end sentinel for the terminal tensor (which must survive
    /// the run).
    pub(crate) fn last_uses_into(&self, out: &mut Vec<usize>) {
        let n = self.nodes.len();
        out.clear();
        out.push(0); // graph input: droppable after node 0 if unused
        for k in 0..n {
            out.push(k); // tensor k + 1, defined by node k
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &t in &node.inputs {
                out[t] = out[t].max(i);
            }
        }
        if n > 0 {
            out[n] = n; // terminal tensor: never dropped mid-run
        }
    }

    /// Last schedule step at which each tensor is still needed (index =
    /// tensor id, as in [`QGraph::tensor_plan`]) — the liveness schedule
    /// the activation arena is planned from, exposed for static
    /// verification of the schedule itself.
    pub fn last_uses(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.last_uses_into(&mut out);
        out
    }

    /// Peak activation RAM (Eq. 7) of the liveness-planned schedule: for
    /// every step, the bytes of all tensors still needed plus the step's
    /// output, each at its deployed precision; the peak over steps. On a
    /// chain this is the classic largest input+output pair; on a residual
    /// graph the pending skip tensor is priced too.
    pub fn peak_ram_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        let (shapes, bits) = self.tensor_plan(input, in_bits);
        let mut last = Vec::new();
        self.last_uses_into(&mut last);
        let mut peak = 0usize;
        let mut in_shapes = Vec::new();
        let mut in_bits_v = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            in_shapes.clear();
            in_bits_v.clear();
            for &t in &node.inputs {
                in_shapes.push(shapes[t]);
                in_bits_v.push(bits[t]);
            }
            let out_bytes = node.op.output_bytes(&in_shapes, &in_bits_v);
            let live: usize = (0..=i)
                .filter(|&t| last[t] >= i)
                .map(|t| bits[t].bytes_for(shapes[t].volume()))
                .sum();
            peak = peak.max(live + out_bytes);
        }
        peak
    }

    /// Largest transient scratch buffer any node needs with the kernel it
    /// actually selected, on top of the live activations: GEMM-lowered
    /// nodes are priced for their im2col expansion (zero when the blocked
    /// kernel's pointwise identity path borrows the input zero-copy),
    /// direct nodes for nothing. A reference-selected graph therefore
    /// reports zero, and a tiled graph exactly the largest expansion its
    /// GEMM nodes materialize.
    pub fn peak_scratch_bytes(&self, input: Shape, in_bits: BitWidth) -> usize {
        let (shapes, bits) = self.tensor_plan(input, in_bits);
        let mut peak = 0usize;
        let mut in_shapes = Vec::new();
        let mut in_bits_v = Vec::new();
        for node in &self.nodes {
            in_shapes.clear();
            in_bits_v.clear();
            for &t in &node.inputs {
                in_shapes.push(shapes[t]);
                in_bits_v.push(bits[t]);
            }
            peak = peak.max(node.op.scratch_bytes(node.choice, &in_shapes, &in_bits_v));
        }
        peak
    }

    /// Shape of the graph's terminal output for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Shape {
        let (shapes, _) = self.tensor_plan(input, BitWidth::W8);
        *shapes.last().expect("plan includes the input")
    }

    /// Largest unpacked code count across the tensors — the scratch
    /// preallocation size.
    fn peak_code_volume(&self, input: Shape) -> usize {
        let (shapes, _) = self.tensor_plan(input, BitWidth::W8);
        shapes.iter().map(|s| s.volume()).max().unwrap_or(0)
    }

    /// Runs the graph on `input` with a freshly planned arena.
    ///
    /// # Panics
    ///
    /// Panics if a classifier head appears before the last node (logits
    /// cannot feed a code-consuming op), or if a node consumes a logits
    /// tensor.
    pub fn run(&self, input: QActivation) -> GraphRun {
        let mut arena = ActivationArena::with_capacity(self.peak_code_volume(input.shape()));
        self.run_with_arena(input, &mut arena)
    }

    /// Takes the arena's reusable schedule state and initializes it: the
    /// last-use table and the tensor slots, with the graph input in slot 0.
    /// Pair with [`QGraph::end_schedule`].
    fn begin_schedule(
        &self,
        input: QActivation,
        arena: &mut ActivationArena,
    ) -> (Vec<usize>, Vec<Option<QActivation>>) {
        let mut last = mem::take(&mut arena.last_uses);
        self.last_uses_into(&mut last);
        let mut slots = mem::take(&mut arena.slots);
        slots.clear();
        slots.resize_with(self.nodes.len() + 1, || None);
        slots[0] = Some(input);
        (last, slots)
    }

    /// Tears a schedule down: extracts the terminal activation (if any),
    /// recycles every remaining live tensor and hands the reusable state
    /// back to the arena.
    fn end_schedule(
        arena: &mut ActivationArena,
        last: Vec<usize>,
        mut slots: Vec<Option<QActivation>>,
    ) -> Option<QActivation> {
        let output = slots.last_mut().and_then(|s| s.take());
        for slot in slots.iter_mut() {
            if let Some(a) = slot.take() {
                arena.recycle(a);
            }
        }
        arena.slots = slots;
        arena.last_uses = last;
        output
    }

    /// Runs the graph reusing a caller-owned arena (amortizes the working
    /// set across inferences, e.g. over a whole evaluation set).
    ///
    /// # Panics
    ///
    /// See [`QGraph::run`].
    pub fn run_with_arena(&self, input: QActivation, arena: &mut ActivationArena) -> GraphRun {
        let n = self.nodes.len();
        let (last, mut slots) = self.begin_schedule(input, arena);
        let mut layers = Vec::with_capacity(n);
        let mut logits: Option<Vec<i32>> = None;
        let mut peak_live = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                logits.is_none(),
                "classifier head must be the terminal node (violated at `{}`)",
                node.name
            );
            let mut ops = OpCounts::default();
            let (out, in_bytes, in_shape) = execute_node(node, &slots, arena, &mut ops);
            let (out_bytes, out_shape) = match &out {
                OpOutput::Act(a) => (a.byte_len(), a.shape()),
                OpOutput::Logits(l) => (4 * l.len(), node.op.output_shape(&[in_shape])),
            };
            let live_now: usize =
                slots.iter().flatten().map(|a| a.byte_len()).sum::<usize>() + out_bytes;
            peak_live = peak_live.max(live_now);
            layers.push(LayerRun {
                name: node.name.clone(),
                kind: node.op.kind(),
                choice: node.choice,
                ops,
                prepack: node.prepack_ops,
                in_bytes,
                out_bytes,
                out_shape,
            });
            match out {
                OpOutput::Act(a) => slots[i + 1] = Some(a),
                OpOutput::Logits(l) => logits = Some(l),
            }
            retire_dead(node, i, &last, &mut slots, arena);
        }
        let output = QGraph::end_schedule(arena, last, slots);
        GraphRun {
            output,
            logits,
            layers,
            peak_live_bytes: peak_live,
        }
    }

    /// The allocation-free inference path: runs a head-terminated graph
    /// writing the logits into `logits_out` (cleared in place) and
    /// accumulating the op ledger into `ops`, drawing every buffer from
    /// `arena`. After one warm-up run over a given graph, subsequent calls
    /// perform no heap allocation (asserted by the `allocation_free`
    /// integration test).
    ///
    /// # Panics
    ///
    /// Panics if the graph does not end in a classifier head, plus the
    /// conditions of [`QGraph::run`].
    pub fn infer_pooled(
        &self,
        input: QActivation,
        arena: &mut ActivationArena,
        logits_out: &mut Vec<i32>,
        ops: &mut OpCounts,
    ) {
        let (last, mut slots) = self.begin_schedule(input, arena);
        let mut have_logits = false;
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                !have_logits,
                "classifier head must be the terminal node (violated at `{}`)",
                node.name
            );
            if let AnyOp::Linear(lin) = &node.op {
                let x = expect_act(&slots, node.inputs[0], node.name());
                lin.execute_into_with(
                    node.cache.as_ref().and_then(PrepackedWeights::codes),
                    x,
                    logits_out,
                    ops,
                );
                have_logits = true;
            } else {
                let (out, _, _) = execute_node(node, &slots, arena, ops);
                match out {
                    OpOutput::Act(a) => slots[i + 1] = Some(a),
                    OpOutput::Logits(_) => unreachable!("heads are matched above"),
                }
            }
            retire_dead(node, i, &last, &mut slots, arena);
        }
        if let Some(a) = QGraph::end_schedule(arena, last, slots) {
            arena.recycle(a); // head-terminated graphs leave no activation
        }
        assert!(have_logits, "graph does not end in a classifier head");
    }

    /// Batched allocation-free inference: one walk of the graph computes a
    /// whole batch. `input` carries the batch in its shape's `n` dimension
    /// (N stacked NHWC items); every kernel sweeps all N samples against
    /// the node's prepacked weights, so per-layer dispatch, weight-panel
    /// streaming and sub-byte weight decoding are amortized across the
    /// batch, and `logits_out` receives `N · classes` values in row-major
    /// `(n, classes)` order — bit-identical to N single-sample
    /// [`QGraph::infer_pooled`] calls (asserted by the
    /// `batch_matches_single_sample_logits` proptest).
    ///
    /// Like the single-sample path, steady-state calls perform zero heap
    /// allocations once the arena buffers reached their (batch-scaled)
    /// capacities; [`QGraph::peak_ram_bytes`] and
    /// [`QGraph::peak_scratch_bytes`] price the batch dimension when given
    /// the batched input shape.
    ///
    /// # Panics
    ///
    /// See [`QGraph::infer_pooled`].
    pub fn infer_batch(
        &self,
        input: QActivation,
        arena: &mut ActivationArena,
        logits_out: &mut Vec<i32>,
        ops: &mut OpCounts,
    ) {
        self.infer_pooled(input, arena, logits_out, ops);
    }
}

fn expect_act<'s>(slots: &'s [Option<QActivation>], t: usize, consumer: &str) -> &'s QActivation {
    slots[t].as_ref().unwrap_or_else(|| {
        panic!("node `{consumer}` consumes tensor {t}, which is not a live activation")
    })
}

/// Executes one node against the live tensor slots, returning the output,
/// the summed input bytes and the first input's shape.
fn execute_node(
    node: &GraphNode,
    slots: &[Option<QActivation>],
    arena: &mut ActivationArena,
    ops: &mut OpCounts,
) -> (OpOutput, usize, Shape) {
    let cache = node.cache.as_ref();
    match *node.inputs.as_slice() {
        [a] => {
            let xa = expect_act(slots, a, node.name());
            (
                node.op
                    .execute_kernel(node.choice, cache, &[xa], arena, ops),
                xa.byte_len(),
                xa.shape(),
            )
        }
        [a, b] => {
            let xa = expect_act(slots, a, node.name());
            let xb = expect_act(slots, b, node.name());
            (
                node.op
                    .execute_kernel(node.choice, cache, &[xa, xb], arena, ops),
                xa.byte_len() + xb.byte_len(),
                xa.shape(),
            )
        }
        _ => unreachable!("arity is validated by push_node"),
    }
}

/// Validates a backend's selection against the op's supported kernels.
fn resolve_choice(
    backend: &dyn Backend,
    name: &str,
    op: &AnyOp,
    in_shapes: &[Shape],
    in_bits: &[BitWidth],
) -> KernelChoice {
    let choice = backend.select(op, in_shapes, in_bits);
    assert!(
        op.supported_kernels().contains(&choice),
        "node `{name}`: backend `{}` selected {choice}, which the op does not support",
        backend.name()
    );
    choice
}

/// Recycles every tensor whose last consumer was node `i` (including the
/// node's own output when nothing ever reads it).
fn retire_dead(
    node: &GraphNode,
    i: usize,
    last: &[usize],
    slots: &mut [Option<QActivation>],
    arena: &mut ActivationArena,
) {
    for &t in &node.inputs {
        if last[t] == i {
            if let Some(a) = slots[t].take() {
                arena.recycle(a);
            }
        }
    }
    if last[i + 1] == i {
        if let Some(a) = slots[i + 1].take() {
            arena.recycle(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QConvWeights, Requantizer, WeightOffset};
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::{ConvGeometry, Padding};

    fn identity_requant(channels: usize, bits: BitWidth) -> Requantizer {
        Requantizer::icn(
            vec![0; channels],
            vec![FixedPointMultiplier::from_real(1.0); channels],
            0,
            bits,
        )
    }

    fn pointwise(ci: usize, co: usize, wcode: u8) -> QConv2d {
        let shape = Shape::new(co, 1, 1, ci);
        let w = QConvWeights::new(
            shape,
            false,
            &vec![wcode; shape.volume()],
            BitWidth::W4,
            WeightOffset::PerLayer(0),
        );
        QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(co, BitWidth::W8),
        )
    }

    fn depthwise(c: usize, wcode: u8) -> QConv2d {
        let shape = Shape::new(c, 3, 3, 1);
        let w = QConvWeights::new(
            shape,
            true,
            &vec![wcode; shape.volume()],
            BitWidth::W4,
            WeightOffset::PerChannel(vec![0; c]),
        );
        QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(c, BitWidth::W8),
        )
    }

    fn identity_add() -> QAdd {
        QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8)
    }

    #[test]
    fn kinds_distinguish_depthwise() {
        assert_eq!(QOp::kind(&pointwise(2, 3, 1)), OpKind::Conv);
        assert_eq!(QOp::kind(&depthwise(2, 1)), OpKind::DepthwiseConv);
        assert_eq!(QAvgPool.kind(), OpKind::Pool);
        assert_eq!(QOp::kind(&identity_add()), OpKind::Add);
        assert_eq!(OpKind::DepthwiseConv.label(), "dwconv");
        assert_eq!(OpKind::Add.label(), "add");
        assert_eq!(QOp::arity(&identity_add()), 2);
        assert_eq!(QOp::arity(&pointwise(1, 1, 1)), 1);
    }

    #[test]
    fn graph_matches_manual_layer_loop() {
        // A depthwise-separable block graph must be bit-identical, op for
        // op, with the hand-rolled loop over the same layers.
        let dw = depthwise(2, 2);
        let pw = pointwise(2, 4, 1);
        let shape = Shape::feature_map(5, 5, 2);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 11) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);

        let mut graph = QGraph::new();
        graph.push("dw", dw.clone());
        graph.push("pw", pw.clone());
        graph.push("pool", QAvgPool);
        let run = graph.run(x.clone());

        let mut ops = OpCounts::default();
        let manual = QAvgPool.execute(&pw.execute(&dw.execute(&x, &mut ops), &mut ops), &mut ops);
        assert_eq!(run.output, Some(manual));
        assert_eq!(run.total_ops(), ops);
        assert_eq!(run.layers.len(), 3);
        assert_eq!(run.layers[0].kind, OpKind::DepthwiseConv);
        assert_eq!(run.layers[1].kind, OpKind::Conv);
        // The ledger decomposes: depthwise layer charges its own MACs only.
        assert_eq!(run.layers[0].ops.macs + run.layers[1].ops.macs, ops.macs);
    }

    #[test]
    fn arena_reuse_is_bit_identical_across_runs() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(3, 1));
        graph.push("pw", pointwise(3, 3, 2));
        let shape = Shape::feature_map(4, 4, 3);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 7) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
        let mut arena = ActivationArena::with_capacity(shape.volume());
        let a = graph.run_with_arena(x.clone(), &mut arena);
        let b = graph.run_with_arena(x.clone(), &mut arena);
        let c = graph.run(x);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(arena.capacity_bytes() >= shape.volume());
        assert!(arena.pooled_buffers() > 0, "dead tensors were recycled");
    }

    #[test]
    fn pooled_inference_matches_ledger_run() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(2, 1));
        graph.push("pool", QAvgPool);
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(2, 1, 1, 2),
                false,
                &[1, 0, 0, 1],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            vec![3, 4],
            None,
        );
        graph.push("fc", head);
        let shape = Shape::feature_map(4, 4, 2);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 9) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
        let run = graph.run(x.clone());
        let mut arena = ActivationArena::new();
        let mut logits = Vec::new();
        let mut ops = OpCounts::default();
        graph.infer_pooled(x, &mut arena, &mut logits, &mut ops);
        assert_eq!(Some(logits), run.logits);
        assert_eq!(ops, run.total_ops());
    }

    #[test]
    fn residual_add_joins_branches() {
        // input -> dw -> pw(a); skip: input; add(pw, input).
        let mut graph = QGraph::new();
        let dw_id = graph.push("dw", depthwise(2, 1));
        let pw_id = graph.push_node("pw", pointwise(2, 2, 1), &[dw_id]);
        let add_id = graph.push_node("res", identity_add(), &[pw_id, 0]);
        assert_eq!((dw_id, pw_id, add_id), (1, 2, 3));
        assert_eq!(graph.nodes()[2].inputs(), &[2, 0]);

        let shape = Shape::feature_map(3, 3, 2);
        let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 5) as u8).collect();
        let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
        let run = graph.run(x.clone());

        // Manual: y = pw(dw(x)) + x (identity add on the same grid).
        let mut ops = OpCounts::default();
        let branch = pointwise(2, 2, 1).execute(&depthwise(2, 1).execute(&x, &mut ops), &mut ops);
        let manual = identity_add().execute(&branch, &x, &mut ops);
        assert_eq!(run.output, Some(manual));
        assert_eq!(run.total_ops(), ops);
        assert_eq!(run.layers[2].kind, OpKind::Add);
        // The add's ledger records both branch inputs.
        assert_eq!(run.layers[2].in_bytes, 2 * shape.volume());
    }

    #[test]
    fn peak_ram_matches_manual_pair_walk() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(4, 1));
        graph.push("pw", pointwise(4, 8, 1));
        graph.push("pool", QAvgPool);
        let input = Shape::feature_map(6, 6, 4);
        // dw: 144 in + 144 out; pw: 144 in + 288 out (8 ch); pool: 288 + 8.
        assert_eq!(graph.peak_ram_bytes(input, BitWidth::W8), 144 + 288);
        // A 4-bit input halves the first pair's input tensor; the binding
        // pair here is pw (all-W8), so the peak cannot grow.
        assert!(graph.peak_ram_bytes(input, BitWidth::W4) <= 144 + 288);
        // When the first pair binds, the saving is strict.
        let mut dw_only = QGraph::new();
        dw_only.push("dw", depthwise(4, 1));
        assert_eq!(dw_only.peak_ram_bytes(input, BitWidth::W8), 144 + 144);
        assert_eq!(dw_only.peak_ram_bytes(input, BitWidth::W4), 72 + 144);
    }

    #[test]
    fn diamond_graph_prices_the_extra_live_tensor() {
        // in -> A; A -> B; A -> C; add(B, C). All tensors 4x4x2 = 32 B.
        let mut graph = QGraph::new();
        let a = graph.push("a", depthwise(2, 1));
        let b = graph.push_node("b", pointwise(2, 2, 1), &[a]);
        let c = graph.push_node("c", pointwise(2, 2, 2), &[a]);
        graph.push_node("add", identity_add(), &[b, c]);
        let input = Shape::feature_map(4, 4, 2);
        // While C runs, A (its input), B (pending) and C's output are all
        // live: 3 × 32 = 96 — beyond any double-buffered pair.
        assert_eq!(graph.peak_ram_bytes(input, BitWidth::W8), 96);

        // The measured high-water mark of a real run agrees exactly.
        let codes: Vec<u8> = (0..input.volume()).map(|i| (i % 4) as u8).collect();
        let x = QActivation::from_codes(input, &codes, BitWidth::W8, 0);
        let run = graph.run(x);
        assert_eq!(run.peak_live_bytes, 96);
    }

    #[test]
    fn chain_measured_peak_matches_planner() {
        let mut graph = QGraph::new();
        graph.push("dw", depthwise(4, 1));
        graph.push("pw", pointwise(4, 8, 1));
        graph.push("pool", QAvgPool);
        let input = Shape::feature_map(6, 6, 4);
        let codes: Vec<u8> = (0..input.volume()).map(|i| (i % 13) as u8).collect();
        let x = QActivation::from_codes(input, &codes, BitWidth::W8, 0);
        let run = graph.run(x);
        assert_eq!(
            run.peak_live_bytes,
            graph.peak_ram_bytes(input, BitWidth::W8)
        );
    }

    #[test]
    fn flash_bytes_sums_nodes() {
        let dw = depthwise(2, 1);
        let pw = pointwise(2, 3, 1);
        let mut graph = QGraph::new();
        graph.push("dw", dw.clone());
        graph.push("pw", pw.clone());
        graph.push("pool", QAvgPool);
        assert_eq!(
            graph.flash_bytes(),
            QOp::flash_bytes(&dw) + QOp::flash_bytes(&pw)
        );
        assert!(graph.flash_bytes() > 0);
        // Adds contribute their multiplier/zero-point block.
        graph.push_node("res", identity_add(), &[3, 3]);
        assert_eq!(
            graph.flash_bytes(),
            QOp::flash_bytes(&dw) + QOp::flash_bytes(&pw) + 13
        );
    }

    #[test]
    fn scratch_follows_the_selected_kernel() {
        let dense = QConv2d::new(
            QConvWeights::new(
                Shape::new(2, 3, 3, 3),
                false,
                &[0; 54],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(2, BitWidth::W8),
        );
        let input = Shape::feature_map(8, 8, 3);
        let w8 = [BitWidth::W8];
        // The direct loop runs in place; only the GEMM lowerings expand.
        assert_eq!(
            QOp::scratch_bytes(&dense, KernelChoice::DirectConv, &[input], &w8),
            0
        );
        assert_eq!(
            QOp::scratch_bytes(&dense, KernelChoice::Im2colGemm, &[input], &w8),
            8 * 8 * 9 * 3
        );
        assert_eq!(
            QOp::scratch_bytes(&dense, KernelChoice::BlockedGemm, &[input], &w8),
            8 * 8 * 9 * 3
        );
        // The blocked kernel's pointwise identity path borrows an 8-bit
        // input zero-copy (no scratch); the naive GEMM still expands, and
        // a sub-byte input needs the linear unpack buffer.
        let pw = pointwise(3, 4, 1);
        assert_eq!(
            QOp::scratch_bytes(&pw, KernelChoice::BlockedGemm, &[input], &w8),
            0
        );
        assert_eq!(
            QOp::scratch_bytes(&pw, KernelChoice::Im2colGemm, &[input], &w8),
            8 * 8 * 3
        );
        assert_eq!(
            QOp::scratch_bytes(&pw, KernelChoice::BlockedGemm, &[input], &[BitWidth::W4]),
            8 * 8 * 3
        );
        // A reference graph prices no scratch; a tiled graph prices exactly
        // the GEMM nodes' expansions.
        let mut graph = QGraph::with_input(input, BitWidth::W8);
        graph.push("dw", depthwise(3, 1));
        graph.push("c", dense.clone());
        assert_eq!(graph.peak_scratch_bytes(input, BitWidth::W8), 0);
        graph.select_kernels(&crate::TiledBackend::default());
        assert_eq!(
            graph.kernel_choices(),
            vec![KernelChoice::DirectConv, KernelChoice::BlockedGemm]
        );
        assert_eq!(graph.peak_scratch_bytes(input, BitWidth::W8), 8 * 8 * 9 * 3);
    }

    #[test]
    fn backend_selection_is_bit_identical_across_kernels() {
        // The same graph, selected three ways, produces identical runs
        // apart from the recorded choices.
        let input = Shape::feature_map(6, 6, 3);
        let build = || {
            let mut g = QGraph::with_input(input, BitWidth::W8);
            g.push("dw", depthwise(3, 1));
            g.push("pw", pointwise(3, 8, 2));
            g.push("pool", QAvgPool);
            g
        };
        let reference = build();
        let mut tiled = build();
        tiled.select_kernels(&crate::TiledBackend::default());
        assert_eq!(
            tiled.kernel_choices(),
            vec![
                KernelChoice::DirectConv,
                KernelChoice::BlockedGemm,
                KernelChoice::DirectConv
            ]
        );
        let codes: Vec<u8> = (0..input.volume()).map(|i| (i % 17) as u8).collect();
        let x = QActivation::from_codes(input, &codes, BitWidth::W8, 2);
        let a = reference.run(x.clone());
        let b = tiled.run(x);
        assert_eq!(a.output, b.output);
        assert_eq!(a.peak_live_bytes, b.peak_live_bytes);
        assert_eq!(b.layers[1].choice, KernelChoice::BlockedGemm);
        assert_eq!(a.layers[1].choice, KernelChoice::DirectConv);
        // Pointwise convs have no padded taps, so the MAC and requant
        // counts agree between the direct and GEMM dataflows (the load
        // ledger legitimately differs: im2col touches each input element
        // once, the direct loop once per MAC).
        assert_eq!(a.layers[1].ops.macs, b.layers[1].ops.macs);
        assert_eq!(a.layers[1].ops.requants, b.layers[1].ops.requants);
    }

    #[test]
    fn push_with_selects_at_build_time() {
        let input = Shape::feature_map(5, 5, 2);
        let mut g = QGraph::with_input(input, BitWidth::W8);
        let backend = crate::TiledBackend::default();
        g.push_with("dw", depthwise(2, 1), &backend);
        let pw = g.push_with("pw", pointwise(2, 4, 1), &backend);
        g.push_node_with("res", identity_add(), &[pw, pw], &backend);
        assert_eq!(
            g.kernel_choices(),
            vec![
                KernelChoice::DirectConv,
                KernelChoice::BlockedGemm,
                KernelChoice::DirectConv
            ]
        );
        assert_eq!(g.input_decl(), Some((input, BitWidth::W8)));
        assert_eq!(g.nodes()[1].choice(), KernelChoice::BlockedGemm);
    }

    #[test]
    #[should_panic(expected = "declared graph input")]
    fn push_with_requires_declared_input() {
        let mut g = QGraph::new();
        g.push_with("pw", pointwise(2, 4, 1), &crate::TiledBackend::default());
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_backend_choice_is_rejected() {
        struct GemmEverywhere;
        impl crate::Backend for GemmEverywhere {
            fn name(&self) -> &'static str {
                "gemm-everywhere"
            }
            fn select(
                &self,
                _op: &AnyOp,
                _inputs: &[Shape],
                _in_bits: &[BitWidth],
            ) -> KernelChoice {
                KernelChoice::Im2colGemm
            }
        }
        let input = Shape::feature_map(5, 5, 2);
        let mut g = QGraph::with_input(input, BitWidth::W8);
        // Depthwise has no GEMM lowering: the selection must be rejected.
        g.push_with("dw", depthwise(2, 1), &GemmEverywhere);
    }

    #[test]
    #[should_panic(expected = "terminal node")]
    fn head_must_be_terminal() {
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(2, 1, 1, 3),
                false,
                &[1; 6],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            vec![0, 0],
            None,
        );
        let mut graph = QGraph::new();
        graph.push("fc", head);
        graph.push("pool", QAvgPool);
        let x = QActivation::from_codes(Shape::new(1, 1, 1, 3), &[1, 2, 3], BitWidth::W8, 0);
        let _ = graph.run(x);
    }

    #[test]
    #[should_panic(expected = "not defined yet")]
    fn forward_references_are_rejected() {
        let mut graph = QGraph::new();
        graph.push_node("dw", depthwise(2, 1), &[1]);
    }

    #[test]
    #[should_panic(expected = "arity-2")]
    fn add_arity_is_enforced() {
        let mut graph = QGraph::new();
        graph.push_node("res", identity_add(), &[0]);
    }

    #[test]
    fn head_terminated_graph_yields_logits() {
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(2, 1, 1, 2),
                false,
                &[1, 0, 0, 1],
                BitWidth::W8,
                WeightOffset::PerLayer(0),
            ),
            vec![10, 20],
            None,
        );
        let mut graph = QGraph::new();
        graph.push("pool", QAvgPool);
        graph.push("fc", head.clone());
        let shape = Shape::feature_map(2, 2, 2);
        let x = QActivation::from_codes(shape, &[4, 8, 4, 8, 4, 8, 4, 8], BitWidth::W8, 0);
        let run = graph.run(x.clone());
        // Pool → [4, 8]; identity weights + bias.
        assert_eq!(run.clone().into_logits(), vec![14, 28]);
        assert!(run.output.is_none());
        // Ledger bytes: head output is 4 bytes per class.
        assert_eq!(run.layers.last().unwrap().out_bytes, 8);
        assert_eq!(run.layers.last().unwrap().kind, OpKind::Linear);
        // Head accounting hooks.
        assert_eq!(
            head.output_bytes(&[Shape::new(1, 1, 1, 2)], &[BitWidth::W8]),
            8
        );
        assert_eq!(
            QOp::output_shape(&head, &[Shape::new(1, 1, 1, 2)]),
            Shape::new(1, 1, 1, 2)
        );
    }
}
