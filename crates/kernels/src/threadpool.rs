//! A reusable broadcast worker pool for intra-walk parallelism.
//!
//! One [`QGraph`](crate::QGraph) walk executes nodes **serially** (the
//! DAG's dependency order and the arena's in-place recycling demand it),
//! but the work *inside* a node — the im2col row blocks of a GEMM, the
//! output-channel blocks of a direct/depthwise convolution — splits into
//! disjoint output ranges with no cross-range dataflow. This pool
//! broadcasts one such split to a fixed team of workers and joins them
//! before the node returns, so the walk stays sequentially consistent
//! while each node uses every core.
//!
//! Design constraints, in order:
//!
//! * **bit-identity** — workers produce disjoint output ranges computed
//!   with the exact serial arithmetic; the merge is a concatenation, so
//!   any worker count (including 1) yields byte-identical codes;
//! * **allocation-free steady state** — the pool is created once (per
//!   [`IntNetwork::set_threads`](../mixq_core) evaluation call) and
//!   reused for every node of every walk; a broadcast takes a lock and
//!   two condvar signals but never touches the heap, preserving the
//!   `tests/alloc_free.rs` guarantee with `threads ≥ 2`;
//! * **no new dependencies** — plain `std` `Mutex`/`Condvar` epoch
//!   signalling instead of a crossbeam/rayon import.
//!
//! The pool caps at [`MAX_POOL_THREADS`] so kernel callers can keep their
//! partition tables in fixed stack arrays.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Upper bound on pool width (callers size stack-allocated partition
/// tables as `[usize; MAX_POOL_THREADS + 1]`).
pub const MAX_POOL_THREADS: usize = 32;

/// A type-erased pointer to the broadcast closure. The erased lifetime is
/// sound because [`ThreadPool::broadcast`] blocks until every worker has
/// finished running the closure before returning (and therefore before
/// the closure can be dropped).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&` calls from many threads are
// allowed), and the pointer only crosses threads while `broadcast` keeps
// the underlying closure alive and borrowed.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per broadcast; workers run one job per observed bump.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    remaining: usize,
    /// First panic payload caught from a worker's job this epoch; the
    /// broadcaster re-raises it after the join (allocated by the panic
    /// machinery itself, so the non-panicking path stays heap-free).
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new epoch or shutdown.
    start: Condvar,
    /// Signals the broadcaster: `remaining` hit zero.
    done: Condvar,
    /// Total broadcast-job panics ever caught (any worker, any epoch) —
    /// the observability hook serving-layer supervisors poll to tell a
    /// healthy pool from one that keeps eating poisoned jobs.
    panics: AtomicU64,
}

/// The reusable worker team; see the [module docs](self).
///
/// `ThreadPool::new(n)` spawns `n − 1` OS threads — the broadcasting
/// thread itself always participates as worker 0, so `n = 1` is the
/// serial case with zero threads and zero synchronization.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool of `threads` total workers (including the caller).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_POOL_THREADS`], or if the
    /// OS refuses to spawn a thread.
    pub fn new(threads: usize) -> ThreadPool {
        assert!(
            (1..=MAX_POOL_THREADS).contains(&threads),
            "thread count must be in 1..={MAX_POOL_THREADS}"
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panic_payload: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            panics: AtomicU64::new(0),
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mixq-pool-{worker}"))
                    .spawn(move || worker_loop(worker, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total worker count, including the broadcasting thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total broadcast-job panics this pool has caught and re-raised so
    /// far, across all workers (the broadcasting thread included). The
    /// pool survives every one of them — this counter lets a serving
    /// supervisor report how often its walks hit poisoned work.
    pub fn panics_observed(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Runs `f(worker)` once per worker (`0..threads()`), the caller
    /// executing worker 0, and returns after **all** workers finished.
    /// Allocation-free. Must not be called reentrantly from inside a
    /// broadcast closure (the pool has a single job slot).
    ///
    /// # Panics
    ///
    /// If `f` panics on any worker, the pool still joins every worker
    /// (so the closure borrow never dangles and the pool stays usable),
    /// then re-raises the panic on the broadcasting thread — worker 0's
    /// own payload first, else the first one a pool thread caught.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            f(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            assert!(st.remaining == 0 && st.job.is_none(), "nested broadcast");
            // SAFETY: erasing the borrow's lifetime into a raw pointer is
            // sound because this function joins all workers (below) before
            // returning — even when `f` panics here or on a worker — so
            // the pointee outlives every dereference.
            st.job = Some(Job(unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
            }));
            st.epoch += 1;
            st.remaining = self.threads - 1;
            self.shared.start.notify_all();
        }
        let local = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let worker_payload = {
            let mut st = self.shared.state.lock().unwrap();
            while st.remaining > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            st.panic_payload.take()
        };
        if let Err(payload) = local {
            self.shared.panics.fetch_add(1, Ordering::Relaxed);
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Splits `buf` at `bounds` (a monotone ascending split table,
    /// `bounds[0] == 0`, `bounds.last() == buf.len()`, one range per
    /// part) and runs `f(part, &mut buf[bounds[part]..bounds[part + 1]])`
    /// across the pool — the safe facade kernels use to let each worker
    /// write its own disjoint output range. Parts may number fewer than
    /// `threads()`; surplus workers idle. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a monotone cover of `buf` or has more
    /// parts than workers.
    pub fn broadcast_slices<T, F>(&self, buf: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let parts = bounds.len().checked_sub(1).expect("at least one bound");
        assert!(parts <= self.threads, "more parts than workers");
        assert!(bounds.windows(2).all(|p| p[0] <= p[1]), "bounds ascend");
        assert_eq!(bounds[0], 0, "bounds start at 0");
        assert_eq!(bounds[parts], buf.len(), "bounds cover the buffer");
        let base = buf.as_mut_ptr() as usize;
        self.broadcast(&|worker: usize| {
            if worker < parts {
                let (lo, hi) = (bounds[worker], bounds[worker + 1]);
                // SAFETY: the validated bounds give every part a disjoint
                // in-range sub-slice of `buf`, whose exclusive borrow is
                // held (unused) by this call for the whole broadcast.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(lo), hi - lo) };
                f(worker, chunk);
            }
        });
    }

    /// [`ThreadPool::broadcast_slices`] over **two** buffers with their own
    /// split tables (same part count): each part receives its disjoint
    /// range of both — the shape the blocked GEMM needs, where a worker
    /// owns an output-code range *and* a private accumulator-scratch
    /// slice. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if either split table is not a monotone cover of its buffer,
    /// the tables disagree on the part count, or parts exceed workers.
    pub fn broadcast_slices2<T, U, F>(
        &self,
        buf_a: &mut [T],
        bounds_a: &[usize],
        buf_b: &mut [U],
        bounds_b: &[usize],
        f: F,
    ) where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        let parts = bounds_a.len().checked_sub(1).expect("at least one bound");
        assert_eq!(bounds_b.len(), parts + 1, "split tables agree on parts");
        assert!(parts <= self.threads, "more parts than workers");
        for (bounds, len) in [(bounds_a, buf_a.len()), (bounds_b, buf_b.len())] {
            assert!(bounds.windows(2).all(|p| p[0] <= p[1]), "bounds ascend");
            assert_eq!(bounds[0], 0, "bounds start at 0");
            assert_eq!(bounds[parts], len, "bounds cover the buffer");
        }
        let base_a = buf_a.as_mut_ptr() as usize;
        let base_b = buf_b.as_mut_ptr() as usize;
        self.broadcast(&|worker: usize| {
            if worker < parts {
                let (alo, ahi) = (bounds_a[worker], bounds_a[worker + 1]);
                let (blo, bhi) = (bounds_b[worker], bounds_b[worker + 1]);
                // SAFETY: as in `broadcast_slices` — both validated split
                // tables give every part disjoint in-range sub-slices of
                // buffers whose exclusive borrows this call holds (unused)
                // for the whole broadcast.
                let (chunk_a, chunk_b) = unsafe {
                    (
                        std::slice::from_raw_parts_mut((base_a as *mut T).add(alo), ahi - alo),
                        std::slice::from_raw_parts_mut((base_b as *mut U).add(blo), bhi - blo),
                    )
                };
                f(worker, chunk_a, chunk_b);
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            while !st.shutdown && st.epoch == seen_epoch {
                st = shared.start.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.job.expect("job set for new epoch")
        };
        // SAFETY: the broadcaster keeps the closure alive and borrowed
        // until `remaining` reaches zero, which happens strictly after
        // this call returns. A panicking job is caught so `remaining`
        // always reaches zero — otherwise the broadcaster would block on
        // `done` forever; the payload is re-raised on its thread instead.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(worker) }));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            st.panic_payload.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// Fills `bounds[..=parts]` with an even contiguous partition of `n`
/// items over at most `max_parts` parts (each part gets at least one item
/// unless `n == 0`) and returns the part count actually used — the shared
/// split rule of every parallel kernel path, also exported so benches can
/// golden the exact per-thread ranges.
///
/// # Panics
///
/// Panics if `max_parts` is 0 or `bounds` is shorter than `parts + 1`.
pub fn partition_bounds(n: usize, max_parts: usize, bounds: &mut [usize]) -> usize {
    assert!(max_parts > 0, "at least one part");
    let parts = max_parts.min(n).max(1);
    // The first `n % parts` parts take one extra item, so sizes differ by
    // at most one and no part is empty (for `n > 0`).
    let (chunk, rem) = (n / parts, n % parts);
    bounds[0] = 0;
    for i in 0..parts {
        bounds[i + 1] = bounds[i] + chunk + usize::from(i < rem);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = ThreadPool::new(4);
        for _ in 0..100 {
            let hits = [const { AtomicUsize::new(0) }; 4];
            pool.broadcast(&|w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn single_thread_pool_is_inline() {
        let pool = ThreadPool::new(1);
        let mut buf = vec![0u32; 10];
        pool.broadcast_slices(&mut buf, &[0, 10], |w, chunk| {
            assert_eq!(w, 0);
            for v in chunk {
                *v = 7;
            }
        });
        assert_eq!(buf, vec![7; 10]);
    }

    #[test]
    fn broadcast_slices_parts_are_disjoint_and_cover() {
        let pool = ThreadPool::new(3);
        let mut buf = vec![0usize; 31];
        let mut bounds = [0usize; MAX_POOL_THREADS + 1];
        let parts = partition_bounds(buf.len(), pool.threads(), &mut bounds);
        pool.broadcast_slices(&mut buf, &bounds[..=parts], |w, chunk| {
            for v in chunk {
                *v = w + 1;
            }
        });
        // Every element written exactly once, in ascending part order.
        let mut expect = Vec::new();
        for w in 0..parts {
            expect.extend(std::iter::repeat(w + 1).take(bounds[w + 1] - bounds[w]));
        }
        assert_eq!(buf, expect);
    }

    #[test]
    fn partition_bounds_covers_edge_cases() {
        let mut b = [0usize; MAX_POOL_THREADS + 1];
        assert_eq!(partition_bounds(0, 4, &mut b), 1);
        assert_eq!(&b[..2], &[0, 0]);
        assert_eq!(partition_bounds(3, 8, &mut b), 3);
        assert_eq!(&b[..4], &[0, 1, 2, 3]);
        assert_eq!(partition_bounds(10, 3, &mut b), 3);
        assert_eq!(&b[..4], &[0, 4, 7, 10]);
        assert_eq!(partition_bounds(10, 1, &mut b), 1);
        assert_eq!(&b[..2], &[0, 10]);
        // ceil-chunking would exhaust n early here ([0, 2, 4, 5, 5]);
        // remainder distribution keeps every part non-empty.
        assert_eq!(partition_bounds(5, 4, &mut b), 4);
        assert_eq!(&b[..5], &[0, 2, 3, 4, 5]);
    }

    #[test]
    fn every_part_nonempty_unless_n_is_zero() {
        let mut b = [0usize; MAX_POOL_THREADS + 1];
        for n in 1..200 {
            for max_parts in 1..=MAX_POOL_THREADS {
                let parts = partition_bounds(n, max_parts, &mut b);
                assert_eq!(b[0], 0);
                assert_eq!(b[parts], n);
                assert!(
                    b[..=parts].windows(2).all(|p| p[0] < p[1]),
                    "empty part: n={n} max_parts={max_parts} bounds={:?}",
                    &b[..=parts]
                );
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        // A job that panics on a pool thread (worker 2) must neither hang
        // the broadcast nor poison the pool for later jobs.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 2 {
                    panic!("boom on worker {w}");
                }
            });
        }));
        let payload = caught.expect_err("worker panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom on worker 2"), "payload: {msg}");
        assert_eq!(pool.panics_observed(), 1, "caught panic is counted");
        let counter = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_is_reusable_across_distinct_jobs() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        pool.broadcast(&|_| {
            counter.fetch_add(10, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 22);
    }
}
