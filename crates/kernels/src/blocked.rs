//! The register-blocked, cache-tiled GEMM convolution path — the fast
//! dense kernel behind
//! [`KernelChoice::BlockedGemm`](crate::KernelChoice::BlockedGemm).
//!
//! Same im2col dataflow as [`QConv2d::execute_gemm`], restructured the way
//! a production GEMM inner kernel is:
//!
//! * **double zero-point hoisting** — `Σ (X − Zx)(W − Zw)` expands to
//!   `Σ X·W − Zw·Σ X − Zx·Σ W + k·Zx·Zw`, with `Σ X` computed once per
//!   matrix row and `Σ W` once per output channel, so the inner loop is a
//!   bare **u8 × u8** multiply–accumulate with no per-element offset
//!   arithmetic (exact in integers: the expansion is algebraic identity,
//!   making the path **bit-identical** to the direct kernel);
//! * **register blocking** — a 2 × 4 microtile (two im2col rows × four
//!   output channels, eight live accumulators) amortizes every operand
//!   load across four MACs instead of one, with the four channels' weight
//!   codes packed into one interleaved panel so the inner loop streams
//!   contiguous bytes (for 8-bit weights the panel is built straight from
//!   the packed flash bytes — their layout is already the GEMM panel
//!   order);
//! * **chunked narrow accumulation** — u8×u8 products are ≤ `255²`, so
//!   8192-element runs accumulate in `i32` and flush into the `i64`
//!   totals between runs, keeping the hot loop in vectorizable 32-bit
//!   arithmetic;
//! * **pointwise identity fast path** — for 1×1 stride-1 convolutions the
//!   im2col matrix *is* the input in NHWC order, so the expansion is a
//!   borrow of the packed bytes (8-bit input) or one linear unpack
//!   (sub-byte) instead of a per-element gather.
//!
//! The abstract [`OpCounts`] ledger charged is identical to the
//! [`QConv2d::execute_gemm`] path — the blocked kernel reorganizes the
//! dataflow, not the mathematical work; the per-choice rates of the
//! Cortex-M7 cycle model express the dataflow difference.

use mixq_tensor::Shape;

use crate::{OpCounts, QActivation, QConv2d};

/// Output channels per register tile.
const NR: usize = 4;

/// Elements accumulated in `i32` before flushing to `i64`: u8×u8 products
/// are ≤ `255² < 2^16`, so 8192 of them stay below `2^29` — safely inside
/// `i32`.
const CHUNK: usize = 8192;

/// The prepacked operand of the blocked GEMM: the interleaved NR-channel
/// u8 weight panels plus the per-channel hoisted zero-point terms, built
/// **once** from a layer's packed weights instead of on every call.
///
/// The paper's deployment target is steady-state inference over immutable
/// flash-resident weights, so — following the prepacked-operand design of
/// production int8 GEMMs (gemmlowp's `PackedSideBlock`, CMSIS-NN's
/// reordered kernel weights) — the graph executor builds this artifact at
/// kernel-selection time, stores it on the node, and every inference (and
/// every sample of a batch) streams it directly. The per-call `panels`
/// allocation, the interleave loop and the `Σ W` recomputation of the
/// PR-4 kernel all disappear from the hot path.
///
/// Accounting: the artifact is a *read-only* copy of the weights in the
/// panel order the microkernel wants. A deployment stores it in flash next
/// to the packed codes (or builds it into RAM once at boot); it is **not**
/// part of the Eq. 7 activation live set, and [`PackedPanels::bytes`]
/// reports its footprint separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPanels {
    /// Interleaved full NR-channel blocks: `panels[(cb·k + col)·NR + j]`
    /// holds channel `cb·NR + j`'s code for im2col column `col`.
    panels: Vec<u8>,
    /// Remainder channels (`c_o mod NR`), row-major.
    tail: Vec<u8>,
    /// Per-channel `Σ W` over the k codes.
    sumw: Vec<i64>,
    /// Per-channel weight zero-points `Zw`.
    zw: Vec<i64>,
    /// Per-channel `Σ W − k·Zw`: the hoisted correction is
    /// `Zx · base[c]`, so no per-call correction vector is needed.
    base: Vec<i64>,
    /// Patch length `k_h·k_w·c_i` the panels were built for.
    k: usize,
}

impl PackedPanels {
    /// Patch length `k_h·k_w·c_i` (GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels covered.
    pub fn out_channels(&self) -> usize {
        self.sumw.len()
    }

    /// Per-channel `Σ W` (feeds the hoisted `Zx·Σ W − k·Zx·Zw` term).
    pub fn sumw(&self) -> &[i64] {
        &self.sumw
    }

    /// Read-only footprint of the artifact in bytes: the interleaved code
    /// panels plus the three per-channel `i64` tables. Reported separately
    /// from the Table-1 flash model (which prices the packed codes the
    /// panels were derived from) and from Eq. 7 RAM (activations only).
    pub fn bytes(&self) -> usize {
        self.panels.len()
            + self.tail.len()
            + 8 * (self.sumw.len() + self.zw.len() + self.base.len())
    }
}

impl QConv2d {
    /// Builds the [`PackedPanels`] prepack artifact for this layer —
    /// exactly the interleave + `Σ W` work the PR-4 kernel performed per
    /// call, hoisted to build time. Sub-byte weights are decoded once here.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn prepack_panels(&self) -> PackedPanels {
        let weights = self.weights();
        assert!(
            !weights.is_depthwise(),
            "im2col path applies to standard convolutions"
        );
        let k = self.geometry().kernel_area() * weights.in_channels();
        let co_n = weights.out_channels();
        let owned_w: Vec<u8>;
        let wcodes: &[u8] = if weights.needs_unpack() {
            owned_w = weights.codes();
            &owned_w
        } else {
            weights.as_bytes()
        };
        let full = co_n / NR * NR;
        let mut panels = vec![0u8; full * k];
        let mut tail = vec![0u8; (co_n - full) * k];
        let mut sumw = vec![0i64; co_n];
        for co in 0..co_n {
            let wrow = &wcodes[co * k..co * k + k];
            let mut sum = 0i64;
            if co < full {
                let base = (co / NR) * k * NR + co % NR;
                for (col, &c) in wrow.iter().enumerate() {
                    panels[base + col * NR] = c;
                    sum += c as i64;
                }
            } else {
                tail[(co - full) * k..(co - full) * k + k].copy_from_slice(wrow);
                sum = wrow.iter().map(|&c| c as i64).sum();
            }
            sumw[co] = sum;
        }
        let zw: Vec<i64> = (0..co_n).map(|co| weights.offset().at(co) as i64).collect();
        let base: Vec<i64> = (0..co_n).map(|co| sumw[co] - k as i64 * zw[co]).collect();
        PackedPanels {
            panels,
            tail,
            sumw,
            zw,
            base,
            k,
        }
    }
    /// Whether the blocked kernel would borrow the input's packed storage
    /// **zero-copy** instead of materializing an im2col (or linear-unpack)
    /// scratch buffer: a standard 1×1 stride-1 convolution over an 8-bit
    /// input, whose NHWC bytes already *are* the GEMM matrix. The scratch
    /// model ([`QOp::scratch_bytes`](crate::QOp::scratch_bytes)) and the
    /// [`TiledBackend`](crate::TiledBackend)'s selection cost share this
    /// predicate so they price exactly what the kernel does.
    pub fn blocked_borrows_input(&self, in_bits: mixq_quant::BitWidth) -> bool {
        !self.weights().is_depthwise()
            && self.geometry().kernel_area() == 1
            && self.geometry().stride == 1
            && in_bits == mixq_quant::BitWidth::W8
    }

    /// Runs the layer through the register-blocked GEMM path.
    /// Bit-identical to [`QConv2d::execute`] and [`QConv2d::execute_gemm`];
    /// see the [module docs](self) for the dataflow.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_blocked(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        let mut out_codes = Vec::new();
        let out_shape = self.execute_blocked_codes(x, &mut out_codes, ops);
        QActivation::from_codes(
            out_shape,
            &out_codes,
            self.requant().out_bits(),
            self.requant().zero_point().clamp(0, 255) as u8,
        )
    }

    /// The codes-only core of [`QConv2d::execute_blocked`]: writes the
    /// unpacked output codes into `out_codes` (cleared and resized in
    /// place) and returns the output shape. The weight panel is built per
    /// call — the one-shot fallback for callers without a prepack cache;
    /// the graph executor dispatches
    /// [`KernelChoice::BlockedGemm`](crate::KernelChoice::BlockedGemm)
    /// nodes through [`QConv2d::execute_blocked_prepacked`] instead.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_blocked_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let panels = self.prepack_panels();
        self.execute_blocked_prepacked(&panels, x, &mut Vec::new(), out_codes, ops)
    }

    /// Runs the layer through the blocked GEMM against a prepacked weight
    /// panel built once by [`QConv2d::prepack_panels`], drawing the im2col
    /// (or sub-byte linear-unpack) expansion from `data_scratch` (cleared
    /// and resized in place). Bit-identical — output codes **and** abstract
    /// [`OpCounts`] ledger — to the per-call-packing
    /// [`QConv2d::execute_blocked_codes`]; the hot path just stops
    /// rebuilding the panel, the `Σ W` sums and the hoisted zero-point
    /// tables on every call, and performs **zero heap allocations** once
    /// the scratch buffers reached their steady capacity.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers, on an input channel mismatch, or if the
    /// panels were built for a different patch length or channel count.
    pub fn execute_blocked_prepacked(
        &self,
        panels: &PackedPanels,
        x: &QActivation,
        data_scratch: &mut Vec<u8>,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        assert!(
            !self.weights().is_depthwise(),
            "im2col path applies to standard convolutions"
        );
        let in_shape = x.shape();
        assert_eq!(in_shape.c, self.weights().in_channels(), "input channels");
        let out_shape = self.output_shape(in_shape);
        let weights = self.weights();
        let g = self.geometry();
        let k = g.kernel_area() * in_shape.c;
        let rows = out_shape.pixels() * out_shape.n;
        let zx = x.zero_point() as i64;
        let per_channel = weights.offset().is_per_channel();
        let w_unpack = weights.needs_unpack() as u64;
        let co_n = weights.out_channels();
        assert_eq!(panels.k, k, "panels built for a different patch length");
        assert_eq!(
            panels.sumw.len(),
            co_n,
            "panels built for a different channel count"
        );

        // The row-major `rows × k` input matrix. For 1×1 stride-1 layers
        // the im2col expansion is the identity: the NHWC codes are already
        // the matrix, so an 8-bit input is borrowed straight from its
        // packed storage and a sub-byte one linearly unpacked — no
        // per-element gather (same ledger charges as the gather).
        let borrowed: bool = g.kernel_area() == 1 && g.stride == 1 && !x.needs_unpack();
        let data: &[u8] = if borrowed {
            ops.act_loads += in_shape.volume() as u64;
            x.as_bytes()
        } else if g.kernel_area() == 1 && g.stride == 1 {
            let loads = in_shape.volume() as u64;
            ops.act_loads += loads;
            ops.unpacks += loads;
            x.codes_into(data_scratch);
            data_scratch
        } else {
            self.im2col_into(x, data_scratch, ops);
            data_scratch
        };
        debug_assert_eq!(data.len(), rows * k);

        // Per-channel hoisted terms: acc = Σ X·W − Zw·Σ X − Zx·(Σ W −
        // k·Zw), the exact expansion of Σ (X − Zx)(W − Zw). `Σ W − k·Zw`
        // is the prepacked `base` table, so the input zero-point is the
        // only per-call ingredient.
        let zw = &panels.zw;
        let wbase = &panels.base;

        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let requant = self.requant();
        let mut store = |r: usize, co: usize, acc: i64, ops: &mut OpCounts| {
            out_codes[r * co_n + co] =
                requant.apply(co, acc, &mut ops.requants, &mut ops.threshold_cmps);
        };

        // 2×NR register microtile over (rows × output channels): pure
        // u8×u8 dot products in i32, flushed to i64 every CHUNK elements.
        let full = co_n / NR * NR;
        let mut r = 0usize;
        while r < rows {
            let pair = r + 1 < rows;
            let x0 = &data[r * k..r * k + k];
            let x1 = if pair {
                &data[(r + 1) * k..(r + 1) * k + k]
            } else {
                x0
            };
            let sx0: i64 = x0.iter().map(|&v| v as i64).sum();
            let sx1: i64 = if pair {
                x1.iter().map(|&v| v as i64).sum()
            } else {
                0
            };
            for cb in 0..full / NR {
                let panel = &panels.panels[cb * k * NR..(cb + 1) * k * NR];
                let mut acc = [[0i64; NR]; 2];
                for ((xc0, xc1), wp) in x0
                    .chunks(CHUNK)
                    .zip(x1.chunks(CHUNK))
                    .zip(panel.chunks(CHUNK * NR))
                {
                    let mut s = [[0i32; NR]; 2];
                    for ((&xa, &xb), w) in xc0.iter().zip(xc1).zip(wp.chunks_exact(NR)) {
                        let xa = xa as i32;
                        let xb = xb as i32;
                        for j in 0..NR {
                            s[0][j] += xa * w[j] as i32;
                            s[1][j] += xb * w[j] as i32;
                        }
                    }
                    for j in 0..NR {
                        acc[0][j] += s[0][j] as i64;
                        acc[1][j] += s[1][j] as i64;
                    }
                }
                let [acc0, acc1] = acc;
                for (j, (&a0, &a1)) in acc0.iter().zip(&acc1).enumerate() {
                    let co = cb * NR + j;
                    store(r, co, a0 - zw[co] * sx0 - zx * wbase[co], ops);
                    if pair {
                        store(r + 1, co, a1 - zw[co] * sx1 - zx * wbase[co], ops);
                    }
                }
            }
            // Channel remainder: dual-row dot products, same chunking.
            for co in full..co_n {
                let wrow = &panels.tail[(co - full) * k..(co - full) * k + k];
                let mut acc = [0i64; 2];
                for ((xc0, xc1), wc) in x0
                    .chunks(CHUNK)
                    .zip(x1.chunks(CHUNK))
                    .zip(wrow.chunks(CHUNK))
                {
                    let mut s = [0i32; 2];
                    for ((&xa, &xb), &w) in xc0.iter().zip(xc1).zip(wc) {
                        s[0] += xa as i32 * w as i32;
                        s[1] += xb as i32 * w as i32;
                    }
                    acc[0] += s[0] as i64;
                    acc[1] += s[1] as i64;
                }
                store(r, co, acc[0] - zw[co] * sx0 - zx * wbase[co], ops);
                if pair {
                    store(r + 1, co, acc[1] - zw[co] * sx1 - zx * wbase[co], ops);
                }
            }
            r += if pair { 2 } else { 1 };
        }

        // Same abstract ledger as the naive GEMM path (identical
        // mathematical work; only the dataflow differs).
        let macs = (rows * k * co_n) as u64;
        ops.macs += macs;
        ops.unpacks += w_unpack * macs;
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if per_channel {
            ops.offset_subs += macs;
        }
        out_shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QConvWeights, Requantizer, WeightOffset};
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::{ConvGeometry, Padding};

    fn make_conv(
        co: usize,
        ci: usize,
        k: usize,
        stride: usize,
        wbits: BitWidth,
        per_channel: bool,
    ) -> QConv2d {
        let wshape = Shape::new(co, k, k, ci);
        let codes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i * 7 + 3) % wbits.levels() as usize) as u8)
            .collect();
        let offset = if per_channel {
            WeightOffset::PerChannel((0..co).map(|c| c as i16 % 3).collect())
        } else {
            WeightOffset::PerLayer(1)
        };
        let weights = QConvWeights::new(wshape, false, &codes, wbits, offset);
        let requant = Requantizer::icn(
            (0..co).map(|c| c as i32 * 3 - 2).collect(),
            (0..co)
                .map(|c| FixedPointMultiplier::from_real(0.01 + c as f64 * 0.003))
                .collect(),
            0,
            BitWidth::W4,
        );
        QConv2d::new(
            weights,
            ConvGeometry::new(k, k, stride, Padding::Same),
            requant,
        )
    }

    fn make_input(h: usize, w: usize, c: usize, bits: BitWidth, zx: u8) -> QActivation {
        let shape = Shape::feature_map(h, w, c);
        let codes: Vec<u8> = (0..shape.volume())
            .map(|i| ((i * 5 + 1) % bits.levels() as usize) as u8)
            .collect();
        QActivation::from_codes(shape, &codes, bits, zx)
    }

    #[test]
    fn blocked_matches_naive_gemm_and_direct() {
        // Shapes chosen to exercise every tile remainder: co ∈ {1..6}
        // covers full 4-tiles, remainders of 1–3, and sub-tile layers;
        // odd row counts exercise the single-row tail.
        for (co, ci, k, stride) in [
            (4, 3, 3, 1),
            (2, 2, 3, 2),
            (5, 4, 1, 1),
            (6, 1, 3, 1),
            (1, 3, 1, 1),
        ] {
            for per_channel in [false, true] {
                let conv = make_conv(co, ci, k, stride, BitWidth::W4, per_channel);
                let x = make_input(5, 5, ci, BitWidth::W8, 3);
                let mut od = OpCounts::default();
                let mut og = OpCounts::default();
                let mut ob = OpCounts::default();
                let direct = conv.execute(&x, &mut od);
                let gemm = conv.execute_gemm(&x, &mut og);
                let blocked = conv.execute_blocked(&x, &mut ob);
                assert_eq!(
                    direct, blocked,
                    "co={co} ci={ci} k={k} s={stride} pc={per_channel}"
                );
                assert_eq!(gemm, blocked);
                // The ledgers of the two GEMM dataflows are identical.
                assert_eq!(og, ob);
            }
        }
    }

    #[test]
    fn blocked_matches_on_sub_byte_operands() {
        let conv = make_conv(3, 2, 3, 1, BitWidth::W2, true);
        let x = make_input(6, 5, 2, BitWidth::W4, 0);
        let mut og = OpCounts::default();
        let mut ob = OpCounts::default();
        assert_eq!(
            conv.execute_gemm(&x, &mut og),
            conv.execute_blocked(&x, &mut ob)
        );
        assert_eq!(og, ob);
    }

    #[test]
    fn blocked_handles_nonzero_input_zero_point() {
        // The hoisted Zx·ΣW' correction must reproduce the padded taps'
        // zero contribution exactly.
        let conv = make_conv(4, 2, 3, 1, BitWidth::W8, true);
        let x = make_input(4, 4, 2, BitWidth::W8, 7);
        let mut od = OpCounts::default();
        let mut ob = OpCounts::default();
        assert_eq!(conv.execute(&x, &mut od), conv.execute_blocked(&x, &mut ob));
    }

    #[test]
    #[should_panic(expected = "standard convolutions")]
    fn depthwise_rejected() {
        let w = QConvWeights::new(
            Shape::new(2, 3, 3, 1),
            true,
            &[0; 18],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0, 0],
                vec![FixedPointMultiplier::ZERO; 2],
                0,
                BitWidth::W8,
            ),
        );
        let x = make_input(4, 4, 2, BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let _ = conv.execute_blocked(&x, &mut ops);
    }
}
