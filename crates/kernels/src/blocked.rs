//! The register-blocked, cache-tiled GEMM convolution path — the fast
//! dense kernel behind
//! [`KernelChoice::BlockedGemm`](crate::KernelChoice::BlockedGemm).
//!
//! Same im2col dataflow as [`QConv2d::execute_gemm`], restructured the way
//! a production GEMM inner kernel is:
//!
//! * **double zero-point hoisting** — `Σ (X − Zx)(W − Zw)` expands to
//!   `Σ X·W − Zw·Σ X − Zx·Σ W + k·Zx·Zw`, with `Σ X` computed once per
//!   matrix row and `Σ W` once per output channel, so the inner loop is a
//!   bare **u8 × u8** multiply–accumulate with no per-element offset
//!   arithmetic (exact in integers: the expansion is algebraic identity,
//!   making the path **bit-identical** to the direct kernel);
//! * **channel-vectorized dual-row GEMV** — two im2col rows at a time run
//!   [`simd::gemv2`] against the pair-interleaved weight panel, producing
//!   *every* output channel's 32-bit accumulator in one sweep: the vector
//!   axis is the output-channel dimension, so the kernel reaches full
//!   SIMD width even on the tiny `k ∈ {4..128}` patches of a
//!   width-scaled MobileNet (a `k`-axis formulation starves there), and
//!   every weight byte loaded serves two rows;
//! * **runtime-dispatched SIMD** — [`crate::simd`] picks AVX2/SSE2
//!   widening `pmaddwd` on x86_64 or NEON widening multiply-accumulate on
//!   aarch64, with the portable scalar loop as the always-available
//!   fallback. Integer sums are order-independent, so every level is
//!   bit-identical;
//! * **pointwise identity fast path** — for 1×1 stride-1 convolutions the
//!   im2col matrix *is* the input in NHWC order, so the expansion is a
//!   borrow of the packed bytes (8-bit input) or one linear unpack
//!   (sub-byte) instead of a per-element gather;
//! * **intra-walk row parallelism** — with a
//!   [`ThreadPool`] on the arena, the `rows × c_o`
//!   output splits into contiguous im2col-row blocks, one per worker
//!   (disjoint output ranges and disjoint accumulator scratch, identical
//!   per-row arithmetic → the merge is a concatenation and the result
//!   byte-identical for any worker count).
//!
//! The abstract [`OpCounts`] ledger charged is identical to the
//! [`QConv2d::execute_gemm`] path — the blocked kernel reorganizes the
//! dataflow, not the mathematical work; the per-choice rates of the
//! Cortex-M7 cycle model express the dataflow difference, and host SIMD
//! or worker threads never change modeled cycles.

use std::sync::Mutex;

use mixq_tensor::Shape;

use crate::simd::requant::RequantPlan;
use crate::simd::{self, SimdLevel, MAX_DOT_LEN};
use crate::threadpool::{partition_bounds, ThreadPool, MAX_POOL_THREADS};
use crate::{OpCounts, QActivation, QConv2d, Requantizer};

/// The prepacked operand of the blocked GEMM: the layer's decoded u8
/// weight codes in the pair-interleaved order [`simd::gemv2`] streams,
/// plus the per-channel hoisted zero-point terms — built **once** from a
/// layer's packed weights instead of on every call.
///
/// The paper's deployment target is steady-state inference over immutable
/// flash-resident weights, so — following the prepacked-operand design of
/// production int8 GEMMs (gemmlowp's `PackedSideBlock`, CMSIS-NN's
/// reordered kernel weights) — the graph executor builds this artifact at
/// kernel-selection time, stores it on the node, and every inference (and
/// every sample of a batch) streams it directly. The per-call
/// decode/interleave and the `Σ W` recomputation of the PR-4 kernel all
/// disappear from the hot path.
///
/// The panel layout is **k-major over column pairs, channel-interleaved
/// within each pair**: `pairs[(p·c_o + co)·2 + s]` holds channel `co`'s
/// code for im2col column `2p + s` (and `tail[co]` the last column when
/// `k` is odd). One 16-byte load therefore covers eight consecutive
/// channels' column pairs — exactly the operand shape the
/// channel-vectorized GEMV wants, independent of how small `k` is. The
/// byte footprint is identical to any dense ordering (`c_o · k` codes),
/// so the goldened `prepacked_bytes` accounting is unchanged across the
/// layout generations.
///
/// Accounting: the artifact is a *read-only* copy of the weights in the
/// panel order the microkernel wants. A deployment stores it in flash next
/// to the packed codes (or builds it into RAM once at boot); it is **not**
/// part of the Eq. 7 activation live set, and [`PackedPanels::bytes`]
/// reports its footprint separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPanels {
    /// Pair-interleaved weight codes: `pairs[(p·c_o + co)·2 + s]` holds
    /// `w[co][2p + s]` for column pairs `p ∈ 0..k/2`.
    pairs: Vec<u8>,
    /// The odd last column (`tail[co] = w[co][k−1]`); empty if `k` even.
    tail: Vec<u8>,
    /// Per-channel `Σ W` over the k codes.
    sumw: Vec<i64>,
    /// Per-channel weight zero-points `Zw`.
    zw: Vec<i64>,
    /// Per-channel `Σ W − k·Zw`: the hoisted correction is
    /// `Zx · base[c]`, so no per-call correction vector is needed.
    base: Vec<i64>,
    /// Patch length `k_h·k_w·c_i` the panels were built for.
    k: usize,
}

impl PackedPanels {
    /// Patch length `k_h·k_w·c_i` (GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels covered.
    pub fn out_channels(&self) -> usize {
        self.sumw.len()
    }

    /// Per-channel `Σ W` (feeds the hoisted `Zx·Σ W − k·Zx·Zw` term).
    pub fn sumw(&self) -> &[i64] {
        &self.sumw
    }

    /// The pair-interleaved panel bytes (benches time the GEMV directly).
    pub fn pairs(&self) -> &[u8] {
        &self.pairs
    }

    /// The odd-`k` tail panel bytes.
    pub fn tail(&self) -> &[u8] {
        &self.tail
    }

    /// Per-channel weight zero-points `Zw` (widened).
    pub fn zw(&self) -> &[i64] {
        &self.zw
    }

    /// Per-channel hoisted base terms `Σ W − k·Zw`.
    pub fn base(&self) -> &[i64] {
        &self.base
    }

    /// Read-only footprint of the artifact in bytes: the `c_o · k`
    /// interleaved codes plus the three per-channel `i64` tables.
    /// Reported separately from the Table-1 flash model (which prices the
    /// packed codes the panels were derived from) and from Eq. 7 RAM
    /// (activations only).
    pub fn bytes(&self) -> usize {
        self.pairs.len() + self.tail.len() + 8 * (self.sumw.len() + self.zw.len() + self.base.len())
    }
}

impl QConv2d {
    /// Builds the [`PackedPanels`] prepack artifact for this layer —
    /// exactly the decode + `Σ W` work the PR-4 kernel performed per
    /// call, hoisted to build time, plus the pair-interleave reorder the
    /// channel-vectorized GEMV streams. Sub-byte weights are decoded once
    /// here.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn prepack_panels(&self) -> PackedPanels {
        let weights = self.weights();
        assert!(
            !weights.is_depthwise(),
            "im2col path applies to standard convolutions"
        );
        let k = self.geometry().kernel_area() * weights.in_channels();
        let co_n = weights.out_channels();
        // The flattened (c_o, k_h, k_w, c_i) code order is channel-row-
        // major; decode once, then interleave into the GEMV panel order.
        let rows: Vec<u8> = if weights.needs_unpack() {
            weights.codes()
        } else {
            weights.as_bytes().to_vec()
        };
        // Cold setup path — a hard assert here means the hot row loops
        // below (and `blocked_rows`' pair indexing) never run on
        // mis-sized panels; release builds don't trust the geometry.
        assert_eq!(
            rows.len(),
            co_n * k,
            "decoded weight rows must be out_channels × k"
        );
        let mut pairs = vec![0u8; (k / 2) * co_n * 2];
        for p in 0..k / 2 {
            for co in 0..co_n {
                pairs[(p * co_n + co) * 2] = rows[co * k + 2 * p];
                pairs[(p * co_n + co) * 2 + 1] = rows[co * k + 2 * p + 1];
            }
        }
        let tail: Vec<u8> = if k & 1 == 1 {
            (0..co_n).map(|co| rows[co * k + k - 1]).collect()
        } else {
            Vec::new()
        };
        let sumw: Vec<i64> = (0..co_n)
            .map(|co| rows[co * k..(co + 1) * k].iter().map(|&c| c as i64).sum())
            .collect();
        let zw: Vec<i64> = (0..co_n).map(|co| weights.offset().at(co) as i64).collect();
        let base: Vec<i64> = (0..co_n).map(|co| sumw[co] - k as i64 * zw[co]).collect();
        PackedPanels {
            pairs,
            tail,
            sumw,
            zw,
            base,
            k,
        }
    }
    /// Whether the blocked kernel would borrow the input's packed storage
    /// **zero-copy** instead of materializing an im2col (or linear-unpack)
    /// scratch buffer: a standard 1×1 stride-1 convolution over an 8-bit
    /// input, whose NHWC bytes already *are* the GEMM matrix. The scratch
    /// model ([`QOp::scratch_bytes`](crate::QOp::scratch_bytes)) and the
    /// [`TiledBackend`](crate::TiledBackend)'s selection cost share this
    /// predicate so they price exactly what the kernel does.
    pub fn blocked_borrows_input(&self, in_bits: mixq_quant::BitWidth) -> bool {
        !self.weights().is_depthwise()
            && self.geometry().kernel_area() == 1
            && self.geometry().stride == 1
            && in_bits == mixq_quant::BitWidth::W8
    }

    /// Runs the layer through the register-blocked GEMM path.
    /// Bit-identical to [`QConv2d::execute`] and [`QConv2d::execute_gemm`];
    /// see the [module docs](self) for the dataflow.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_blocked(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        let mut out_codes = Vec::new();
        let out_shape = self.execute_blocked_codes(x, &mut out_codes, ops);
        QActivation::from_codes(
            out_shape,
            &out_codes,
            self.requant().out_bits(),
            self.requant().zero_point().clamp(0, 255) as u8,
        )
    }

    /// The codes-only core of [`QConv2d::execute_blocked`]: writes the
    /// unpacked output codes into `out_codes` (cleared and resized in
    /// place) and returns the output shape. The weight panel is built per
    /// call — the one-shot fallback for callers without a prepack cache;
    /// the graph executor dispatches
    /// [`KernelChoice::BlockedGemm`](crate::KernelChoice::BlockedGemm)
    /// nodes through [`QConv2d::execute_blocked_prepacked`] instead.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_blocked_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let panels = self.prepack_panels();
        self.execute_blocked_prepacked(&panels, x, &mut Vec::new(), out_codes, ops)
    }

    /// Runs the layer through the blocked GEMM against a prepacked weight
    /// panel built once by [`QConv2d::prepack_panels`], drawing the im2col
    /// (or sub-byte linear-unpack) expansion from `data_scratch` (cleared
    /// and resized in place). Bit-identical — output codes **and** abstract
    /// [`OpCounts`] ledger — to the per-call-packing
    /// [`QConv2d::execute_blocked_codes`]; the hot path just stops
    /// rebuilding the panel, the `Σ W` sums and the hoisted zero-point
    /// tables on every call. (This one-shot wrapper allocates its own
    /// accumulator scratch; the graph executor's steady-state path is
    /// [`QConv2d::execute_blocked_prepacked_pooled`] with arena-recycled
    /// buffers.)
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers, on an input channel mismatch, or if the
    /// panels were built for a different patch length or channel count.
    pub fn execute_blocked_prepacked(
        &self,
        panels: &PackedPanels,
        x: &QActivation,
        data_scratch: &mut Vec<u8>,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        self.execute_blocked_prepacked_pooled(
            panels,
            x,
            data_scratch,
            &mut Vec::new(),
            out_codes,
            None,
            ops,
        )
    }

    /// [`QConv2d::execute_blocked_prepacked`] with an optional
    /// [`ThreadPool`] and caller-owned accumulator scratch: the im2col
    /// expansion and the `rows × c_o` output split into contiguous row
    /// blocks, one per worker, inside this single node execution — the
    /// intra-walk parallelism of
    /// [`QGraph::infer_batch`](crate::QGraph::infer_batch). Worker counts
    /// (including none) are bit-identical: every row's arithmetic is the
    /// serial GEMV's, rows are disjoint, each worker owns a disjoint
    /// `2·c_o` slice of `acc_scratch`, and the shared ledger is a sum of
    /// per-worker counts over disjoint ranges. Allocation-free once
    /// `data_scratch`, `acc_scratch` and `out_codes` reach steady
    /// capacity.
    ///
    /// # Panics
    ///
    /// See [`QConv2d::execute_blocked_prepacked`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_blocked_prepacked_pooled(
        &self,
        panels: &PackedPanels,
        x: &QActivation,
        data_scratch: &mut Vec<u8>,
        acc_scratch: &mut Vec<i32>,
        out_codes: &mut Vec<u8>,
        pool: Option<&ThreadPool>,
        ops: &mut OpCounts,
    ) -> Shape {
        assert!(
            !self.weights().is_depthwise(),
            "im2col path applies to standard convolutions"
        );
        let in_shape = x.shape();
        assert_eq!(in_shape.c, self.weights().in_channels(), "input channels");
        let out_shape = self.output_shape(in_shape);
        let weights = self.weights();
        let g = self.geometry();
        let k = g.kernel_area() * in_shape.c;
        let rows = out_shape.pixels() * out_shape.n;
        let zx = x.zero_point() as i64;
        let per_channel = weights.offset().is_per_channel();
        let w_unpack = weights.needs_unpack() as u64;
        let co_n = weights.out_channels();
        assert_eq!(panels.k, k, "panels built for a different patch length");
        assert_eq!(
            panels.sumw.len(),
            co_n,
            "panels built for a different channel count"
        );

        // The row-major `rows × k` input matrix. For 1×1 stride-1 layers
        // the im2col expansion is the identity: the NHWC codes are already
        // the matrix, so an 8-bit input is borrowed straight from its
        // packed storage and a sub-byte one linearly unpacked — no
        // per-element gather (same ledger charges as the gather).
        let borrowed: bool = g.kernel_area() == 1 && g.stride == 1 && !x.needs_unpack();
        let data: &[u8] = if borrowed {
            ops.act_loads += in_shape.volume() as u64;
            x.as_bytes()
        } else if g.kernel_area() == 1 && g.stride == 1 {
            let loads = in_shape.volume() as u64;
            ops.act_loads += loads;
            ops.unpacks += loads;
            x.codes_into(data_scratch);
            data_scratch
        } else {
            self.im2col_into_pooled(x, data_scratch, pool, ops);
            data_scratch
        };
        // Per-walk setup (not per-row): this is the last gate before the
        // row loops index `data[r·k..]` unchecked-by-construction, so it
        // stays a hard assert in release builds.
        assert_eq!(data.len(), rows * k, "staged input matrix must be rows × k");

        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let requant = self.requant();
        let plan = self.plan();
        let level = simd::active_level();

        // Contiguous row blocks, one per worker; each worker owns the
        // matching disjoint range of `out_codes` plus its own `2·c_o`
        // accumulator slice and runs the identical serial GEMV over them.
        let threads = pool.map_or(1, ThreadPool::threads);
        let mut split = false;
        if threads > 1 && rows >= 2 {
            let mut row_bounds = [0usize; MAX_POOL_THREADS + 1];
            let parts = partition_bounds(rows, threads, &mut row_bounds);
            if parts > 1 {
                let mut byte_bounds = [0usize; MAX_POOL_THREADS + 1];
                let mut acc_bounds = [0usize; MAX_POOL_THREADS + 1];
                for (i, (b, r)) in byte_bounds
                    .iter_mut()
                    .zip(&row_bounds)
                    .enumerate()
                    .take(parts + 1)
                {
                    *b = r * co_n;
                    acc_bounds[i] = i * 2 * co_n;
                }
                acc_scratch.clear();
                acc_scratch.resize(parts * 2 * co_n, 0);
                // Requant/threshold tallies are data-dependent: each
                // worker counts locally and merges once at the end (sums
                // over disjoint rows commute — ledger stays deterministic).
                let merged = Mutex::new((0u64, 0u64));
                pool.expect("threads > 1 implies a pool").broadcast_slices2(
                    out_codes.as_mut_slice(),
                    &byte_bounds[..=parts],
                    acc_scratch.as_mut_slice(),
                    &acc_bounds[..=parts],
                    |w, chunk, acc| {
                        let (mut rq, mut tc) = (0u64, 0u64);
                        blocked_rows(
                            requant,
                            plan,
                            panels,
                            data,
                            zx,
                            level,
                            row_bounds[w],
                            row_bounds[w + 1],
                            chunk,
                            acc,
                            &mut rq,
                            &mut tc,
                        );
                        let mut m = merged.lock().unwrap();
                        m.0 += rq;
                        m.1 += tc;
                    },
                );
                let (rq, tc) = merged.into_inner().unwrap();
                ops.requants += rq;
                ops.threshold_cmps += tc;
                split = true;
            }
        }
        if !split {
            acc_scratch.clear();
            acc_scratch.resize(2 * co_n, 0);
            blocked_rows(
                requant,
                plan,
                panels,
                data,
                zx,
                level,
                0,
                rows,
                out_codes.as_mut_slice(),
                acc_scratch.as_mut_slice(),
                &mut ops.requants,
                &mut ops.threshold_cmps,
            );
        }

        // Same abstract ledger as the naive GEMM path (identical
        // mathematical work; only the dataflow differs).
        let macs = (rows * k * co_n) as u64;
        ops.macs += macs;
        ops.unpacks += w_unpack * macs;
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if per_channel {
            ops.offset_subs += macs;
        }
        out_shape
    }
}

/// The dual-row GEMV sweep over im2col rows `[r_lo, r_hi)`: the shared
/// core of the serial and row-parallel blocked paths (structural
/// bit-identity — both run exactly this). `out` holds the rows' output
/// range, starting at row `r_lo`; `acc` is the caller's `2·c_o`
/// accumulator scratch. Row pairing never crosses the range boundary, so
/// any contiguous split reproduces the full-range codes.
#[allow(clippy::too_many_arguments)]
fn blocked_rows(
    requant: &Requantizer,
    plan: &RequantPlan,
    panels: &PackedPanels,
    data: &[u8],
    zx: i64,
    level: SimdLevel,
    r_lo: usize,
    r_hi: usize,
    out: &mut [u8],
    acc: &mut [i32],
    requants: &mut u64,
    threshold_cmps: &mut u64,
) {
    let k = panels.k;
    let co_n = panels.sumw.len();
    let zw = &panels.zw;
    let wbase = &panels.base;
    // Hot per-block path: these stay `debug_assert` because both lengths
    // are established on the cold setup path above (the hard
    // `data.len() == rows * k` / `rows.len() == co_n * k` asserts in
    // `execute_blocked_prepacked_pooled` and `prepack_panels`) and by the
    // caller-side slice partitioning; `mixq-verify` re-checks the same
    // geometry statically per graph (`check_dot_geometry`).
    debug_assert_eq!(out.len(), (r_hi - r_lo) * co_n);
    debug_assert_eq!(acc.len(), 2 * co_n);
    let (acc0, acc1) = acc.split_at_mut(co_n);

    // Patches longer than the i32 accumulation bound take the cold
    // chunked path (real layers never do: k = k_h·k_w·c_i).
    if k > MAX_DOT_LEN {
        return blocked_rows_long(
            requant,
            plan,
            panels,
            data,
            zx,
            level,
            r_lo,
            r_hi,
            out,
            requants,
            threshold_cmps,
        );
    }

    // Per-channel hoisted terms: acc = Σ X·W − Zw·Σ X − Zx·(Σ W − k·Zw),
    // the exact expansion of Σ (X − Zx)(W − Zw). `Σ W − k·Zw` is the
    // prepacked `base` table, so the input zero-point is the only
    // per-call ingredient.
    let mut r = r_lo;
    while r < r_hi {
        let pair = r + 1 < r_hi;
        let x0 = &data[r * k..r * k + k];
        let x1 = if pair {
            &data[(r + 1) * k..(r + 1) * k + k]
        } else {
            x0
        };
        let sx0 = simd::row_sum(level, x0);
        let sx1 = if pair { simd::row_sum(level, x1) } else { 0 };
        acc0.fill(0);
        acc1.fill(0);
        simd::gemv2(level, x0, x1, &panels.pairs, &panels.tail, acc0, acc1);
        // Fused vectorized epilogue: widen, fold the hoisted corrections
        // and requantize in-vector (bit-identical to the per-element
        // `Requantizer::apply` loop, same ledger totals).
        let o0 = (r - r_lo) * co_n;
        simd::requant::apply_gemm_row(
            plan,
            requant,
            level,
            acc0,
            sx0,
            zx,
            zw,
            wbase,
            &mut out[o0..o0 + co_n],
            requants,
            threshold_cmps,
        );
        if pair {
            simd::requant::apply_gemm_row(
                plan,
                requant,
                level,
                acc1,
                sx1,
                zx,
                zw,
                wbase,
                &mut out[o0 + co_n..o0 + 2 * co_n],
                requants,
                threshold_cmps,
            );
        }
        r += if pair { 2 } else { 1 };
    }
}

/// Cold fallback for `k >` [`MAX_DOT_LEN`]: even-length column chunks of
/// the pair-interleaved panel (each chunk a contiguous `pairs` range)
/// accumulate in i32 and flush into per-channel `i64` totals between
/// chunks. Same arithmetic, so still bit-identical; allocates its own
/// wide scratch — acceptable off the steady-state path, since no
/// convolution geometry in the networks reaches this patch length.
#[allow(clippy::too_many_arguments)]
fn blocked_rows_long(
    requant: &Requantizer,
    plan: &RequantPlan,
    panels: &PackedPanels,
    data: &[u8],
    zx: i64,
    level: SimdLevel,
    r_lo: usize,
    r_hi: usize,
    out: &mut [u8],
    requants: &mut u64,
    threshold_cmps: &mut u64,
) {
    let k = panels.k;
    let co_n = panels.sumw.len();
    let zw = &panels.zw;
    let wbase = &panels.base;
    let chunk = MAX_DOT_LEN & !1;
    let mut acc = vec![0i32; 2 * co_n];
    let mut wide = vec![0i64; 2 * co_n];
    let mut r = r_lo;
    while r < r_hi {
        let pair = r + 1 < r_hi;
        let x0 = &data[r * k..r * k + k];
        let x1 = if pair {
            &data[(r + 1) * k..(r + 1) * k + k]
        } else {
            x0
        };
        let sx0 = simd::row_sum(level, x0);
        let sx1 = if pair { simd::row_sum(level, x1) } else { 0 };
        wide.fill(0);
        let mut c0 = 0usize;
        while c0 < k {
            let c1 = (c0 + chunk).min(k);
            let (acc0, acc1) = acc.split_at_mut(co_n);
            acc0.fill(0);
            acc1.fill(0);
            // Column chunk [c0, c1): pairs are k-major, so the chunk's
            // panel bytes are one contiguous range; the odd tail only
            // exists at the true end of the patch.
            let tail = if c1 == k { &panels.tail[..] } else { &[] };
            simd::gemv2(
                level,
                &x0[c0..c1],
                &x1[c0..c1],
                &panels.pairs[(c0 / 2) * co_n * 2..(c1 / 2) * co_n * 2],
                tail,
                acc0,
                acc1,
            );
            let (w0, w1) = wide.split_at_mut(co_n);
            simd::requant::widen_accumulate(w0, acc0);
            simd::requant::widen_accumulate(w1, acc1);
            c0 = c1;
        }
        // Same overflow-proof fold + vectorized epilogue the hot path
        // fuses inside `apply_gemm_row`, just staged through the wide
        // totals the chunked accumulation requires.
        let o0 = (r - r_lo) * co_n;
        let (w0, w1) = wide.split_at_mut(co_n);
        simd::requant::fold_corrections(w0, sx0, zx, zw, wbase);
        simd::requant::apply_phi_block(
            plan,
            requant,
            level,
            0,
            w0,
            &mut out[o0..o0 + co_n],
            requants,
            threshold_cmps,
        );
        if pair {
            simd::requant::fold_corrections(w1, sx1, zx, zw, wbase);
            simd::requant::apply_phi_block(
                plan,
                requant,
                level,
                0,
                w1,
                &mut out[o0 + co_n..o0 + 2 * co_n],
                requants,
                threshold_cmps,
            );
        }
        r += if pair { 2 } else { 1 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QConvWeights, WeightOffset};
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::{ConvGeometry, Padding};

    fn make_conv(
        co: usize,
        ci: usize,
        k: usize,
        stride: usize,
        wbits: BitWidth,
        per_channel: bool,
    ) -> QConv2d {
        let wshape = Shape::new(co, k, k, ci);
        let codes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i * 7 + 3) % wbits.levels() as usize) as u8)
            .collect();
        let offset = if per_channel {
            WeightOffset::PerChannel((0..co).map(|c| c as i16 % 3).collect())
        } else {
            WeightOffset::PerLayer(1)
        };
        let weights = QConvWeights::new(wshape, false, &codes, wbits, offset);
        let requant = Requantizer::icn(
            (0..co).map(|c| c as i32 * 3 - 2).collect(),
            (0..co)
                .map(|c| FixedPointMultiplier::from_real(0.01 + c as f64 * 0.003))
                .collect(),
            0,
            BitWidth::W4,
        );
        QConv2d::new(
            weights,
            ConvGeometry::new(k, k, stride, Padding::Same),
            requant,
        )
    }

    fn make_input(h: usize, w: usize, c: usize, bits: BitWidth, zx: u8) -> QActivation {
        let shape = Shape::feature_map(h, w, c);
        let codes: Vec<u8> = (0..shape.volume())
            .map(|i| ((i * 5 + 1) % bits.levels() as usize) as u8)
            .collect();
        QActivation::from_codes(shape, &codes, bits, zx)
    }

    #[test]
    fn blocked_matches_naive_gemm_and_direct() {
        // Shapes chosen to exercise the GEMV's vector-tile remainders:
        // co ∈ {1..6} covers sub-tile channel counts and odd remainders;
        // k ∈ {1, 3} kernels give odd and even patch lengths; odd row
        // counts exercise the single-row tail.
        for (co, ci, k, stride) in [
            (4, 3, 3, 1),
            (2, 2, 3, 2),
            (5, 4, 1, 1),
            (6, 1, 3, 1),
            (1, 3, 1, 1),
        ] {
            for per_channel in [false, true] {
                let conv = make_conv(co, ci, k, stride, BitWidth::W4, per_channel);
                let x = make_input(5, 5, ci, BitWidth::W8, 3);
                let mut od = OpCounts::default();
                let mut og = OpCounts::default();
                let mut ob = OpCounts::default();
                let direct = conv.execute(&x, &mut od);
                let gemm = conv.execute_gemm(&x, &mut og);
                let blocked = conv.execute_blocked(&x, &mut ob);
                assert_eq!(
                    direct, blocked,
                    "co={co} ci={ci} k={k} s={stride} pc={per_channel}"
                );
                assert_eq!(gemm, blocked);
                // The ledgers of the two GEMM dataflows are identical.
                assert_eq!(og, ob);
            }
        }
    }

    #[test]
    fn blocked_matches_on_sub_byte_operands() {
        let conv = make_conv(3, 2, 3, 1, BitWidth::W2, true);
        let x = make_input(6, 5, 2, BitWidth::W4, 0);
        let mut og = OpCounts::default();
        let mut ob = OpCounts::default();
        assert_eq!(
            conv.execute_gemm(&x, &mut og),
            conv.execute_blocked(&x, &mut ob)
        );
        assert_eq!(og, ob);
    }

    #[test]
    fn blocked_handles_nonzero_input_zero_point() {
        // The hoisted Zx·ΣW' correction must reproduce the padded taps'
        // zero contribution exactly.
        let conv = make_conv(4, 2, 3, 1, BitWidth::W8, true);
        let x = make_input(4, 4, 2, BitWidth::W8, 7);
        let mut od = OpCounts::default();
        let mut ob = OpCounts::default();
        assert_eq!(conv.execute(&x, &mut od), conv.execute_blocked(&x, &mut ob));
    }

    #[test]
    fn long_patch_chunked_path_matches_direct() {
        // k = 3·3·ci can exceed MAX_DOT_LEN only at absurd widths; force
        // the cold chunked path with a shrunken bound stand-in instead:
        // compare the chunked fallback directly against the hot path on a
        // normal layer (both must match the direct kernel bit-for-bit).
        let conv = make_conv(3, 4, 3, 1, BitWidth::W8, true);
        let x = make_input(5, 5, 4, BitWidth::W8, 2);
        let panels = conv.prepack_panels();
        let mut hot = Vec::new();
        let mut ops = OpCounts::default();
        let shape =
            conv.execute_blocked_prepacked(&panels, &x, &mut Vec::new(), &mut hot, &mut ops);
        let rows = shape.pixels() * shape.n;
        let mut cold = vec![0u8; rows * panels.out_channels()];
        let (mut rq, mut tc) = (0u64, 0u64);
        // Rebuild the im2col matrix the hot path consumed.
        let mut data = Vec::new();
        let mut scratch_ops = OpCounts::default();
        conv.im2col_into_pooled(&x, &mut data, None, &mut scratch_ops);
        blocked_rows_long(
            conv.requant(),
            conv.plan(),
            &panels,
            &data,
            x.zero_point() as i64,
            simd::active_level(),
            0,
            rows,
            &mut cold,
            &mut rq,
            &mut tc,
        );
        assert_eq!(hot, cold, "chunked fallback diverges from hot path");
    }

    #[test]
    fn pooled_split_is_bit_identical_to_serial() {
        // Worker counts from 1 (inline) past the row count (surplus
        // workers idle) produce byte-identical codes and ledgers.
        let conv = make_conv(5, 3, 3, 1, BitWidth::W4, true);
        let x = make_input(6, 6, 3, BitWidth::W8, 3);
        let panels = conv.prepack_panels();
        let mut serial_codes = Vec::new();
        let mut serial_ops = OpCounts::default();
        conv.execute_blocked_prepacked(
            &panels,
            &x,
            &mut Vec::new(),
            &mut serial_codes,
            &mut serial_ops,
        );
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut codes = Vec::new();
            let mut acc = Vec::new();
            let mut ops = OpCounts::default();
            conv.execute_blocked_prepacked_pooled(
                &panels,
                &x,
                &mut Vec::new(),
                &mut acc,
                &mut codes,
                Some(&pool),
                &mut ops,
            );
            assert_eq!(codes, serial_codes, "threads={threads}");
            assert_eq!(ops, serial_ops, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "standard convolutions")]
    fn depthwise_rejected() {
        let w = QConvWeights::new(
            Shape::new(2, 3, 3, 1),
            true,
            &[0; 18],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0, 0],
                vec![FixedPointMultiplier::ZERO; 2],
                0,
                BitWidth::W8,
            ),
        );
        let x = make_input(4, 4, 2, BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let _ = conv.execute_blocked(&x, &mut ops);
    }
}
