//! # mixq-kernels
//!
//! Integer-only inference kernels in the style of the paper's extended
//! CMSIS-NN library (§6): convolution, depthwise convolution and
//! fully-connected kernels over **bit-packed sub-byte tensors**
//! (`Q ∈ {2, 4, 8}`), with an output-stationary dataflow and the three
//! requantization schemes of §4:
//!
//! * folded per-layer fixed-point (the Jacob-et-al. PL+FB pipeline),
//! * the **Integer Channel-Normalization (ICN)** activation (Eq. 5),
//! * integer **thresholds** (Umuroglu & Jahre / IFQ-Net style).
//!
//! Every kernel increments an [`OpCounts`] ledger (MACs, sub-byte unpacks,
//! per-channel offset subtractions, requantization and threshold
//! comparisons) — the abstract costs the Cortex-M7 cycle model in
//! `mixq-mcu` converts into latency, reproducing Figure 2's trends.
//!
//! # Examples
//!
//! ```
//! use mixq_kernels::{OpCounts, QActivation, QConv2d, QConvWeights, Requantizer, WeightOffset};
//! use mixq_quant::{BitWidth, FixedPointMultiplier};
//! use mixq_tensor::{ConvGeometry, Shape};
//!
//! // 1x1 conv, one input/output channel, weight code 2 with Zw=0.
//! let w = QConvWeights::new(
//!     Shape::new(1, 1, 1, 1), false, &[2], BitWidth::W4,
//!     WeightOffset::PerLayer(0),
//! );
//! let requant = Requantizer::icn(
//!     vec![0],
//!     vec![FixedPointMultiplier::from_real(1.0)],
//!     0,
//!     BitWidth::W8,
//! );
//! let conv = QConv2d::new(w, ConvGeometry::pointwise(), requant);
//! let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[3], BitWidth::W8, 0);
//! let mut ops = OpCounts::default();
//! let y = conv.execute(&x, &mut ops);
//! assert_eq!(y.codes(), vec![6]); // 3 × 2
//! assert_eq!(ops.macs, 1);
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly two leaf
// modules: `simd` (std::arch intrinsics behind runtime feature
// detection) and `threadpool` (the lifetime-erased broadcast job). All
// kernel dataflow code stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod add;
pub mod backend;
pub mod blocked;
mod conv;
mod counter;
pub mod gemm;
pub mod graph;
mod linear;
mod pool;
mod requant;
pub mod simd;
mod tensorq;
pub mod threadpool;

pub use add::QAdd;
pub use backend::{Backend, BackendKind, KernelChoice, ReferenceBackend, TiledBackend};
pub use blocked::PackedPanels;
pub use conv::QConv2d;
pub use counter::OpCounts;
pub use gemm::{im2col_scratch_bytes, Im2Col};
pub use graph::{
    ActivationArena, AnyOp, GraphNode, GraphRun, LayerRun, OpKind, OpOutput, PrepackedWeights,
    QGraph, QOp,
};
pub use linear::{linear_rescale_of, QLinear};
pub use pool::QAvgPool;
pub use requant::{Requantizer, ThresholdChannel};
pub use simd::SimdLevel;
pub use tensorq::{QActivation, QConvWeights, WeightOffset};
pub use threadpool::{partition_bounds, ThreadPool, MAX_POOL_THREADS};
