//! The kernel backend layer: build-time selection of the concrete kernel
//! implementation each graph node executes with.
//!
//! The paper's deployment story (§6) binds every layer to the
//! best-fitting CMSIS-NN kernel for its shape and bit-width; mixed-precision
//! follow-ups on PULP dispatch per-layer the same way. This module makes
//! that binding an explicit, pluggable API:
//!
//! * [`KernelChoice`] — the closed set of kernel implementations a node can
//!   resolve to (direct convolution, im2col + GEMM, register-blocked GEMM);
//! * [`Backend`] — the selection policy: given a node's op, input shapes
//!   and bit-widths, pick a choice at **graph build time**;
//! * [`ReferenceBackend`] — direct kernels everywhere (bit-identical to the
//!   pre-backend executor);
//! * [`TiledBackend`] — a cost-driven policy that lowers standard
//!   convolutions onto the register-blocked, cache-tiled GEMM whenever its
//!   modeled cycle cost beats the direct loop (and the im2col scratch fits
//!   an optional ceiling).
//!
//! Every choice is **bit-identical in output codes**: backends trade
//! dataflow (and therefore cycles and scratch RAM), never arithmetic.
//! Selection is deterministic shape math, so per-node decisions golden
//! cleanly in the regression CI.
//!
//! # Plugging a custom backend
//!
//! Implement [`Backend`] and hand it to
//! [`QGraph::select_kernels`](crate::QGraph::select_kernels),
//! [`QGraph::push_node_with`](crate::QGraph::push_node_with) or
//! `mixq_core::convert::convert_with_backend`. Only return choices the op
//! supports ([`QOp::supported_kernels`](crate::QOp::supported_kernels));
//! the graph validates the selection.
//!
//! ```
//! use mixq_kernels::{AnyOp, Backend, KernelChoice};
//! use mixq_quant::BitWidth;
//! use mixq_tensor::Shape;
//!
//! /// Forces the plain im2col + GEMM path on every standard convolution.
//! struct NaiveGemmEverywhere;
//!
//! impl Backend for NaiveGemmEverywhere {
//!     fn name(&self) -> &'static str {
//!         "naive-gemm"
//!     }
//!     fn select(&self, op: &AnyOp, _inputs: &[Shape], _in_bits: &[BitWidth]) -> KernelChoice {
//!         match op {
//!             AnyOp::Conv(c) if !c.weights().is_depthwise() => KernelChoice::Im2colGemm,
//!             _ => KernelChoice::DirectConv,
//!         }
//!     }
//! }
//! ```

use std::fmt;

use mixq_quant::BitWidth;
use mixq_tensor::Shape;

use crate::gemm::im2col_scratch_bytes;
use crate::graph::AnyOp;

/// The concrete kernel implementation a graph node resolved to at build
/// time. All choices produce bit-identical output codes; they differ in
/// dataflow — cycles and transient scratch RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// The direct output-stationary loop ([`QConv2d::execute_codes`]); the
    /// only implementation for depthwise convolutions, pooling, the
    /// classifier head and residual adds.
    ///
    /// [`QConv2d::execute_codes`]: crate::QConv2d::execute_codes
    DirectConv,
    /// Image-to-column expansion followed by a row-major GEMM
    /// ([`QConv2d::execute_gemm`](crate::QConv2d::execute_gemm)); needs an
    /// im2col scratch buffer.
    Im2colGemm,
    /// im2col followed by the register-blocked, cache-tiled GEMM inner
    /// kernel ([`QConv2d::execute_blocked`](crate::QConv2d::execute_blocked));
    /// same scratch as [`KernelChoice::Im2colGemm`], fastest dense path.
    BlockedGemm,
}

impl KernelChoice {
    /// Short machine-friendly label (used in breakdown tables and the
    /// golden JSON).
    pub const fn label(self) -> &'static str {
        match self {
            KernelChoice::DirectConv => "direct",
            KernelChoice::Im2colGemm => "im2col_gemm",
            KernelChoice::BlockedGemm => "blocked_gemm",
        }
    }

    /// Whether the choice lowers the convolution through an im2col + GEMM
    /// dataflow (and therefore needs the im2col scratch buffer).
    pub const fn is_gemm(self) -> bool {
        matches!(self, KernelChoice::Im2colGemm | KernelChoice::BlockedGemm)
    }
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A kernel-selection policy: given a node's operator, the shapes and
/// precisions of its input tensors, pick the [`KernelChoice`] the node will
/// execute with.
///
/// Selection runs at graph build time
/// ([`QGraph::push_node_with`](crate::QGraph::push_node_with) /
/// [`QGraph::select_kernels`](crate::QGraph::select_kernels)); the resolved
/// choice is stored on the node, drives execution dispatch, the scratch-RAM
/// model ([`QGraph::peak_scratch_bytes`](crate::QGraph::peak_scratch_bytes))
/// and the per-choice cycle pricing in `mixq-mcu`. Implementations must be
/// deterministic functions of their arguments — decisions are golden-tested.
pub trait Backend {
    /// Backend name (reports and bench tables).
    fn name(&self) -> &'static str;

    /// Selects the kernel for one node. Must return a choice listed in the
    /// op's [`QOp::supported_kernels`](crate::QOp::supported_kernels); the
    /// graph asserts this.
    fn select(&self, op: &AnyOp, inputs: &[Shape], in_bits: &[BitWidth]) -> KernelChoice;
}

/// The reference backend: the direct kernel everywhere. A graph selected
/// with it is bit-identical — codes, ledgers, scratch and cycles — to the
/// pre-backend executor, and is the default wherever a backend parameter
/// grew onto an existing API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn select(&self, _op: &AnyOp, _inputs: &[Shape], _in_bits: &[BitWidth]) -> KernelChoice {
        KernelChoice::DirectConv
    }
}

/// The cost-driven tiled backend: lowers standard convolutions onto the
/// register-blocked GEMM ([`KernelChoice::BlockedGemm`]) whenever the
/// modeled cycle cost — per-MAC rate plus the im2col expansion traffic —
/// beats the direct loop, and the im2col scratch fits
/// [`TiledBackend::scratch_limit_bytes`]. Depthwise convolutions, pooling,
/// the head and residual adds stay direct (their only implementation).
///
/// The default per-MAC rates mirror `CortexM7CycleModel`'s per-choice
/// pricing (asserted against the model's defaults in
/// `tests/backend_kernels.rs`, so tuning one side fails loudly instead of
/// silently diverging). On top of those rates, selection also prices the
/// im2col expansion traffic — which the abstract op ledger does not — so
/// very small output-channel counts stay direct; the pointwise identity
/// fast path ([`QConv2d::blocked_borrows_input`](crate::QConv2d::blocked_borrows_input))
/// skips the gather entirely and is priced (and scratch-checked) as free.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledBackend {
    /// Modeled cycles per MAC of the direct dense loop.
    pub direct_mac_cycles: f64,
    /// Modeled cycles per MAC of the blocked GEMM inner kernel.
    pub blocked_mac_cycles: f64,
    /// Modeled cycles per element copied into the im2col buffer.
    pub im2col_cycles_per_elem: f64,
    /// Optional ceiling on the im2col scratch buffer: a GEMM kernel is
    /// never selected for a node whose expansion would exceed it (deploying
    /// within a RAM budget must bound transient buffers too).
    pub scratch_limit_bytes: Option<usize>,
}

impl Default for TiledBackend {
    fn default() -> Self {
        TiledBackend {
            direct_mac_cycles: 2.1,
            blocked_mac_cycles: 1.4,
            im2col_cycles_per_elem: 1.0,
            scratch_limit_bytes: None,
        }
    }
}

impl TiledBackend {
    /// A tiled backend that refuses GEMM lowerings whose im2col buffer
    /// exceeds `bytes` of scratch RAM.
    pub fn with_scratch_limit(mut self, bytes: usize) -> Self {
        self.scratch_limit_bytes = Some(bytes);
        self
    }
}

impl Backend for TiledBackend {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn select(&self, op: &AnyOp, inputs: &[Shape], in_bits: &[BitWidth]) -> KernelChoice {
        let AnyOp::Conv(conv) = op else {
            return KernelChoice::DirectConv;
        };
        if conv.weights().is_depthwise() {
            return KernelChoice::DirectConv;
        }
        let input = inputs[0];
        // The pointwise identity fast path borrows the input zero-copy: no
        // expansion traffic, no scratch to check against the ceiling.
        let borrows = conv.blocked_borrows_input(in_bits[0]);
        if !borrows {
            if let Some(limit) = self.scratch_limit_bytes {
                if im2col_scratch_bytes(conv, input) > limit {
                    return KernelChoice::DirectConv;
                }
            }
        }
        // Both dataflows perform the same padded MAC count (rows · k per
        // output channel); the GEMM path adds one im2col copy per matrix
        // element unless it borrows. Deterministic shape math — no
        // measurement involved.
        let out = conv.output_shape(input);
        let k = conv.geometry().kernel_area() * input.c;
        let rows = out.pixels() * out.n;
        let macs = (rows * k * out.c) as f64;
        let direct = macs * self.direct_mac_cycles;
        let expansion = if borrows {
            0.0
        } else {
            (rows * k) as f64 * self.im2col_cycles_per_elem
        };
        let gemm = macs * self.blocked_mac_cycles + expansion;
        if gemm < direct {
            KernelChoice::BlockedGemm
        } else {
            KernelChoice::DirectConv
        }
    }
}

/// A cloneable, comparable handle over the shipped backends — what
/// configuration types (`PipelineConfig`, bench flags) store. Custom
/// [`Backend`] implementations are passed as `&dyn Backend` instead.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BackendKind {
    /// [`ReferenceBackend`]: direct kernels everywhere.
    #[default]
    Reference,
    /// [`TiledBackend`] with the given parameters.
    Tiled(TiledBackend),
}

impl BackendKind {
    /// The default-parameter tiled backend.
    pub fn tiled() -> Self {
        BackendKind::Tiled(TiledBackend::default())
    }
}

impl Backend for BackendKind {
    fn name(&self) -> &'static str {
        match self {
            BackendKind::Reference => ReferenceBackend.name(),
            BackendKind::Tiled(t) => t.name(),
        }
    }

    fn select(&self, op: &AnyOp, inputs: &[Shape], in_bits: &[BitWidth]) -> KernelChoice {
        match self {
            BackendKind::Reference => ReferenceBackend.select(op, inputs, in_bits),
            BackendKind::Tiled(t) => t.select(op, inputs, in_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QAdd, QAvgPool, QConv2d, QConvWeights, Requantizer, WeightOffset};
    use mixq_quant::FixedPointMultiplier;
    use mixq_tensor::{ConvGeometry, Padding};

    fn pointwise(ci: usize, co: usize) -> AnyOp {
        let shape = Shape::new(co, 1, 1, ci);
        AnyOp::Conv(QConv2d::new(
            QConvWeights::new(
                shape,
                false,
                &vec![0; shape.volume()],
                BitWidth::W4,
                WeightOffset::PerLayer(0),
            ),
            ConvGeometry::pointwise(),
            Requantizer::icn(
                vec![0; co],
                vec![FixedPointMultiplier::from_real(1.0); co],
                0,
                BitWidth::W8,
            ),
        ))
    }

    fn dense3x3(ci: usize, co: usize) -> AnyOp {
        let shape = Shape::new(co, 3, 3, ci);
        AnyOp::Conv(QConv2d::new(
            QConvWeights::new(
                shape,
                false,
                &vec![0; shape.volume()],
                BitWidth::W4,
                WeightOffset::PerLayer(0),
            ),
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0; co],
                vec![FixedPointMultiplier::from_real(1.0); co],
                0,
                BitWidth::W8,
            ),
        ))
    }

    fn depthwise(c: usize) -> AnyOp {
        let shape = Shape::new(c, 3, 3, 1);
        AnyOp::Conv(QConv2d::new(
            QConvWeights::new(
                shape,
                true,
                &vec![0; shape.volume()],
                BitWidth::W4,
                WeightOffset::PerChannel(vec![0; c]),
            ),
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0; c],
                vec![FixedPointMultiplier::from_real(1.0); c],
                0,
                BitWidth::W8,
            ),
        ))
    }

    #[test]
    fn reference_selects_direct_everywhere() {
        let b = ReferenceBackend;
        let input = Shape::feature_map(8, 8, 4);
        for op in [
            pointwise(4, 8),
            depthwise(4),
            AnyOp::Pool(QAvgPool),
            AnyOp::Add(QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8)),
        ] {
            assert_eq!(
                b.select(&op, &[input, input], &[BitWidth::W8, BitWidth::W8]),
                KernelChoice::DirectConv
            );
        }
        assert_eq!(b.name(), "reference");
    }

    #[test]
    fn tiled_lowers_dense_convs_only() {
        let b = TiledBackend::default();
        let input = Shape::feature_map(8, 8, 4);
        assert_eq!(
            b.select(&pointwise(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        assert_eq!(
            b.select(&depthwise(4), &[input], &[BitWidth::W8]),
            KernelChoice::DirectConv
        );
        assert_eq!(
            b.select(&AnyOp::Pool(QAvgPool), &[input], &[BitWidth::W8]),
            KernelChoice::DirectConv
        );
        assert_eq!(b.name(), "tiled");
    }

    #[test]
    fn tiled_selection_is_cost_driven() {
        // A 3×3 conv with a single output channel: the im2col copy costs
        // more than the per-MAC saving, so the direct loop stays cheaper.
        let b = TiledBackend::default();
        let input = Shape::feature_map(8, 8, 4);
        assert_eq!(
            b.select(&dense3x3(4, 1), &[input], &[BitWidth::W8]),
            KernelChoice::DirectConv
        );
        // Two channels amortize the expansion: GEMM wins.
        assert_eq!(
            b.select(&dense3x3(4, 2), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        // A pointwise conv over an 8-bit input borrows the input zero-copy
        // (no expansion traffic), so GEMM wins even at one output channel.
        assert_eq!(
            b.select(&pointwise(4, 1), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        // A sub-byte input must be linearly unpacked first — the traffic
        // term applies again and one channel stays direct.
        assert_eq!(
            b.select(&pointwise(4, 1), &[input], &[BitWidth::W4]),
            KernelChoice::DirectConv
        );
    }

    #[test]
    fn tiled_scratch_ceiling_vetoes_gemm() {
        let input = Shape::feature_map(8, 8, 4);
        let b = TiledBackend::default().with_scratch_limit(8);
        assert_eq!(
            b.select(&dense3x3(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::DirectConv
        );
        let roomy = TiledBackend::default().with_scratch_limit(1 << 20);
        assert_eq!(
            roomy.select(&dense3x3(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        // The pointwise identity path materializes nothing, so the ceiling
        // does not apply to it (its scratch need is genuinely zero)...
        assert_eq!(
            b.select(&pointwise(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        // ...but a sub-byte pointwise input unpacks into a real buffer and
        // is vetoed like any other expansion.
        assert_eq!(
            b.select(&pointwise(4, 8), &[input], &[BitWidth::W4]),
            KernelChoice::DirectConv
        );
    }

    #[test]
    fn backend_kind_delegates() {
        let input = Shape::feature_map(8, 8, 4);
        assert_eq!(BackendKind::default().name(), "reference");
        assert_eq!(BackendKind::tiled().name(), "tiled");
        assert_eq!(
            BackendKind::tiled().select(&pointwise(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::BlockedGemm
        );
        assert_eq!(
            BackendKind::Reference.select(&pointwise(4, 8), &[input], &[BitWidth::W8]),
            KernelChoice::DirectConv
        );
    }

    #[test]
    fn choice_labels() {
        assert_eq!(KernelChoice::DirectConv.label(), "direct");
        assert_eq!(KernelChoice::Im2colGemm.to_string(), "im2col_gemm");
        assert_eq!(KernelChoice::BlockedGemm.label(), "blocked_gemm");
        assert!(KernelChoice::Im2colGemm.is_gemm());
        assert!(KernelChoice::BlockedGemm.is_gemm());
        assert!(!KernelChoice::DirectConv.is_gemm());
    }
}
