use std::sync::Mutex;

use mixq_tensor::{ConvGeometry, Shape};

use crate::simd::{self, requant::RequantPlan};
use crate::threadpool::{partition_bounds, ThreadPool, MAX_POOL_THREADS};
use crate::{OpCounts, QActivation, QConvWeights, Requantizer};

/// Largest kernel area the depthwise fast path keeps its per-pixel tap
/// list on the stack for (5×5 and every smaller kernel; larger ones take
/// the generic loop).
const MAX_DW_TAPS: usize = 32;

/// An integer-only quantized convolution layer: packed weights, geometry and
/// a requantization stage (Eq. 5 evaluates the whole
/// `conv → batch-norm → quant-act` sub-graph in integer arithmetic).
///
/// The dataflow is output-stationary, as in the paper's extended CMSIS-NN
/// kernels: each output accumulator is produced to completion before moving
/// on, so the `i32` accumulator never spills.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, PartialEq)]
pub struct QConv2d {
    weights: QConvWeights,
    geometry: ConvGeometry,
    requant: Requantizer,
    /// SIMD transposition of `requant`, rebuilt with it in `new` (so
    /// requantizer rewrites like `with_saturated_thresholds` can never
    /// leave a stale plan behind).
    plan: RequantPlan,
}

impl QConv2d {
    /// Assembles a layer.
    ///
    /// # Panics
    ///
    /// Panics if the requantizer does not cover exactly the weight tensor's
    /// output channels.
    pub fn new(weights: QConvWeights, geometry: ConvGeometry, requant: Requantizer) -> Self {
        assert_eq!(
            requant.channels(),
            weights.out_channels(),
            "requantizer channels must match output channels"
        );
        assert_eq!(
            weights.shape().h,
            geometry.kh,
            "weight kernel height vs geometry"
        );
        assert_eq!(
            weights.shape().w,
            geometry.kw,
            "weight kernel width vs geometry"
        );
        let plan = RequantPlan::new(&requant);
        QConv2d {
            weights,
            geometry,
            requant,
            plan,
        }
    }

    /// The packed weights.
    pub fn weights(&self) -> &QConvWeights {
        &self.weights
    }

    /// The geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// The requantization stage.
    pub fn requant(&self) -> &Requantizer {
        &self.requant
    }

    /// The vectorized-epilogue plan for [`QConv2d::requant`] (see
    /// [`crate::simd::requant`]).
    pub fn plan(&self) -> &RequantPlan {
        &self.plan
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Shape {
        let (h, w) = self.geometry.output_size(input.h, input.w);
        Shape::new(input.n, h, w, self.weights.out_channels())
    }

    /// Runs the layer on a quantized activation, producing the quantized
    /// output activation and charging `ops`.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with the weights.
    pub fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        self.execute_buffered(x, &mut Vec::new(), ops)
    }

    /// [`QConv2d::execute`] writing its unpacked output codes through
    /// `out_codes` — the hook the [`crate::QGraph`] executor uses to reuse
    /// one arena buffer across layers instead of allocating per layer.
    pub fn execute_buffered(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> QActivation {
        let out_shape = self.execute_codes(x, out_codes, ops);
        QActivation::from_codes(
            out_shape,
            out_codes,
            self.requant.out_bits(),
            self.requant.zero_point().clamp(0, 255) as u8,
        )
    }

    /// The codes-only kernel core: runs the convolution writing unpacked
    /// output codes into `out_codes` (cleared and resized in place) and
    /// returns the output shape, without packing an output tensor. The
    /// arena-aware executor packs the codes into recycled storage itself.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with the weights.
    pub fn execute_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        self.execute_codes_with(None, x, out_codes, ops)
    }

    /// [`QConv2d::execute_codes`] with an optional prepacked weight cache:
    /// `wcodes`, when given, holds the weight codes decoded to one per byte
    /// in `(c_o, k_h, k_w, c_i)` order, so the inner loop reads plain bytes
    /// instead of mask-and-shift extracting each sub-byte operand. 8-bit
    /// weights take the equivalent borrow of their packed bytes even
    /// without a cache. Bit-identical to the uncached path, including the
    /// abstract [`OpCounts`] ledger (which keeps pricing the deployed
    /// packed-flash reads, not the host cache).
    ///
    /// # Panics
    ///
    /// See [`QConv2d::execute_codes`]; additionally panics if `wcodes` has
    /// the wrong length.
    pub fn execute_codes_with(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        if let Some(w) = wcodes {
            assert_eq!(
                w.len(),
                self.weights.shape().volume(),
                "decoded weight cache length"
            );
        }
        // A decoded weight view exists whenever a cache was handed in or
        // the weights are 8-bit (their packed bytes are the codes).
        let wslice: Option<&[u8]> =
            wcodes.or_else(|| (!self.weights.needs_unpack()).then(|| self.weights.as_bytes()));
        if let Some(w) = wslice {
            if self.dw_fast_eligible(x) {
                return self.depthwise_fast(w, x, out_codes, ops);
            }
            return self.direct_loop(x, out_codes, ops, |i| w[i]);
        }
        self.direct_loop(x, out_codes, ops, |i| self.weights.code_at(i))
    }

    /// Whether the stack-tap depthwise fast path applies.
    fn dw_fast_eligible(&self, x: &QActivation) -> bool {
        self.weights.is_depthwise()
            && !x.needs_unpack()
            && self.geometry.kernel_area() <= MAX_DW_TAPS
    }

    /// [`QConv2d::execute_codes_with`] with an optional [`ThreadPool`]:
    /// the output channels split into contiguous blocks, one per worker —
    /// the direct-kernel half of the intra-walk parallelism (the GEMM
    /// kernels split im2col rows instead). Channel-interleaved NHWC
    /// output makes a worker's writes strided, so each worker writes its
    /// channel block as contiguous planes into `plane_scratch` (drawn
    /// from the arena's auxiliary buffer) and a serial pass re-interleaves
    /// — a host-side staging copy, charged nowhere, exactly like the
    /// prepack caches. Bit-identical to the serial path — per-output
    /// arithmetic is unchanged and the data-dependent ledger tallies sum
    /// over disjoint channel ranges — for any worker count.
    ///
    /// # Panics
    ///
    /// See [`QConv2d::execute_codes_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_codes_pooled(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        plane_scratch: &mut Vec<u8>,
        pool: Option<&ThreadPool>,
        ops: &mut OpCounts,
    ) -> Shape {
        let threads = pool.map_or(1, ThreadPool::threads);
        let out_shape = self.output_shape(x.shape());
        let c = out_shape.c;
        let mut chan_bounds = [0usize; MAX_POOL_THREADS + 1];
        let parts = if threads > 1 && c >= 2 {
            partition_bounds(c, threads, &mut chan_bounds)
        } else {
            1
        };
        if parts <= 1 {
            return self.execute_codes_with(wcodes, x, out_codes, ops);
        }
        if let Some(w) = wcodes {
            assert_eq!(
                w.len(),
                self.weights.shape().volume(),
                "decoded weight cache length"
            );
        }
        let wslice: Option<&[u8]> =
            wcodes.or_else(|| (!self.weights.needs_unpack()).then(|| self.weights.as_bytes()));
        let volume = out_shape.volume();
        let npix = volume / c;
        plane_scratch.clear();
        plane_scratch.resize(volume, 0);
        let mut byte_bounds = [0usize; MAX_POOL_THREADS + 1];
        for (b, ch) in byte_bounds.iter_mut().zip(&chan_bounds).take(parts + 1) {
            *b = ch * npix;
        }
        let merged = Mutex::new((0u64, 0u64, 0u64));
        pool.expect("parts > 1 implies a pool").broadcast_slices(
            plane_scratch.as_mut_slice(),
            &byte_bounds[..=parts],
            |worker, chunk| {
                let (lo, hi) = (chan_bounds[worker], chan_bounds[worker + 1]);
                let (mut rq, mut tc) = (0u64, 0u64);
                let macs = match wslice {
                    Some(w) if self.dw_fast_eligible(x) => {
                        self.depthwise_taps(w, x, lo, hi, true, chunk, &mut rq, &mut tc)
                    }
                    Some(w) => {
                        self.direct_channels(x, lo, hi, true, chunk, &mut rq, &mut tc, |i| w[i])
                    }
                    None => self.direct_channels(x, lo, hi, true, chunk, &mut rq, &mut tc, |i| {
                        self.weights.code_at(i)
                    }),
                };
                let mut m = merged.lock().unwrap();
                m.0 += macs;
                m.1 += rq;
                m.2 += tc;
            },
        );
        // Serial re-interleave of the channel planes into NHWC order.
        out_codes.clear();
        out_codes.resize(volume, 0);
        for co in 0..c {
            let plane = &plane_scratch[co * npix..(co + 1) * npix];
            for (pix, &v) in plane.iter().enumerate() {
                out_codes[pix * c + co] = v;
            }
        }
        let (macs, rq, tc) = merged.into_inner().unwrap();
        ops.requants += rq;
        ops.threshold_cmps += tc;
        self.charge_direct_ledger(x, out_shape, macs, ops);
        out_shape
    }

    /// The shared tail-ledger of every direct-kernel path: per-MAC loads
    /// and unpack charges are proportional to the MAC tally, so serial
    /// and channel-split executions charge identically.
    fn charge_direct_ledger(
        &self,
        x: &QActivation,
        out_shape: Shape,
        macs: u64,
        ops: &mut OpCounts,
    ) {
        let w_unpack = self.weights.needs_unpack() as u64;
        let x_unpack = x.needs_unpack() as u64;
        ops.macs += macs;
        ops.act_loads += macs;
        ops.unpacks += (w_unpack + x_unpack) * macs;
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if self.weights.offset().is_per_channel() {
            // One extra in-loop subtraction per MAC (§6's ≈ 20% overhead).
            ops.offset_subs += macs;
        }
    }

    /// The depthwise fast path over a decoded weight view and an 8-bit
    /// input: the valid-tap list (kernel offset + input byte offset) is
    /// computed **once per output pixel** and shared across all channels,
    /// each channel's taps are read from its contiguous decoded weight
    /// row, and the input bytes are indexed directly — no per-MAC bounds
    /// checks, shape math or bit extraction. Bit-identical to the generic
    /// loop (same taps accumulated in the same order, exact `i64`
    /// arithmetic) and charges the identical abstract ledger.
    fn depthwise_fast(
        &self,
        wflat: &[u8],
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let out_shape = self.output_shape(x.shape());
        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let macs = self.depthwise_taps(
            wflat,
            x,
            0,
            out_shape.c,
            false,
            out_codes.as_mut_slice(),
            &mut ops.requants,
            &mut ops.threshold_cmps,
        );
        self.charge_direct_ledger(x, out_shape, macs, ops);
        out_shape
    }

    /// The depthwise fast-path core over output channels
    /// `[co_lo, co_hi)`, writing NHWC-interleaved codes (`plane == false`,
    /// full channel range) or contiguous per-channel planes relative to
    /// `co_lo` (`plane == true`, the worker layout). Returns the MAC
    /// tally; shared by the serial and channel-split paths so their
    /// arithmetic is structurally identical.
    #[allow(clippy::too_many_arguments)]
    fn depthwise_taps(
        &self,
        wflat: &[u8],
        x: &QActivation,
        co_lo: usize,
        co_hi: usize,
        plane: bool,
        out: &mut [u8],
        requants: &mut u64,
        threshold_cmps: &mut u64,
    ) -> u64 {
        let in_shape = x.shape();
        assert_eq!(
            in_shape.c,
            self.weights.out_channels(),
            "depthwise input channels"
        );
        let out_shape = self.output_shape(in_shape);
        let (pt, pl) = self.geometry.pad_top_left(in_shape.h, in_shape.w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let taps = kh * kw;
        let zx = x.zero_point() as i32;
        let xb = x.as_bytes();
        let c = in_shape.c;
        let npix = out_shape.pixels() * out_shape.n;

        // Channel-block dataflow: the channel dimension is the innermost
        // loop (the input's NHWC bytes are contiguous over it), swept in
        // blocks of ≤ DW_BLOCK with the block's weights transposed
        // tap-major into a stack panel once per block — so the per-tap
        // inner loop is a straight-line span multiply-accumulate the
        // compiler can vectorize. Per-product values fit i32
        // (`|x−zx|·|w−zw| ≤ 255²`, ≤ MAX_DW_TAPS of them), and integer
        // sums over the same taps in the same order make the block loop
        // bit-identical to the per-channel formulation.
        const DW_BLOCK: usize = 64;
        let level = simd::active_level();
        let mut macs = 0u64;
        let mut codes = [0u8; DW_BLOCK];
        let mut tap_off = [0usize; MAX_DW_TAPS];
        let mut tap_base = [0usize; MAX_DW_TAPS];
        let mut wtr = [0u8; MAX_DW_TAPS * DW_BLOCK];
        let mut zw_blk = [0i32; DW_BLOCK];
        let mut acc = [0i32; DW_BLOCK];
        let mut blk_lo = co_lo;
        while blk_lo < co_hi {
            let blk_n = DW_BLOCK.min(co_hi - blk_lo);
            for t in 0..taps {
                for j in 0..blk_n {
                    wtr[t * DW_BLOCK + j] = wflat[(blk_lo + j) * taps + t];
                }
            }
            for (j, z) in zw_blk.iter_mut().enumerate().take(blk_n) {
                *z = self.weights.offset().at(blk_lo + j);
            }
            for n in 0..out_shape.n {
                for oy in 0..out_shape.h {
                    for ox in 0..out_shape.w {
                        let mut nt = 0usize;
                        for ky in 0..kh {
                            let iy = (oy * s + ky) as isize - pt as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * s + kx) as isize - pl as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                tap_off[nt] = ky * kw + kx;
                                tap_base[nt] =
                                    ((n * in_shape.h + iy as usize) * in_shape.w + ix as usize) * c;
                                nt += 1;
                            }
                        }
                        let pix = (n * out_shape.h + oy) * out_shape.w + ox;
                        let obase = pix * c;
                        acc[..blk_n].fill(0);
                        for t in 0..nt {
                            let xrow = &xb[tap_base[t] + blk_lo..tap_base[t] + blk_lo + blk_n];
                            let wrow = &wtr[tap_off[t] * DW_BLOCK..tap_off[t] * DW_BLOCK + blk_n];
                            for ((a, zw), (&xv, &wv)) in acc[..blk_n]
                                .iter_mut()
                                .zip(&zw_blk[..blk_n])
                                .zip(xrow.iter().zip(wrow))
                            {
                                *a += (xv as i32 - zx) * (wv as i32 - zw);
                            }
                        }
                        // Fused vectorized epilogue over the channel
                        // block (bit-identical to per-element
                        // `Requantizer::apply`, same ledger totals).
                        simd::requant::apply_i32_block(
                            &self.plan,
                            &self.requant,
                            level,
                            blk_lo,
                            &acc[..blk_n],
                            &mut codes[..blk_n],
                            requants,
                            threshold_cmps,
                        );
                        if plane {
                            for (j, &code) in codes[..blk_n].iter().enumerate() {
                                out[(blk_lo + j - co_lo) * npix + pix] = code;
                            }
                        } else {
                            out[obase + blk_lo..obase + blk_lo + blk_n]
                                .copy_from_slice(&codes[..blk_n]);
                        }
                        macs += (nt * blk_n) as u64;
                    }
                }
            }
            blk_lo += blk_n;
        }
        macs
    }

    /// The direct output-stationary loop, generic over the weight reader
    /// (decoded cache slice vs packed extraction).
    fn direct_loop(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
        wget: impl Fn(usize) -> u8,
    ) -> Shape {
        let out_shape = self.output_shape(x.shape());
        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let macs = self.direct_channels(
            x,
            0,
            out_shape.c,
            false,
            out_codes.as_mut_slice(),
            &mut ops.requants,
            &mut ops.threshold_cmps,
            wget,
        );
        self.charge_direct_ledger(x, out_shape, macs, ops);
        out_shape
    }

    /// The generic direct-loop core over output channels `[co_lo, co_hi)`
    /// with the same interleaved-vs-plane output convention as
    /// [`QConv2d::depthwise_taps`]. Returns the MAC tally.
    #[allow(clippy::too_many_arguments)]
    fn direct_channels(
        &self,
        x: &QActivation,
        co_lo: usize,
        co_hi: usize,
        plane: bool,
        out: &mut [u8],
        requants: &mut u64,
        threshold_cmps: &mut u64,
        wget: impl Fn(usize) -> u8,
    ) -> u64 {
        let in_shape = x.shape();
        let depthwise = self.weights.is_depthwise();
        if depthwise {
            assert_eq!(
                in_shape.c,
                self.weights.out_channels(),
                "depthwise input channels"
            );
        } else {
            assert_eq!(in_shape.c, self.weights.in_channels(), "input channels");
        }
        let out_shape = self.output_shape(in_shape);
        let (pt, pl) = self.geometry.pad_top_left(in_shape.h, in_shape.w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let zx = x.zero_point() as i64;
        let wshape = self.weights.shape();
        let npix = out_shape.pixels() * out_shape.n;

        let mut macs = 0u64;
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    let pix = (n * out_shape.h + oy) * out_shape.w + ox;
                    for co in co_lo..co_hi {
                        let zw = self.weights.offset().at(co) as i64;
                        let mut acc: i64 = 0;
                        for ky in 0..kh {
                            let iy = (oy * s + ky) as isize - pt as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * s + kx) as isize - pl as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                let (iy, ix) = (iy as usize, ix as usize);
                                if depthwise {
                                    let xv = x.get(n, iy, ix, co) as i64;
                                    let wv = wget(wshape.index(co, ky, kx, 0)) as i64;
                                    acc += (xv - zx) * (wv - zw);
                                    macs += 1;
                                } else {
                                    for ci in 0..in_shape.c {
                                        let xv = x.get(n, iy, ix, ci) as i64;
                                        let wv = wget(wshape.index(co, ky, kx, ci)) as i64;
                                        acc += (xv - zx) * (wv - zw);
                                        macs += 1;
                                    }
                                }
                            }
                        }
                        let code = self.requant.apply(co, acc, requants, threshold_cmps);
                        let idx = if plane {
                            (co - co_lo) * npix + pix
                        } else {
                            pix * out_shape.c + co
                        };
                        out[idx] = code;
                    }
                }
            }
        }
        macs
    }

    /// Output zero-point of the layer as an activation code.
    pub(crate) fn out_zero_point(&self) -> u8 {
        self.requant.zero_point().clamp(0, 255) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightOffset;
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::Padding;

    fn identity_requant(channels: usize, bits: BitWidth) -> Requantizer {
        Requantizer::icn(
            vec![0; channels],
            vec![FixedPointMultiplier::from_real(1.0); channels],
            0,
            bits,
        )
    }

    #[test]
    fn pointwise_identity() {
        // 1x1 conv, weight code 1, Zw = 0 → output = input code.
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[1],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(1, BitWidth::W8),
        );
        let x =
            QActivation::from_codes(Shape::feature_map(2, 2, 1), &[5, 6, 7, 8], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![5, 6, 7, 8]);
        assert_eq!(ops.macs, 4);
        assert_eq!(ops.offset_subs, 0, "per-layer Zw costs nothing in-loop");
    }

    #[test]
    fn zero_points_are_subtracted() {
        // X = 10 with Zx = 10 means real zero → output must be Zy exactly.
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[3],
            BitWidth::W4,
            WeightOffset::PerLayer(1),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            Requantizer::icn(
                vec![0],
                vec![FixedPointMultiplier::from_real(1.0)],
                4,
                BitWidth::W8,
            ),
        );
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[10], BitWidth::W8, 10);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![4]); // zy only
        assert_eq!(y.zero_point(), 4);
    }

    #[test]
    fn same_padding_contributes_nothing() {
        // 3x3 all-ones weights (Zw=0) over all-ones input (Zx=0): corner
        // outputs see 4 pixels, centre 9 — padded taps add zero.
        let w = QConvWeights::new(
            Shape::new(1, 3, 3, 1),
            false,
            &[1; 9],
            BitWidth::W2,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(1, BitWidth::W8),
        );
        let x = QActivation::from_codes(Shape::feature_map(3, 3, 1), &[1; 9], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.get(0, 1, 1, 0), 9);
        assert_eq!(y.get(0, 0, 0, 0), 4);
        assert_eq!(y.get(0, 0, 1, 0), 6);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            true,
            &[2, 3],
            BitWidth::W4,
            WeightOffset::PerChannel(vec![0, 0]),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(2, BitWidth::W8),
        );
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 2), &[4, 5], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![8, 15]);
        assert_eq!(ops.offset_subs, ops.macs, "PC offsets charged per MAC");
    }

    #[test]
    fn sub_byte_operands_charge_unpacks() {
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[1],
            BitWidth::W4, // sub-byte weights
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(1, BitWidth::W8),
        );
        let x = QActivation::from_codes(
            Shape::feature_map(2, 2, 1),
            &[1, 2, 3, 0],
            BitWidth::W2, // sub-byte activations
            0,
        );
        let mut ops = OpCounts::default();
        let _ = conv.execute(&x, &mut ops);
        assert_eq!(ops.macs, 4);
        assert_eq!(ops.unpacks, 8, "one per operand per MAC");
    }

    #[test]
    fn stride_two_output_shape() {
        let w = QConvWeights::new(
            Shape::new(4, 3, 3, 2),
            false,
            &[0; 72],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 2, Padding::Same),
            identity_requant(4, BitWidth::W4),
        );
        let x = QActivation::from_codes(Shape::feature_map(8, 8, 2), &[0; 128], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.shape(), Shape::feature_map(4, 4, 4));
        assert_eq!(y.bits(), BitWidth::W4);
    }

    #[test]
    #[should_panic(expected = "requantizer channels")]
    fn requant_channel_mismatch_panics() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            false,
            &[0, 0],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let _ = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(3, BitWidth::W8),
        );
    }
}
