use mixq_tensor::{ConvGeometry, Shape};

use crate::{OpCounts, QActivation, QConvWeights, Requantizer};

/// Largest kernel area the depthwise fast path keeps its per-pixel tap
/// list on the stack for (5×5 and every smaller kernel; larger ones take
/// the generic loop).
const MAX_DW_TAPS: usize = 32;

/// An integer-only quantized convolution layer: packed weights, geometry and
/// a requantization stage (Eq. 5 evaluates the whole
/// `conv → batch-norm → quant-act` sub-graph in integer arithmetic).
///
/// The dataflow is output-stationary, as in the paper's extended CMSIS-NN
/// kernels: each output accumulator is produced to completion before moving
/// on, so the `i32` accumulator never spills.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, PartialEq)]
pub struct QConv2d {
    weights: QConvWeights,
    geometry: ConvGeometry,
    requant: Requantizer,
}

impl QConv2d {
    /// Assembles a layer.
    ///
    /// # Panics
    ///
    /// Panics if the requantizer does not cover exactly the weight tensor's
    /// output channels.
    pub fn new(weights: QConvWeights, geometry: ConvGeometry, requant: Requantizer) -> Self {
        assert_eq!(
            requant.channels(),
            weights.out_channels(),
            "requantizer channels must match output channels"
        );
        assert_eq!(
            weights.shape().h,
            geometry.kh,
            "weight kernel height vs geometry"
        );
        assert_eq!(
            weights.shape().w,
            geometry.kw,
            "weight kernel width vs geometry"
        );
        QConv2d {
            weights,
            geometry,
            requant,
        }
    }

    /// The packed weights.
    pub fn weights(&self) -> &QConvWeights {
        &self.weights
    }

    /// The geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// The requantization stage.
    pub fn requant(&self) -> &Requantizer {
        &self.requant
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Shape {
        let (h, w) = self.geometry.output_size(input.h, input.w);
        Shape::new(input.n, h, w, self.weights.out_channels())
    }

    /// Runs the layer on a quantized activation, producing the quantized
    /// output activation and charging `ops`.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with the weights.
    pub fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        self.execute_buffered(x, &mut Vec::new(), ops)
    }

    /// [`QConv2d::execute`] writing its unpacked output codes through
    /// `out_codes` — the hook the [`crate::QGraph`] executor uses to reuse
    /// one arena buffer across layers instead of allocating per layer.
    pub fn execute_buffered(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> QActivation {
        let out_shape = self.execute_codes(x, out_codes, ops);
        QActivation::from_codes(
            out_shape,
            out_codes,
            self.requant.out_bits(),
            self.requant.zero_point().clamp(0, 255) as u8,
        )
    }

    /// The codes-only kernel core: runs the convolution writing unpacked
    /// output codes into `out_codes` (cleared and resized in place) and
    /// returns the output shape, without packing an output tensor. The
    /// arena-aware executor packs the codes into recycled storage itself.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with the weights.
    pub fn execute_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        self.execute_codes_with(None, x, out_codes, ops)
    }

    /// [`QConv2d::execute_codes`] with an optional prepacked weight cache:
    /// `wcodes`, when given, holds the weight codes decoded to one per byte
    /// in `(c_o, k_h, k_w, c_i)` order, so the inner loop reads plain bytes
    /// instead of mask-and-shift extracting each sub-byte operand. 8-bit
    /// weights take the equivalent borrow of their packed bytes even
    /// without a cache. Bit-identical to the uncached path, including the
    /// abstract [`OpCounts`] ledger (which keeps pricing the deployed
    /// packed-flash reads, not the host cache).
    ///
    /// # Panics
    ///
    /// See [`QConv2d::execute_codes`]; additionally panics if `wcodes` has
    /// the wrong length.
    pub fn execute_codes_with(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        if let Some(w) = wcodes {
            assert_eq!(
                w.len(),
                self.weights.shape().volume(),
                "decoded weight cache length"
            );
        }
        // A decoded weight view exists whenever a cache was handed in or
        // the weights are 8-bit (their packed bytes are the codes).
        let wslice: Option<&[u8]> =
            wcodes.or_else(|| (!self.weights.needs_unpack()).then(|| self.weights.as_bytes()));
        if let Some(w) = wslice {
            if self.weights.is_depthwise()
                && !x.needs_unpack()
                && self.geometry.kernel_area() <= MAX_DW_TAPS
            {
                return self.depthwise_fast(w, x, out_codes, ops);
            }
            return self.direct_loop(x, out_codes, ops, |i| w[i]);
        }
        self.direct_loop(x, out_codes, ops, |i| self.weights.code_at(i))
    }

    /// The depthwise fast path over a decoded weight view and an 8-bit
    /// input: the valid-tap list (kernel offset + input byte offset) is
    /// computed **once per output pixel** and shared across all channels,
    /// each channel's taps are read from its contiguous decoded weight
    /// row, and the input bytes are indexed directly — no per-MAC bounds
    /// checks, shape math or bit extraction. Bit-identical to the generic
    /// loop (same taps accumulated in the same order, exact `i64`
    /// arithmetic) and charges the identical abstract ledger.
    fn depthwise_fast(
        &self,
        wflat: &[u8],
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let in_shape = x.shape();
        assert_eq!(
            in_shape.c,
            self.weights.out_channels(),
            "depthwise input channels"
        );
        let out_shape = self.output_shape(in_shape);
        let (pt, pl) = self.geometry.pad_top_left(in_shape.h, in_shape.w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let taps = kh * kw;
        let zx = x.zero_point() as i64;
        let per_channel = self.weights.offset().is_per_channel();
        let w_unpack = self.weights.needs_unpack() as u64;
        let xb = x.as_bytes();
        let c = in_shape.c;

        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let mut macs = 0u64;
        let mut tap_off = [0usize; MAX_DW_TAPS];
        let mut tap_base = [0usize; MAX_DW_TAPS];
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    let mut nt = 0usize;
                    for ky in 0..kh {
                        let iy = (oy * s + ky) as isize - pt as isize;
                        if iy < 0 || iy >= in_shape.h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * s + kx) as isize - pl as isize;
                            if ix < 0 || ix >= in_shape.w as isize {
                                continue;
                            }
                            tap_off[nt] = ky * kw + kx;
                            tap_base[nt] =
                                ((n * in_shape.h + iy as usize) * in_shape.w + ix as usize) * c;
                            nt += 1;
                        }
                    }
                    let obase = out_shape.index(n, oy, ox, 0);
                    for co in 0..c {
                        let zw = self.weights.offset().at(co) as i64;
                        let wrow = &wflat[co * taps..(co + 1) * taps];
                        let mut acc = 0i64;
                        for t in 0..nt {
                            let xv = xb[tap_base[t] + co] as i64;
                            let wv = wrow[tap_off[t]] as i64;
                            acc += (xv - zx) * (wv - zw);
                        }
                        let code =
                            self.requant
                                .apply(co, acc, &mut ops.requants, &mut ops.threshold_cmps);
                        out_codes[obase + co] = code;
                    }
                    macs += (nt * c) as u64;
                }
            }
        }
        ops.macs += macs;
        ops.act_loads += macs;
        ops.unpacks += w_unpack * macs; // 8-bit input: no activation unpacks
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if per_channel {
            ops.offset_subs += macs;
        }
        out_shape
    }

    /// The direct output-stationary loop, generic over the weight reader
    /// (decoded cache slice vs packed extraction).
    fn direct_loop(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
        wget: impl Fn(usize) -> u8,
    ) -> Shape {
        let in_shape = x.shape();
        let depthwise = self.weights.is_depthwise();
        if depthwise {
            assert_eq!(
                in_shape.c,
                self.weights.out_channels(),
                "depthwise input channels"
            );
        } else {
            assert_eq!(in_shape.c, self.weights.in_channels(), "input channels");
        }
        let out_shape = self.output_shape(in_shape);
        let (pt, pl) = self.geometry.pad_top_left(in_shape.h, in_shape.w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let zx = x.zero_point() as i64;
        let per_channel = self.weights.offset().is_per_channel();
        let w_unpack = self.weights.needs_unpack() as u64;
        let x_unpack = x.needs_unpack() as u64;
        let wshape = self.weights.shape();

        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let mut macs = 0u64;
        let mut unpacks = 0u64;
        let mut act_loads = 0u64;
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    for co in 0..out_shape.c {
                        let zw = self.weights.offset().at(co) as i64;
                        let mut acc: i64 = 0;
                        for ky in 0..kh {
                            let iy = (oy * s + ky) as isize - pt as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * s + kx) as isize - pl as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                let (iy, ix) = (iy as usize, ix as usize);
                                if depthwise {
                                    let xv = x.get(n, iy, ix, co) as i64;
                                    let wv = wget(wshape.index(co, ky, kx, 0)) as i64;
                                    acc += (xv - zx) * (wv - zw);
                                    macs += 1;
                                    act_loads += 1;
                                    unpacks += w_unpack + x_unpack;
                                } else {
                                    for ci in 0..in_shape.c {
                                        let xv = x.get(n, iy, ix, ci) as i64;
                                        let wv = wget(wshape.index(co, ky, kx, ci)) as i64;
                                        acc += (xv - zx) * (wv - zw);
                                        macs += 1;
                                        act_loads += 1;
                                        unpacks += w_unpack + x_unpack;
                                    }
                                }
                            }
                        }
                        let code =
                            self.requant
                                .apply(co, acc, &mut ops.requants, &mut ops.threshold_cmps);
                        out_codes[out_shape.index(n, oy, ox, co)] = code;
                    }
                }
            }
        }
        ops.macs += macs;
        ops.unpacks += unpacks;
        ops.act_loads += act_loads;
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if per_channel {
            // One extra in-loop subtraction per MAC (§6's ≈ 20% overhead).
            ops.offset_subs += macs;
        }
        out_shape
    }

    /// Output zero-point of the layer as an activation code.
    pub(crate) fn out_zero_point(&self) -> u8 {
        self.requant.zero_point().clamp(0, 255) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightOffset;
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::Padding;

    fn identity_requant(channels: usize, bits: BitWidth) -> Requantizer {
        Requantizer::icn(
            vec![0; channels],
            vec![FixedPointMultiplier::from_real(1.0); channels],
            0,
            bits,
        )
    }

    #[test]
    fn pointwise_identity() {
        // 1x1 conv, weight code 1, Zw = 0 → output = input code.
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[1],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(1, BitWidth::W8),
        );
        let x =
            QActivation::from_codes(Shape::feature_map(2, 2, 1), &[5, 6, 7, 8], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![5, 6, 7, 8]);
        assert_eq!(ops.macs, 4);
        assert_eq!(ops.offset_subs, 0, "per-layer Zw costs nothing in-loop");
    }

    #[test]
    fn zero_points_are_subtracted() {
        // X = 10 with Zx = 10 means real zero → output must be Zy exactly.
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[3],
            BitWidth::W4,
            WeightOffset::PerLayer(1),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            Requantizer::icn(
                vec![0],
                vec![FixedPointMultiplier::from_real(1.0)],
                4,
                BitWidth::W8,
            ),
        );
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[10], BitWidth::W8, 10);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![4]); // zy only
        assert_eq!(y.zero_point(), 4);
    }

    #[test]
    fn same_padding_contributes_nothing() {
        // 3x3 all-ones weights (Zw=0) over all-ones input (Zx=0): corner
        // outputs see 4 pixels, centre 9 — padded taps add zero.
        let w = QConvWeights::new(
            Shape::new(1, 3, 3, 1),
            false,
            &[1; 9],
            BitWidth::W2,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            identity_requant(1, BitWidth::W8),
        );
        let x = QActivation::from_codes(Shape::feature_map(3, 3, 1), &[1; 9], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.get(0, 1, 1, 0), 9);
        assert_eq!(y.get(0, 0, 0, 0), 4);
        assert_eq!(y.get(0, 0, 1, 0), 6);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            true,
            &[2, 3],
            BitWidth::W4,
            WeightOffset::PerChannel(vec![0, 0]),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(2, BitWidth::W8),
        );
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 2), &[4, 5], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![8, 15]);
        assert_eq!(ops.offset_subs, ops.macs, "PC offsets charged per MAC");
    }

    #[test]
    fn sub_byte_operands_charge_unpacks() {
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[1],
            BitWidth::W4, // sub-byte weights
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(1, BitWidth::W8),
        );
        let x = QActivation::from_codes(
            Shape::feature_map(2, 2, 1),
            &[1, 2, 3, 0],
            BitWidth::W2, // sub-byte activations
            0,
        );
        let mut ops = OpCounts::default();
        let _ = conv.execute(&x, &mut ops);
        assert_eq!(ops.macs, 4);
        assert_eq!(ops.unpacks, 8, "one per operand per MAC");
    }

    #[test]
    fn stride_two_output_shape() {
        let w = QConvWeights::new(
            Shape::new(4, 3, 3, 2),
            false,
            &[0; 72],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 2, Padding::Same),
            identity_requant(4, BitWidth::W4),
        );
        let x = QActivation::from_codes(Shape::feature_map(8, 8, 2), &[0; 128], BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        assert_eq!(y.shape(), Shape::feature_map(4, 4, 4));
        assert_eq!(y.bits(), BitWidth::W4);
    }

    #[test]
    #[should_panic(expected = "requantizer channels")]
    fn requant_channel_mismatch_panics() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            false,
            &[0, 0],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let _ = QConv2d::new(
            w,
            ConvGeometry::pointwise(),
            identity_requant(3, BitWidth::W8),
        );
    }
}
