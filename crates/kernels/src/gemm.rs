//! The im2col + GEMM convolution path — the dataflow CMSIS-NN's `conv`
//! kernels actually use on the Cortex-M (§6's library lowers convolutions
//! to an image-to-column expansion followed by a matrix product so the
//! dual-MAC `SMLAD` can stream through contiguous operands).
//!
//! Functionally identical to [`QConv2d::execute`]; the reorganized loop
//! exposes the im2col buffer cost that the cycle model charges. Padded
//! taps are materialized as the input zero-point `Zx`, which contributes
//! exactly zero to `Σ (X − Zx)(W − Zw)` — the same trick the real kernels
//! use so the inner loop stays branch-free.

use std::sync::Mutex;

use mixq_tensor::Shape;

use crate::threadpool::{partition_bounds, ThreadPool, MAX_POOL_THREADS};
use crate::{OpCounts, QActivation, QConv2d};

/// The im2col expansion of one input: a `rows × k` matrix of input codes
/// where `rows = out_h·out_w` and `k = k_h·k_w·c_i`, with `Zx` at padded
/// taps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Im2Col {
    data: Vec<u8>,
    rows: usize,
    k: usize,
}

impl Im2Col {
    /// Number of output pixels (matrix rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Patch length `k_h·k_w·c_i` (matrix columns).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The matrix row for output pixel `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.k..(r + 1) * self.k]
    }

    /// Buffer size in bytes (charged to RAM by a real deployment; the
    /// paper's Eq. 7 accounting keeps activations packed instead, which is
    /// why CMSIS-NN expands only one row at a time).
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Consumes the matrix, returning its backing row-major code buffer
    /// (`rows × k`).
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

impl QConv2d {
    /// Expands the input into its im2col matrix (standard convolutions
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers (CMSIS-NN lowers those directly) or on a
    /// channel mismatch.
    pub fn im2col(&self, x: &QActivation, ops: &mut OpCounts) -> Im2Col {
        let mut data = Vec::new();
        let (rows, k) = self.im2col_into(x, &mut data, ops);
        Im2Col { data, rows, k }
    }

    /// [`QConv2d::im2col`] writing the expansion into a caller-owned buffer
    /// (cleared and resized in place) and returning `(rows, k)` — the
    /// pooled form the graph executor feeds from its arena so GEMM-lowered
    /// nodes allocate nothing in steady state.
    ///
    /// # Panics
    ///
    /// See [`QConv2d::im2col`].
    pub fn im2col_into(
        &self,
        x: &QActivation,
        data: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> (usize, usize) {
        self.im2col_into_pooled(x, data, None, ops)
    }

    /// [`QConv2d::im2col_into`] with an optional [`ThreadPool`]: the
    /// expansion's rows are independent gathers into disjoint `k`-byte
    /// stripes of the buffer, so they split into contiguous row blocks
    /// across the workers. Bit-identical for any worker count (each row's
    /// bytes, and the load tally summed over disjoint row ranges, don't
    /// depend on the split).
    ///
    /// # Panics
    ///
    /// See [`QConv2d::im2col`].
    pub fn im2col_into_pooled(
        &self,
        x: &QActivation,
        data: &mut Vec<u8>,
        pool: Option<&ThreadPool>,
        ops: &mut OpCounts,
    ) -> (usize, usize) {
        assert!(
            !self.weights().is_depthwise(),
            "im2col path applies to standard convolutions"
        );
        let in_shape = x.shape();
        assert_eq!(in_shape.c, self.weights().in_channels(), "input channels");
        let out_shape = self.output_shape(in_shape);
        let k = self.geometry().kernel_area() * in_shape.c;
        let rows = out_shape.pixels() * out_shape.n;
        data.clear();
        data.resize(rows * k, 0);
        let threads = pool.map_or(1, ThreadPool::threads);
        // One code per byte already? Then every valid tap is a straight
        // `memcpy` from the input bytes on every path.
        let direct: Option<&[u8]> = (!x.needs_unpack()).then(|| x.as_bytes());
        let mut loads = 0u64;
        let mut split = false;
        if threads > 1 && rows >= 2 {
            let mut row_bounds = [0usize; MAX_POOL_THREADS + 1];
            let parts = partition_bounds(rows, threads, &mut row_bounds);
            if parts > 1 {
                let mut byte_bounds = [0usize; MAX_POOL_THREADS + 1];
                for (b, r) in byte_bounds.iter_mut().zip(&row_bounds).take(parts + 1) {
                    *b = r * k;
                }
                let merged = Mutex::new(0u64);
                pool.expect("threads > 1 implies a pool").broadcast_slices(
                    data.as_mut_slice(),
                    &byte_bounds[..=parts],
                    |w, chunk| {
                        let local = self.im2col_rows(x, out_shape, row_bounds[w], chunk, direct);
                        *merged.lock().unwrap() += local;
                    },
                );
                loads = merged.into_inner().unwrap();
                split = true;
            }
        }
        if !split {
            if direct.is_none() {
                // Serial sub-byte staging: decode the whole input once
                // (SIMD unpack) into the slack of the scratch buffer, then
                // gather rows from the flat decode instead of extracting
                // bits per element. Same bytes and the same abstract
                // ledger — `unpacks` still charges the per-element model
                // the microcontroller would pay.
                let vol = in_shape.volume();
                data.resize(rows * k + vol, 0);
                let (head, tail) = data.split_at_mut(rows * k);
                x.unpack_into(&mut tail[..vol]);
                loads = self.im2col_rows(x, out_shape, 0, head, Some(&tail[..vol]));
                data.truncate(rows * k);
            } else {
                loads = self.im2col_rows(x, out_shape, 0, data.as_mut_slice(), direct);
            }
        }
        ops.act_loads += loads;
        if x.needs_unpack() {
            ops.unpacks += loads;
        }
        (rows, k)
    }

    /// Gathers the im2col rows starting at `r_lo` into `out` (whose
    /// length picks the row count) and returns the non-padded load tally
    /// — the shared core of the serial and row-parallel expansions.
    ///
    /// `flat`, when given, holds the input codes decoded to one per byte
    /// in NHWC order (either the 8-bit tensor's own bytes or a staged
    /// sub-byte decode): each valid tap then copies one contiguous channel
    /// span instead of extracting elements one by one. Padded taps fill
    /// with `Zx`. Same bytes and load tally either way.
    fn im2col_rows(
        &self,
        x: &QActivation,
        out_shape: Shape,
        r_lo: usize,
        out: &mut [u8],
        flat: Option<&[u8]>,
    ) -> u64 {
        let in_shape = x.shape();
        let g = self.geometry();
        let (pt, pl) = g.pad_top_left(in_shape.h, in_shape.w);
        let k = g.kernel_area() * in_shape.c;
        let c = in_shape.c;
        let zx = x.zero_point();
        let mut loads = 0u64;
        for (rr, row_out) in out.chunks_exact_mut(k).enumerate() {
            let row = r_lo + rr;
            let ox = row % out_shape.w;
            let oy = (row / out_shape.w) % out_shape.h;
            let n = row / (out_shape.w * out_shape.h);
            let mut col = 0usize;
            for ky in 0..g.kh {
                let iy = (oy * g.stride + ky) as isize - pt as isize;
                let y_ok = iy >= 0 && iy < in_shape.h as isize;
                for kx in 0..g.kw {
                    let ix = (ox * g.stride + kx) as isize - pl as isize;
                    let span = &mut row_out[col..col + c];
                    if !y_ok || ix < 0 || ix >= in_shape.w as isize {
                        span.fill(zx);
                    } else {
                        loads += c as u64;
                        if let Some(xb) = flat {
                            let base =
                                ((n * in_shape.h + iy as usize) * in_shape.w + ix as usize) * c;
                            span.copy_from_slice(&xb[base..base + c]);
                        } else {
                            for (ci, o) in span.iter_mut().enumerate() {
                                *o = x.get(n, iy as usize, ix as usize, ci);
                            }
                        }
                    }
                    col += c;
                }
            }
        }
        loads
    }

    /// Runs the layer through the im2col + GEMM path. Bit-identical to
    /// [`QConv2d::execute`].
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_gemm(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        let mut out_codes = Vec::new();
        let out_shape = self.execute_gemm_codes(x, &mut out_codes, ops);
        QActivation::from_codes(
            out_shape,
            &out_codes,
            self.requant().out_bits(),
            self.requant().zero_point().clamp(0, 255) as u8,
        )
    }

    /// The codes-only core of [`QConv2d::execute_gemm`]: writes the
    /// unpacked output codes into `out_codes` (cleared and resized in
    /// place) and returns the output shape — the hook the graph executor
    /// dispatches to when a node selected
    /// [`KernelChoice::Im2colGemm`](crate::KernelChoice::Im2colGemm).
    ///
    /// The im2col matrix and the flattened weight panel are transient
    /// buffers allocated per call (the scratch the memory model prices via
    /// [`im2col_scratch_bytes`]); GEMM-lowered nodes are therefore not part
    /// of the zero-allocation steady-state guarantee the direct path has.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers.
    pub fn execute_gemm_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        self.execute_gemm_codes_pooled(None, x, &mut Vec::new(), out_codes, ops)
    }

    /// [`QConv2d::execute_gemm_codes`] with prepacked operands and pooled
    /// scratch: `wcodes`, when given, is the weight matrix already decoded
    /// to one code per byte in `(c_o, k_h, k_w, c_i)` order (the
    /// [`PrepackedWeights::Codes`](crate::PrepackedWeights::Codes) cache a
    /// graph node builds once), and the im2col expansion is written into
    /// `im2col_scratch` (cleared and resized in place) instead of a fresh
    /// buffer — together they make GEMM-lowered graph nodes allocation-free
    /// in steady state. Bit-identical to the uncached path, including the
    /// abstract [`OpCounts`] ledger.
    ///
    /// # Panics
    ///
    /// Panics on depthwise layers, or if `wcodes` has the wrong length.
    pub fn execute_gemm_codes_pooled(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        im2col_scratch: &mut Vec<u8>,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        self.execute_gemm_codes_parallel(wcodes, x, im2col_scratch, out_codes, None, ops)
    }

    /// [`QConv2d::execute_gemm_codes_pooled`] with an optional
    /// [`ThreadPool`]: the im2col expansion and the `rows × c_o` GEMM
    /// split into contiguous im2col-row blocks, one per worker, inside
    /// this single node execution. Bit-identical — codes and ledger — for
    /// any worker count: rows are computed independently with the serial
    /// arithmetic, and the data-dependent requant/threshold tallies sum
    /// over disjoint row ranges.
    ///
    /// # Panics
    ///
    /// See [`QConv2d::execute_gemm_codes_pooled`].
    pub fn execute_gemm_codes_parallel(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        im2col_scratch: &mut Vec<u8>,
        out_codes: &mut Vec<u8>,
        pool: Option<&ThreadPool>,
        ops: &mut OpCounts,
    ) -> Shape {
        let (rows, k) = self.im2col_into_pooled(x, im2col_scratch, pool, ops);
        let in_shape = x.shape();
        let out_shape = self.output_shape(in_shape);
        let weights = self.weights();
        let zx = x.zero_point() as i64;
        let per_channel = weights.offset().is_per_channel();
        let w_unpack = weights.needs_unpack() as u64;
        let co_n = weights.out_channels();
        // The weight matrix of the GEMM: the flattened (c_o, k_h, k_w, c_i)
        // layout matches the im2col column order exactly, so 8-bit weights
        // are borrowed straight from their packed bytes, a prepacked cache
        // is consumed as-is, and only the uncached sub-byte case decodes
        // per call.
        let owned_w: Vec<u8>;
        let wflat: &[u8] = match wcodes {
            Some(w) => {
                assert_eq!(w.len(), co_n * k, "prepacked weight matrix length");
                w
            }
            None if !weights.needs_unpack() => weights.as_bytes(),
            None => {
                owned_w = weights.codes();
                &owned_w
            }
        };
        out_codes.clear();
        out_codes.resize(out_shape.volume(), 0);
        let data: &[u8] = im2col_scratch;
        let threads = pool.map_or(1, ThreadPool::threads);
        let mut split = false;
        if threads > 1 && rows >= 2 {
            let mut row_bounds = [0usize; MAX_POOL_THREADS + 1];
            let parts = partition_bounds(rows, threads, &mut row_bounds);
            if parts > 1 {
                let mut byte_bounds = [0usize; MAX_POOL_THREADS + 1];
                for (b, r) in byte_bounds.iter_mut().zip(&row_bounds).take(parts + 1) {
                    *b = r * co_n;
                }
                let merged = Mutex::new((0u64, 0u64));
                pool.expect("threads > 1 implies a pool").broadcast_slices(
                    out_codes.as_mut_slice(),
                    &byte_bounds[..=parts],
                    |w, chunk| {
                        let (mut rq, mut tc) = (0u64, 0u64);
                        self.gemm_rows(wflat, data, k, zx, row_bounds[w], chunk, &mut rq, &mut tc);
                        let mut m = merged.lock().unwrap();
                        m.0 += rq;
                        m.1 += tc;
                    },
                );
                let (rq, tc) = merged.into_inner().unwrap();
                ops.requants += rq;
                ops.threshold_cmps += tc;
                split = true;
            }
        }
        if !split {
            self.gemm_rows(
                wflat,
                data,
                k,
                zx,
                0,
                out_codes.as_mut_slice(),
                &mut ops.requants,
                &mut ops.threshold_cmps,
            );
        }
        let macs = (rows * k * co_n) as u64;
        ops.macs += macs;
        ops.unpacks += w_unpack * macs;
        ops.act_stores += out_shape.volume() as u64;
        ops.bias_adds += out_shape.volume() as u64;
        if per_channel {
            ops.offset_subs += macs;
        }
        out_shape
    }

    /// The naive GEMM over the im2col rows starting at `r_lo` (the output
    /// slice's length picks the row count) — the shared core of the
    /// serial and row-parallel paths, with per-element zero-point
    /// subtraction exactly as the reference kernel does it.
    #[allow(clippy::too_many_arguments)]
    fn gemm_rows(
        &self,
        wflat: &[u8],
        data: &[u8],
        k: usize,
        zx: i64,
        r_lo: usize,
        out: &mut [u8],
        requants: &mut u64,
        threshold_cmps: &mut u64,
    ) {
        let weights = self.weights();
        let co_n = weights.out_channels();
        for (rr, out_row) in out.chunks_exact_mut(co_n).enumerate() {
            let r = r_lo + rr;
            let row = &data[r * k..(r + 1) * k];
            for (co, out_code) in out_row.iter_mut().enumerate() {
                let zw = weights.offset().at(co) as i64;
                let wrow = &wflat[co * k..(co + 1) * k];
                let mut acc = 0i64;
                for (xv, wv) in row.iter().zip(wrow) {
                    acc += (*xv as i64 - zx) * (*wv as i64 - zw);
                }
                *out_code = self.requant().apply(co, acc, requants, threshold_cmps);
            }
        }
    }
}

/// Size in bytes of the im2col scratch buffer for a layer over an input
/// shape, at the input's bit precision (used by deployments that expand
/// whole rows).
pub fn im2col_scratch_bytes(conv: &QConv2d, input: Shape) -> usize {
    let g = conv.geometry();
    let k = g.kernel_area() * input.c;
    let out = conv.output_shape(input);
    out.pixels() * out.n * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QConvWeights, Requantizer, WeightOffset};
    use mixq_quant::{BitWidth, FixedPointMultiplier};
    use mixq_tensor::{ConvGeometry, Padding};

    fn make_conv(
        co: usize,
        ci: usize,
        k: usize,
        stride: usize,
        wbits: BitWidth,
        per_channel: bool,
    ) -> QConv2d {
        let wshape = Shape::new(co, k, k, ci);
        let codes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i * 7 + 3) % wbits.levels() as usize) as u8)
            .collect();
        let offset = if per_channel {
            WeightOffset::PerChannel((0..co).map(|c| c as i16 % 3).collect())
        } else {
            WeightOffset::PerLayer(1)
        };
        let weights = QConvWeights::new(wshape, false, &codes, wbits, offset);
        let requant = Requantizer::icn(
            (0..co).map(|c| c as i32 * 3 - 2).collect(),
            (0..co)
                .map(|c| FixedPointMultiplier::from_real(0.01 + c as f64 * 0.003))
                .collect(),
            0,
            BitWidth::W4,
        );
        QConv2d::new(
            weights,
            ConvGeometry::new(k, k, stride, Padding::Same),
            requant,
        )
    }

    fn make_input(h: usize, w: usize, c: usize, bits: BitWidth, zx: u8) -> QActivation {
        let shape = Shape::feature_map(h, w, c);
        let codes: Vec<u8> = (0..shape.volume())
            .map(|i| ((i * 5 + 1) % bits.levels() as usize) as u8)
            .collect();
        QActivation::from_codes(shape, &codes, bits, zx)
    }

    #[test]
    fn gemm_matches_direct_execution() {
        for (co, ci, k, stride) in [(4, 3, 3, 1), (2, 2, 3, 2), (5, 4, 1, 1)] {
            for per_channel in [false, true] {
                let conv = make_conv(co, ci, k, stride, BitWidth::W4, per_channel);
                let x = make_input(6, 6, ci, BitWidth::W8, 3);
                let mut ops_a = OpCounts::default();
                let mut ops_b = OpCounts::default();
                let direct = conv.execute(&x, &mut ops_a);
                let gemm = conv.execute_gemm(&x, &mut ops_b);
                assert_eq!(
                    direct, gemm,
                    "co={co} ci={ci} k={k} s={stride} pc={per_channel}"
                );
                assert_eq!(ops_a.requants, ops_b.requants);
                // Same mathematical MAC work modulo padded-tap counting
                // (GEMM multiplies padded zero-contributions too).
                assert!(ops_b.macs >= ops_a.macs);
            }
        }
    }

    #[test]
    fn gemm_matches_direct_on_sub_byte_activations() {
        let conv = make_conv(3, 2, 3, 1, BitWidth::W2, true);
        let x = make_input(5, 5, 2, BitWidth::W4, 0);
        let mut oa = OpCounts::default();
        let mut ob = OpCounts::default();
        assert_eq!(conv.execute(&x, &mut oa), conv.execute_gemm(&x, &mut ob));
    }

    #[test]
    fn im2col_geometry() {
        let conv = make_conv(2, 3, 3, 2, BitWidth::W8, false);
        let x = make_input(8, 8, 3, BitWidth::W8, 5);
        let mut ops = OpCounts::default();
        let m = conv.im2col(&x, &mut ops);
        assert_eq!(m.rows(), 4 * 4);
        assert_eq!(m.k(), 9 * 3);
        assert_eq!(m.byte_len(), 16 * 27);
        assert_eq!(im2col_scratch_bytes(&conv, x.shape()), 16 * 27);
    }

    #[test]
    fn im2col_pads_with_zero_point() {
        // 1x1 input, 3x3 kernel: every tap except the centre is padding.
        let conv = make_conv(1, 1, 3, 1, BitWidth::W8, false);
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 1), &[9], BitWidth::W8, 7);
        let mut ops = OpCounts::default();
        let m = conv.im2col(&x, &mut ops);
        let row = m.row(0);
        assert_eq!(row.len(), 9);
        assert_eq!(row[4], 9, "centre tap is the real value");
        for (i, &v) in row.iter().enumerate() {
            if i != 4 {
                assert_eq!(v, 7, "padded taps carry Zx");
            }
        }
    }

    #[test]
    #[should_panic(expected = "standard convolutions")]
    fn depthwise_rejected() {
        let w = QConvWeights::new(
            Shape::new(2, 3, 3, 1),
            true,
            &[0; 18],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0, 0],
                vec![FixedPointMultiplier::ZERO; 2],
                0,
                BitWidth::W8,
            ),
        );
        let x = make_input(4, 4, 2, BitWidth::W8, 0);
        let mut ops = OpCounts::default();
        let _ = conv.im2col(&x, &mut ops);
    }
}
