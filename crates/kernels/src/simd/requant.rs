//! Channel-vectorized requantization epilogue.
//!
//! PR 6 vectorized the dot products; profiling the full graph walk showed the
//! remaining wall-clock was dominated by the *epilogue*: the per-element
//! [`Requantizer::apply`] loop that turns each `i32`/`i64` accumulator `Φ`
//! into an output code. This module vectorizes that stage across output
//! channels — the per-channel `M0·2^N0` fixed-point multipliers (or threshold
//! tables) become SIMD lanes — exactly the fused scale-clamp-pack epilogue
//! the paper's deployment stack relies on for MCU throughput (Bruschi et al.
//! 2020; Ottavi et al. 2020 bake the same epilogue into hardware).
//!
//! Everything here is **bit-identical** to the scalar [`Requantizer::apply`]
//! path and charges the *same* `requants`/`cmps` ledger totals, so modeled
//! Cortex-M7 cycles are invariant under the host SIMD level (the ledgers
//! model MCU work, not host work — see `tests/deployment_consistency.rs`).
//!
//! Layout: [`RequantPlan`] is a SIMD-friendly transposition of a
//! [`Requantizer`] built once per layer ([`crate::QConv2d::new`] owns one).
//! The entry points ([`apply_gemm_row`], [`apply_phi_block`],
//! [`apply_i32_block`], [`qadd_lut`]) take an explicit [`SimdLevel`] and fall
//! back to the scalar `Requantizer::apply` loop for remainder lanes, for
//! plans the vector kernels cannot express (`N0 > 31`, odd-length threshold
//! tables, 255-entry `W8` tables where 255×2 linear compares would lose to 8
//! binary-search probes), and for out-of-`i32`-range corrections.
//!
//! The two tricky scalar semantics reproduced in-vector:
//!
//! * `FixedPointMultiplier::apply` is `(m0 as i64 * v) >> (31 − n0)` with an
//!   `i32` clamp. x86 has no 64-bit arithmetic shift right, so we use the
//!   bias trick `asr(x, s) = ((x ^ 2^63) >>ᵤ s) − (2^63 >>ᵤ s)` (exact for
//!   `s ∈ [0, 63]`, wrapping subtract); NEON's `SSHL` with a negative count
//!   is already a truncating arithmetic right shift.
//! * `ThresholdChannel::eval` is a binary search whose result equals the
//!   number of thresholds `≤ Φ` (ascending) or `≥ Φ` (descending) — the
//!   tables are monotone, so a branchless compare-accumulate over all
//!   entries produces the same `lo`. Both compares are evaluated and blended
//!   by a per-channel flip mask, which avoids any negation of `i64::MIN`.

use crate::requant::Requantizer;
use crate::simd::SimdLevel;

/// Lanes staged per chunk when widening `i32` accumulators for
/// [`apply_i32_block`] (matches the depthwise block size).
const PHI_CHUNK: usize = 64;

/// SIMD-friendly transposition of a [`Requantizer`]: per-channel multiplier
/// mantissas/shift biases (or transposed threshold tables) laid out for
/// contiguous vector loads. Built once per layer; building never fails —
/// plans the vector kernels cannot express are marked non-vectorizable and
/// every entry point then takes the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub struct RequantPlan {
    kind: PlanKind,
    zy: i64,
    qmax: i64,
}

#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    /// FoldedPerLayer / ICN: `code = clamp(zy + (m0·sat32(Φ + bq)) >> (31 −
    /// n0), 0, qmax)` with per-channel `bq`/`m0`/shift (FoldedPerLayer
    /// broadcasts its single multiplier to every channel).
    Fixed {
        ok: bool,
        bq: Vec<i32>,
        m0: Vec<i32>,
        /// `min(31 − n0, 63)` — the scalar `apply` collapses any shift ≥ 63
        /// to `prod >> 63`, so the clamp is exact. Only valid when
        /// `31 − n0 ≥ 0`; a channel with `n0 > 31` marks the plan `ok=false`.
        shift: Vec<i64>,
        /// `(2^63 >>ᵤ shift)` as `i64` — the arithmetic-shift bias.
        sbias: Vec<i64>,
    },
    /// Threshold tables, transposed so threshold `t` of channels `c..c+W`
    /// is one contiguous vector load.
    Thresh {
        ok: bool,
        /// Entries per (non-empty) table — always `qmax` when `ok`.
        len: usize,
        /// `thr_t[t * channels + c]` = threshold `t` of channel `c`.
        thr_t: Vec<i64>,
        /// `-1` for descending (negative-multiplier) channels, `0` ascending.
        flip: Vec<i64>,
        /// `-1` for empty (constant) channels, `0` otherwise.
        empty: Vec<i64>,
        /// The constant code of empty channels (ignored otherwise).
        konst: Vec<i64>,
        /// Prefix sums of the per-channel `cmps` cost of the scalar binary
        /// search (0 for empty tables, `log2(len + 1)` otherwise), so vector
        /// blocks charge the ledger exactly what the scalar loop would.
        cost: Vec<u64>,
    },
}

impl RequantPlan {
    /// Builds the vector plan for `req`. Infallible: inexpressible
    /// requantizers yield a plan that always takes the scalar path.
    pub fn new(req: &Requantizer) -> Self {
        let zy = req.zero_point() as i64;
        let qmax = req.out_bits().qmax() as i64;
        let kind = match req {
            Requantizer::FoldedPerLayer { bq, mult, .. } => {
                Self::fixed_kind(bq, &vec![*mult; bq.len()])
            }
            Requantizer::Icn { bq, mult, .. } => Self::fixed_kind(bq, mult),
            Requantizer::Thresholds { channels, .. } => {
                let co = channels.len();
                let len = qmax as usize;
                // 255-entry W8 tables: 255×2 linear compares per element
                // would lose badly to the 8-probe binary search — stay
                // scalar there (no W8-threshold layer is on the measured
                // ICN walk anyway).
                let mut ok = qmax <= 15;
                for ch in channels {
                    if !ch.is_empty() && ch.len() != len {
                        ok = false;
                    }
                }
                let probes = if len > 0 {
                    (len + 1).trailing_zeros() as u64
                } else {
                    0
                };
                let mut thr_t = vec![0i64; if ok { len * co } else { 0 }];
                let mut flip = vec![0i64; co];
                let mut empty = vec![0i64; co];
                let mut konst = vec![0i64; co];
                let mut cost = vec![0u64; co + 1];
                for (c, ch) in channels.iter().enumerate() {
                    let per_elem = if ch.is_empty() {
                        empty[c] = -1;
                        konst[c] = ch.constant_code() as i64;
                        0
                    } else {
                        if !ch.is_ascending() {
                            flip[c] = -1;
                        }
                        if ok {
                            for (t, &thr) in ch.thresholds().iter().enumerate() {
                                thr_t[t * co + c] = thr;
                            }
                        }
                        probes
                    };
                    cost[c + 1] = cost[c] + per_elem;
                }
                PlanKind::Thresh {
                    ok,
                    len,
                    thr_t,
                    flip,
                    empty,
                    konst,
                    cost,
                }
            }
        };
        RequantPlan { kind, zy, qmax }
    }

    fn fixed_kind(bq: &[i32], mult: &[mixq_quant::FixedPointMultiplier]) -> PlanKind {
        let mut ok = true;
        let mut m0 = Vec::with_capacity(mult.len());
        let mut shift = Vec::with_capacity(mult.len());
        let mut sbias = Vec::with_capacity(mult.len());
        for m in mult {
            let raw = 31 - m.exponent() as i64;
            if raw < 0 {
                // `checked_shl` left-shift branch of the scalar apply —
                // never produced by `FixedPointMultiplier::from_real` for
                // sane scales; keep the whole layer scalar.
                ok = false;
            }
            let s = raw.clamp(0, 63);
            m0.push(m.mantissa());
            shift.push(s);
            sbias.push(((1u64 << 63) >> s) as i64);
        }
        PlanKind::Fixed {
            ok,
            bq: bq.to_vec(),
            m0,
            shift,
            sbias,
        }
    }

    /// Whether the vector kernels can express this plan at all (the entry
    /// points degrade to the scalar path per-call regardless, e.g. for
    /// remainder lanes).
    pub fn vectorizable(&self) -> bool {
        match &self.kind {
            PlanKind::Fixed { ok, .. } | PlanKind::Thresh { ok, .. } => *ok,
        }
    }

    /// Output channels covered (mirrors [`Requantizer::channels`]).
    pub fn channels(&self) -> usize {
        match &self.kind {
            PlanKind::Fixed { bq, .. } => bq.len(),
            PlanKind::Thresh { flip, .. } => flip.len(),
        }
    }

    /// Charges the ledger for `n` vector-processed elements starting at
    /// channel `c0` — arithmetically identical to what the scalar
    /// per-element loop would have counted.
    fn charge(&self, c0: usize, n: usize, requants: &mut u64, cmps: &mut u64) {
        match &self.kind {
            PlanKind::Fixed { .. } => *requants += n as u64,
            PlanKind::Thresh { cost, .. } => *cmps += cost[c0 + n] - cost[c0],
        }
    }
}

/// Requantizes precomputed `Φ` values for channels `c0..c0 + phis.len()`
/// into output codes. Bit-identical to calling
/// `req.apply(c0 + i, phis[i], ..)` per element, with identical ledger
/// totals.
#[allow(clippy::too_many_arguments)]
pub fn apply_phi_block(
    plan: &RequantPlan,
    req: &Requantizer,
    level: SimdLevel,
    c0: usize,
    phis: &[i64],
    out: &mut [u8],
    requants: &mut u64,
    cmps: &mut u64,
) {
    assert_eq!(phis.len(), out.len(), "phi/out length mismatch");
    assert!(c0 + phis.len() <= plan.channels(), "channel range overflow");
    let done = vector_phi(plan, level, c0, phis, out);
    plan.charge(c0, done, requants, cmps);
    for i in done..phis.len() {
        out[i] = req.apply(c0 + i, phis[i], requants, cmps);
    }
}

/// Requantizes a block of `i32` accumulators (`Φ = acc as i64`) for channels
/// `c0..c0 + accs.len()` — the depthwise fast-path epilogue.
#[allow(clippy::too_many_arguments)]
pub fn apply_i32_block(
    plan: &RequantPlan,
    req: &Requantizer,
    level: SimdLevel,
    c0: usize,
    accs: &[i32],
    out: &mut [u8],
    requants: &mut u64,
    cmps: &mut u64,
) {
    assert_eq!(accs.len(), out.len(), "acc/out length mismatch");
    let mut phibuf = [0i64; PHI_CHUNK];
    let mut i = 0;
    while i < accs.len() {
        let n = (accs.len() - i).min(PHI_CHUNK);
        for (p, &a) in phibuf[..n].iter_mut().zip(&accs[i..i + n]) {
            *p = a as i64;
        }
        apply_phi_block(
            plan,
            req,
            level,
            c0 + i,
            &phibuf[..n],
            &mut out[i..i + n],
            requants,
            cmps,
        );
        i += n;
    }
}

/// The fused blocked-GEMM row epilogue: for every output channel `c`,
/// computes `Φ = acc[c] − zw[c]·sx − zx·wbase[c]` (the hoisted zero-point
/// correction of Eq. 4) and requantizes it, all in-vector — the single
/// overflow-proof widen-correct-requant entry point both GEMM epilogues
/// share (the long-`k` path reaches it via [`widen_accumulate`] +
/// [`fold_corrections`] + [`apply_phi_block`]).
///
/// Covers the full channel range (`accs.len() == plan.channels()`).
#[allow(clippy::too_many_arguments)]
pub fn apply_gemm_row(
    plan: &RequantPlan,
    req: &Requantizer,
    level: SimdLevel,
    accs: &[i32],
    sx: i64,
    zx: i64,
    zw: &[i64],
    wbase: &[i64],
    out: &mut [u8],
    requants: &mut u64,
    cmps: &mut u64,
) {
    let n = accs.len();
    assert_eq!(n, out.len(), "acc/out length mismatch");
    assert_eq!(n, zw.len(), "acc/zw length mismatch");
    assert_eq!(n, wbase.len(), "acc/wbase length mismatch");
    assert!(n <= plan.channels(), "channel range overflow");
    let done = vector_gemm(plan, level, accs, sx, zx, zw, wbase, out);
    plan.charge(0, done, requants, cmps);
    for c in done..n {
        let phi = accs[c] as i64 - zw[c] * sx - zx * wbase[c];
        out[c] = req.apply(c, phi, requants, cmps);
    }
}

/// Flushes a block of `i32` GEMV accumulators into `i64` wide totals — the
/// shared widening step of the hot epilogue (in-vector inside
/// [`apply_gemm_row`]) and the long-`k` chunked path.
pub fn widen_accumulate(wide: &mut [i64], acc: &[i32]) {
    debug_assert_eq!(wide.len(), acc.len());
    for (w, &a) in wide.iter_mut().zip(acc) {
        *w += a as i64;
    }
}

/// In-place hoisted zero-point correction over wide accumulators:
/// `phi[c] −= zw[c]·sx + zx·wbase[c]` (Eq. 4). Exact in `i64` for any `k`.
pub fn fold_corrections(phi: &mut [i64], sx: i64, zx: i64, zw: &[i64], wbase: &[i64]) {
    debug_assert_eq!(phi.len(), zw.len());
    debug_assert_eq!(phi.len(), wbase.len());
    for (c, p) in phi.iter_mut().enumerate() {
        *p -= zw[c] * sx + zx * wbase[c];
    }
}

/// The `QAdd` flat fast path: `out[i] = clamp(zy + lut_a[a[i]] + lut_b[b[i]],
/// 0, qmax)`. Pure compute — the caller charges the ledger (which models the
/// MCU's two per-element requants, not the host LUT strategy).
#[allow(clippy::too_many_arguments)]
pub fn qadd_lut(
    level: SimdLevel,
    lut_a: &[i64; 256],
    lut_b: &[i64; 256],
    a: &[u8],
    b: &[u8],
    zy: i64,
    qmax: i64,
    out: &mut [u8],
) {
    assert_eq!(a.len(), out.len(), "a/out length mismatch");
    assert_eq!(b.len(), out.len(), "b/out length mismatch");
    let done = match level {
        #[cfg(target_arch = "x86_64")]
        // 4×64-bit gathers only pay on AVX2; at 128 bits (SSE2/NEON) the
        // scalar LUT loop is already load-bound and branch-free.
        // SAFETY: AVX2 positively detected (`level` comes from runtime
        // feature detection); LUT indices are u8 into [i64; 256].
        SimdLevel::Avx2 => unsafe { x86::qadd_avx2(lut_a, lut_b, a, b, zy, qmax, out) },
        _ => 0,
    };
    for i in done..out.len() {
        out[i] = (zy + lut_a[a[i] as usize] + lut_b[b[i] as usize]).clamp(0, qmax) as u8;
    }
}

/// Dispatches the precomputed-`Φ` vector kernel; returns how many leading
/// elements were handled (0 → caller runs the scalar loop for everything).
fn vector_phi(
    plan: &RequantPlan,
    level: SimdLevel,
    c0: usize,
    phis: &[i64],
    out: &mut [u8],
) -> usize {
    if !plan.vectorizable() {
        return 0;
    }
    // SAFETY (all arms): the ISA is positively detected — `level` comes
    // from runtime feature detection. `plan.vectorizable()` (checked
    // above, and cross-checked per graph by `mixq-verify::requant_gate`)
    // guarantees the regime the kernels assume: fixed-point shifts in
    // [0, 63] and threshold tables of ≤ 15 entries.
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Avx2 => unsafe { x86::phi_avx2(plan, c0, phis, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Sse2 => unsafe { x86::phi_sse2(plan, c0, phis, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see above; NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::phi_neon(plan, c0, phis, out) },
        _ => 0,
    }
}

/// Dispatches the fused GEMM-row vector kernel (see [`apply_gemm_row`]).
#[allow(clippy::too_many_arguments)]
fn vector_gemm(
    plan: &RequantPlan,
    level: SimdLevel,
    accs: &[i32],
    sx: i64,
    zx: i64,
    zw: &[i64],
    wbase: &[i64],
    out: &mut [u8],
) -> usize {
    if !plan.vectorizable() || !corrections_fit_i32(sx, zx, zw, wbase) {
        return 0;
    }
    // SAFETY (all arms): the ISA is positively detected — `level` comes
    // from runtime feature detection. `plan.vectorizable()` and
    // `corrections_fit_i32` (both checked above; the latter recomputed per
    // graph by `mixq-verify`) guarantee expressible shifts/tables and that
    // every 32×32→64 correction operand fits `i32`.
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Avx2 => unsafe { x86::gemm_avx2(plan, accs, sx, zx, zw, wbase, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Sse2 => unsafe { x86::gemm_sse2(plan, accs, sx, zx, zw, wbase, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see above; NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::gemm_neon(plan, accs, sx, zx, zw, wbase, out) },
        _ => 0,
    }
}

/// The fused kernels compute `zw·sx` and `zx·wbase` as 32×32→64
/// multiplies, so every operand must fit `i32`. Always true on the blocked
/// path (`k ≤ MAX_DOT_LEN` bounds `sx ≤ 255k` and `|wbase| ≤ 2^15·k`; `zw`
/// is a widened `u8`/`i16`; `zx` a `u8`) — the scan keeps an exotic caller
/// correct by falling back to scalar instead of silently wrapping.
fn corrections_fit_i32(sx: i64, zx: i64, zw: &[i64], wbase: &[i64]) -> bool {
    let fits = |v: i64| v >= i32::MIN as i64 && v <= i32::MAX as i64;
    fits(sx) && fits(zx) && zw.iter().copied().all(fits) && wbase.iter().copied().all(fits)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{PlanKind, RequantPlan};
    use std::arch::x86_64::*;

    /// `a > b` per 64-bit lane without SSE4.2's `pcmpgtq`: lanes are equal
    /// on the high dword ⇒ borrow sign of `b − a`; otherwise the signed
    /// high-dword compare decides. Broadcast dwords 1,3 over each qword.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cmpgt64_sse2(a: __m128i, b: __m128i) -> __m128i {
        let r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
        let r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
        _mm_shuffle_epi32(_mm_srai_epi32(r, 31), 0b11_11_01_01)
    }

    /// Lane-masked select: `mask ? b : a` (mask lanes all-ones or all-zero).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn blend64_sse2(a: __m128i, b: __m128i, mask: __m128i) -> __m128i {
        _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a))
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn clamp64_sse2(x: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
        let x = blend64_sse2(x, hi, cmpgt64_sse2(x, hi));
        blend64_sse2(x, lo, cmpgt64_sse2(lo, x))
    }

    /// Signed 32×32→64 multiply of the low dwords of each qword:
    /// unsigned `pmuludq` plus the two's-complement correction
    /// `(a·sign(b) + b·sign(a)) << 32` (the slli discards the garbage the
    /// sign masks leave in odd dwords).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn mul_lo32_sse2(a: __m128i, b: __m128i) -> __m128i {
        let prod = _mm_mul_epu32(a, b);
        let corr = _mm_add_epi32(
            _mm_and_si128(a, _mm_srai_epi32(b, 31)),
            _mm_and_si128(b, _mm_srai_epi32(a, 31)),
        );
        _mm_sub_epi64(prod, _mm_slli_epi64(corr, 32))
    }

    /// Per-lane logical right shift (SSE2's `psrlq` only takes one count).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn srl64_var_sse2(x: __m128i, s0: i64, s1: i64) -> __m128i {
        let r0 = _mm_srl_epi64(x, _mm_cvtsi32_si128(s0 as i32));
        let r1 = _mm_srl_epi64(x, _mm_cvtsi32_si128(s1 as i32));
        _mm_castpd_si128(_mm_shuffle_pd(
            _mm_castsi128_pd(r0),
            _mm_castsi128_pd(r1),
            0b10,
        ))
    }

    /// Widens 2 consecutive `i32`s to 2 `i64` lanes.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn widen2_sse2(p: *const i32) -> __m128i {
        let v = _mm_loadl_epi64(p as *const __m128i);
        _mm_unpacklo_epi32(v, _mm_srai_epi32(v, 31))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn clamp64_avx2(x: __m256i, lo: __m256i, hi: __m256i) -> __m256i {
        let x = _mm256_blendv_epi8(x, hi, _mm256_cmpgt_epi64(x, hi));
        _mm256_blendv_epi8(x, lo, _mm256_cmpgt_epi64(lo, x))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store4_codes(v: __m256i, out: *mut u8) {
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        for (j, &l) in lanes.iter().enumerate() {
            *out.add(j) = l as u8;
        }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn store2_codes(v: __m128i, out: *mut u8) {
        let mut lanes = [0i64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
        *out = lanes[0] as u8;
        *out.add(1) = lanes[1] as u8;
    }

    /// One 4-lane fixed-point requant: `clamp(zy + asr(m0·sat32(Φ + bq),
    /// 31 − n0), 0, qmax)` with the xor-bias arithmetic shift emulation.
    #[inline]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn fixed_lanes_avx2(
        phi: __m256i,
        bq: *const i32,
        m0: *const i32,
        shift: *const i64,
        sbias: *const i64,
        zyv: __m256i,
        qmaxv: __m256i,
    ) -> __m256i {
        let i32lo = _mm256_set1_epi64x(i32::MIN as i64);
        let i32hi = _mm256_set1_epi64x(i32::MAX as i64);
        let minv = _mm256_set1_epi64x(i64::MIN);
        let bqv = _mm256_cvtepi32_epi64(_mm_loadu_si128(bq as *const __m128i));
        let v = clamp64_avx2(_mm256_add_epi64(phi, bqv), i32lo, i32hi);
        // The clamped lane fits i32, so its low dword IS the value —
        // `pmuldq` sign-extends exactly the operand we want.
        let m0v = _mm256_cvtepi32_epi64(_mm_loadu_si128(m0 as *const __m128i));
        let prod = _mm256_mul_epi32(v, m0v);
        let shv = _mm256_loadu_si256(shift as *const __m256i);
        let sbv = _mm256_loadu_si256(sbias as *const __m256i);
        let shifted = _mm256_sub_epi64(_mm256_srlv_epi64(_mm256_xor_si256(prod, minv), shv), sbv);
        let r = clamp64_avx2(shifted, i32lo, i32hi);
        clamp64_avx2(_mm256_add_epi64(zyv, r), _mm256_setzero_si256(), qmaxv)
    }

    /// One 4-lane threshold requant: branchless compare-accumulate over the
    /// transposed tables, both compare directions blended by the flip mask.
    #[inline]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn thresh_lanes_avx2(
        phi: __m256i,
        c: usize,
        co: usize,
        len: usize,
        thr_t: *const i64,
        flip: *const i64,
        empty: *const i64,
        konst: *const i64,
    ) -> __m256i {
        let ones = _mm256_set1_epi64x(-1);
        let flipv = _mm256_loadu_si256(flip.add(c) as *const __m256i);
        let mut cnt = _mm256_setzero_si256();
        for t in 0..len {
            let thr = _mm256_loadu_si256(thr_t.add(t * co + c) as *const __m256i);
            let le = _mm256_xor_si256(_mm256_cmpgt_epi64(thr, phi), ones);
            let ge = _mm256_xor_si256(_mm256_cmpgt_epi64(phi, thr), ones);
            let sel = _mm256_blendv_epi8(le, ge, flipv);
            cnt = _mm256_sub_epi64(cnt, sel);
        }
        let emptyv = _mm256_loadu_si256(empty.add(c) as *const __m256i);
        let konstv = _mm256_loadu_si256(konst.add(c) as *const __m256i);
        _mm256_blendv_epi8(cnt, konstv, emptyv)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn fixed_lanes_sse2(
        phi: __m128i,
        bq: *const i32,
        m0: *const i32,
        shift: *const i64,
        sbias: *const i64,
        zyv: __m128i,
        qmaxv: __m128i,
    ) -> __m128i {
        let i32lo = _mm_set1_epi64x(i32::MIN as i64);
        let i32hi = _mm_set1_epi64x(i32::MAX as i64);
        let minv = _mm_set1_epi64x(i64::MIN);
        let v = clamp64_sse2(_mm_add_epi64(phi, widen2_sse2(bq)), i32lo, i32hi);
        let prod = mul_lo32_sse2(v, widen2_sse2(m0));
        let (s0, s1) = (*shift, *shift.add(1));
        let shifted = _mm_sub_epi64(
            srl64_var_sse2(_mm_xor_si128(prod, minv), s0, s1),
            _mm_loadu_si128(sbias as *const __m128i),
        );
        let r = clamp64_sse2(shifted, i32lo, i32hi);
        clamp64_sse2(_mm_add_epi64(zyv, r), _mm_setzero_si128(), qmaxv)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn thresh_lanes_sse2(
        phi: __m128i,
        c: usize,
        co: usize,
        len: usize,
        thr_t: *const i64,
        flip: *const i64,
        empty: *const i64,
        konst: *const i64,
    ) -> __m128i {
        let ones = _mm_set1_epi64x(-1);
        let flipv = _mm_loadu_si128(flip.add(c) as *const __m128i);
        let mut cnt = _mm_setzero_si128();
        for t in 0..len {
            let thr = _mm_loadu_si128(thr_t.add(t * co + c) as *const __m128i);
            let le = _mm_xor_si128(cmpgt64_sse2(thr, phi), ones);
            let ge = _mm_xor_si128(cmpgt64_sse2(phi, thr), ones);
            let sel = blend64_sse2(le, ge, flipv);
            cnt = _mm_sub_epi64(cnt, sel);
        }
        let emptyv = _mm_loadu_si128(empty.add(c) as *const __m128i);
        let konstv = _mm_loadu_si128(konst.add(c) as *const __m128i);
        blend64_sse2(cnt, konstv, emptyv)
    }

    /// Precomputed-`Φ` entry, AVX2 (4 channels per iteration).
    pub unsafe fn phi_avx2(plan: &RequantPlan, c0: usize, phis: &[i64], out: &mut [u8]) -> usize {
        phi_avx2_impl(plan, c0, phis, out)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn phi_avx2_impl(plan: &RequantPlan, c0: usize, phis: &[i64], out: &mut [u8]) -> usize {
        let n = phis.len() & !3;
        let zyv = _mm256_set1_epi64x(plan.zy);
        let qmaxv = _mm256_set1_epi64x(plan.qmax);
        let co = plan.channels();
        match &plan.kind {
            PlanKind::Fixed {
                bq,
                m0,
                shift,
                sbias,
                ..
            } => {
                for i in (0..n).step_by(4) {
                    let c = c0 + i;
                    let phi = _mm256_loadu_si256(phis.as_ptr().add(i) as *const __m256i);
                    let code = fixed_lanes_avx2(
                        phi,
                        bq.as_ptr().add(c),
                        m0.as_ptr().add(c),
                        shift.as_ptr().add(c),
                        sbias.as_ptr().add(c),
                        zyv,
                        qmaxv,
                    );
                    store4_codes(code, out.as_mut_ptr().add(i));
                }
            }
            PlanKind::Thresh {
                len,
                thr_t,
                flip,
                empty,
                konst,
                ..
            } => {
                for i in (0..n).step_by(4) {
                    let phi = _mm256_loadu_si256(phis.as_ptr().add(i) as *const __m256i);
                    let code = thresh_lanes_avx2(
                        phi,
                        c0 + i,
                        co,
                        *len,
                        thr_t.as_ptr(),
                        flip.as_ptr(),
                        empty.as_ptr(),
                        konst.as_ptr(),
                    );
                    store4_codes(code, out.as_mut_ptr().add(i));
                }
            }
        }
        n
    }

    /// Precomputed-`Φ` entry, SSE2 (2 channels per iteration).
    pub unsafe fn phi_sse2(plan: &RequantPlan, c0: usize, phis: &[i64], out: &mut [u8]) -> usize {
        phi_sse2_impl(plan, c0, phis, out)
    }

    #[target_feature(enable = "sse2")]
    unsafe fn phi_sse2_impl(plan: &RequantPlan, c0: usize, phis: &[i64], out: &mut [u8]) -> usize {
        let n = phis.len() & !1;
        let zyv = _mm_set1_epi64x(plan.zy);
        let qmaxv = _mm_set1_epi64x(plan.qmax);
        let co = plan.channels();
        match &plan.kind {
            PlanKind::Fixed {
                bq,
                m0,
                shift,
                sbias,
                ..
            } => {
                for i in (0..n).step_by(2) {
                    let c = c0 + i;
                    let phi = _mm_loadu_si128(phis.as_ptr().add(i) as *const __m128i);
                    let code = fixed_lanes_sse2(
                        phi,
                        bq.as_ptr().add(c),
                        m0.as_ptr().add(c),
                        shift.as_ptr().add(c),
                        sbias.as_ptr().add(c),
                        zyv,
                        qmaxv,
                    );
                    store2_codes(code, out.as_mut_ptr().add(i));
                }
            }
            PlanKind::Thresh {
                len,
                thr_t,
                flip,
                empty,
                konst,
                ..
            } => {
                for i in (0..n).step_by(2) {
                    let phi = _mm_loadu_si128(phis.as_ptr().add(i) as *const __m128i);
                    let code = thresh_lanes_sse2(
                        phi,
                        c0 + i,
                        co,
                        *len,
                        thr_t.as_ptr(),
                        flip.as_ptr(),
                        empty.as_ptr(),
                        konst.as_ptr(),
                    );
                    store2_codes(code, out.as_mut_ptr().add(i));
                }
            }
        }
        n
    }

    /// Fused GEMM-row entry, AVX2: `Φ` lanes are built in-register from the
    /// `i32` accumulators and the hoisted corrections (all proven to fit
    /// `i32`, so `pmuldq` on the low dwords is exact).
    pub unsafe fn gemm_avx2(
        plan: &RequantPlan,
        accs: &[i32],
        sx: i64,
        zx: i64,
        zw: &[i64],
        wbase: &[i64],
        out: &mut [u8],
    ) -> usize {
        gemm_avx2_impl(plan, accs, sx, zx, zw, wbase, out)
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_avx2_impl(
        plan: &RequantPlan,
        accs: &[i32],
        sx: i64,
        zx: i64,
        zw: &[i64],
        wbase: &[i64],
        out: &mut [u8],
    ) -> usize {
        let n = accs.len() & !3;
        let zyv = _mm256_set1_epi64x(plan.zy);
        let qmaxv = _mm256_set1_epi64x(plan.qmax);
        let sxv = _mm256_set1_epi64x(sx);
        let zxv = _mm256_set1_epi64x(zx);
        let co = plan.channels();
        for i in (0..n).step_by(4) {
            let acc =
                _mm256_cvtepi32_epi64(_mm_loadu_si128(accs.as_ptr().add(i) as *const __m128i));
            let zwv = _mm256_loadu_si256(zw.as_ptr().add(i) as *const __m256i);
            let bv = _mm256_loadu_si256(wbase.as_ptr().add(i) as *const __m256i);
            let phi = _mm256_sub_epi64(
                _mm256_sub_epi64(acc, _mm256_mul_epi32(zwv, sxv)),
                _mm256_mul_epi32(bv, zxv),
            );
            let code = match &plan.kind {
                PlanKind::Fixed {
                    bq,
                    m0,
                    shift,
                    sbias,
                    ..
                } => fixed_lanes_avx2(
                    phi,
                    bq.as_ptr().add(i),
                    m0.as_ptr().add(i),
                    shift.as_ptr().add(i),
                    sbias.as_ptr().add(i),
                    zyv,
                    qmaxv,
                ),
                PlanKind::Thresh {
                    len,
                    thr_t,
                    flip,
                    empty,
                    konst,
                    ..
                } => thresh_lanes_avx2(
                    phi,
                    i,
                    co,
                    *len,
                    thr_t.as_ptr(),
                    flip.as_ptr(),
                    empty.as_ptr(),
                    konst.as_ptr(),
                ),
            };
            store4_codes(code, out.as_mut_ptr().add(i));
        }
        n
    }

    /// Fused GEMM-row entry, SSE2. The `pmuludq` + sign-correction pair
    /// multiplies the low dwords of the widened correction lanes.
    pub unsafe fn gemm_sse2(
        plan: &RequantPlan,
        accs: &[i32],
        sx: i64,
        zx: i64,
        zw: &[i64],
        wbase: &[i64],
        out: &mut [u8],
    ) -> usize {
        gemm_sse2_impl(plan, accs, sx, zx, zw, wbase, out)
    }

    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_sse2_impl(
        plan: &RequantPlan,
        accs: &[i32],
        sx: i64,
        zx: i64,
        zw: &[i64],
        wbase: &[i64],
        out: &mut [u8],
    ) -> usize {
        let n = accs.len() & !1;
        let zyv = _mm_set1_epi64x(plan.zy);
        let qmaxv = _mm_set1_epi64x(plan.qmax);
        let sxv = _mm_set1_epi64x(sx);
        let zxv = _mm_set1_epi64x(zx);
        let co = plan.channels();
        for i in (0..n).step_by(2) {
            let acc = widen2_sse2(accs.as_ptr().add(i));
            let zwv = _mm_loadu_si128(zw.as_ptr().add(i) as *const __m128i);
            let bv = _mm_loadu_si128(wbase.as_ptr().add(i) as *const __m128i);
            let phi = _mm_sub_epi64(
                _mm_sub_epi64(acc, mul_lo32_sse2(zwv, sxv)),
                mul_lo32_sse2(bv, zxv),
            );
            let code = match &plan.kind {
                PlanKind::Fixed {
                    bq,
                    m0,
                    shift,
                    sbias,
                    ..
                } => fixed_lanes_sse2(
                    phi,
                    bq.as_ptr().add(i),
                    m0.as_ptr().add(i),
                    shift.as_ptr().add(i),
                    sbias.as_ptr().add(i),
                    zyv,
                    qmaxv,
                ),
                PlanKind::Thresh {
                    len,
                    thr_t,
                    flip,
                    empty,
                    konst,
                    ..
                } => thresh_lanes_sse2(
                    phi,
                    i,
                    co,
                    *len,
                    thr_t.as_ptr(),
                    flip.as_ptr(),
                    empty.as_ptr(),
                    konst.as_ptr(),
                ),
            };
            store2_codes(code, out.as_mut_ptr().add(i));
        }
        n
    }

    /// `QAdd` LUT kernel: widen 4 codes to qword indices, gather both
    /// per-operand LUTs, add, clamp.
    pub unsafe fn qadd_avx2(
        lut_a: &[i64; 256],
        lut_b: &[i64; 256],
        a: &[u8],
        b: &[u8],
        zy: i64,
        qmax: i64,
        out: &mut [u8],
    ) -> usize {
        qadd_avx2_impl(lut_a, lut_b, a, b, zy, qmax, out)
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn qadd_avx2_impl(
        lut_a: &[i64; 256],
        lut_b: &[i64; 256],
        a: &[u8],
        b: &[u8],
        zy: i64,
        qmax: i64,
        out: &mut [u8],
    ) -> usize {
        let n = out.len() & !3;
        let zyv = _mm256_set1_epi64x(zy);
        let qmaxv = _mm256_set1_epi64x(qmax);
        let zero = _mm256_setzero_si256();
        for i in (0..n).step_by(4) {
            let qa = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(i32::from_le_bytes([
                a[i],
                a[i + 1],
                a[i + 2],
                a[i + 3],
            ])));
            let qb = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(i32::from_le_bytes([
                b[i],
                b[i + 1],
                b[i + 2],
                b[i + 3],
            ])));
            let ga = _mm256_i64gather_epi64::<8>(lut_a.as_ptr(), qa);
            let gb = _mm256_i64gather_epi64::<8>(lut_b.as_ptr(), qb);
            let s = _mm256_add_epi64(_mm256_add_epi64(zyv, ga), gb);
            store4_codes(clamp64_avx2(s, zero, qmaxv), out.as_mut_ptr().add(i));
        }
        n
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{PlanKind, RequantPlan};
    use std::arch::aarch64::*;

    #[inline]
    unsafe fn clamp64_neon(x: int64x2_t, lo: int64x2_t, hi: int64x2_t) -> int64x2_t {
        let x = vbslq_s64(vcgtq_s64(x, hi), hi, x);
        vbslq_s64(vcgtq_s64(lo, x), lo, x)
    }

    #[inline]
    unsafe fn store2_codes(v: int64x2_t, out: *mut u8) {
        *out = vgetq_lane_s64::<0>(v) as u8;
        *out.add(1) = vgetq_lane_s64::<1>(v) as u8;
    }

    /// One 2-lane fixed-point requant. `SSHL` with a negated count is a
    /// truncating arithmetic right shift — no bias trick needed on NEON.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn fixed_lanes_neon(
        phi: int64x2_t,
        bq: *const i32,
        m0: *const i32,
        shift: *const i64,
        zyv: int64x2_t,
        qmaxv: int64x2_t,
    ) -> int64x2_t {
        let i32lo = vdupq_n_s64(i32::MIN as i64);
        let i32hi = vdupq_n_s64(i32::MAX as i64);
        let v = clamp64_neon(vaddq_s64(phi, vmovl_s32(vld1_s32(bq))), i32lo, i32hi);
        // The clamped lane fits i32: narrow to the value, widen-multiply.
        let prod = vmull_s32(vmovn_s64(v), vld1_s32(m0));
        let shifted = vshlq_s64(prod, vnegq_s64(vld1q_s64(shift)));
        let r = clamp64_neon(shifted, i32lo, i32hi);
        clamp64_neon(vaddq_s64(zyv, r), vdupq_n_s64(0), qmaxv)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn thresh_lanes_neon(
        phi: int64x2_t,
        c: usize,
        co: usize,
        len: usize,
        thr_t: *const i64,
        flip: *const i64,
        empty: *const i64,
        konst: *const i64,
    ) -> int64x2_t {
        let flipv = vreinterpretq_u64_s64(vld1q_s64(flip.add(c)));
        let mut cnt = vdupq_n_s64(0);
        for t in 0..len {
            let thr = vld1q_s64(thr_t.add(t * co + c));
            let le = vcleq_s64(thr, phi);
            let ge = vcgeq_s64(thr, phi);
            let sel = vbslq_u64(flipv, ge, le);
            cnt = vsubq_s64(cnt, vreinterpretq_s64_u64(sel));
        }
        let emptyv = vreinterpretq_u64_s64(vld1q_s64(empty.add(c)));
        let konstv = vld1q_s64(konst.add(c));
        vbslq_s64(emptyv, konstv, cnt)
    }

    /// Precomputed-`Φ` entry, NEON (2 channels per iteration).
    pub unsafe fn phi_neon(plan: &RequantPlan, c0: usize, phis: &[i64], out: &mut [u8]) -> usize {
        let n = phis.len() & !1;
        let zyv = vdupq_n_s64(plan.zy);
        let qmaxv = vdupq_n_s64(plan.qmax);
        let co = plan.channels();
        match &plan.kind {
            PlanKind::Fixed { bq, m0, shift, .. } => {
                for i in (0..n).step_by(2) {
                    let c = c0 + i;
                    let phi = vld1q_s64(phis.as_ptr().add(i));
                    let code = fixed_lanes_neon(
                        phi,
                        bq.as_ptr().add(c),
                        m0.as_ptr().add(c),
                        shift.as_ptr().add(c),
                        zyv,
                        qmaxv,
                    );
                    store2_codes(code, out.as_mut_ptr().add(i));
                }
            }
            PlanKind::Thresh {
                len,
                thr_t,
                flip,
                empty,
                konst,
                ..
            } => {
                for i in (0..n).step_by(2) {
                    let phi = vld1q_s64(phis.as_ptr().add(i));
                    let code = thresh_lanes_neon(
                        phi,
                        c0 + i,
                        co,
                        *len,
                        thr_t.as_ptr(),
                        flip.as_ptr(),
                        empty.as_ptr(),
                        konst.as_ptr(),
                    );
                    store2_codes(code, out.as_mut_ptr().add(i));
                }
            }
        }
        n
    }

    /// Fused GEMM-row entry, NEON: corrections fit `i32` (dispatcher
    /// guarantees it), so narrow-then-`vmull_s32` is exact.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_neon(
        plan: &RequantPlan,
        accs: &[i32],
        sx: i64,
        zx: i64,
        zw: &[i64],
        wbase: &[i64],
        out: &mut [u8],
    ) -> usize {
        let n = accs.len() & !1;
        let zyv = vdupq_n_s64(plan.zy);
        let qmaxv = vdupq_n_s64(plan.qmax);
        let sx32 = vdup_n_s32(sx as i32);
        let zx32 = vdup_n_s32(zx as i32);
        let co = plan.channels();
        for i in (0..n).step_by(2) {
            let acc = vmovl_s32(vld1_s32(accs.as_ptr().add(i)));
            let zwv = vld1q_s64(zw.as_ptr().add(i));
            let bv = vld1q_s64(wbase.as_ptr().add(i));
            let phi = vsubq_s64(
                vsubq_s64(acc, vmull_s32(vmovn_s64(zwv), sx32)),
                vmull_s32(vmovn_s64(bv), zx32),
            );
            let code = match &plan.kind {
                PlanKind::Fixed { bq, m0, shift, .. } => fixed_lanes_neon(
                    phi,
                    bq.as_ptr().add(i),
                    m0.as_ptr().add(i),
                    shift.as_ptr().add(i),
                    zyv,
                    qmaxv,
                ),
                PlanKind::Thresh {
                    len,
                    thr_t,
                    flip,
                    empty,
                    konst,
                    ..
                } => thresh_lanes_neon(
                    phi,
                    i,
                    co,
                    *len,
                    thr_t.as_ptr(),
                    flip.as_ptr(),
                    empty.as_ptr(),
                    konst.as_ptr(),
                ),
            };
            store2_codes(code, out.as_mut_ptr().add(i));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requant::ThresholdChannel;
    use mixq_quant::{BitWidth, FixedPointMultiplier};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn levels() -> Vec<SimdLevel> {
        [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Neon,
        ]
        .into_iter()
        .filter(|l| l.available())
        .collect()
    }

    fn random_icn(seed: u64, co: usize, bits: BitWidth) -> Requantizer {
        let mut s = seed;
        let bq: Vec<i32> = (0..co).map(|_| lcg(&mut s) as i32 % 100_000).collect();
        let mult: Vec<FixedPointMultiplier> = (0..co)
            .map(|_| {
                let m = (lcg(&mut s) % 2_000_000) as f64 / 1e8 + 1e-6;
                FixedPointMultiplier::from_real(m)
            })
            .collect();
        let zy = (lcg(&mut s) % (bits.qmax() as u64 + 1)) as i32;
        Requantizer::icn(bq, mult, zy, bits)
    }

    fn random_thresholds(seed: u64, co: usize, bits: BitWidth) -> Requantizer {
        let mut s = seed;
        let zy = (lcg(&mut s) % (bits.qmax() as u64 + 1)) as i32;
        let channels: Vec<ThresholdChannel> = (0..co)
            .map(|c| {
                let m = if c % 3 == 2 {
                    // Negative multipliers: descending tables.
                    -((lcg(&mut s) % 1_000_000) as f64 / 1e8 + 1e-6)
                } else if c % 7 == 6 {
                    0.0 // constant channel
                } else {
                    (lcg(&mut s) % 1_000_000) as f64 / 1e8 + 1e-6
                };
                let bq = (lcg(&mut s) % 20_000) as i64 - 10_000;
                ThresholdChannel::from_affine(m, bq, zy, bits)
            })
            .collect();
        Requantizer::thresholds(channels, zy, bits)
    }

    fn check_phi_all_levels(req: &Requantizer, phis: &[i64]) {
        let plan = RequantPlan::new(req);
        let co = req.channels();
        for lv in levels() {
            for c0 in [0usize, 1, 3] {
                if c0 + phis.len().min(co - c0) > co {
                    continue;
                }
                let n = (co - c0).min(phis.len());
                let (mut r_ref, mut c_ref) = (7u64, 11u64);
                let mut want = vec![0u8; n];
                for (i, w) in want.iter_mut().enumerate() {
                    *w = req.apply(c0 + i, phis[i], &mut r_ref, &mut c_ref);
                }
                let (mut r_got, mut c_got) = (7u64, 11u64);
                let mut got = vec![0u8; n];
                apply_phi_block(
                    &plan,
                    req,
                    lv,
                    c0,
                    &phis[..n],
                    &mut got,
                    &mut r_got,
                    &mut c_got,
                );
                assert_eq!(got, want, "codes differ at level {lv:?}, c0={c0}");
                assert_eq!((r_got, c_got), (r_ref, c_ref), "ledger differs at {lv:?}");
            }
        }
    }

    #[test]
    fn fixed_phi_matches_scalar_apply_all_levels() {
        for (seed, co, bits) in [
            (1u64, 37, BitWidth::W8),
            (2, 16, BitWidth::W4),
            (3, 9, BitWidth::W2),
        ] {
            let req = random_icn(seed, co, bits);
            let mut s = seed ^ 0xabcdef;
            // Extremes stay shy of i64::MAX/MIN: the scalar `apply` adds
            // `bq` before saturating, so ±(2^62) is the supported domain —
            // still far past the i32 clamp both paths must hit identically.
            let phis: Vec<i64> = (0..co)
                .map(|i| match i % 5 {
                    0 => lcg(&mut s) as i64 % 1_000_000 - 500_000,
                    1 => (1i64 << 62) - lcg(&mut s) as i64 % 1000,
                    2 => -(1i64 << 62) + lcg(&mut s) as i64 % 1000,
                    3 => (lcg(&mut s) as i64 % 3_000_000_000) - 1_500_000_000,
                    _ => 0,
                })
                .collect();
            check_phi_all_levels(&req, &phis);
        }
    }

    #[test]
    fn threshold_phi_matches_scalar_apply_all_levels() {
        for (seed, co, bits) in [
            (4u64, 23, BitWidth::W4),
            (5, 14, BitWidth::W2),
            (6, 8, BitWidth::W4),
        ] {
            let req = random_thresholds(seed, co, bits);
            let mut s = seed ^ 0x1234;
            let phis: Vec<i64> = (0..co)
                .map(|i| match i % 4 {
                    0 => lcg(&mut s) as i64 % 100_000 - 50_000,
                    1 => i64::MAX - lcg(&mut s) as i64 % 3,
                    2 => i64::MIN + lcg(&mut s) as i64 % 3,
                    _ => lcg(&mut s) as i64 % 100 - 50,
                })
                .collect();
            check_phi_all_levels(&req, &phis);
            // The saturated-i16 ablation path produces duplicate clamped
            // thresholds — the compare-accumulate must still match.
            check_phi_all_levels(&req.saturated_i16(), &phis);
        }
    }

    #[test]
    fn w8_threshold_plan_stays_scalar_but_correct() {
        let req = random_thresholds(9, 10, BitWidth::W8);
        let plan = RequantPlan::new(&req);
        assert!(!plan.vectorizable(), "255-entry tables must stay scalar");
        let phis: Vec<i64> = (0..10).map(|i| i as i64 * 7 - 31).collect();
        check_phi_all_levels(&req, &phis);
    }

    #[test]
    fn gemm_row_matches_reference_all_levels() {
        for (seed, co, bits) in [(10u64, 29, BitWidth::W4), (11, 12, BitWidth::W8)] {
            let req = random_icn(seed, co, bits);
            let plan = RequantPlan::new(&req);
            let mut s = seed ^ 0x55;
            let accs: Vec<i32> = (0..co).map(|_| lcg(&mut s) as i32).collect();
            let zw: Vec<i64> = (0..co)
                .map(|_| lcg(&mut s) as i64 % 65536 - 32768)
                .collect();
            let wbase: Vec<i64> = (0..co)
                .map(|_| lcg(&mut s) as i64 % 2_000_000 - 1_000_000)
                .collect();
            let (sx, zx) = ((lcg(&mut s) % 8_000_000) as i64, (lcg(&mut s) % 256) as i64);
            let (mut r_ref, mut c_ref) = (0u64, 0u64);
            let mut want = vec![0u8; co];
            for c in 0..co {
                let phi = accs[c] as i64 - zw[c] * sx - zx * wbase[c];
                want[c] = req.apply(c, phi, &mut r_ref, &mut c_ref);
            }
            for lv in levels() {
                let (mut r_got, mut c_got) = (0u64, 0u64);
                let mut got = vec![0u8; co];
                apply_gemm_row(
                    &plan, &req, lv, &accs, sx, zx, &zw, &wbase, &mut got, &mut r_got, &mut c_got,
                );
                assert_eq!(got, want, "gemm row differs at {lv:?}");
                assert_eq!((r_got, c_got), (r_ref, c_ref), "ledger differs at {lv:?}");
            }
        }
    }

    #[test]
    fn gemm_row_out_of_range_corrections_fall_back() {
        let req = random_icn(21, 6, BitWidth::W8);
        let plan = RequantPlan::new(&req);
        let accs = vec![1i32; 6];
        let zw = vec![i32::MAX as i64 + 5; 6]; // cannot fit the 32×32 path
        let wbase = vec![0i64; 6];
        let (mut r0, mut c0) = (0u64, 0u64);
        let mut want = vec![0u8; 6];
        for c in 0..6 {
            let phi = accs[c] as i64 - zw[c] * 3;
            want[c] = req.apply(c, phi, &mut r0, &mut c0);
        }
        for lv in levels() {
            let (mut r1, mut c1) = (0u64, 0u64);
            let mut got = vec![0u8; 6];
            apply_gemm_row(
                &plan, &req, lv, &accs, 3, 0, &zw, &wbase, &mut got, &mut r1, &mut c1,
            );
            assert_eq!(got, want);
            assert_eq!((r1, c1), (r0, c0));
        }
    }

    #[test]
    fn i32_block_matches_scalar_apply() {
        let req = random_icn(31, 130, BitWidth::W4); // > PHI_CHUNK to cross chunks
        let plan = RequantPlan::new(&req);
        let mut s = 99u64;
        let accs: Vec<i32> = (0..130).map(|_| lcg(&mut s) as i32).collect();
        let (mut r_ref, mut c_ref) = (0u64, 0u64);
        let mut want = vec![0u8; 130];
        for (c, w) in want.iter_mut().enumerate() {
            *w = req.apply(c, accs[c] as i64, &mut r_ref, &mut c_ref);
        }
        for lv in levels() {
            let (mut r_got, mut c_got) = (0u64, 0u64);
            let mut got = vec![0u8; 130];
            apply_i32_block(&plan, &req, lv, 0, &accs, &mut got, &mut r_got, &mut c_got);
            assert_eq!(got, want, "i32 block differs at {lv:?}");
            assert_eq!((r_got, c_got), (r_ref, c_ref));
        }
    }

    #[test]
    fn qadd_lut_matches_scalar() {
        let mut s = 77u64;
        let mut lut_a = [0i64; 256];
        let mut lut_b = [0i64; 256];
        for i in 0..256 {
            lut_a[i] = lcg(&mut s) as i64 % 1000 - 500;
            lut_b[i] = lcg(&mut s) as i64 % 1000 - 500;
        }
        let a: Vec<u8> = (0..103).map(|_| lcg(&mut s) as u8).collect();
        let b: Vec<u8> = (0..103).map(|_| lcg(&mut s) as u8).collect();
        let (zy, qmax) = (17i64, 255i64);
        let mut want = vec![0u8; 103];
        for i in 0..103 {
            want[i] = (zy + lut_a[a[i] as usize] + lut_b[b[i] as usize]).clamp(0, qmax) as u8;
        }
        for lv in levels() {
            let mut got = vec![0u8; 103];
            qadd_lut(lv, &lut_a, &lut_b, &a, &b, zy, qmax, &mut got);
            assert_eq!(got, want, "qadd differs at {lv:?}");
        }
    }

    #[test]
    fn n0_overflow_plan_is_not_vectorizable() {
        // A multiplier with n0 > 31 would hit apply's checked_shl branch.
        let m = FixedPointMultiplier::from_real(2f64.powi(40));
        if m.exponent() as i32 > 31 {
            let req = Requantizer::icn(vec![0; 4], vec![m; 4], 0, BitWidth::W8);
            assert!(!RequantPlan::new(&req).vectorizable());
            let phis = [1i64, -1, 1 << 20, i64::MAX];
            check_phi_all_levels(&req, &phis);
        }
    }

    #[test]
    fn folded_per_layer_plan_broadcasts_multiplier() {
        let mult = FixedPointMultiplier::from_real(0.0042);
        let req = Requantizer::folded(vec![5, -9, 100, 0, 77], mult, 3, BitWidth::W4);
        let phis = [0i64, 999, -4096, 1 << 30, -(1 << 30)];
        check_phi_all_levels(&req, &phis);
    }
}
