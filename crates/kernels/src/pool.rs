use mixq_tensor::Shape;

use crate::{OpCounts, QActivation};

/// Integer global average pooling: `floor` of the per-channel code mean.
///
/// Input and output share scale and zero-point (the mean of an affine
/// quantity is affine), so the only quantization effect is the flooring —
/// at most one LSB, matching the MCU implementation's integer division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QAvgPool;

impl QAvgPool {
    /// Pools `(1, h, w, c)` codes to `(1, 1, 1, c)`.
    pub fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        let s = x.shape();
        let area = s.pixels() as u64;
        let mut sums = vec![0u64; s.n * s.c];
        for n in 0..s.n {
            for y in 0..s.h {
                for xx in 0..s.w {
                    for c in 0..s.c {
                        sums[n * s.c + c] += x.get(n, y, xx, c) as u64;
                    }
                }
            }
        }
        ops.act_loads += s.volume() as u64;
        ops.act_stores += (s.n * s.c) as u64;
        ops.requants += (s.n * s.c) as u64; // one division per output
        if x.needs_unpack() {
            ops.unpacks += s.volume() as u64;
        }
        let codes: Vec<u8> = sums.iter().map(|&v| (v / area.max(1)) as u8).collect();
        QActivation::from_codes(Shape::new(s.n, 1, 1, s.c), &codes, x.bits(), x.zero_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_quant::BitWidth;

    #[test]
    fn floor_mean_per_channel() {
        // Channel 0: mean(1,2,3,4) = 2.5 → 2; channel 1: mean(10,10,11,11) = 10.5 → 10.
        let x = QActivation::from_codes(
            Shape::feature_map(2, 2, 2),
            &[1, 10, 2, 10, 3, 11, 4, 11],
            BitWidth::W8,
            7,
        );
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![2, 10]);
        assert_eq!(y.shape(), Shape::new(1, 1, 1, 2));
        assert_eq!(y.zero_point(), 7, "zero-point passes through");
        assert_eq!(ops.requants, 2);
    }

    #[test]
    fn sub_byte_input_counts_unpacks() {
        let x =
            QActivation::from_codes(Shape::feature_map(2, 2, 1), &[1, 2, 3, 0], BitWidth::W2, 0);
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![1]); // floor(6/4)
        assert_eq!(ops.unpacks, 4);
        assert_eq!(y.bits(), BitWidth::W2);
    }

    #[test]
    fn single_pixel_is_identity() {
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 3), &[4, 5, 6], BitWidth::W4, 1);
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![4, 5, 6]);
    }
}
