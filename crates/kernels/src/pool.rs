use mixq_tensor::Shape;

use crate::{OpCounts, QActivation};

/// Integer global average pooling: `floor` of the per-channel code mean.
///
/// Input and output share scale and zero-point (the mean of an affine
/// quantity is affine), so the only quantization effect is the flooring —
/// at most one LSB, matching the MCU implementation's integer division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QAvgPool;

impl QAvgPool {
    /// Pools `(1, h, w, c)` codes to `(1, 1, 1, c)`.
    pub fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> QActivation {
        let mut codes = Vec::new();
        let out_shape = self.execute_codes(x, &mut codes, ops);
        QActivation::from_codes(out_shape, &codes, x.bits(), x.zero_point())
    }

    /// The codes-only core: pools into `out_codes` (cleared and resized in
    /// place), returning the output shape. The arena-aware executor packs
    /// the codes into recycled storage itself.
    pub fn execute_codes(
        &self,
        x: &QActivation,
        out_codes: &mut Vec<u8>,
        ops: &mut OpCounts,
    ) -> Shape {
        let s = x.shape();
        let area = s.pixels() as u64;
        out_codes.clear();
        out_codes.resize(s.n * s.c, 0);
        for n in 0..s.n {
            for c in 0..s.c {
                let mut sum = 0u64;
                for y in 0..s.h {
                    for xx in 0..s.w {
                        sum += x.get(n, y, xx, c) as u64;
                    }
                }
                out_codes[n * s.c + c] = (sum / area.max(1)) as u8;
            }
        }
        ops.act_loads += s.volume() as u64;
        ops.act_stores += (s.n * s.c) as u64;
        ops.requants += (s.n * s.c) as u64; // one division per output
        if x.needs_unpack() {
            ops.unpacks += s.volume() as u64;
        }
        Shape::new(s.n, 1, 1, s.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_quant::BitWidth;

    #[test]
    fn floor_mean_per_channel() {
        // Channel 0: mean(1,2,3,4) = 2.5 → 2; channel 1: mean(10,10,11,11) = 10.5 → 10.
        let x = QActivation::from_codes(
            Shape::feature_map(2, 2, 2),
            &[1, 10, 2, 10, 3, 11, 4, 11],
            BitWidth::W8,
            7,
        );
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![2, 10]);
        assert_eq!(y.shape(), Shape::new(1, 1, 1, 2));
        assert_eq!(y.zero_point(), 7, "zero-point passes through");
        assert_eq!(ops.requants, 2);
    }

    #[test]
    fn sub_byte_input_counts_unpacks() {
        let x =
            QActivation::from_codes(Shape::feature_map(2, 2, 1), &[1, 2, 3, 0], BitWidth::W2, 0);
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![1]); // floor(6/4)
        assert_eq!(ops.unpacks, 4);
        assert_eq!(y.bits(), BitWidth::W2);
    }

    #[test]
    fn single_pixel_is_identity() {
        let x = QActivation::from_codes(Shape::feature_map(1, 1, 3), &[4, 5, 6], BitWidth::W4, 1);
        let mut ops = OpCounts::default();
        let y = QAvgPool.execute(&x, &mut ops);
        assert_eq!(y.codes(), vec![4, 5, 6]);
    }
}
