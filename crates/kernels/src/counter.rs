use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Abstract operation counts accumulated by the integer kernels.
///
/// These are the micro-architecture-independent costs; the Cortex-M7 cycle
/// model in `mixq-mcu` weights them into latency. Separating the two lets
/// the same kernel instrumentation serve any target model.
///
/// # Examples
///
/// ```
/// use mixq_kernels::OpCounts;
///
/// let mut a = OpCounts { macs: 10, ..OpCounts::default() };
/// let b = OpCounts { macs: 5, unpacks: 3, ..OpCounts::default() };
/// a += b;
/// assert_eq!(a.macs, 15);
/// assert_eq!(a.unpacks, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct OpCounts {
    /// Multiply–accumulate operations.
    pub macs: u64,
    /// Sub-byte unpack operations (mask+shift on 4/2-bit operands; zero for
    /// 8-bit data, which the M7 loads directly).
    pub unpacks: u64,
    /// Per-element weight-offset subtractions inside the inner loop —
    /// the PC-quantization `Zw` cost the paper measures as ≈ 20% latency
    /// overhead (§6).
    pub offset_subs: u64,
    /// Requantization operations (one fixed-point multiply+shift per output
    /// element).
    pub requants: u64,
    /// Threshold comparisons (thresholds method only).
    pub threshold_cmps: u64,
    /// Bias additions.
    pub bias_adds: u64,
    /// Activation loads (input reads).
    pub act_loads: u64,
    /// Activation stores (output writes).
    pub act_stores: u64,
}

impl OpCounts {
    /// Sum of all counted operations (rough work proxy).
    pub fn total(&self) -> u64 {
        self.macs
            + self.unpacks
            + self.offset_subs
            + self.requants
            + self.threshold_cmps
            + self.bias_adds
            + self.act_loads
            + self.act_stores
    }

    /// The per-sample ledger of a batch-N execution. Every kernel's counts
    /// are linear in the batch (each sample performs identical work under
    /// SAME padding), so a batched layer's ledger is exactly N× the
    /// single-sample one and the division is exact — asserted (also in
    /// release, where the reporting paths actually run), so a kernel that
    /// ever broke batch linearity fails loudly instead of silently
    /// misreporting per-sample metrics.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or some count is not divisible by it.
    pub fn per_sample(&self, batch: u64) -> OpCounts {
        assert!(batch > 0, "batch size must be positive");
        let div = |v: u64| {
            assert_eq!(v % batch, 0, "ledger not divisible by the batch");
            v / batch
        };
        OpCounts {
            macs: div(self.macs),
            unpacks: div(self.unpacks),
            offset_subs: div(self.offset_subs),
            requants: div(self.requants),
            threshold_cmps: div(self.threshold_cmps),
            bias_adds: div(self.bias_adds),
            act_loads: div(self.act_loads),
            act_stores: div(self.act_stores),
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.macs += rhs.macs;
        self.unpacks += rhs.unpacks;
        self.offset_subs += rhs.offset_subs;
        self.requants += rhs.requants;
        self.threshold_cmps += rhs.threshold_cmps;
        self.bias_adds += rhs.bias_adds;
        self.act_loads += rhs.act_loads;
        self.act_stores += rhs.act_stores;
    }
}

impl AddAssign<&OpCounts> for OpCounts {
    fn add_assign(&mut self, rhs: &OpCounts) {
        *self += *rhs;
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(mut self, rhs: OpCounts) -> OpCounts {
        self += rhs;
        self
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), Add::add)
    }
}

impl<'a> Sum<&'a OpCounts> for OpCounts {
    fn sum<I: Iterator<Item = &'a OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), |acc, c| acc + *c)
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "macs={} unpacks={} zw_subs={} requants={} thr_cmps={}",
            self.macs, self.unpacks, self.offset_subs, self.requants, self.threshold_cmps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_everything() {
        let mut a = OpCounts::default();
        let b = OpCounts {
            macs: 1,
            unpacks: 2,
            offset_subs: 3,
            requants: 4,
            threshold_cmps: 5,
            bias_adds: 6,
            act_loads: 7,
            act_stores: 8,
        };
        a += b;
        a += b;
        assert_eq!(a.macs, 2);
        assert_eq!(a.act_stores, 16);
        assert_eq!(a.total(), 2 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
    }

    #[test]
    fn sum_folds_per_layer_ledgers() {
        let per_layer = [
            OpCounts {
                macs: 10,
                requants: 1,
                ..OpCounts::default()
            },
            OpCounts {
                macs: 20,
                unpacks: 5,
                ..OpCounts::default()
            },
            OpCounts {
                macs: 30,
                act_loads: 2,
                ..OpCounts::default()
            },
        ];
        let by_ref: OpCounts = per_layer.iter().sum();
        let by_val: OpCounts = per_layer.into_iter().sum();
        assert_eq!(by_ref, by_val);
        assert_eq!(by_ref.macs, 60);
        assert_eq!(by_ref.unpacks, 5);
        assert_eq!(by_ref.requants, 1);
        assert_eq!(by_ref.act_loads, 2);
        let a = OpCounts {
            macs: 1,
            ..OpCounts::default()
        };
        let b = OpCounts {
            bias_adds: 2,
            ..OpCounts::default()
        };
        assert_eq!((a + b).total(), 3);
    }

    #[test]
    fn display_mentions_macs() {
        let c = OpCounts {
            macs: 42,
            ..OpCounts::default()
        };
        assert!(c.to_string().contains("macs=42"));
    }
}
