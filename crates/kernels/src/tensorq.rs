use mixq_quant::{BitWidth, PackedTensor};
use mixq_tensor::Shape;

/// The weight zero-point storage of a quantized layer (Table 1):
/// a single UINT8 `Zw` for per-layer quantization, or one INT16 per output
/// channel for per-channel quantization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WeightOffset {
    /// Per-layer zero-point (UINT8).
    PerLayer(u8),
    /// Per-channel zero-points (INT16, one per output channel).
    PerChannel(Vec<i16>),
}

impl WeightOffset {
    /// Zero-point for output channel `c`.
    #[inline]
    pub fn at(&self, c: usize) -> i32 {
        match self {
            WeightOffset::PerLayer(z) => *z as i32,
            WeightOffset::PerChannel(zs) => zs[c] as i32,
        }
    }

    /// Whether this is the per-channel variant (costs one extra subtraction
    /// in the inner loop — the ≈ 20% overhead of §6).
    pub fn is_per_channel(&self) -> bool {
        matches!(self, WeightOffset::PerChannel(_))
    }

    /// Flash bytes of the stored zero-points (Table 1: UINT8 per layer,
    /// INT16 per output channel).
    pub fn flash_bytes(&self) -> usize {
        match self {
            WeightOffset::PerLayer(_) => 1,
            WeightOffset::PerChannel(zs) => 2 * zs.len(),
        }
    }
}

/// A bit-packed quantized activation tensor with its zero-point.
///
/// Activations on the deployment path are UINT-Q codes; PACT activations
/// have `Z = 0`, the network input keeps an asymmetric `Z`.
///
/// # Examples
///
/// ```
/// use mixq_kernels::QActivation;
/// use mixq_quant::BitWidth;
/// use mixq_tensor::Shape;
///
/// let a = QActivation::from_codes(Shape::feature_map(1, 2, 1), &[3, 9], BitWidth::W4, 0);
/// assert_eq!(a.get(0, 0, 1, 0), 9);
/// assert_eq!(a.byte_len(), 1); // two 4-bit codes in one byte
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QActivation {
    shape: Shape,
    packed: PackedTensor,
    zero_point: u8,
}

impl QActivation {
    /// Packs raw codes into an activation tensor.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != shape.volume()` or a code exceeds the
    /// precision.
    pub fn from_codes(shape: Shape, codes: &[u8], bits: BitWidth, zero_point: u8) -> Self {
        assert_eq!(codes.len(), shape.volume(), "code count vs shape");
        QActivation {
            shape,
            packed: PackedTensor::pack(codes, bits),
            zero_point,
        }
    }

    /// Packs raw codes reusing a recycled byte buffer for the packed
    /// storage — the arena-aware twin of [`QActivation::from_codes`], so
    /// steady-state inference performs no heap allocation (see
    /// [`crate::ActivationArena`]).
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != shape.volume()` or a code exceeds the
    /// precision.
    pub fn from_codes_in(
        shape: Shape,
        codes: &[u8],
        bits: BitWidth,
        zero_point: u8,
        storage: Vec<u8>,
    ) -> Self {
        assert_eq!(codes.len(), shape.volume(), "code count vs shape");
        QActivation {
            shape,
            packed: PackedTensor::pack_into(codes, bits, storage),
            zero_point,
        }
    }

    /// Consumes the activation, returning its packed byte buffer for
    /// recycling through a buffer pool.
    pub fn into_storage(self) -> Vec<u8> {
        self.packed.into_bytes()
    }

    /// Tensor shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Element precision.
    pub fn bits(&self) -> BitWidth {
        self.packed.bits()
    }

    /// Zero-point `Z` (0 for PACT activations).
    pub fn zero_point(&self) -> u8 {
        self.zero_point
    }

    /// RAM footprint in bytes (the `mem(t, Q)` of Eq. 7).
    pub fn byte_len(&self) -> usize {
        self.packed.byte_len()
    }

    /// Code at `(n, y, x, c)`.
    #[inline]
    pub fn get(&self, n: usize, y: usize, x: usize, c: usize) -> u8 {
        self.packed.get(self.shape.index(n, y, x, c))
    }

    /// All codes, unpacked.
    pub fn codes(&self) -> Vec<u8> {
        self.packed.unpack()
    }

    /// Unpacks all codes into a caller-owned buffer (cleared and resized in
    /// place) — the pooled twin of [`QActivation::codes`], so steady-state
    /// kernels can reuse one scratch buffer instead of allocating per call.
    pub fn codes_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.resize(self.shape.volume(), 0);
        self.packed.unpack_into(out);
    }

    /// Unpacks all codes into the head of a caller-provided slice (which
    /// must hold at least `shape().volume()` bytes), returning the number
    /// of codes written. Unlike [`QActivation::codes_into`] this never
    /// reallocates, so the im2col staging path can decode into the slack
    /// of an already-sized scratch buffer.
    pub fn unpack_into(&self, out: &mut [u8]) -> usize {
        self.packed.unpack_into(out)
    }

    /// Whether reading an element costs an unpack (sub-byte precision).
    pub fn needs_unpack(&self) -> bool {
        self.bits() != BitWidth::W8
    }

    /// The raw packed storage bytes. For an 8-bit tensor these *are* the
    /// codes in NHWC order — the zero-copy fast path of the blocked GEMM
    /// kernel; sub-byte tensors must go through [`QActivation::codes`].
    pub fn as_bytes(&self) -> &[u8] {
        self.packed.as_bytes()
    }
}

/// Bit-packed quantized convolution weights `(c_o, k_h, k_w, c_i)`
/// (depthwise: `c_i = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct QConvWeights {
    shape: Shape,
    depthwise: bool,
    packed: PackedTensor,
    offset: WeightOffset,
}

impl QConvWeights {
    /// Packs weight codes.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, or a per-channel offset vector does not
    /// have one entry per output channel.
    pub fn new(
        shape: Shape,
        depthwise: bool,
        codes: &[u8],
        bits: BitWidth,
        offset: WeightOffset,
    ) -> Self {
        assert_eq!(codes.len(), shape.volume(), "code count vs shape");
        if depthwise {
            assert_eq!(shape.c, 1, "depthwise weights have c_i = 1");
        }
        if let WeightOffset::PerChannel(zs) = &offset {
            assert_eq!(zs.len(), shape.n, "one Zw per output channel");
        }
        QConvWeights {
            shape,
            depthwise,
            packed: PackedTensor::pack(codes, bits),
            offset,
        }
    }

    /// Weight shape `(c_o, k_h, k_w, c_i)`.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Whether these are depthwise weights.
    pub fn is_depthwise(&self) -> bool {
        self.depthwise
    }

    /// Element precision.
    pub fn bits(&self) -> BitWidth {
        self.packed.bits()
    }

    /// The zero-point storage.
    pub fn offset(&self) -> &WeightOffset {
        &self.offset
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.shape.n
    }

    /// Input channels (1 for depthwise).
    pub fn in_channels(&self) -> usize {
        self.shape.c
    }

    /// Flash footprint of the packed weights in bytes.
    pub fn byte_len(&self) -> usize {
        self.packed.byte_len()
    }

    /// Weight code at `(c_o, k_y, k_x, c_i)`.
    #[inline]
    pub fn get(&self, co: usize, ky: usize, kx: usize, ci: usize) -> u8 {
        self.packed.get(self.shape.index(co, ky, kx, ci))
    }

    /// Weight code at a linear `(c_o, k_h, k_w, c_i)` row-major index —
    /// the packed-extraction twin of indexing a decoded-code cache.
    #[inline]
    pub(crate) fn code_at(&self, i: usize) -> u8 {
        self.packed.get(i)
    }

    /// Whether reading an element costs an unpack.
    pub fn needs_unpack(&self) -> bool {
        self.bits() != BitWidth::W8
    }

    /// The raw packed weight bytes, as they would be placed in flash. For
    /// 8-bit weights these are the codes themselves, in `(c_o, k_h, k_w,
    /// c_i)` order — exactly the flattened GEMM panel layout.
    pub fn as_bytes(&self) -> &[u8] {
        self.packed.as_bytes()
    }

    /// All weight codes, unpacked to one per byte in `(c_o, k_h, k_w,
    /// c_i)` order.
    pub fn codes(&self) -> Vec<u8> {
        self.packed.unpack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_roundtrip() {
        let shape = Shape::feature_map(2, 2, 2);
        let codes: Vec<u8> = (0..8).collect();
        let a = QActivation::from_codes(shape, &codes, BitWidth::W4, 3);
        assert_eq!(a.codes(), codes);
        assert_eq!(a.zero_point(), 3);
        assert_eq!(a.get(0, 1, 1, 1), 7);
        assert_eq!(a.byte_len(), 4);
        assert!(a.needs_unpack());
        let b = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
        assert!(!b.needs_unpack());
    }

    #[test]
    fn weights_roundtrip_per_channel() {
        let shape = Shape::new(2, 1, 1, 3);
        let codes = [1u8, 2, 3, 4, 5, 6];
        let w = QConvWeights::new(
            shape,
            false,
            &codes,
            BitWidth::W4,
            WeightOffset::PerChannel(vec![7, -2]),
        );
        assert_eq!(w.get(1, 0, 0, 2), 6);
        assert_eq!(w.offset().at(0), 7);
        assert_eq!(w.offset().at(1), -2);
        assert!(w.offset().is_per_channel());
        assert_eq!(w.byte_len(), 3);
    }

    #[test]
    fn per_layer_offset_broadcasts() {
        let off = WeightOffset::PerLayer(8);
        assert_eq!(off.at(0), 8);
        assert_eq!(off.at(99), 8);
        assert!(!off.is_per_channel());
    }

    #[test]
    #[should_panic(expected = "one Zw per output channel")]
    fn per_channel_offset_length_checked() {
        let _ = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            false,
            &[0, 0],
            BitWidth::W2,
            WeightOffset::PerChannel(vec![0]),
        );
    }

    #[test]
    #[should_panic(expected = "depthwise")]
    fn depthwise_weight_shape_checked() {
        let _ = QConvWeights::new(
            Shape::new(2, 3, 3, 2),
            true,
            &[0; 36],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
    }
}
