use crate::{OpCounts, QActivation, QConvWeights, Requantizer};
use mixq_quant::FixedPointMultiplier;

/// An integer-only fully-connected classifier head.
///
/// Consumes pooled features `(1, 1, 1, c_i)` and produces `i32` logits.
/// With per-layer weight quantization the raw accumulators are already
/// argmax-consistent; with per-channel quantization an ICN-style rescale to
/// a common scale is applied first (one fixed-point multiply per class).
#[derive(Debug, Clone, PartialEq)]
pub struct QLinear {
    weights: QConvWeights,
    bq: Vec<i32>,
    rescale: Option<Vec<FixedPointMultiplier>>,
}

impl QLinear {
    /// Assembles the head from packed `(c_o, 1, 1, c_i)` weights, quantized
    /// biases and an optional per-class rescale.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(
        weights: QConvWeights,
        bq: Vec<i32>,
        rescale: Option<Vec<FixedPointMultiplier>>,
    ) -> Self {
        assert_eq!(weights.shape().h, 1, "linear weights are (c_o,1,1,c_i)");
        assert_eq!(weights.shape().w, 1, "linear weights are (c_o,1,1,c_i)");
        assert_eq!(bq.len(), weights.out_channels(), "one Bq per class");
        if let Some(r) = &rescale {
            assert_eq!(r.len(), weights.out_channels(), "one rescale per class");
        }
        QLinear {
            weights,
            bq,
            rescale,
        }
    }

    /// The packed weights.
    pub fn weights(&self) -> &QConvWeights {
        &self.weights
    }

    /// Number of classes.
    pub fn out_features(&self) -> usize {
        self.weights.out_channels()
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weights.in_channels()
    }

    /// Quantized biases `Bq` (one per class).
    pub fn bq(&self) -> &[i32] {
        &self.bq
    }

    /// Per-class rescale multipliers, if any.
    pub fn rescale(&self) -> Option<&[FixedPointMultiplier]> {
        self.rescale.as_deref()
    }

    /// Computes the integer logits: `classes` per batch item, row-major
    /// `(n, classes)` for a batched input.
    ///
    /// # Panics
    ///
    /// Panics if the input feature count disagrees.
    pub fn execute(&self, x: &QActivation, ops: &mut OpCounts) -> Vec<i32> {
        let mut logits = Vec::with_capacity(x.shape().n * self.out_features());
        self.execute_into(x, &mut logits, ops);
        logits
    }

    /// [`QLinear::execute`] writing the logits into a caller-owned buffer
    /// (cleared in place), so steady-state inference reuses its capacity.
    /// A batched input `(n, 1, 1, c_i)` yields `n · classes` logits in
    /// row-major `(n, classes)` order — the head sweeps every sample of
    /// the batch in one call.
    ///
    /// # Panics
    ///
    /// Panics if the input feature count disagrees.
    pub fn execute_into(&self, x: &QActivation, logits: &mut Vec<i32>, ops: &mut OpCounts) {
        self.execute_into_with(None, x, logits, ops)
    }

    /// [`QLinear::execute_into`] with an optional prepacked weight cache:
    /// `wcodes`, when given, holds the weight codes decoded to one per byte
    /// in `(c_o, c_i)` order, so sub-byte weights skip the per-element
    /// mask-and-shift extraction (8-bit weights take the equivalent borrow
    /// of their packed bytes even without a cache). Bit-identical to the
    /// uncached path, including the abstract [`OpCounts`] ledger.
    ///
    /// # Panics
    ///
    /// Panics if the input feature count disagrees or `wcodes` has the
    /// wrong length.
    pub fn execute_into_with(
        &self,
        wcodes: Option<&[u8]>,
        x: &QActivation,
        logits: &mut Vec<i32>,
        ops: &mut OpCounts,
    ) {
        assert_eq!(
            x.shape().item_volume(),
            self.in_features(),
            "input features"
        );
        let ci = self.in_features();
        let co = self.out_features();
        let owned_w: Vec<u8>;
        let wflat: &[u8] = match wcodes {
            Some(w) => {
                assert_eq!(w.len(), co * ci, "decoded weight cache length");
                w
            }
            None if !self.weights.needs_unpack() => self.weights.as_bytes(),
            None => {
                owned_w = self.weights.codes();
                &owned_w
            }
        };
        let zx = x.zero_point() as i64;
        // 8-bit inputs expose their row bytes directly, so the dot product
        // runs over two flat slices (same order, same arithmetic — hence
        // bit-identical to the indexed gather). Sub-byte inputs keep the
        // per-element `get`: the head is a single tiny layer, so a decode
        // buffer is not worth an allocation here.
        let xflat: Option<&[u8]> = (!x.needs_unpack()).then(|| x.as_bytes());
        let batch = x.shape().n;
        let w_unpack = self.weights.needs_unpack() as u64;
        let x_unpack = x.needs_unpack() as u64;
        let per_channel = self.weights.offset().is_per_channel();
        logits.clear();
        for n in 0..batch {
            for o in 0..co {
                let zw = self.weights.offset().at(o) as i64;
                let wrow = &wflat[o * ci..(o + 1) * ci];
                let mut acc: i64 = self.bq[o] as i64;
                if let Some(xb) = xflat {
                    let xrow = &xb[n * ci..(n + 1) * ci];
                    for (&xv, &wv) in xrow.iter().zip(wrow) {
                        acc += (xv as i64 - zx) * (wv as i64 - zw);
                    }
                } else {
                    for (i, &wv) in wrow.iter().enumerate() {
                        let xv = x.get(n, 0, 0, i) as i64;
                        acc += (xv - zx) * (wv as i64 - zw);
                    }
                }
                ops.macs += ci as u64;
                ops.act_loads += ci as u64;
                ops.unpacks += (w_unpack + x_unpack) * ci as u64;
                if per_channel {
                    ops.offset_subs += ci as u64;
                }
                ops.bias_adds += 1;
                let logit = match &self.rescale {
                    Some(mults) => {
                        ops.requants += 1;
                        mults[o].apply(acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
                    }
                    None => acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
                };
                logits.push(logit);
            }
        }
        ops.act_stores += (batch * co) as u64;
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&self, x: &QActivation, ops: &mut OpCounts) -> usize {
        let logits = self.execute(x, ops);
        logits
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Builds a [`QLinear`] from an ICN-style requantizer's parts (helper for
/// conversions that treat the classifier like a 1×1 convolution).
///
/// Only [`Requantizer::Icn`] carries per-class multipliers; other variants
/// yield no rescale.
pub fn linear_rescale_of(requant: &Requantizer) -> Option<Vec<FixedPointMultiplier>> {
    match requant {
        Requantizer::Icn { mult, .. } => Some(mult.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightOffset;
    use mixq_quant::BitWidth;
    use mixq_tensor::Shape;

    fn feature(codes: &[u8], zx: u8) -> QActivation {
        QActivation::from_codes(Shape::vector(codes.len()), codes, BitWidth::W8, zx)
    }

    #[test]
    fn computes_integer_dot_products() {
        // W = [[1, 2], [3, 4]] (codes, Zw=0), x = [5, 6], bq = [10, 0].
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 2),
            false,
            &[1, 2, 3, 4],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let lin = QLinear::new(w, vec![10, 0], None);
        let mut ops = OpCounts::default();
        let logits = lin.execute(&feature(&[5, 6], 0), &mut ops);
        assert_eq!(logits, vec![5 + 12 + 10, 15 + 24]);
        assert_eq!(ops.macs, 4);
        assert_eq!(ops.bias_adds, 2);
    }

    #[test]
    fn zero_points_respected() {
        let w = QConvWeights::new(
            Shape::new(1, 1, 1, 1),
            false,
            &[0],
            BitWidth::W8,
            WeightOffset::PerChannel(vec![5]),
        );
        let lin = QLinear::new(w, vec![0], None);
        let mut ops = OpCounts::default();
        // (x - 3)(w - 5) = (7-3)(0-5) = -20.
        let logits = lin.execute(&feature(&[7], 3), &mut ops);
        assert_eq!(logits, vec![-20]);
        assert_eq!(ops.offset_subs, 1);
    }

    #[test]
    fn rescale_applies_per_class_multiplier() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            false,
            &[2, 2],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let lin = QLinear::new(
            w,
            vec![0, 0],
            Some(vec![
                FixedPointMultiplier::from_real(1.0),
                FixedPointMultiplier::from_real(0.5),
            ]),
        );
        let mut ops = OpCounts::default();
        let logits = lin.execute(&feature(&[10], 0), &mut ops);
        assert_eq!(logits, vec![20, 10]);
        assert_eq!(ops.requants, 2);
    }

    #[test]
    fn predict_takes_argmax() {
        let w = QConvWeights::new(
            Shape::new(3, 1, 1, 1),
            false,
            &[0, 1, 3],
            BitWidth::W4,
            WeightOffset::PerLayer(0),
        );
        let lin = QLinear::new(w, vec![0; 3], None);
        let mut ops = OpCounts::default();
        assert_eq!(lin.predict(&feature(&[9], 0), &mut ops), 2);
    }

    #[test]
    #[should_panic(expected = "one Bq per class")]
    fn bias_length_checked() {
        let w = QConvWeights::new(
            Shape::new(2, 1, 1, 1),
            false,
            &[0, 0],
            BitWidth::W8,
            WeightOffset::PerLayer(0),
        );
        let _ = QLinear::new(w, vec![0], None);
    }
}
