//! Trainable micro-CNN presets for the synthetic-data accuracy experiments
//! (the stand-ins for ImageNet MobileNetV1, see `DESIGN.md`
//! "Substitutions"), plus conversion of a micro-CNN into a shape-level
//! [`NetworkSpec`] so the memory model and Algorithms 1–2 can run on it.

use mixq_nn::qat::{MicroCnnSpec, QatNetwork};
use mixq_nn::ConvKind;
use mixq_tensor::Shape;

use crate::spec::{LayerSpec, NetworkSpec};

/// The micro-CNN used by the Table-2-shaped experiment: a MobileNet-style
/// separable network on 16×16×2 synthetic images, deep enough that
/// batch-norm scale diversity builds up across channels.
pub fn table2_cnn(num_classes: usize) -> MicroCnnSpec {
    MicroCnnSpec::separable(16, 16, 2, num_classes, &[8, 16, 24])
}

/// A smaller plain CNN for fast pipeline demos and tests.
pub fn quickstart_cnn(num_classes: usize) -> MicroCnnSpec {
    MicroCnnSpec::new(8, 8, 1, num_classes, &[8, 16])
}

/// The folding stress network: a **leading depthwise** layer whose output
/// channels inherit the dataset's per-channel amplitude spread one-to-one.
///
/// Trained on [`SyntheticKind::ChannelBits`] data with a large amplitude
/// base, its batch-norm σ spread across the depthwise channels equals the
/// amplitude spread, so folding (PL+FB) at INT4 provably crushes the
/// low-magnitude folded channels and loses the corresponding class bits —
/// the micro-scale replica of the paper's Table 2 collapse. ICN keeps the
/// per-channel scales out of the weights and survives.
///
/// [`SyntheticKind::ChannelBits`]: https://docs.rs/mixq-data
pub fn folding_stress_cnn(channels: usize, num_classes: usize) -> MicroCnnSpec {
    use mixq_nn::qat::BlockSpec;
    MicroCnnSpec::new(12, 12, channels, num_classes, &[8]).with_blocks(vec![
        BlockSpec {
            out_channels: channels,
            stride: 1,
            kind: ConvKind::Depthwise,
            kernel: 3,
        },
        BlockSpec {
            out_channels: 8,
            stride: 1,
            kind: ConvKind::Standard,
            kernel: 1,
        },
        BlockSpec {
            out_channels: 8,
            stride: 2,
            kind: ConvKind::Depthwise,
            kernel: 3,
        },
        BlockSpec {
            out_channels: 16,
            stride: 1,
            kind: ConvKind::Standard,
            kernel: 1,
        },
    ])
}

/// A trainable MobileNetV1-topology network at reduced scale: the exact
/// stem + 13 depthwise-separable-pair structure of the paper's models, with
/// channels divided by `width_div` and the given input resolution, so the
/// integer kernels can execute the real topology in test-friendly time.
///
/// With `input_res = 128` and `width_div = 4` this *is* MobileNetV1
/// 128_0.25 (identical shapes); smaller resolutions scale the feature maps
/// only.
pub fn mobilenet_like(
    input_res: usize,
    input_channels: usize,
    width_div: usize,
    num_classes: usize,
) -> MicroCnnSpec {
    use mixq_nn::qat::BlockSpec;
    assert!(width_div >= 1, "width divisor");
    let ch = |c: usize| (c / width_div).max(1);
    let mut blocks = vec![BlockSpec {
        out_channels: ch(32),
        stride: 2,
        kind: ConvKind::Standard,
        kernel: 3,
    }];
    let pairs: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    let mut prev = ch(32);
    for (stride, out) in pairs {
        blocks.push(BlockSpec {
            out_channels: prev,
            stride,
            kind: ConvKind::Depthwise,
            kernel: 3,
        });
        blocks.push(BlockSpec {
            out_channels: ch(out),
            stride: 1,
            kind: ConvKind::Standard,
            kernel: 1,
        });
        prev = ch(out);
    }
    MicroCnnSpec::new(input_res, input_res, input_channels, num_classes, &[1]).with_blocks(blocks)
}

/// The MobileNet topology of [`mobilenet_like`] with MobileNetV2-style
/// identity residuals added on every stride-1 pair whose input and output
/// channel counts agree (at full scale: the 128-channel pair, the
/// 256-channel pair, the five consecutive 512-channel pairs and the final
/// 1024 pair) — the "optional residual blocks" variant whose skip tensors
/// exercise the DAG executor's multi-branch liveness planning.
///
/// Each skip runs from the previous pair's pointwise output to the current
/// pair's pointwise output; the join is re-quantized by a dedicated PACT
/// activation and lowers to a `QAdd` graph node.
pub fn mobilenet_like_residual(
    input_res: usize,
    input_channels: usize,
    width_div: usize,
    num_classes: usize,
) -> MicroCnnSpec {
    let mut spec = mobilenet_like(input_res, input_channels, width_div, num_classes);
    let blocks = spec.blocks().to_vec();
    // Pair p (1-based) occupies blocks 2p-1 (depthwise) and 2p (pointwise);
    // its input is the output of block 2p-2. A skip fits when the depthwise
    // keeps stride 1 and the pointwise preserves the channel count.
    let pairs = (blocks.len() - 1) / 2;
    for p in 1..=pairs {
        let (dw, pw) = (&blocks[2 * p - 1], &blocks[2 * p]);
        let in_channels = blocks[2 * p - 2].out_channels;
        if dw.stride == 1 && pw.out_channels == in_channels {
            spec = spec.with_residual(2 * p - 2, 2 * p);
        }
    }
    spec
}

/// Converts a built QAT network into a shape-level [`NetworkSpec`] —
/// including its residual skips, carried over edge for edge (skip `s` of
/// the spec is residual `s` of the network) — so the same memory model and
/// bit-assignment algorithms used for MobileNetV1 apply to the micro-CNNs
/// and their residual variants.
pub fn network_spec_of(net: &QatNetwork, name: &str) -> NetworkSpec {
    let mut layers = Vec::with_capacity(net.num_blocks() + 1);
    let mut shape = net.input_shape();
    for (i, block) in net.blocks().iter().enumerate() {
        let conv = block.conv();
        let g = conv.geometry();
        let spec = match conv.kind() {
            ConvKind::Standard => LayerSpec::conv(
                &format!("conv{i}"),
                g.kh,
                g.stride,
                conv.in_channels(),
                conv.out_channels(),
                shape.h,
                shape.w,
            ),
            ConvKind::Depthwise => LayerSpec::depthwise(
                &format!("dw{i}"),
                g.kh,
                g.stride,
                conv.out_channels(),
                shape.h,
                shape.w,
            ),
        };
        shape = conv.output_shape(shape);
        layers.push(spec);
    }
    layers.push(LayerSpec::linear(
        "fc",
        net.linear().in_features(),
        net.linear().out_features(),
    ));
    let mut spec = NetworkSpec::new(
        name,
        Shape::feature_map(
            net.input_shape().h,
            net.input_shape().w,
            net.input_shape().c,
        ),
        layers,
    );
    for r in net.residuals() {
        spec = spec.with_skip(r.from(), r.to());
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        let t2 = table2_cnn(4);
        assert_eq!(t2.num_classes(), 4);
        assert!(t2.blocks().len() >= 5); // stem + two dw/pw pairs
        let quick = quickstart_cnn(2);
        assert_eq!(quick.blocks().len(), 2);
        let stress = folding_stress_cnn(2, 4);
        assert_eq!(stress.blocks().len(), 4);
        assert_eq!(stress.blocks()[0].kind, ConvKind::Depthwise);
        // The stress net builds and runs forward.
        let net = QatNetwork::build(&stress, 0);
        assert_eq!(net.num_blocks(), 4);
    }

    #[test]
    fn mobilenet_like_matches_real_topology_at_full_scale() {
        use crate::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
        // width_div = 4 at 128 px reproduces MobileNetV1 128_0.25's shapes.
        let spec = mobilenet_like(128, 3, 4, 1000);
        let net = QatNetwork::build(&spec, 0);
        let ns = network_spec_of(&net, "minimobile");
        let reference = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
        assert_eq!(ns.num_layers(), reference.num_layers());
        assert_eq!(
            ns.total_weight_elements(),
            reference.total_weight_elements()
        );
        assert_eq!(ns.total_macs(), reference.total_macs());
    }

    #[test]
    fn network_spec_conversion_matches_network() {
        let spec = table2_cnn(4);
        let net = QatNetwork::build(&spec, 0);
        let ns = network_spec_of(&net, "table2");
        assert_eq!(ns.num_layers(), net.num_blocks() + 1);
        // Weight elements agree layer by layer with the actual tensors.
        for (l, b) in ns.layers().iter().zip(net.blocks()) {
            assert_eq!(
                l.weight_elements(),
                b.conv().weights().len(),
                "{}",
                l.name()
            );
        }
        assert_eq!(
            ns.layers().last().unwrap().weight_elements(),
            net.linear().weights().len()
        );
    }

    #[test]
    fn activation_sizes_match_forward_shapes() {
        let spec = quickstart_cnn(2);
        let net = QatNetwork::build(&spec, 1);
        let ns = network_spec_of(&net, "quick");
        // Chain the real forward shapes and compare.
        let mut shape = net.input_shape();
        for (l, b) in ns.layers().iter().zip(net.blocks()) {
            assert_eq!(l.in_act_elements(), shape.item_volume());
            shape = b.conv().output_shape(shape);
            assert_eq!(l.out_act_elements(), shape.item_volume());
        }
    }
}
