//! The MobileNetV1 family (Howard et al.) exactly as evaluated in the
//! paper's §6: 16 configurations `x_y` with input resolution
//! `x ∈ {128, 160, 192, 224}` and width multiplier
//! `y ∈ {0.25, 0.5, 0.75, 1.0}`, ending in global average pooling and a
//! 1000-way classifier (ImageNet).

use std::fmt;

use mixq_tensor::Shape;

use crate::spec::{LayerSpec, NetworkSpec};

/// Input resolution of a MobileNetV1 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resolution {
    /// 128×128 input.
    R128,
    /// 160×160 input.
    R160,
    /// 192×192 input.
    R192,
    /// 224×224 input.
    R224,
}

impl Resolution {
    /// All resolutions, ascending.
    pub const ALL: [Resolution; 4] = [
        Resolution::R128,
        Resolution::R160,
        Resolution::R192,
        Resolution::R224,
    ];

    /// Pixel count per side.
    pub const fn pixels(self) -> usize {
        match self {
            Resolution::R128 => 128,
            Resolution::R160 => 160,
            Resolution::R192 => 192,
            Resolution::R224 => 224,
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pixels())
    }
}

/// Width (channel) multiplier of a MobileNetV1 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WidthMultiplier {
    /// 0.25× channels.
    X0_25,
    /// 0.5× channels.
    X0_5,
    /// 0.75× channels.
    X0_75,
    /// 1.0× channels (full width).
    X1_0,
}

impl WidthMultiplier {
    /// All multipliers, ascending.
    pub const ALL: [WidthMultiplier; 4] = [
        WidthMultiplier::X0_25,
        WidthMultiplier::X0_5,
        WidthMultiplier::X0_75,
        WidthMultiplier::X1_0,
    ];

    /// The multiplier as a float.
    pub const fn value(self) -> f32 {
        match self {
            WidthMultiplier::X0_25 => 0.25,
            WidthMultiplier::X0_5 => 0.5,
            WidthMultiplier::X0_75 => 0.75,
            WidthMultiplier::X1_0 => 1.0,
        }
    }

    /// Scales a base channel count (all MobileNetV1 base counts are
    /// divisible by 4, so this is exact).
    pub fn scale(self, channels: usize) -> usize {
        ((channels as f32 * self.value()) as usize).max(1)
    }
}

impl fmt::Display for WidthMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WidthMultiplier::X0_25 => write!(f, "0.25"),
            WidthMultiplier::X0_5 => write!(f, "0.5"),
            WidthMultiplier::X0_75 => write!(f, "0.75"),
            WidthMultiplier::X1_0 => write!(f, "1.0"),
        }
    }
}

/// A MobileNetV1 configuration `x_y`.
///
/// # Examples
///
/// ```
/// use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
///
/// let cfg = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5);
/// assert_eq!(cfg.label(), "192_0.5");
/// let spec = cfg.build();
/// assert_eq!(spec.layers()[0].out_channels(), 16); // 32 × 0.5
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MobileNetConfig {
    resolution: Resolution,
    width: WidthMultiplier,
    num_classes: usize,
}

/// `(stride, base output channels)` of the 13 depthwise-separable pairs.
const PAIRS: [(usize, usize); 13] = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    // The original table lists stride 2 here but the spatial size stays 7x7
    // (TF-slim implements it as stride 1); we follow the implementation.
    (1, 1024),
];

impl MobileNetConfig {
    /// Creates a configuration with the ImageNet classifier (1000 classes).
    pub fn new(resolution: Resolution, width: WidthMultiplier) -> Self {
        MobileNetConfig {
            resolution,
            width,
            num_classes: 1000,
        }
    }

    /// Overrides the classifier size.
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        self.num_classes = num_classes;
        self
    }

    /// Input resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Width multiplier.
    pub fn width(&self) -> WidthMultiplier {
        self.width
    }

    /// The paper's `x_y` label (e.g. `"224_1.0"`).
    pub fn label(&self) -> String {
        format!("{}_{}", self.resolution, self.width)
    }

    /// All 16 configurations of the paper's Figure 2 grid, resolution-major.
    pub fn all() -> Vec<MobileNetConfig> {
        let mut v = Vec::with_capacity(16);
        for r in Resolution::ALL {
            for w in WidthMultiplier::ALL {
                v.push(MobileNetConfig::new(r, w));
            }
        }
        v
    }

    /// Builds the layer-by-layer [`NetworkSpec`].
    pub fn build(&self) -> NetworkSpec {
        let mut layers = Vec::with_capacity(28);
        let mut h = self.resolution.pixels();
        let mut w = self.resolution.pixels();
        let mut c = self.width.scale(32);
        layers.push(LayerSpec::conv("conv0", 3, 2, 3, c, h, w));
        h = h.div_ceil(2);
        w = w.div_ceil(2);
        for (i, &(stride, base_out)) in PAIRS.iter().enumerate() {
            let out = self.width.scale(base_out);
            layers.push(LayerSpec::depthwise(
                &format!("dw{}", i + 1),
                3,
                stride,
                c,
                h,
                w,
            ));
            h = h.div_ceil(stride);
            w = w.div_ceil(stride);
            layers.push(LayerSpec::conv(&format!("pw{}", i + 1), 1, 1, c, out, h, w));
            c = out;
        }
        layers.push(LayerSpec::linear("fc", c, self.num_classes));
        NetworkSpec::new(
            &self.label(),
            Shape::feature_map(self.resolution.pixels(), self.resolution.pixels(), 3),
            layers,
        )
    }
}

impl fmt::Display for MobileNetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MobileNetV1_{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerKind;

    #[test]
    fn full_width_parameter_count_matches_howard_et_al() {
        let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
        // 864 stem + separable body + 1.024M classifier = 4,209,088.
        assert_eq!(spec.total_weight_elements(), 4_209_088);
        assert_eq!(spec.num_layers(), 1 + 13 * 2 + 1);
    }

    #[test]
    fn full_width_macs_near_published_569m() {
        let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
        let m = spec.total_macs() as f64;
        assert!(
            (5.4e8..6.0e8).contains(&m),
            "224_1.0 MACs should be ≈ 569M, got {m}"
        );
    }

    #[test]
    fn spatial_chain_is_consistent() {
        for cfg in MobileNetConfig::all() {
            let spec = cfg.build();
            // Final conv feature map is (res/32)^2.
            let last_conv = &spec.layers()[spec.num_layers() - 2];
            assert_eq!(last_conv.out_h(), cfg.resolution().pixels() / 32);
            // The classifier consumes the pooled channel count.
            let fc = spec.layers().last().unwrap();
            assert_eq!(fc.kind(), LayerKind::Linear);
            assert_eq!(fc.in_channels(), cfg.width().scale(1024));
            assert_eq!(fc.out_channels(), 1000);
        }
    }

    #[test]
    fn width_scaling_is_quadratic_on_pointwise() {
        let full = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
        let half = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_5).build();
        // pw13: 1024x1024 vs 512x512 → 4x.
        let f = full.layers()[spec_index("pw13", &full)].weight_elements();
        let h = half.layers()[spec_index("pw13", &half)].weight_elements();
        assert_eq!(f, 4 * h);
    }

    fn spec_index(name: &str, spec: &NetworkSpec) -> usize {
        spec.layers()
            .iter()
            .position(|l| l.name() == name)
            .expect("layer exists")
    }

    #[test]
    fn resolution_scaling_leaves_weights_unchanged() {
        let a = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_5).build();
        let b = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_5).build();
        assert_eq!(a.total_weight_elements(), b.total_weight_elements());
        assert!(a.total_macs() > b.total_macs());
    }

    #[test]
    fn all_sixteen_configs() {
        let all = MobileNetConfig::all();
        assert_eq!(all.len(), 16);
        let labels: Vec<String> = all.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"128_0.25".to_owned()));
        assert!(labels.contains(&"224_1.0".to_owned()));
        // Labels are unique.
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn custom_class_count() {
        let spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25)
            .with_classes(10)
            .build();
        assert_eq!(spec.layers().last().unwrap().out_channels(), 10);
    }

    #[test]
    fn paper_activation_anchor_192_05() {
        // §6 / DESIGN.md anchor: 192_0.5's largest activation pair is the
        // pw1 input+output: 96·96·16 + 96·96·32 bytes at 8 bit = 432 KiB,
        // under the 512 KiB budget (hence "no cuts" in Figure 2's setting).
        let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
        let pw1 = &spec.layers()[2];
        assert_eq!(pw1.name(), "pw1");
        assert_eq!(pw1.in_act_elements() + pw1.out_act_elements(), 442_368);
        assert!(spec.max_activation_elements() <= 96 * 96 * 32);
    }

    #[test]
    fn display_labels() {
        let cfg = MobileNetConfig::new(Resolution::R160, WidthMultiplier::X0_75);
        assert_eq!(cfg.to_string(), "MobileNetV1_160_0.75");
    }
}
