//! Shape-level network descriptors.
//!
//! A [`NetworkSpec`] is the chain of "quantized convolutional layers" the
//! paper's Algorithms 1–2 operate on (§5): each layer has an input and an
//! output activation tensor (`y_i ≡ x_{i+1}`) plus a weight tensor. The
//! classifier ([`LayerKind::Linear`]) participates in the weight budget
//! (Eq. 6) exactly like a 1×1 convolution over a 1×1 feature map.

use std::fmt;

use mixq_tensor::Shape;

/// The kind of a weight-carrying layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard convolution.
    Conv,
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv,
    /// Fully-connected classifier.
    Linear,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv => write!(f, "conv"),
            LayerKind::DepthwiseConv => write!(f, "dw"),
            LayerKind::Linear => write!(f, "fc"),
        }
    }
}

/// Shape-level description of one weight-carrying layer.
///
/// # Examples
///
/// ```
/// use mixq_models::{LayerKind, LayerSpec};
///
/// // MobileNetV1 stem on 224x224 input.
/// let stem = LayerSpec::conv("conv0", 3, 2, 3, 32, 224, 224);
/// assert_eq!(stem.out_h(), 112);
/// assert_eq!(stem.weight_elements(), 3 * 3 * 3 * 32);
/// assert_eq!(stem.macs(), 112 * 112 * 32 * 9 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    name: String,
    kind: LayerKind,
    kernel: usize,
    stride: usize,
    in_channels: usize,
    out_channels: usize,
    in_h: usize,
    in_w: usize,
    out_h: usize,
    out_w: usize,
}

impl LayerSpec {
    /// Standard convolution with SAME padding.
    pub fn conv(
        name: &str,
        kernel: usize,
        stride: usize,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::Conv,
            kernel,
            stride,
            in_channels,
            out_channels,
            in_h,
            in_w,
            out_h: in_h.div_ceil(stride),
            out_w: in_w.div_ceil(stride),
        }
    }

    /// Depthwise convolution with SAME padding.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn depthwise(
        name: &str,
        kernel: usize,
        stride: usize,
        channels: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(channels > 0, "depthwise needs channels");
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::DepthwiseConv,
            kernel,
            stride,
            in_channels: channels,
            out_channels: channels,
            in_h,
            in_w,
            out_h: in_h.div_ceil(stride),
            out_w: in_w.div_ceil(stride),
        }
    }

    /// Fully-connected layer over pooled features.
    pub fn linear(name: &str, in_features: usize, out_features: usize) -> Self {
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::Linear,
            kernel: 1,
            stride: 1,
            in_channels: in_features,
            out_channels: out_features,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        }
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channels `c_O` (the per-channel parameter axis of Table 1).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.out_h
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.out_w
    }

    /// Number of weight values (`c_O · k_w · k_h · c_I` for standard convs,
    /// Table 1).
    pub fn weight_elements(&self) -> usize {
        match self.kind {
            LayerKind::Conv => self.out_channels * self.kernel * self.kernel * self.in_channels,
            LayerKind::DepthwiseConv => self.out_channels * self.kernel * self.kernel,
            LayerKind::Linear => self.out_channels * self.in_channels,
        }
    }

    /// Elements of the input activation tensor `x_i`.
    pub fn in_act_elements(&self) -> usize {
        self.in_h * self.in_w * self.in_channels
    }

    /// Elements of the output activation tensor `y_i`.
    pub fn out_act_elements(&self) -> usize {
        self.out_h * self.out_w * self.out_channels
    }

    /// Multiply–accumulate count of one inference.
    pub fn macs(&self) -> usize {
        let per_out = match self.kind {
            LayerKind::Conv => self.kernel * self.kernel * self.in_channels,
            LayerKind::DepthwiseConv => self.kernel * self.kernel,
            LayerKind::Linear => self.in_channels,
        };
        self.out_h * self.out_w * self.out_channels * per_out
    }

    /// Whether this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.kind == LayerKind::DepthwiseConv
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}x{}/{} {}x{}x{} -> {}x{}x{}",
            self.name,
            self.kind,
            self.kernel,
            self.kernel,
            self.stride,
            self.in_h,
            self.in_w,
            self.in_channels,
            self.out_h,
            self.out_w,
            self.out_channels
        )
    }
}

/// A whole network as an ordered chain of weight-carrying layers.
///
/// Consecutive layers share activation tensors (`y_i ≡ x_{i+1}`); a global
/// average pool (if any) is implicit between the last convolution and the
/// classifier — it carries no weights and shrinks the activation, so it
/// never binds in Eq. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    name: String,
    input: Shape,
    layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Creates a network spec.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive channel counts disagree
    /// (pool boundaries excepted).
    pub fn new(name: &str, input: Shape, layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_eq!(
                a.out_channels(),
                b.in_channels(),
                "channel mismatch between {} and {}",
                a.name(),
                b.name()
            );
        }
        NetworkSpec {
            name: name.to_owned(),
            input,
            layers,
        }
    }

    /// Model name (e.g. `"224_1.0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape `(1, h, w, c)`.
    pub fn input(&self) -> Shape {
        self.input
    }

    /// The layer chain.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of weight-carrying layers (the `L` of Algorithms 1–2 plus the
    /// classifier).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total weight elements across all layers.
    pub fn total_weight_elements(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_elements).sum()
    }

    /// Total MACs of one inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Largest single activation tensor in elements (a lower bound on RW
    /// feasibility).
    pub fn max_activation_elements(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| [l.in_act_elements(), l.out_act_elements()])
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {})", self.name, self.input)?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_shapes() {
        let l = LayerSpec::conv("c", 3, 2, 3, 32, 225, 225);
        assert_eq!(l.out_h(), 113); // ceil(225/2)
        assert_eq!(l.weight_elements(), 864);
        assert_eq!(l.in_act_elements(), 225 * 225 * 3);
        assert_eq!(l.out_act_elements(), 113 * 113 * 32);
    }

    #[test]
    fn depthwise_spec() {
        let l = LayerSpec::depthwise("d", 3, 1, 64, 56, 56);
        assert!(l.is_depthwise());
        assert_eq!(l.weight_elements(), 64 * 9);
        assert_eq!(l.macs(), 56 * 56 * 64 * 9);
        assert_eq!(l.in_channels(), l.out_channels());
    }

    #[test]
    fn linear_spec() {
        let l = LayerSpec::linear("fc", 1024, 1000);
        assert_eq!(l.weight_elements(), 1_024_000);
        assert_eq!(l.macs(), 1_024_000);
        assert_eq!(l.in_act_elements(), 1024);
        assert_eq!(l.out_act_elements(), 1000);
    }

    #[test]
    fn network_totals() {
        let layers = vec![
            LayerSpec::conv("c0", 3, 1, 1, 4, 8, 8),
            LayerSpec::conv("c1", 3, 2, 4, 8, 8, 8),
            LayerSpec::linear("fc", 8, 2),
        ];
        let net = NetworkSpec::new("toy", Shape::feature_map(8, 8, 1), layers);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.total_weight_elements(), 9 * 4 + 9 * 4 * 8 + 16);
        assert!(net.total_macs() > 0);
        assert_eq!(net.max_activation_elements(), 8 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn mismatched_channels_panic() {
        let layers = vec![
            LayerSpec::conv("c0", 3, 1, 1, 4, 8, 8),
            LayerSpec::conv("c1", 3, 1, 8, 8, 8, 8),
        ];
        let _ = NetworkSpec::new("bad", Shape::feature_map(8, 8, 1), layers);
    }

    #[test]
    fn display_contains_layers() {
        let net = NetworkSpec::new(
            "toy",
            Shape::feature_map(4, 4, 1),
            vec![LayerSpec::conv("c0", 3, 1, 1, 2, 4, 4)],
        );
        let s = net.to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("c0"));
    }
}
