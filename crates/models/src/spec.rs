//! Shape-level network descriptors.
//!
//! A [`NetworkSpec`] is the graph of "quantized convolutional layers" the
//! paper's Algorithms 1–2 operate on (§5): each layer has an input and an
//! output activation tensor (`y_i ≡ x_{i+1}`) plus a weight tensor. The
//! classifier ([`LayerKind::Linear`]) participates in the weight budget
//! (Eq. 6) exactly like a 1×1 convolution over a 1×1 feature map.
//!
//! Beyond the chain, a spec may declare identity residual [`SkipSpec`]
//! edges (MobileNetV2-style bottleneck skips). [`NetworkSpec::graph`]
//! lowers the spec to a [`GraphSpec`]: an execution schedule with explicit
//! tensor ids mirroring the executor's `QGraph` wiring node for node, so
//! the deployment memory model can price the true multi-tensor live set of
//! every step instead of just input+output pairs.

use std::fmt;

use mixq_tensor::Shape;

/// The kind of a weight-carrying layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard convolution.
    Conv,
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv,
    /// Fully-connected classifier.
    Linear,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv => write!(f, "conv"),
            LayerKind::DepthwiseConv => write!(f, "dw"),
            LayerKind::Linear => write!(f, "fc"),
        }
    }
}

/// Shape-level description of one weight-carrying layer.
///
/// # Examples
///
/// ```
/// use mixq_models::{LayerKind, LayerSpec};
///
/// // MobileNetV1 stem on 224x224 input.
/// let stem = LayerSpec::conv("conv0", 3, 2, 3, 32, 224, 224);
/// assert_eq!(stem.out_h(), 112);
/// assert_eq!(stem.weight_elements(), 3 * 3 * 3 * 32);
/// assert_eq!(stem.macs(), 112 * 112 * 32 * 9 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    name: String,
    kind: LayerKind,
    kernel: usize,
    stride: usize,
    in_channels: usize,
    out_channels: usize,
    in_h: usize,
    in_w: usize,
    out_h: usize,
    out_w: usize,
}

impl LayerSpec {
    /// Standard convolution with SAME padding.
    pub fn conv(
        name: &str,
        kernel: usize,
        stride: usize,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::Conv,
            kernel,
            stride,
            in_channels,
            out_channels,
            in_h,
            in_w,
            out_h: in_h.div_ceil(stride),
            out_w: in_w.div_ceil(stride),
        }
    }

    /// Depthwise convolution with SAME padding.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn depthwise(
        name: &str,
        kernel: usize,
        stride: usize,
        channels: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(channels > 0, "depthwise needs channels");
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::DepthwiseConv,
            kernel,
            stride,
            in_channels: channels,
            out_channels: channels,
            in_h,
            in_w,
            out_h: in_h.div_ceil(stride),
            out_w: in_w.div_ceil(stride),
        }
    }

    /// Fully-connected layer over pooled features.
    pub fn linear(name: &str, in_features: usize, out_features: usize) -> Self {
        LayerSpec {
            name: name.to_owned(),
            kind: LayerKind::Linear,
            kernel: 1,
            stride: 1,
            in_channels: in_features,
            out_channels: out_features,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        }
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channels `c_O` (the per-channel parameter axis of Table 1).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.out_h
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.out_w
    }

    /// Number of weight values (`c_O · k_w · k_h · c_I` for standard convs,
    /// Table 1).
    pub fn weight_elements(&self) -> usize {
        match self.kind {
            LayerKind::Conv => self.out_channels * self.kernel * self.kernel * self.in_channels,
            LayerKind::DepthwiseConv => self.out_channels * self.kernel * self.kernel,
            LayerKind::Linear => self.out_channels * self.in_channels,
        }
    }

    /// Elements of the input activation tensor `x_i`.
    pub fn in_act_elements(&self) -> usize {
        self.in_h * self.in_w * self.in_channels
    }

    /// Elements of the output activation tensor `y_i`.
    pub fn out_act_elements(&self) -> usize {
        self.out_h * self.out_w * self.out_channels
    }

    /// Multiply–accumulate count of one inference.
    pub fn macs(&self) -> usize {
        let per_out = match self.kind {
            LayerKind::Conv => self.kernel * self.kernel * self.in_channels,
            LayerKind::DepthwiseConv => self.kernel * self.kernel,
            LayerKind::Linear => self.in_channels,
        };
        self.out_h * self.out_w * self.out_channels * per_out
    }

    /// Whether this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.kind == LayerKind::DepthwiseConv
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}x{}/{} {}x{}x{} -> {}x{}x{}",
            self.name,
            self.kind,
            self.kernel,
            self.kernel,
            self.stride,
            self.in_h,
            self.in_w,
            self.in_channels,
            self.out_h,
            self.out_w,
            self.out_channels
        )
    }
}

/// An identity residual skip edge: layer `to`'s output gains layer
/// `from`'s (post-residual) output, and the sum is a *new* activation
/// tensor with its own precision — the shape-level twin of the executor's
/// requantizing `QAdd` node and of the QAT graph's `ResidualSkip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkipSpec {
    from: usize,
    to: usize,
}

impl SkipSpec {
    /// Source layer index (its post-residual output feeds the skip).
    pub fn from(&self) -> usize {
        self.from
    }

    /// Destination layer index (the join happens after this layer).
    pub fn to(&self) -> usize {
        self.to
    }
}

/// A whole network as an ordered list of weight-carrying layers plus
/// optional identity residual [`SkipSpec`] edges.
///
/// Consecutive layers share activation tensors (`y_i ≡ x_{i+1}`) — except
/// across a skip join, where the next layer consumes the residual-add
/// output instead. A global average pool is implicit between the last
/// convolution and the classifier; [`NetworkSpec::graph`] makes it (and
/// every tensor's true live range) explicit.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    name: String,
    input: Shape,
    layers: Vec<LayerSpec>,
    skips: Vec<SkipSpec>,
}

impl NetworkSpec {
    /// Creates a network spec.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive channel counts disagree
    /// (pool boundaries excepted).
    pub fn new(name: &str, input: Shape, layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_eq!(
                a.out_channels(),
                b.in_channels(),
                "channel mismatch between {} and {}",
                a.name(),
                b.name()
            );
        }
        NetworkSpec {
            name: name.to_owned(),
            input,
            layers,
            skips: Vec::new(),
        }
    }

    /// Declares an identity residual skip from layer `from`'s output to
    /// layer `to`'s output (mirrors `QatNetwork::add_residual`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or not strictly forward, if
    /// either endpoint is the classifier, if layer `to` already receives a
    /// skip, or if the two output tensors differ in element count
    /// (identity shortcuts only — no projection).
    pub fn with_skip(mut self, from: usize, to: usize) -> Self {
        assert!(from < to, "skip must run forward: {from} -> {to}");
        assert!(to < self.layers.len(), "skip destination out of range");
        assert!(
            self.layers[from].kind() != LayerKind::Linear
                && self.layers[to].kind() != LayerKind::Linear,
            "skips join convolution outputs, not the classifier"
        );
        assert!(
            self.skips.iter().all(|s| s.to != to),
            "layer {to} already receives a residual skip"
        );
        assert_eq!(
            self.layers[from].out_act_elements(),
            self.layers[to].out_act_elements(),
            "identity skip needs matching tensors: {} vs {}",
            self.layers[from].name(),
            self.layers[to].name()
        );
        self.skips.push(SkipSpec { from, to });
        self
    }

    /// The declared residual skips, in insertion order (the index is the
    /// skip's id in `BitAssignment::res_bits`).
    pub fn skips(&self) -> &[SkipSpec] {
        &self.skips
    }

    /// Number of residual skips.
    pub fn num_skips(&self) -> usize {
        self.skips.len()
    }

    /// Index of the skip joining after layer `layer`, if any.
    pub fn skip_ending_at(&self, layer: usize) -> Option<usize> {
        self.skips.iter().position(|s| s.to == layer)
    }

    /// Model name (e.g. `"224_1.0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape `(1, h, w, c)`.
    pub fn input(&self) -> Shape {
        self.input
    }

    /// The layer chain.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of weight-carrying layers (the `L` of Algorithms 1–2 plus the
    /// classifier).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total weight elements across all layers.
    pub fn total_weight_elements(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_elements).sum()
    }

    /// Total MACs of one inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Largest single activation tensor in elements (a lower bound on RW
    /// feasibility).
    pub fn max_activation_elements(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| [l.in_act_elements(), l.out_act_elements()])
            .max()
            .unwrap_or(0)
    }

    /// Lowers the spec to its execution schedule with explicit tensor ids —
    /// the wiring the executor's `QGraph` will actually run, node for node:
    /// one step per layer, a residual-add step after each skip destination,
    /// and an explicit global-average-pool step ahead of the classifier.
    ///
    /// # Panics
    ///
    /// Panics if a [`LayerKind::Linear`] layer appears anywhere but last.
    pub fn graph(&self) -> GraphSpec {
        GraphSpec::plan(self)
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {})", self.name, self.input)?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        for s in &self.skips {
            writeln!(
                f,
                "  skip {} -> {}",
                self.layers[s.from()].name(),
                self.layers[s.to()].name()
            )?;
        }
        Ok(())
    }
}

/// What defines a [`GraphSpec`] tensor — the key the memory model uses to
/// resolve the tensor's precision from a bit assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorSource {
    /// The network input (`act_bits[0]`; never cut).
    Input,
    /// Output of layer `i` (`act_bits[i + 1]`).
    Layer(usize),
    /// Output of the residual add joining skip `s` (`res_bits[s]`).
    Residual(usize),
    /// Global-average-pool output: same precision as its input tensor
    /// (the pool passes codes through), referenced by tensor id.
    Pool {
        /// Tensor id of the pool's input.
        of: usize,
    },
    /// The classifier's `i32` logits (4 bytes per element, fixed).
    Logits,
}

/// One tensor of the lowered schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecTensor {
    /// Element count.
    pub elements: usize,
    /// What defines the tensor.
    pub source: TensorSource,
}

/// The operation a [`SpecStep`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecOp {
    /// Layer `i` of the spec (convolution, depthwise or classifier).
    Layer(usize),
    /// The residual add joining skip `s`.
    ResidualAdd(usize),
    /// The implicit global average pool ahead of the classifier.
    AvgPool,
}

/// One step of the lowered execution schedule. The step's output tensor id
/// is always `step_index + 1` (id 0 is the network input), exactly as in
/// the executor's `QGraph`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecStep {
    /// The operation.
    pub op: SpecOp,
    /// Input tensor ids.
    pub inputs: Vec<usize>,
    /// Output tensor id (`step_index + 1`).
    pub output: usize,
}

/// The lowered execution schedule of a [`NetworkSpec`]: steps in
/// topological order, explicit tensors, and each tensor's last-use step —
/// the structural mirror of the executor's `QGraph` liveness plan, so that
/// shape-level Eq. 7 accounting and the deployed graph price the *same*
/// live sets.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    steps: Vec<SpecStep>,
    tensors: Vec<SpecTensor>,
    last_uses: Vec<usize>,
}

impl GraphSpec {
    fn plan(spec: &NetworkSpec) -> GraphSpec {
        let layers = spec.layers();
        let mut steps = Vec::new();
        let mut tensors = vec![SpecTensor {
            elements: layers[0].in_act_elements(),
            source: TensorSource::Input,
        }];
        // Post-residual output tensor of each layer processed so far.
        let mut out_tensor = Vec::with_capacity(layers.len());
        let mut cur = 0usize;
        for (i, layer) in layers.iter().enumerate() {
            if layer.kind() == LayerKind::Linear {
                assert_eq!(i, layers.len() - 1, "classifier must be the terminal layer");
                // The executor pools ahead of the head: pool output keeps
                // its input's precision and shrinks to one pixel per
                // channel (= the classifier's input features).
                let pool_out = tensors.len();
                steps.push(SpecStep {
                    op: SpecOp::AvgPool,
                    inputs: vec![cur],
                    output: pool_out,
                });
                tensors.push(SpecTensor {
                    elements: layer.in_act_elements(),
                    source: TensorSource::Pool { of: cur },
                });
                cur = pool_out;
                let logits = tensors.len();
                steps.push(SpecStep {
                    op: SpecOp::Layer(i),
                    inputs: vec![cur],
                    output: logits,
                });
                tensors.push(SpecTensor {
                    elements: layer.out_act_elements(),
                    source: TensorSource::Logits,
                });
                cur = logits;
                out_tensor.push(cur);
                continue;
            }
            let out = tensors.len();
            steps.push(SpecStep {
                op: SpecOp::Layer(i),
                inputs: vec![cur],
                output: out,
            });
            tensors.push(SpecTensor {
                elements: layer.out_act_elements(),
                source: TensorSource::Layer(i),
            });
            cur = out;
            if let Some(s) = spec.skip_ending_at(i) {
                let skip_src = out_tensor[spec.skips()[s].from()];
                let add_out = tensors.len();
                steps.push(SpecStep {
                    op: SpecOp::ResidualAdd(s),
                    inputs: vec![cur, skip_src],
                    output: add_out,
                });
                tensors.push(SpecTensor {
                    elements: layers[i].out_act_elements(),
                    source: TensorSource::Residual(s),
                });
                cur = add_out;
            }
            out_tensor.push(cur);
        }
        // Last schedule step needing each tensor, mirroring the executor:
        // a tensor's defining step when unused, its final consumer
        // otherwise, and a past-the-end pin for the terminal tensor.
        let mut last_uses = vec![0usize];
        for k in 0..steps.len() {
            last_uses.push(k);
        }
        for (i, step) in steps.iter().enumerate() {
            for &t in &step.inputs {
                last_uses[t] = last_uses[t].max(i);
            }
        }
        if !steps.is_empty() {
            let n = steps.len();
            last_uses[n] = n;
        }
        GraphSpec {
            steps,
            tensors,
            last_uses,
        }
    }

    /// The schedule steps, in execution order.
    pub fn steps(&self) -> &[SpecStep] {
        &self.steps
    }

    /// The tensors (index = tensor id; id 0 is the network input).
    pub fn tensors(&self) -> &[SpecTensor] {
        &self.tensors
    }

    /// Last schedule step at which each tensor is still needed.
    pub fn last_uses(&self) -> &[usize] {
        &self.last_uses
    }

    /// Tensor ids live *while step `i` executes*, excluding the step's own
    /// output: every earlier-defined tensor whose last consumer has not run
    /// yet. With the output added, this is the Eq. 7 live set of the step.
    pub fn live_at(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let last = &self.last_uses;
        (0..=i).filter(move |&t| last[t] >= i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_shapes() {
        let l = LayerSpec::conv("c", 3, 2, 3, 32, 225, 225);
        assert_eq!(l.out_h(), 113); // ceil(225/2)
        assert_eq!(l.weight_elements(), 864);
        assert_eq!(l.in_act_elements(), 225 * 225 * 3);
        assert_eq!(l.out_act_elements(), 113 * 113 * 32);
    }

    #[test]
    fn depthwise_spec() {
        let l = LayerSpec::depthwise("d", 3, 1, 64, 56, 56);
        assert!(l.is_depthwise());
        assert_eq!(l.weight_elements(), 64 * 9);
        assert_eq!(l.macs(), 56 * 56 * 64 * 9);
        assert_eq!(l.in_channels(), l.out_channels());
    }

    #[test]
    fn linear_spec() {
        let l = LayerSpec::linear("fc", 1024, 1000);
        assert_eq!(l.weight_elements(), 1_024_000);
        assert_eq!(l.macs(), 1_024_000);
        assert_eq!(l.in_act_elements(), 1024);
        assert_eq!(l.out_act_elements(), 1000);
    }

    #[test]
    fn network_totals() {
        let layers = vec![
            LayerSpec::conv("c0", 3, 1, 1, 4, 8, 8),
            LayerSpec::conv("c1", 3, 2, 4, 8, 8, 8),
            LayerSpec::linear("fc", 8, 2),
        ];
        let net = NetworkSpec::new("toy", Shape::feature_map(8, 8, 1), layers);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.total_weight_elements(), 9 * 4 + 9 * 4 * 8 + 16);
        assert!(net.total_macs() > 0);
        assert_eq!(net.max_activation_elements(), 8 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn mismatched_channels_panic() {
        let layers = vec![
            LayerSpec::conv("c0", 3, 1, 1, 4, 8, 8),
            LayerSpec::conv("c1", 3, 1, 8, 8, 8, 8),
        ];
        let _ = NetworkSpec::new("bad", Shape::feature_map(8, 8, 1), layers);
    }

    fn skip_spec() -> NetworkSpec {
        NetworkSpec::new(
            "skip",
            Shape::feature_map(6, 6, 2),
            vec![
                LayerSpec::conv("a", 3, 1, 2, 4, 6, 6),
                LayerSpec::depthwise("d", 3, 1, 4, 6, 6),
                LayerSpec::conv("p", 1, 1, 4, 4, 6, 6),
                LayerSpec::linear("fc", 4, 2),
            ],
        )
        .with_skip(0, 2)
    }

    #[test]
    fn skips_are_recorded_and_scheduled() {
        let spec = skip_spec();
        assert_eq!(spec.num_skips(), 1);
        assert_eq!(spec.skips()[0].from(), 0);
        assert_eq!(spec.skips()[0].to(), 2);
        assert_eq!(spec.skip_ending_at(2), Some(0));
        assert_eq!(spec.skip_ending_at(1), None);
        let g = spec.graph();
        // a, d, p, add, pool, fc.
        assert_eq!(g.steps().len(), 6);
        assert_eq!(g.tensors().len(), 7);
        assert_eq!(g.steps()[3].op, SpecOp::ResidualAdd(0));
        assert_eq!(g.steps()[3].inputs, vec![3, 1]);
        // The skip source lives until the add; the add output feeds pool.
        assert_eq!(g.last_uses()[1], 3);
        assert_eq!(g.steps()[4].inputs, vec![4]);
        assert_eq!(g.tensors()[5].source, TensorSource::Pool { of: 4 });
        assert_eq!(g.tensors()[6].source, TensorSource::Logits);
        // Live set at step p (index 2): skip source (1) and d's output (2).
        let live: Vec<usize> = g.live_at(2).collect();
        assert_eq!(live, vec![1, 2]);
        assert!(spec.to_string().contains("skip a -> p"));
    }

    #[test]
    fn chained_skips_reference_post_residual_sources() {
        // Two back-to-back skips: the second's source is the first's add
        // output, exactly as the QAT graph and the executor wire it.
        let layers = vec![
            LayerSpec::conv("a", 3, 1, 2, 4, 6, 6),
            LayerSpec::conv("b", 1, 1, 4, 4, 6, 6),
            LayerSpec::conv("c", 1, 1, 4, 4, 6, 6),
            LayerSpec::linear("fc", 4, 2),
        ];
        let spec = NetworkSpec::new("chained", Shape::feature_map(6, 6, 2), layers)
            .with_skip(0, 1)
            .with_skip(1, 2);
        let g = spec.graph();
        // a, b, add0, c, add1, pool, fc.
        assert_eq!(g.steps().len(), 7);
        assert_eq!(g.steps()[2].op, SpecOp::ResidualAdd(0));
        // add1 consumes c's output and add0's output (tensor 3), not b's.
        assert_eq!(g.steps()[4].op, SpecOp::ResidualAdd(1));
        assert_eq!(g.steps()[4].inputs, vec![4, 3]);
    }

    #[test]
    #[should_panic(expected = "matching tensors")]
    fn mismatched_skip_shapes_panic() {
        let layers = vec![
            LayerSpec::conv("a", 3, 1, 2, 4, 6, 6),
            LayerSpec::conv("b", 3, 2, 4, 4, 6, 6),
            LayerSpec::linear("fc", 4, 2),
        ];
        let _ = NetworkSpec::new("bad", Shape::feature_map(6, 6, 2), layers).with_skip(0, 1);
    }

    #[test]
    #[should_panic(expected = "already receives")]
    fn duplicate_skip_destination_panics() {
        let _ = skip_spec().with_skip(1, 2);
    }

    #[test]
    #[should_panic(expected = "not the classifier")]
    fn skip_into_classifier_panics() {
        let layers = vec![
            LayerSpec::conv("a", 3, 1, 2, 4, 6, 6),
            LayerSpec::linear("fc", 4, 2),
        ];
        let _ = NetworkSpec::new("bad", Shape::feature_map(6, 6, 2), layers).with_skip(0, 1);
    }

    #[test]
    fn chain_schedule_matches_layer_list() {
        let layers = vec![
            LayerSpec::conv("c0", 3, 1, 1, 4, 8, 8),
            LayerSpec::conv("c1", 3, 2, 4, 8, 8, 8),
            LayerSpec::linear("fc", 8, 2),
        ];
        let spec = NetworkSpec::new("toy", Shape::feature_map(8, 8, 1), layers);
        let g = spec.graph();
        // c0, c1, pool, fc.
        assert_eq!(g.steps().len(), 4);
        assert_eq!(g.steps()[2].op, SpecOp::AvgPool);
        assert_eq!(g.steps()[3].op, SpecOp::Layer(2));
        assert_eq!(g.tensors()[1].source, TensorSource::Layer(0));
        assert_eq!(g.tensors()[0].source, TensorSource::Input);
        // Pool output has one element per classifier input feature.
        assert_eq!(g.tensors()[3].elements, 8);
        // Logits are the terminal tensor, pinned past the final step.
        assert_eq!(g.last_uses()[4], 4);
    }

    #[test]
    fn display_contains_layers() {
        let net = NetworkSpec::new(
            "toy",
            Shape::feature_map(4, 4, 1),
            vec![LayerSpec::conv("c0", 3, 1, 1, 2, 4, 4)],
        );
        let s = net.to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("c0"));
    }
}
