//! # mixq-models
//!
//! Network architecture descriptors and the paper's model zoo:
//!
//! * [`spec`] — shape-level layer/network descriptors ([`LayerSpec`],
//!   [`NetworkSpec`]): everything the memory model (Table 1, Eq. 6–7), the
//!   mixed-precision Algorithms 1–2 and the MCU latency model need, without
//!   any weight values.
//! * [`mobilenet`] — the full MobileNetV1 family evaluated in §6:
//!   resolutions `{128, 160, 192, 224}` × width multipliers
//!   `{0.25, 0.5, 0.75, 1.0}`, labelled `x_y` as in the paper.
//! * [`micro`] — trainable micro-CNN presets (built on
//!   [`mixq_nn::qat::MicroCnnSpec`]) used for the synthetic-data accuracy
//!   experiments, plus conversion of a micro-CNN into a [`NetworkSpec`].
//!
//! # Examples
//!
//! ```
//! use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
//!
//! let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
//! assert_eq!(spec.name(), "224_1.0");
//! // 27 convolutions + the classifier.
//! assert_eq!(spec.num_layers(), 28);
//! // ≈ 4.2M weight parameters (16.27 MB in FP32, paper Table 2).
//! assert!((spec.total_weight_elements() as f64 - 4.21e6).abs() < 0.05e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod mobilenet;
pub mod spec;

pub use spec::{
    GraphSpec, LayerKind, LayerSpec, NetworkSpec, SkipSpec, SpecOp, SpecStep, SpecTensor,
    TensorSource,
};
