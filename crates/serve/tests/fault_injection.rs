//! Deterministic fault-injection suite for the serving runtime.
//!
//! Every scenario runs under a [`ManualClock`] (virtual time only moves
//! when the test advances it) or a fully-drained monotonic runtime, so
//! the suite never depends on wall-clock timing, never hangs, and
//! audits the runtime's core guarantee: **every submitted request
//! resolves to exactly one of Ok / Shed / Deadline / Failed**, no
//! matter what panics, worker deaths, delays or malformed inputs are
//! scripted against it.

use mixq_core::convert::{convert_with_backend, IntNetwork};
use mixq_core::memory::QuantScheme;
use mixq_core::MixQError;
use mixq_data::{Dataset, DatasetSpec, SyntheticKind};
use mixq_kernels::{AnyOp, TiledBackend};
use mixq_models::micro::mobilenet_like_residual;
use mixq_nn::qat::QatNetwork;
use mixq_quant::{BitWidth, Granularity};
use mixq_serve::{
    BatcherConfig, ClockSource, FaultPlan, ManualClock, ModelRegistry, OutcomeClass, Priority,
    RegistryError, ServeConfig, ServeError, ServeRuntime, SubmitOptions,
};
use mixq_tensor::Tensor;

const RES: usize = 8;
const CLASSES: usize = 4;

fn tiny_dataset(seed: u64) -> Dataset {
    DatasetSpec::new(SyntheticKind::Bars, RES, RES, 3, CLASSES)
        .with_samples(8)
        .with_noise(0.05)
        .generate(seed)
}

/// An untrained but calibrated tiny residual CNN converted to the
/// integer deployment graph — no training, so the whole suite stays
/// fast while still walking real kernels end to end.
fn tiny_net(bits: BitWidth, ds: &Dataset) -> IntNetwork {
    let spec = mobilenet_like_residual(RES, 3, 8, CLASSES);
    let mut net = QatNetwork::build(&spec, 41);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    if bits != BitWidth::W8 {
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, bits);
        }
        net.set_linear_weight_bits(bits);
    }
    convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("calibrated network converts")
}

fn two_variant_registry(ds: &Dataset) -> (ModelRegistry, IntNetwork, IntNetwork) {
    let w8 = tiny_net(BitWidth::W8, ds);
    let w4 = tiny_net(BitWidth::W4, ds);
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "cnn",
            vec![("w8".into(), w8.clone()), ("w4".into(), w4.clone())],
        )
        .expect("verified variants register");
    (registry, w8, w4)
}

fn manual_cfg(batch_max: usize) -> ServeConfig {
    ServeConfig::default()
        .with_queue_capacity(32)
        .with_shed_watermark(28)
        .with_degrade_watermark(32) // out of the way unless a test lowers it
        .with_batcher(BatcherConfig {
            batch_max,
            deadline_us: 1_000,
        })
        .with_workers(1)
}

fn manual_runtime(
    registry: ModelRegistry,
    cfg: ServeConfig,
    faults: FaultPlan,
) -> (ServeRuntime, ManualClock) {
    let clock = ManualClock::new();
    let runtime =
        ServeRuntime::start_with(registry, cfg, ClockSource::Manual(clock.clone()), faults)
            .expect("runtime starts");
    (runtime, clock)
}

#[test]
fn scripted_panic_fails_only_the_culprit_and_serves_identical_logits() {
    let ds = tiny_dataset(3);
    let (registry, w8, _) = two_variant_registry(&ds);
    // Request seq 2 (the third admitted) panics mid-batch; its batch
    // mates must be retried and still answer bit-identically to direct
    // inference.
    let faults = FaultPlan::new().panic_on_request(2);
    let (mut runtime, _clock) = manual_runtime(registry, manual_cfg(4), faults);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            runtime
                .submit("cnn", ds.sample(i).images, SubmitOptions::default())
                .expect("admitted")
        })
        .collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(output) => {
                let (expected, _) = w8.infer(&ds.sample(i).images);
                assert_eq!(
                    output.logits, expected,
                    "request {i} must be bit-identical to direct inference"
                );
                assert_eq!(output.variant, "w8");
                assert!(!output.degraded);
            }
            Err(ServeError::WorkerPanicked { detail }) => {
                assert_eq!(i, 2, "only the scripted culprit may fail");
                assert!(detail.contains("panic on request 2"), "{detail}");
            }
            Err(other) => panic!("request {i}: unexpected {other}"),
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.resolved(), 8, "exactly-once resolution");
    assert_eq!(stats.completed_ok, 7);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.worker_panics, 2, "batch attempt + individual retry");
    assert_eq!(stats.batch_retries, 4, "all four batch mates retried");
    assert_eq!(stats.respawns, 0, "a caught panic never kills the worker");
}

#[test]
fn killed_worker_is_respawned_and_no_request_hangs() {
    let ds = tiny_dataset(4);
    let (registry, _, _) = two_variant_registry(&ds);
    let faults = FaultPlan::new().kill_worker_on_batch(0);
    let (mut runtime, _clock) = manual_runtime(registry, manual_cfg(4), faults);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            runtime
                .submit("cnn", ds.sample(i).images, SubmitOptions::default())
                .expect("admitted")
        })
        .collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    // Batch 0 (the first four requests) dies with its worker; the
    // respawned worker must still serve batch 1.
    for (i, result) in results.iter().enumerate() {
        if i < 4 {
            assert_eq!(
                result,
                &Err(ServeError::WorkerLost),
                "request {i} rode the killed worker"
            );
        } else {
            assert!(result.is_ok(), "request {i} must survive the respawn");
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.respawns, 1, "supervisor replaced the dead worker");
    assert_eq!(stats.failed, 4);
    assert_eq!(stats.completed_ok, 4);
    assert_eq!(stats.resolved(), stats.accepted);
}

#[test]
fn queued_deadline_expires_and_delayed_batch_finishes_late() {
    let ds = tiny_dataset(5);
    let (registry, _, _) = two_variant_registry(&ds);
    // Batch 0 (the four deadline-1000 requests below) is delayed 5000µs
    // by the scheduler fault, so it completes past its deadline.
    let faults = FaultPlan::new().delay_batch(0, 5_000);
    let (mut runtime, clock) = manual_runtime(registry, manual_cfg(4), faults);

    // A lone request whose own deadline (50µs) lands before the batch
    // linger (1000µs): it must expire in the queue, untouched by any
    // worker.
    let lone = runtime
        .submit(
            "cnn",
            ds.sample(0).images,
            SubmitOptions::default().with_deadline_us(50),
        )
        .expect("admitted");
    clock.advance(50);
    runtime.advance_clock(0); // wake workers at t = 50
    let result = lone.wait();
    assert!(
        matches!(
            result,
            Err(ServeError::DeadlineExceeded {
                deadline_us: 50,
                ..
            })
        ),
        "queued expiry: {result:?}"
    );

    // Four requests with a 1000µs budget fill a batch immediately; the
    // scripted 5000µs delay makes the batch finish at t≈5050 > 1050.
    let handles: Vec<_> = (1..5)
        .map(|i| {
            runtime
                .submit(
                    "cnn",
                    ds.sample(i).images,
                    SubmitOptions::default().with_deadline_us(1_000),
                )
                .expect("admitted")
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait();
        assert!(
            matches!(result, Err(ServeError::DeadlineExceeded { .. })),
            "delayed request {i}: {result:?}"
        );
        assert_eq!(result.unwrap_err().class(), OutcomeClass::Deadline);
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.deadline_expired, 5);
    assert_eq!(stats.completed_ok, 0);
    assert_eq!(stats.resolved(), stats.accepted);
}

#[test]
fn malformed_requests_are_typed_rejections_not_panics() {
    let ds = tiny_dataset(6);
    let (registry, _, _) = two_variant_registry(&ds);
    let (mut runtime, _clock) = manual_runtime(registry, manual_cfg(4), FaultPlan::new());

    // Wrong spatial shape.
    let wrong = Tensor::from_vec(
        mixq_tensor::Shape::new(1, RES * 2, RES * 2, 3),
        vec![0.0; RES * 2 * RES * 2 * 3],
    )
    .unwrap();
    match runtime.submit("cnn", wrong, SubmitOptions::default()) {
        Err(ServeError::BadInput {
            source: MixQError::InputShapeMismatch { .. },
        }) => {}
        other => panic!("wrong shape: {other:?}"),
    }

    // Oversized multi-item batch: serving requests are single-item.
    let stacked = Tensor::from_vec(
        mixq_tensor::Shape::new(2, RES, RES, 3),
        vec![0.0; 2 * RES * RES * 3],
    )
    .unwrap();
    match runtime.submit("cnn", stacked, SubmitOptions::default()) {
        Err(ServeError::BadInput { .. }) => {}
        other => panic!("oversized batch: {other:?}"),
    }

    // Empty batch.
    let empty = Tensor::from_vec(mixq_tensor::Shape::new(0, RES, RES, 3), Vec::new()).unwrap();
    match runtime.submit("cnn", empty, SubmitOptions::default()) {
        Err(ServeError::BadInput {
            source: MixQError::EmptyBatch,
        }) => {}
        other => panic!("empty batch: {other:?}"),
    }

    // Unknown model.
    match runtime.submit("nope", ds.sample(0).images, SubmitOptions::default()) {
        Err(ServeError::UnknownModel { model }) => assert_eq!(model, "nope"),
        other => panic!("unknown model: {other:?}"),
    }

    // A well-formed request still sails through after all that abuse.
    // (A lone request flushes at the linger deadline, so advance the
    // virtual clock past it.)
    let ok = runtime
        .submit("cnn", ds.sample(0).images, SubmitOptions::default())
        .expect("admitted");
    runtime.advance_clock(1_000);
    assert!(ok.wait().is_ok());
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected_bad_input, 4);
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed_ok, 1);
}

#[test]
fn overload_sheds_low_priority_and_degrades_to_w4() {
    let ds = tiny_dataset(7);
    let (registry, _, w4) = two_variant_registry(&ds);
    let cfg = manual_cfg(4)
        .with_queue_capacity(8)
        .with_shed_watermark(6)
        .with_degrade_watermark(4);
    let (mut runtime, _clock) = manual_runtime(registry, cfg, FaultPlan::new());
    // Fill to the shed watermark with normal traffic. The single worker
    // may start flushing while we submit, so only the *typed* outcomes
    // are asserted, not the depth at each instant.
    let mut handles = Vec::new();
    let mut shed = 0usize;
    let mut full = 0usize;
    for i in 0..24 {
        let opts = if i % 3 == 2 {
            SubmitOptions::default().with_priority(Priority::Low)
        } else {
            SubmitOptions::default()
        };
        match runtime.submit("cnn", ds.sample(i % 8).images, opts) {
            Ok(h) => handles.push((i % 8, h)),
            Err(ServeError::ShedLowPriority { .. }) => shed += 1,
            Err(ServeError::QueueFull { .. }) => full += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    let mut degraded_seen = 0usize;
    for (sample, handle) in &handles {
        let output = handle.wait().expect("admitted requests complete");
        if output.degraded {
            degraded_seen += 1;
            assert_eq!(output.variant, "w4");
            let (expected, _) = w4.infer(&ds.sample(*sample).images);
            assert_eq!(
                output.logits, expected,
                "degraded answers are the w4 network's answers"
            );
        } else {
            assert_eq!(output.variant, "w8");
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected_shed as usize, shed);
    assert_eq!(stats.rejected_queue_full as usize, full);
    assert_eq!(stats.degraded as usize, degraded_seen);
    assert!(
        degraded_seen > 0,
        "sustained overload must trigger degradation"
    );
    assert_eq!(stats.resolved(), stats.accepted);
    assert!(stats.max_depth <= 8, "never exceeds capacity");
}

#[test]
fn registry_refuses_unverified_and_inconsistent_variants() {
    let ds = tiny_dataset(8);
    let w8 = tiny_net(BitWidth::W8, &ds);

    // Forge a residual join: declared scales that disagree with the
    // baked multipliers. verify_graph must catch it at registration.
    let mut forged = tiny_net(BitWidth::W8, &ds);
    let mut forged_any = false;
    for node in forged.graph_mut().nodes_mut() {
        if let AnyOp::Add(add) = node.op_mut() {
            *add = add.clone().with_declared_scales(123.0, 456.0, 1.0);
            forged_any = true;
            break;
        }
    }
    assert!(forged_any, "residual spec must contain an Add node");
    let mut registry = ModelRegistry::new();
    match registry.register("forged", vec![("w8".into(), forged)]) {
        Err(RegistryError::VerificationFailed {
            model,
            variant,
            violations,
            ..
        }) => {
            assert_eq!(model, "forged");
            assert_eq!(variant, "w8");
            assert!(violations >= 1);
        }
        other => panic!("forged graph must be rejected: {other:?}"),
    }
    assert!(registry.is_empty(), "a rejected model leaves no trace");

    // Variants must agree on input geometry...
    let spec_big = mobilenet_like_residual(RES * 2, 3, 8, CLASSES);
    let ds_big = DatasetSpec::new(SyntheticKind::Bars, RES * 2, RES * 2, 3, CLASSES)
        .with_samples(8)
        .generate(9);
    let mut big = QatNetwork::build(&spec_big, 41);
    big.calibrate_input(ds_big.images());
    big.enable_fake_quant(Granularity::PerChannel);
    let big = convert_with_backend(&big, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("converts");
    match registry.register(
        "mixed",
        vec![("w8".into(), w8.clone()), ("big".into(), big)],
    ) {
        Err(RegistryError::InputMismatch { variant, .. }) => assert_eq!(variant, "big"),
        other => panic!("shape-mismatched variants must be rejected: {other:?}"),
    }

    // ...and basic shape invariants hold.
    match registry.register("empty", Vec::new()) {
        Err(RegistryError::NoVariants { .. }) => {}
        other => panic!("empty registration: {other:?}"),
    }
    registry
        .register("cnn", vec![("w8".into(), w8.clone())])
        .expect("clean variant registers");
    match registry.register("cnn", vec![("w8".into(), w8)]) {
        Err(RegistryError::DuplicateModel { model }) => assert_eq!(model, "cnn"),
        other => panic!("duplicate registration: {other:?}"),
    }
}

#[test]
fn drain_shutdown_resolves_queued_work_without_hanging() {
    let ds = tiny_dataset(10);
    let (registry, _, _) = two_variant_registry(&ds);
    // batch_max 8 and a long linger: three submitted requests are still
    // lingering when shutdown starts. Drain must flush and answer them
    // (not abandon them) without any clock advancement.
    let cfg = manual_cfg(8);
    let (mut runtime, _clock) = manual_runtime(registry, cfg, FaultPlan::new());
    let handles: Vec<_> = (0..3)
        .map(|i| {
            runtime
                .submit("cnn", ds.sample(i).images, SubmitOptions::default())
                .expect("admitted")
        })
        .collect();
    let stats = runtime.shutdown();
    for (i, handle) in handles.iter().enumerate() {
        let output = handle.wait().unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!(output.batch_size, 3, "drain flushed the partial batch");
    }
    assert_eq!(stats.completed_ok, 3);
    assert_eq!(stats.flush_drain, 1);
    // Post-shutdown submissions are refused, typed.
    match runtime.submit("cnn", ds.sample(0).images, SubmitOptions::default()) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("post-shutdown submit: {other:?}"),
    }
}

#[test]
fn storm_of_faults_loses_nothing_on_real_threads() {
    // Monotonic clock, two workers, panics and a worker kill sprinkled
    // through 48 requests: the audit is purely on outcomes — every
    // handle resolves, classes partition, counters reconcile.
    let ds = tiny_dataset(11);
    let (registry, _, _) = two_variant_registry(&ds);
    let cfg = ServeConfig::default()
        .with_queue_capacity(64)
        .with_shed_watermark(64)
        .with_degrade_watermark(48)
        .with_batcher(BatcherConfig {
            batch_max: 4,
            deadline_us: 200,
        })
        .with_workers(2);
    let faults = FaultPlan::new()
        .panic_on_request(3)
        .panic_on_request(17)
        .panic_on_request(31)
        .kill_worker_on_batch(5);
    let mut runtime = ServeRuntime::start_with(registry, cfg, ClockSource::monotonic(), faults)
        .expect("runtime starts");
    let handles: Vec<_> = (0..48)
        .map(|i| {
            runtime
                .submit("cnn", ds.sample(i % 8).images, SubmitOptions::default())
                .expect("admitted under the high watermarks")
        })
        .collect();
    let mut ok = 0u64;
    let mut failed = 0u64;
    for handle in &handles {
        match handle.wait() {
            Ok(_) => ok += 1,
            Err(e) => match e.class() {
                OutcomeClass::Failed => failed += 1,
                other => panic!("unexpected class {other:?}: {e}"),
            },
        }
    }
    let stats = runtime.shutdown();
    assert_eq!(ok + failed, 48, "every handle resolved");
    assert_eq!(stats.accepted, 48);
    assert_eq!(stats.resolved(), 48);
    assert_eq!(stats.completed_ok, ok);
    assert_eq!(stats.failed, failed);
    assert!(failed >= 3, "the scripted culprits must fail");
    assert!(stats.worker_panics >= 3);
    assert!(stats.respawns >= 1, "the killed worker was replaced");
}
