//! The serving error taxonomy: every submitted request resolves to
//! exactly one of `Ok` / `Shed` / `Deadline` / `Failed`.

use std::error::Error;
use std::fmt;

use mixq_core::MixQError;

/// Admission priority of a request. Priorities do not reorder the FIFO;
/// they only decide who is shed first under pressure: once queue depth
/// reaches the shed watermark, `Low` requests are rejected with
/// [`ServeError::ShedLowPriority`] while `Normal`/`High` still admit up
/// to full capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Shed first under pressure (best-effort traffic).
    Low,
    /// The default.
    Normal,
    /// Never shed before capacity (interactive traffic).
    High,
}

/// The coarse outcome class of a request — the four-way taxonomy the
/// fault-injection suite audits for exactly-once resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Logits delivered ([`ServeOutput`]).
    Ok,
    /// Rejected at admission (typed, synchronous).
    Shed,
    /// Admitted but its deadline lapsed before completion.
    Deadline,
    /// Admitted but execution failed (panic, lost worker, shutdown).
    Failed,
}

/// A successfully served request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutput {
    /// Per-class integer logits.
    pub logits: Vec<i32>,
    /// Label of the registry variant that served the request (e.g. `w8`;
    /// the degraded lower-bit label under overload).
    pub variant: String,
    /// Whether overload degraded the request to a lower-bit variant.
    pub degraded: bool,
    /// Number of requests in the flushed batch this one rode in.
    pub batch_size: usize,
    /// Submit-to-resolve latency in the runtime's clock domain (µs;
    /// virtual µs under a [`ManualClock`](crate::ManualClock)).
    pub latency_us: u64,
}

/// Everything that is not a successful response, spanning the `Shed`,
/// `Deadline` and `Failed` classes — see [`ServeError::class`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission refused: the bounded queue is at capacity. The caller
    /// should back off — the runtime never queues unboundedly.
    QueueFull {
        /// Queue depth at rejection (== capacity).
        depth: usize,
        /// The configured hard capacity.
        capacity: usize,
    },
    /// Admission refused: depth reached the shed watermark and the
    /// request is [`Priority::Low`].
    ShedLowPriority {
        /// Queue depth at rejection.
        depth: usize,
        /// The configured shed watermark.
        watermark: usize,
    },
    /// Admission refused: no registry entry under this name.
    UnknownModel {
        /// The requested model name.
        model: String,
    },
    /// Admission refused: the request tensor failed
    /// [`IntNetwork::validate_request`](mixq_core::convert::IntNetwork::validate_request)
    /// (wrong shape, wrong length, empty or oversized batch).
    BadInput {
        /// The typed validation error.
        source: MixQError,
    },
    /// Admission refused: the runtime is draining for shutdown.
    ShuttingDown,
    /// The request's deadline lapsed — either while queued (the batcher
    /// expires it without running) or because its batch completed late.
    DeadlineExceeded {
        /// The absolute deadline (clock-domain µs).
        deadline_us: u64,
        /// The clock when the miss was detected.
        now_us: u64,
    },
    /// The request's own execution panicked (after innocents sharing its
    /// batch were retried); the worker survived or was respawned.
    WorkerPanicked {
        /// Stringified panic payload.
        detail: String,
    },
    /// The worker holding this in-flight request died before resolving
    /// it; the drop guard resolved the request so the caller never
    /// hangs, and the supervisor respawned the worker.
    WorkerLost,
    /// The runtime shut down before the request could run.
    Shutdown,
}

impl ServeError {
    /// The outcome class this error resolves its request into.
    pub fn class(&self) -> OutcomeClass {
        match self {
            ServeError::QueueFull { .. }
            | ServeError::ShedLowPriority { .. }
            | ServeError::UnknownModel { .. }
            | ServeError::BadInput { .. }
            | ServeError::ShuttingDown => OutcomeClass::Shed,
            ServeError::DeadlineExceeded { .. } => OutcomeClass::Deadline,
            ServeError::WorkerPanicked { .. } | ServeError::WorkerLost | ServeError::Shutdown => {
                OutcomeClass::Failed
            }
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => {
                write!(f, "queue full: {depth}/{capacity} requests pending")
            }
            ServeError::ShedLowPriority { depth, watermark } => write!(
                f,
                "low-priority request shed: depth {depth} >= watermark {watermark}"
            ),
            ServeError::UnknownModel { model } => write!(f, "unknown model `{model}`"),
            ServeError::BadInput { source } => write!(f, "bad input: {source}"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::DeadlineExceeded {
                deadline_us,
                now_us,
            } => write!(
                f,
                "deadline {deadline_us}us exceeded (resolved at {now_us}us)"
            ),
            ServeError::WorkerPanicked { detail } => write!(f, "worker panicked: {detail}"),
            ServeError::WorkerLost => write!(f, "worker died holding the request"),
            ServeError::Shutdown => write!(f, "runtime shut down before execution"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::BadInput { source } => Some(source),
            _ => None,
        }
    }
}

/// What a request ultimately resolves to.
pub type ServeResult = Result<ServeOutput, ServeError>;

/// The class of a full result.
pub fn class_of(result: &ServeResult) -> OutcomeClass {
    match result {
        Ok(_) => OutcomeClass::Ok,
        Err(e) => e.class(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_taxonomy() {
        assert_eq!(
            ServeError::QueueFull {
                depth: 4,
                capacity: 4
            }
            .class(),
            OutcomeClass::Shed
        );
        assert_eq!(
            ServeError::DeadlineExceeded {
                deadline_us: 10,
                now_us: 20
            }
            .class(),
            OutcomeClass::Deadline
        );
        assert_eq!(
            ServeError::WorkerPanicked { detail: "x".into() }.class(),
            OutcomeClass::Failed
        );
        assert_eq!(ServeError::WorkerLost.class(), OutcomeClass::Failed);
        let display = ServeError::ShedLowPriority {
            depth: 9,
            watermark: 8,
        }
        .to_string();
        assert!(display.contains("watermark 8"), "{display}");
    }
}
