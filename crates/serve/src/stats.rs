//! Lock-free runtime counters. The fault-injection suite audits these
//! against per-request outcomes to prove exactly-once accounting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Monotonic counters updated by the admission path, the batcher and the
/// workers. All increments use relaxed ordering: the counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests presented to `submit` (accepted or not).
    pub submitted: AtomicU64,
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Rejected with `QueueFull`.
    pub rejected_queue_full: AtomicU64,
    /// Rejected with `ShedLowPriority`.
    pub rejected_shed: AtomicU64,
    /// Rejected with `BadInput` / `UnknownModel` (never reached the queue).
    pub rejected_bad_input: AtomicU64,
    /// Resolved `Ok`.
    pub completed_ok: AtomicU64,
    /// Resolved `DeadlineExceeded` (queued expiry or late completion).
    pub deadline_expired: AtomicU64,
    /// Resolved `Failed` (panic, lost worker, shutdown).
    pub failed: AtomicU64,
    /// Requests served by a degraded (lower-bit) variant.
    pub degraded: AtomicU64,
    /// Batches flushed.
    pub batches: AtomicU64,
    /// Flushes triggered by reaching `batch_max`.
    pub flush_full: AtomicU64,
    /// Flushes triggered by the linger deadline.
    pub flush_deadline: AtomicU64,
    /// Flushes triggered by shutdown drain.
    pub flush_drain: AtomicU64,
    /// Individual retries of innocents after a batch panic.
    pub batch_retries: AtomicU64,
    /// Panics caught in worker batch execution.
    pub worker_panics: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub respawns: AtomicU64,
    /// High-water mark of queue depth.
    pub max_depth: AtomicUsize,
}

impl ServeStats {
    /// Record a new queue-depth observation, keeping the high-water mark.
    pub fn observe_depth(&self, depth: usize) {
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shed: self.rejected_shed.load(Ordering::Relaxed),
            rejected_bad_input: self.rejected_bad_input.load(Ordering::Relaxed),
            completed_ok: self.completed_ok.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flush_full: self.flush_full.load(Ordering::Relaxed),
            flush_deadline: self.flush_deadline.load(Ordering::Relaxed),
            flush_drain: self.flush_drain.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of [`ServeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests presented to `submit` (accepted or not).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Rejected with `QueueFull`.
    pub rejected_queue_full: u64,
    /// Rejected with `ShedLowPriority`.
    pub rejected_shed: u64,
    /// Rejected with `BadInput` / `UnknownModel`.
    pub rejected_bad_input: u64,
    /// Resolved `Ok`.
    pub completed_ok: u64,
    /// Resolved `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// Resolved `Failed`.
    pub failed: u64,
    /// Served degraded.
    pub degraded: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Flushes at `batch_max`.
    pub flush_full: u64,
    /// Flushes at the linger deadline.
    pub flush_deadline: u64,
    /// Flushes forced by shutdown drain.
    pub flush_drain: u64,
    /// Innocent-request retries after batch panics.
    pub batch_retries: u64,
    /// Panics caught in workers.
    pub worker_panics: u64,
    /// Workers respawned.
    pub respawns: u64,
    /// Queue-depth high-water mark.
    pub max_depth: usize,
}

impl StatsSnapshot {
    /// Requests resolved to a terminal outcome (the exactly-once audit:
    /// for a drained runtime this must equal `accepted`).
    pub fn resolved(&self) -> u64 {
        self.completed_ok + self.deadline_expired + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_counters() {
        let stats = ServeStats::default();
        stats.submitted.fetch_add(5, Ordering::Relaxed);
        stats.accepted.fetch_add(4, Ordering::Relaxed);
        stats.completed_ok.fetch_add(3, Ordering::Relaxed);
        stats.failed.fetch_add(1, Ordering::Relaxed);
        stats.observe_depth(7);
        stats.observe_depth(3);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.resolved(), 4);
        assert_eq!(snap.max_depth, 7);
    }
}
