//! Deterministic fault injection.
//!
//! A [`FaultPlan`] scripts failures against stable identifiers — the
//! request admission sequence number and the global batch sequence
//! number — so a fixed submission trace hits exactly the same faults on
//! every run. There is no randomness and no wall-clock dependence; the
//! plan is pure data consulted by the worker loop (and mirrored by the
//! [`Simulator`](crate::sim::Simulator)).

use std::collections::{BTreeMap, BTreeSet};

/// A scripted set of failures for one runtime run.
///
/// Identifiers: requests are numbered by admission order starting at 0
/// (`seq`), batches by flush order starting at 0 (`batch_seq`). Both are
/// assigned deterministically by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    panic_requests: BTreeSet<u64>,
    batch_delays: BTreeMap<u64, u64>,
    kill_batches: BTreeSet<u64>,
}

impl FaultPlan {
    /// An empty plan: no injected faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Script a panic while executing the request admitted as `seq`.
    /// The panic poisons the whole batch attempt; the runtime retries
    /// innocents individually and resolves this request
    /// `WorkerPanicked`.
    pub fn panic_on_request(mut self, seq: u64) -> Self {
        self.panic_requests.insert(seq);
        self
    }

    /// Script a scheduler delay of `delay_us` before executing batch
    /// `batch_seq` (virtual time under a manual clock, a real sleep
    /// under a monotonic one). Used to force deadline misses.
    pub fn delay_batch(mut self, batch_seq: u64, delay_us: u64) -> Self {
        self.batch_delays.insert(batch_seq, delay_us);
        self
    }

    /// Script the death of the worker thread that picks up batch
    /// `batch_seq`: the worker aborts without resolving the batch (the
    /// responder drop guards resolve every request `WorkerLost`) and the
    /// supervisor respawns a replacement.
    pub fn kill_worker_on_batch(mut self, batch_seq: u64) -> Self {
        self.kill_batches.insert(batch_seq);
        self
    }

    /// Whether executing request `seq` should panic.
    pub fn should_panic(&self, seq: u64) -> bool {
        self.panic_requests.contains(&seq)
    }

    /// The scripted delay before batch `batch_seq`, if any.
    pub fn delay_for_batch(&self, batch_seq: u64) -> Option<u64> {
        self.batch_delays.get(&batch_seq).copied()
    }

    /// Whether the worker picking up batch `batch_seq` should die.
    pub fn should_kill_worker(&self, batch_seq: u64) -> bool {
        self.kill_batches.contains(&batch_seq)
    }

    /// Whether the plan scripts no faults at all.
    pub fn is_empty(&self) -> bool {
        self.panic_requests.is_empty()
            && self.batch_delays.is_empty()
            && self.kill_batches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_data() {
        let plan = FaultPlan::new()
            .panic_on_request(3)
            .delay_batch(1, 500)
            .kill_worker_on_batch(2);
        assert!(!plan.is_empty());
        assert!(plan.should_panic(3));
        assert!(!plan.should_panic(4));
        assert_eq!(plan.delay_for_batch(1), Some(500));
        assert_eq!(plan.delay_for_batch(0), None);
        assert!(plan.should_kill_worker(2));
        assert!(!plan.should_kill_worker(1));
        assert_eq!(plan.clone(), plan);
        assert!(FaultPlan::new().is_empty());
    }
}
