//! Single-threaded discrete-event simulator over the real [`Engine`].
//!
//! The simulator drives the exact same scheduling state machine as the
//! threaded [`ServeRuntime`](crate::ServeRuntime) — same admission
//! rules, same [`flush_decision`](crate::batcher::flush_decision), same
//! degradation and fault semantics — but with one virtual worker, a
//! virtual µs clock and a fixed [`ServiceModel`] instead of real
//! inference. Every number it produces is an integer function of the
//! submission trace, so its [`SimReport`] is goldenable: a byte-diff on
//! the golden pins the runtime's scheduling math.

use crate::config::ServeConfig;
use crate::engine::{Batch, Engine, EngineAction};
use crate::error::{Priority, ServeError, ServeOutput, ServeResult};
use crate::fault::FaultPlan;
use crate::registry::ModelInfo;
use crate::response::ResponseHandle;
use crate::stats::{ServeStats, StatsSnapshot};

/// Deterministic service-time model for the virtual worker: a batch of
/// `n` requests takes `base_us + n * per_item_us` virtual µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-walk cost (dispatch, weight streaming).
    pub base_us: u64,
    /// Marginal cost per batched request.
    pub per_item_us: u64,
}

impl ServiceModel {
    /// Service time for a batch of `n`.
    pub fn service_us(&self, n: usize) -> u64 {
        self.base_us + self.per_item_us * n as u64
    }
}

/// One scripted submission in a simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSubmit {
    /// Arrival instant (virtual µs). Traces must be sorted by this.
    pub at_us: u64,
    /// Target model name.
    pub model: String,
    /// Admission priority.
    pub priority: Priority,
    /// Relative deadline budget, if any.
    pub deadline_rel_us: Option<u64>,
    /// Scripted malformed input: rejected `BadInput` at admission
    /// without reaching the engine (mirrors a failed
    /// `validate_request`).
    pub malformed: bool,
}

impl SimSubmit {
    /// A well-formed normal-priority submission with no deadline.
    pub fn at(at_us: u64, model: &str) -> Self {
        SimSubmit {
            at_us,
            model: model.to_string(),
            priority: Priority::Normal,
            deadline_rel_us: None,
            malformed: false,
        }
    }

    /// Set the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set a relative deadline budget.
    pub fn deadline(mut self, rel_us: u64) -> Self {
        self.deadline_rel_us = Some(rel_us);
        self
    }

    /// Mark the input malformed.
    pub fn malformed(mut self) -> Self {
        self.malformed = true;
        self
    }
}

/// One flushed batch in the simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushRecord {
    /// Flush instant (virtual µs).
    pub at_us: u64,
    /// Global batch sequence number.
    pub batch_seq: u64,
    /// Model name.
    pub model: String,
    /// Label of the serving variant.
    pub variant_label: String,
    /// Requests in the batch.
    pub size: usize,
    /// Flush trigger (`full` / `deadline` / `drain`).
    pub reason: &'static str,
    /// Whether overload degraded the batch.
    pub degraded: bool,
}

/// The deterministic outcome of one simulated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The flush schedule, in order.
    pub flushes: Vec<FlushRecord>,
    /// One outcome label per submission, in trace order (e.g. `ok:w8`,
    /// `ok:w4:degraded`, `shed:full`, `deadline`, `failed:panic`).
    pub outcomes: Vec<String>,
    /// Latencies of `Ok` requests (virtual µs), sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Median `Ok` latency (nearest-rank; 0 when no request completed).
    pub p50_us: u64,
    /// 99th-percentile `Ok` latency (nearest-rank).
    pub p99_us: u64,
    /// Final counters.
    pub stats: StatsSnapshot,
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
pub fn percentile_us(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// Stable outcome label for goldens.
fn outcome_label(result: &ServeResult) -> String {
    match result {
        Ok(ServeOutput {
            variant, degraded, ..
        }) => {
            if *degraded {
                format!("ok:{variant}:degraded")
            } else {
                format!("ok:{variant}")
            }
        }
        Err(ServeError::QueueFull { .. }) => "shed:full".into(),
        Err(ServeError::ShedLowPriority { .. }) => "shed:low".into(),
        Err(ServeError::UnknownModel { .. }) => "shed:unknown_model".into(),
        Err(ServeError::BadInput { .. }) => "shed:bad_input".into(),
        Err(ServeError::ShuttingDown) => "shed:shutting_down".into(),
        Err(ServeError::DeadlineExceeded { .. }) => "deadline".into(),
        Err(ServeError::WorkerPanicked { .. }) => "failed:panic".into(),
        Err(ServeError::WorkerLost) => "failed:lost".into(),
        Err(ServeError::Shutdown) => "failed:shutdown".into(),
    }
}

/// The simulator: a config, a model list, a service model and a fault
/// plan. [`run`](Simulator::run) is a pure function of the trace.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: ServeConfig,
    models: Vec<ModelInfo>,
    service: ServiceModel,
    faults: FaultPlan,
}

impl Simulator {
    /// Build a simulator. The config must validate and at least one
    /// model is required.
    pub fn new(
        cfg: ServeConfig,
        models: Vec<ModelInfo>,
        service: ServiceModel,
        faults: FaultPlan,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if models.is_empty() {
            return Err("simulator needs at least one model".into());
        }
        Ok(Simulator {
            cfg,
            models,
            service,
            faults,
        })
    }

    /// Simulate a trace to completion (all arrivals, then a drain) and
    /// report the schedule. Panics if the trace is not sorted by
    /// `at_us` — an unsorted trace has no deterministic meaning.
    pub fn run(&self, trace: &[SimSubmit]) -> SimReport {
        assert!(
            trace.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "simulation traces must be sorted by at_us"
        );
        let stats = ServeStats::default();
        let mut engine = Engine::new(self.cfg.clone(), self.models.clone());
        let mut handles: Vec<Option<ResponseHandle>> = Vec::with_capacity(trace.len());
        let mut immediate: Vec<Option<String>> = vec![None; trace.len()];
        let mut flushes = Vec::new();
        let mut latencies = Vec::new();
        let mut now = 0u64;
        let mut next_arrival = 0usize;

        // Admission mirrors ServeRuntime::submit: malformed and
        // unknown-model requests never reach the engine.
        let admit = |engine: &mut Engine,
                     sub: &SimSubmit,
                     idx: usize,
                     handles: &mut Vec<Option<ResponseHandle>>,
                     immediate: &mut Vec<Option<String>>| {
            use std::sync::atomic::Ordering::Relaxed;
            debug_assert_eq!(handles.len(), idx);
            let model_id = self.models.iter().position(|m| m.name == sub.model);
            if sub.malformed || model_id.is_none() {
                stats.submitted.fetch_add(1, Relaxed);
                stats.rejected_bad_input.fetch_add(1, Relaxed);
                immediate[idx] = Some(if sub.malformed {
                    "shed:bad_input".into()
                } else {
                    "shed:unknown_model".into()
                });
                handles.push(None);
                return;
            }
            let rel = sub.deadline_rel_us.or(self.cfg.default_deadline_us);
            let deadline = rel.map(|d| sub.at_us.saturating_add(d));
            match engine.admit(
                sub.at_us,
                model_id.expect("checked above"),
                None,
                sub.priority,
                deadline,
                &stats,
            ) {
                Ok((handle, _seq)) => handles.push(Some(handle)),
                Err(e) => {
                    immediate[idx] = Some(outcome_label(&Err(e)));
                    handles.push(None);
                }
            }
        };

        loop {
            while next_arrival < trace.len() && trace[next_arrival].at_us <= now {
                admit(
                    &mut engine,
                    &trace[next_arrival],
                    next_arrival,
                    &mut handles,
                    &mut immediate,
                );
                next_arrival += 1;
            }
            match engine.next_action(now, &stats) {
                EngineAction::Run(batch) => {
                    now = self.execute(batch, now, &stats, &mut flushes, &mut latencies);
                }
                EngineAction::WaitUntil(t) => {
                    now = match trace.get(next_arrival) {
                        Some(sub) if sub.at_us <= t => sub.at_us,
                        _ => t,
                    };
                }
                EngineAction::Park => {
                    if let Some(sub) = trace.get(next_arrival) {
                        now = sub.at_us;
                    } else {
                        engine.start_drain();
                    }
                }
                EngineAction::Stop => break,
            }
        }

        let outcomes = immediate
            .into_iter()
            .zip(handles)
            .map(|(label, handle)| {
                label.unwrap_or_else(|| match handle.and_then(|h| h.try_get()) {
                    Some(result) => outcome_label(&result),
                    None => "unresolved".into(),
                })
            })
            .collect();
        latencies.sort_unstable();
        let p50_us = percentile_us(&latencies, 50);
        let p99_us = percentile_us(&latencies, 99);
        SimReport {
            flushes,
            outcomes,
            latencies_us: latencies,
            p50_us,
            p99_us,
            stats: stats.snapshot(),
        }
    }

    /// Execute one flushed batch on the virtual worker, mirroring the
    /// runtime's fault semantics, and return the new clock.
    fn execute(
        &self,
        mut batch: Batch,
        now: u64,
        stats: &ServeStats,
        flushes: &mut Vec<FlushRecord>,
        latencies: &mut Vec<u64>,
    ) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        let model = &self.models[batch.model];
        let variant_label = model.variant_labels[batch.variant].clone();
        let size = batch.reqs.len();
        flushes.push(FlushRecord {
            at_us: now,
            batch_seq: batch.seq,
            model: model.name.clone(),
            variant_label: variant_label.clone(),
            size,
            reason: batch.reason.label(),
            degraded: batch.degraded,
        });
        if self.faults.should_kill_worker(batch.seq) {
            // Worker dies holding the batch; the supervisor's respawn is
            // instantaneous in virtual time.
            for pending in batch.reqs.drain(..) {
                pending.responder.resolve(Err(ServeError::WorkerLost));
                stats.failed.fetch_add(1, Relaxed);
            }
            stats.respawns.fetch_add(1, Relaxed);
            return now;
        }
        let mut t = now;
        if let Some(delay) = self.faults.delay_for_batch(batch.seq) {
            t += delay;
        }
        let scripted_panic = batch.reqs.iter().any(|p| self.faults.should_panic(p.seq));
        t += self.service.service_us(size);
        if !scripted_panic {
            for pending in batch.reqs {
                self.resolve(
                    pending,
                    t,
                    &variant_label,
                    batch.degraded,
                    size,
                    stats,
                    latencies,
                );
            }
            return t;
        }
        stats.worker_panics.fetch_add(1, Relaxed);
        if size == 1 {
            let pending = batch.reqs.pop().expect("batch of one");
            pending.responder.resolve(Err(ServeError::WorkerPanicked {
                detail: format!("injected fault: panic on request {}", pending.seq),
            }));
            stats.failed.fetch_add(1, Relaxed);
            return t;
        }
        // Batch bisect: each request retried alone, sequentially.
        for pending in batch.reqs {
            stats.batch_retries.fetch_add(1, Relaxed);
            t += self.service.service_us(1);
            if self.faults.should_panic(pending.seq) {
                stats.worker_panics.fetch_add(1, Relaxed);
                pending.responder.resolve(Err(ServeError::WorkerPanicked {
                    detail: format!("injected fault: panic on request {}", pending.seq),
                }));
                stats.failed.fetch_add(1, Relaxed);
            } else {
                self.resolve(
                    pending,
                    t,
                    &variant_label,
                    batch.degraded,
                    1,
                    stats,
                    latencies,
                );
            }
        }
        t
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        pending: crate::engine::Pending,
        finish_us: u64,
        variant_label: &str,
        degraded: bool,
        batch_size: usize,
        stats: &ServeStats,
        latencies: &mut Vec<u64>,
    ) {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(deadline) = pending.deadline_us {
            if finish_us > deadline {
                pending.responder.resolve(Err(ServeError::DeadlineExceeded {
                    deadline_us: deadline,
                    now_us: finish_us,
                }));
                stats.deadline_expired.fetch_add(1, Relaxed);
                return;
            }
        }
        let latency_us = finish_us.saturating_sub(pending.arrival_us);
        latencies.push(latency_us);
        pending.responder.resolve(Ok(ServeOutput {
            logits: Vec::new(),
            variant: variant_label.to_string(),
            degraded,
            batch_size,
            latency_us,
        }));
        stats.completed_ok.fetch_add(1, Relaxed);
        if degraded {
            stats.degraded.fetch_add(1, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;

    fn sim(faults: FaultPlan) -> Simulator {
        let cfg = ServeConfig::default()
            .with_queue_capacity(16)
            .with_shed_watermark(12)
            .with_degrade_watermark(6)
            .with_batcher(BatcherConfig {
                batch_max: 4,
                deadline_us: 200,
            })
            .with_workers(1);
        let models = vec![ModelInfo {
            name: "cnn".into(),
            variant_labels: vec!["w8".into(), "w4".into()],
        }];
        Simulator::new(
            cfg,
            models,
            ServiceModel {
                base_us: 100,
                per_item_us: 10,
            },
            faults,
        )
        .unwrap()
    }

    #[test]
    fn identical_traces_produce_identical_reports() {
        let trace: Vec<SimSubmit> = (0..12).map(|i| SimSubmit::at(i * 40, "cnn")).collect();
        let s = sim(FaultPlan::new());
        let a = s.run(&trace);
        let b = s.run(&trace);
        assert_eq!(a, b);
        assert_eq!(a.stats.accepted, 12);
        assert_eq!(a.stats.resolved(), 12, "every request resolves");
        assert!(a.outcomes.iter().all(|o| o != "unresolved"));
    }

    #[test]
    fn full_batches_flush_before_the_linger_deadline() {
        // Four back-to-back arrivals fill batch_max=4 at t=0.
        let trace: Vec<SimSubmit> = (0..4).map(|_| SimSubmit::at(0, "cnn")).collect();
        let report = sim(FaultPlan::new()).run(&trace);
        assert_eq!(report.flushes.len(), 1);
        assert_eq!(report.flushes[0].reason, "full");
        assert_eq!(report.flushes[0].at_us, 0);
        assert_eq!(report.flushes[0].size, 4);
        // Service = 100 + 4*10 = 140µs for everyone.
        assert_eq!(report.latencies_us, vec![140, 140, 140, 140]);
        assert_eq!(report.p50_us, 140);
    }

    #[test]
    fn lone_request_flushes_at_the_linger_deadline() {
        let trace = vec![SimSubmit::at(50, "cnn")];
        let report = sim(FaultPlan::new()).run(&trace);
        assert_eq!(report.flushes.len(), 1);
        assert_eq!(report.flushes[0].reason, "deadline");
        assert_eq!(report.flushes[0].at_us, 250, "arrival 50 + linger 200");
        // Latency = wait 200 + service 110.
        assert_eq!(report.latencies_us, vec![310]);
    }

    #[test]
    fn injected_panic_fails_only_the_culprit() {
        let trace: Vec<SimSubmit> = (0..4).map(|_| SimSubmit::at(0, "cnn")).collect();
        let report = sim(FaultPlan::new().panic_on_request(2)).run(&trace);
        assert_eq!(
            report.outcomes,
            vec!["ok:w8", "ok:w8", "failed:panic", "ok:w8"]
        );
        assert_eq!(report.stats.batch_retries, 4);
        assert_eq!(report.stats.worker_panics, 2, "batch attempt + retry");
        assert_eq!(report.stats.resolved(), 4);
    }

    #[test]
    fn killed_worker_loses_only_its_batch_and_respawns() {
        let trace: Vec<SimSubmit> = (0..8).map(|i| SimSubmit::at(i / 4, "cnn")).collect();
        let report = sim(FaultPlan::new().kill_worker_on_batch(0)).run(&trace);
        assert_eq!(report.stats.respawns, 1);
        assert_eq!(report.stats.failed, 4, "first batch lost");
        assert_eq!(report.stats.completed_ok, 4, "second batch unaffected");
        assert!(report.outcomes[..4].iter().all(|o| o == "failed:lost"));
        assert!(report.outcomes[4..].iter().all(|o| o.starts_with("ok:")));
    }

    #[test]
    fn delayed_batch_misses_deadlines() {
        let trace: Vec<SimSubmit> = (0..4)
            .map(|_| SimSubmit::at(0, "cnn").deadline(200))
            .collect();
        let ok = sim(FaultPlan::new()).run(&trace);
        assert!(ok.outcomes.iter().all(|o| o == "ok:w8"));
        let late = sim(FaultPlan::new().delay_batch(0, 500)).run(&trace);
        assert!(late.outcomes.iter().all(|o| o == "deadline"));
        assert_eq!(late.stats.deadline_expired, 4);
    }

    #[test]
    fn overload_sheds_and_degrades() {
        // 12 arrivals reach the shed watermark, the next 4 low-priority
        // ones are shed, 4 more normals fill the queue to capacity, and
        // a final one is refused outright. Flushes under pressure
        // degrade to w4.
        let mut trace: Vec<SimSubmit> = (0..12).map(|_| SimSubmit::at(0, "cnn")).collect();
        for _ in 0..4 {
            trace.push(SimSubmit::at(0, "cnn").priority(Priority::Low));
        }
        for _ in 0..4 {
            trace.push(SimSubmit::at(0, "cnn"));
        }
        trace.push(SimSubmit::at(0, "cnn"));
        let report = sim(FaultPlan::new()).run(&trace);
        assert_eq!(report.stats.rejected_shed, 4, "low-priority shed");
        assert_eq!(report.stats.rejected_queue_full, 1, "hard cap");
        assert!(report.stats.degraded > 0, "overload degrades");
        assert!(report.outcomes.iter().any(|o| o == "ok:w4:degraded"));
        assert_eq!(report.stats.resolved(), report.stats.accepted);
    }

    #[test]
    fn malformed_and_unknown_are_rejected_without_queueing() {
        let trace = vec![
            SimSubmit::at(0, "cnn").malformed(),
            SimSubmit::at(0, "nope"),
            SimSubmit::at(0, "cnn"),
        ];
        let report = sim(FaultPlan::new()).run(&trace);
        assert_eq!(report.outcomes[0], "shed:bad_input");
        assert_eq!(report.outcomes[1], "shed:unknown_model");
        assert_eq!(report.outcomes[2], "ok:w8");
        assert_eq!(report.stats.rejected_bad_input, 2);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_us(&[], 50), 0);
        assert_eq!(percentile_us(&[7], 50), 7);
        assert_eq!(percentile_us(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile_us(&[1, 2, 3, 4], 99), 4);
        assert_eq!(percentile_us(&[1, 2, 3, 4], 100), 4);
    }
}
