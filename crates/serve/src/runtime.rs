//! The threaded serving runtime: worker threads driving the
//! deterministic [`Engine`], a supervisor that respawns dead workers,
//! and panic isolation around batch execution.
//!
//! Concurrency layout: the engine sits behind one mutex and workers park
//! on one condvar. A worker takes the lock only to *decide* (poll
//! [`Engine::next_action`]); batch execution runs lock-free on the
//! worker's own [`ActivationArena`], so inference never serializes
//! across workers. Submissions and manual-clock advances notify the
//! condvar.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use mixq_kernels::{ActivationArena, OpCounts};
use mixq_tensor::Tensor;

use crate::clock::{ClockSource, ManualClock};
use crate::config::ServeConfig;
use crate::engine::{Batch, Engine, EngineAction, Pending};
use crate::error::{Priority, ServeError, ServeOutput};
use crate::fault::FaultPlan;
use crate::registry::ModelRegistry;
use crate::response::ResponseHandle;
use crate::stats::{ServeStats, StatsSnapshot};

/// Per-request submission knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Admission priority (`Low` is shed first under pressure).
    pub priority: Priority,
    /// Relative deadline budget in clock-domain µs; `None` falls back to
    /// the runtime's `default_deadline_us` (which may also be `None`).
    pub deadline_us: Option<u64>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            priority: Priority::Normal,
            deadline_us: None,
        }
    }
}

impl SubmitOptions {
    /// Set the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set a relative deadline budget (µs).
    pub fn with_deadline_us(mut self, us: u64) -> Self {
        self.deadline_us = Some(us);
        self
    }
}

struct Shared {
    engine: Mutex<Engine>,
    work_cv: Condvar,
    clock: ClockSource,
    stats: ServeStats,
    registry: ModelRegistry,
    faults: FaultPlan,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    deaths: Mutex<Vec<usize>>,
    death_cv: Condvar,
    supervisor_done: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fault-tolerant serving runtime over a verified [`ModelRegistry`].
///
/// See the crate docs for the guarantees. Dropping the runtime performs
/// a drain [`shutdown`](ServeRuntime::shutdown) if one has not run yet.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    shut_down: bool,
}

impl ServeRuntime {
    /// Start a runtime on real (monotonic) time with no injected faults.
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Result<Self, String> {
        Self::start_with(registry, cfg, ClockSource::monotonic(), FaultPlan::new())
    }

    /// Start a runtime with an explicit clock source and fault plan —
    /// the entry point for deterministic tests.
    pub fn start_with(
        registry: ModelRegistry,
        cfg: ServeConfig,
        clock: ClockSource,
        faults: FaultPlan,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err("registry holds no models".into());
        }
        let workers = cfg.workers;
        let engine = Engine::new(cfg, registry.infos());
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            work_cv: Condvar::new(),
            clock,
            stats: ServeStats::default(),
            registry,
            faults,
            workers: Mutex::new((0..workers).map(|_| None).collect()),
            deaths: Mutex::new(Vec::new()),
            death_cv: Condvar::new(),
            supervisor_done: AtomicBool::new(false),
        });
        {
            let mut slots = lock(&shared.workers);
            for (idx, slot) in slots.iter_mut().enumerate() {
                *slot = Some(spawn_worker(Arc::clone(&shared), idx));
            }
        }
        let supervisor = Some(spawn_supervisor(Arc::clone(&shared)));
        Ok(ServeRuntime {
            shared,
            supervisor,
            shut_down: false,
        })
    }

    /// Submit one single-item request against a registered model.
    ///
    /// Returns immediately: on admission the caller gets a
    /// [`ResponseHandle`] to wait on; every rejection is a typed
    /// [`ServeError`] in the `Shed` class.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor<f32>,
        opts: SubmitOptions,
    ) -> Result<ResponseHandle, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let stats = &self.shared.stats;
        let Some(id) = self.shared.registry.id_of(model) else {
            stats.submitted.fetch_add(1, Relaxed);
            stats.rejected_bad_input.fetch_add(1, Relaxed);
            return Err(ServeError::UnknownModel {
                model: model.to_string(),
            });
        };
        let net = &self.shared.registry.entry(id).variants[0].net;
        let items = match net.validate_request(&input) {
            Ok(items) => items,
            Err(source) => {
                stats.submitted.fetch_add(1, Relaxed);
                stats.rejected_bad_input.fetch_add(1, Relaxed);
                return Err(ServeError::BadInput { source });
            }
        };
        if items != 1 {
            stats.submitted.fetch_add(1, Relaxed);
            stats.rejected_bad_input.fetch_add(1, Relaxed);
            return Err(ServeError::BadInput {
                source: mixq_core::MixQError::InputShapeMismatch {
                    expected: net.input_shape(),
                    got: input.shape(),
                },
            });
        }
        let now = self.shared.clock.now_us();
        let mut engine = lock(&self.shared.engine);
        let rel = opts.deadline_us.or(engine.config().default_deadline_us);
        let deadline = rel.map(|d| now.saturating_add(d));
        let admitted = engine.admit(now, id, Some(input), opts.priority, deadline, stats);
        drop(engine);
        match admitted {
            Ok((handle, _seq)) => {
                self.shared.work_cv.notify_all();
                Ok(handle)
            }
            Err(e) => Err(e),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The runtime's notion of "now" (µs in its clock domain).
    pub fn now_us(&self) -> u64 {
        self.shared.clock.now_us()
    }

    /// Advance a manual clock by `us` and wake the workers so linger
    /// deadlines and request timeouts fire. Panics if the runtime runs
    /// on a monotonic clock.
    pub fn advance_clock(&self, us: u64) -> u64 {
        let ClockSource::Manual(clock) = &self.shared.clock else {
            panic!("advance_clock requires a manual clock");
        };
        let now = clock.advance(us);
        self.shared.work_cv.notify_all();
        now
    }

    /// A clone of the manual clock, if the runtime uses one.
    pub fn manual_clock(&self) -> Option<ManualClock> {
        match &self.shared.clock {
            ClockSource::Manual(c) => Some(c.clone()),
            ClockSource::Monotonic { .. } => None,
        }
    }

    /// Drain shutdown: refuse new admissions, flush and execute every
    /// queued request (partial batches flush immediately), join all
    /// workers and the supervisor, then return the final counters.
    /// Idempotent; also invoked by `Drop`. Never hangs under a manual
    /// clock: drain-mode flushing requires no time to pass.
    pub fn shutdown(&mut self) -> StatsSnapshot {
        if self.shut_down {
            return self.shared.stats.snapshot();
        }
        self.shut_down = true;
        lock(&self.shared.engine).start_drain();
        self.shared.work_cv.notify_all();
        // Join workers, looping because the supervisor may still be
        // respawning replacements while the queue drains.
        loop {
            let handle = lock(&self.shared.workers)
                .iter_mut()
                .find_map(|slot| slot.take());
            if let Some(handle) = handle {
                let _ = handle.join();
                continue;
            }
            let deaths_pending = !lock(&self.shared.deaths).is_empty();
            if deaths_pending {
                std::thread::yield_now();
                continue;
            }
            break;
        }
        // Stop the supervisor, then sweep up any worker it respawned in
        // the race window above.
        self.shared.supervisor_done.store(true, Ordering::SeqCst);
        self.shared.death_cv.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        while let Some(handle) = lock(&self.shared.workers)
            .iter_mut()
            .find_map(|slot| slot.take())
        {
            let _ = handle.join();
        }
        // Paranoia: nothing should remain queued after a drain, but an
        // abandoned request must still resolve rather than hang.
        lock(&self.shared.engine).abort_queued(&self.shared.stats);
        self.shared.stats.snapshot()
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Signals the supervisor when a worker exits without defusing —
/// i.e. abnormally (scripted kill or a real panic unwinding the loop).
struct WorkerGuard {
    shared: Arc<Shared>,
    idx: usize,
    defused: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if !self.defused {
            lock(&self.shared.deaths).push(self.idx);
            self.shared.death_cv.notify_all();
        }
    }
}

fn spawn_worker(shared: Arc<Shared>, idx: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("mixq-serve-worker-{idx}"))
        .spawn(move || worker_loop(shared, idx))
        .expect("spawn serve worker")
}

fn spawn_supervisor(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("mixq-serve-supervisor".into())
        .spawn(move || supervisor_loop(shared))
        .expect("spawn serve supervisor")
}

fn supervisor_loop(shared: Arc<Shared>) {
    loop {
        let next_death = {
            let mut deaths = lock(&shared.deaths);
            loop {
                if let Some(idx) = deaths.pop() {
                    break Some(idx);
                }
                if shared.supervisor_done.load(Ordering::SeqCst) {
                    break None;
                }
                deaths = shared
                    .death_cv
                    .wait(deaths)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(idx) = next_death else {
            return;
        };
        shared
            .stats
            .respawns
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let handle = spawn_worker(Arc::clone(&shared), idx);
        lock(&shared.workers)[idx] = Some(handle);
        // The replacement polls the engine itself; wake it in case work
        // was already queued when its predecessor died.
        shared.work_cv.notify_all();
    }
}

/// Whether the worker should keep looping or die abnormally (leaving its
/// guard armed so the supervisor respawns it).
enum WorkerFate {
    Continue,
    Die,
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    let mut guard = WorkerGuard {
        shared: Arc::clone(&shared),
        idx,
        defused: false,
    };
    let mut arena = ActivationArena::default();
    loop {
        let batch = {
            let mut engine = lock(&shared.engine);
            loop {
                let now = shared.clock.now_us();
                match engine.next_action(now, &shared.stats) {
                    EngineAction::Run(batch) => break Some(batch),
                    EngineAction::Stop => break None,
                    EngineAction::Park => {
                        engine = shared
                            .work_cv
                            .wait(engine)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    EngineAction::WaitUntil(t) => {
                        if shared.clock.is_manual() {
                            // Virtual time only moves via advance_clock,
                            // which notifies; no timeout needed.
                            engine = shared
                                .work_cv
                                .wait(engine)
                                .unwrap_or_else(|e| e.into_inner());
                        } else {
                            let wait_us = t.saturating_sub(now).max(1);
                            engine = shared
                                .work_cv
                                .wait_timeout(engine, Duration::from_micros(wait_us))
                                .unwrap_or_else(|e| e.into_inner())
                                .0;
                        }
                    }
                }
            }
        };
        let Some(batch) = batch else {
            guard.defused = true;
            return;
        };
        match execute_batch(&shared, &mut arena, batch) {
            WorkerFate::Continue => {}
            WorkerFate::Die => return, // guard armed → supervisor respawns
        }
    }
}

fn execute_batch(shared: &Shared, arena: &mut ActivationArena, mut batch: Batch) -> WorkerFate {
    use std::sync::atomic::Ordering::Relaxed;
    let stats = &shared.stats;
    if shared.faults.should_kill_worker(batch.seq) {
        // Scripted worker death: the thread abandons the batch and
        // exits. Resolve the in-flight requests here (the responder drop
        // guard would catch them anyway, but resolving keeps the failure
        // accounted) and let the supervisor respawn a replacement.
        for pending in batch.reqs.drain(..) {
            pending.responder.resolve(Err(ServeError::WorkerLost));
            stats.failed.fetch_add(1, Relaxed);
        }
        return WorkerFate::Die;
    }
    if let Some(delay_us) = shared.faults.delay_for_batch(batch.seq) {
        match &shared.clock {
            ClockSource::Manual(clock) => {
                clock.advance(delay_us);
                shared.work_cv.notify_all();
            }
            ClockSource::Monotonic { .. } => {
                std::thread::sleep(Duration::from_micros(delay_us));
            }
        }
    }
    let entry = shared.registry.entry(batch.model);
    let variant = &entry.variants[batch.variant];
    let batch_size = batch.reqs.len();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        compute(&variant.net, &batch.reqs, &shared.faults, arena)
    }));
    match attempt {
        Ok(per_request) => {
            for (pending, logits) in batch.reqs.into_iter().zip(per_request) {
                resolve_computed(
                    shared,
                    pending,
                    logits,
                    &variant.label,
                    batch.degraded,
                    batch_size,
                );
            }
        }
        Err(payload) => {
            stats.worker_panics.fetch_add(1, Relaxed);
            // The unwound walk may have left the arena's pools in an
            // arbitrary state; start clean.
            *arena = ActivationArena::default();
            let detail = panic_detail(payload.as_ref());
            if batch_size == 1 {
                let pending = batch.reqs.pop().expect("batch of one");
                pending
                    .responder
                    .resolve(Err(ServeError::WorkerPanicked { detail }));
                stats.failed.fetch_add(1, Relaxed);
            } else {
                // Bisect by retrying each request alone: innocents
                // complete, only the culprit(s) resolve WorkerPanicked.
                for pending in batch.reqs {
                    stats.batch_retries.fetch_add(1, Relaxed);
                    retry_single(shared, arena, pending, variant, batch.degraded);
                }
            }
        }
    }
    WorkerFate::Continue
}

fn retry_single(
    shared: &Shared,
    arena: &mut ActivationArena,
    pending: Pending,
    variant: &crate::registry::Variant,
    degraded: bool,
) {
    use std::sync::atomic::Ordering::Relaxed;
    let single = std::slice::from_ref(&pending);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        compute(&variant.net, single, &shared.faults, arena)
    }));
    match attempt {
        Ok(mut per_request) => {
            let logits = per_request.pop().expect("one result for one request");
            resolve_computed(shared, pending, logits, &variant.label, degraded, 1);
        }
        Err(payload) => {
            shared.stats.worker_panics.fetch_add(1, Relaxed);
            *arena = ActivationArena::default();
            let detail = panic_detail(payload.as_ref());
            pending
                .responder
                .resolve(Err(ServeError::WorkerPanicked { detail }));
            shared.stats.failed.fetch_add(1, Relaxed);
        }
    }
}

/// Resolve one computed request: a late completion (past its deadline)
/// still resolves, but as `DeadlineExceeded` rather than `Ok`.
fn resolve_computed(
    shared: &Shared,
    pending: Pending,
    logits: Vec<i32>,
    variant_label: &str,
    degraded: bool,
    batch_size: usize,
) {
    use std::sync::atomic::Ordering::Relaxed;
    let stats = &shared.stats;
    let now = shared.clock.now_us();
    if let Some(deadline) = pending.deadline_us {
        if now > deadline {
            pending.responder.resolve(Err(ServeError::DeadlineExceeded {
                deadline_us: deadline,
                now_us: now,
            }));
            stats.deadline_expired.fetch_add(1, Relaxed);
            return;
        }
    }
    let latency_us = now.saturating_sub(pending.arrival_us);
    pending.responder.resolve(Ok(ServeOutput {
        logits,
        variant: variant_label.to_string(),
        degraded,
        batch_size,
        latency_us,
    }));
    stats.completed_ok.fetch_add(1, Relaxed);
    if degraded {
        stats.degraded.fetch_add(1, Relaxed);
    }
}

/// Run one stacked graph walk over `reqs`, honoring scripted per-request
/// panic faults. Panics propagate to the caller's `catch_unwind`.
fn compute(
    net: &mixq_core::convert::IntNetwork,
    reqs: &[Pending],
    faults: &FaultPlan,
    arena: &mut ActivationArena,
) -> Vec<Vec<i32>> {
    for pending in reqs {
        if faults.should_panic(pending.seq) {
            panic!("injected fault: panic on request {}", pending.seq);
        }
    }
    let item_shape = net.input_shape();
    let mut data = Vec::with_capacity(reqs.len() * item_shape.volume());
    for pending in reqs {
        let input = pending
            .input
            .as_ref()
            .expect("runtime requests carry input tensors");
        data.extend_from_slice(input.data());
    }
    let stacked = Tensor::from_vec(item_shape.with_batch(reqs.len()), data)
        .expect("validated items stack to the batch shape");
    let mut logits = Vec::new();
    let mut ops = OpCounts::default();
    let x = net.quantize_input_items_pooled(&stacked, 0, reqs.len(), arena);
    net.graph().infer_batch(x, arena, &mut logits, &mut ops);
    logits
        .chunks(net.num_classes())
        .map(<[i32]>::to_vec)
        .collect()
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
