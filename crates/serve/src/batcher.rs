//! Deadline-aware batch-forming rules as a pure function.
//!
//! [`flush_decision`] is the entire scheduling policy: given the queue
//! state and the clock it says whether to flush now, how long to wait,
//! or that there is nothing to do. Both the threaded
//! [`ServeRuntime`](crate::ServeRuntime) and the single-threaded
//! [`Simulator`](crate::sim::Simulator) call this same function, which
//! is what makes the simulator's flush schedule a faithful golden for
//! the runtime's scheduling math.

/// Batch-forming rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Flush as soon as this many requests are queued for one model.
    pub batch_max: usize,
    /// Linger budget: flush a partial batch once its oldest request has
    /// waited this many µs.
    pub deadline_us: u64,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            batch_max: 8,
            deadline_us: 2_000,
        }
    }
}

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// `batch_max` requests were queued.
    Full,
    /// The oldest queued request exhausted the linger budget.
    Deadline,
    /// Shutdown drain: flush whatever is queued immediately.
    Drain,
}

impl FlushReason {
    /// Stable lowercase label for goldens and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
            FlushReason::Drain => "drain",
        }
    }
}

/// The batcher's verdict for one model queue at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// Flush the first `count` queued requests now.
    Flush {
        /// How many requests to take (≤ `batch_max`).
        count: usize,
        /// What triggered the flush.
        reason: FlushReason,
    },
    /// Nothing to flush yet; re-evaluate at this absolute instant (µs).
    WaitUntil(u64),
    /// Queue is empty; park until new work arrives.
    Idle,
}

/// Decide whether a model queue should flush.
///
/// * `queued` — requests currently queued for the model;
/// * `oldest_arrival_us` — admission instant of the front request
///   (ignored when `queued == 0`);
/// * `now_us` — the current clock;
/// * `drain` — shutdown drain mode: flush everything immediately so a
///   manually-clocked runtime can never hang waiting for virtual time.
///
/// The rules, in priority order: empty → [`FlushDecision::Idle`]; full →
/// flush `batch_max` (`Full`); draining → flush all (`Drain`); linger
/// expired → flush all (`Deadline`); otherwise wait until the linger
/// deadline of the front request.
pub fn flush_decision(
    queued: usize,
    oldest_arrival_us: u64,
    now_us: u64,
    drain: bool,
    cfg: &BatcherConfig,
) -> FlushDecision {
    if queued == 0 {
        return FlushDecision::Idle;
    }
    if queued >= cfg.batch_max {
        return FlushDecision::Flush {
            count: cfg.batch_max,
            reason: FlushReason::Full,
        };
    }
    if drain {
        return FlushDecision::Flush {
            count: queued,
            reason: FlushReason::Drain,
        };
    }
    let flush_at = oldest_arrival_us.saturating_add(cfg.deadline_us);
    if now_us >= flush_at {
        FlushDecision::Flush {
            count: queued,
            reason: FlushReason::Deadline,
        }
    } else {
        FlushDecision::WaitUntil(flush_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: BatcherConfig = BatcherConfig {
        batch_max: 4,
        deadline_us: 100,
    };

    #[test]
    fn empty_queue_is_idle() {
        assert_eq!(flush_decision(0, 0, 999, false, &CFG), FlushDecision::Idle);
        assert_eq!(flush_decision(0, 0, 999, true, &CFG), FlushDecision::Idle);
    }

    #[test]
    fn full_queue_flushes_batch_max_immediately() {
        assert_eq!(
            flush_decision(4, 50, 50, false, &CFG),
            FlushDecision::Flush {
                count: 4,
                reason: FlushReason::Full
            }
        );
        // Over-full still takes only batch_max per flush.
        assert_eq!(
            flush_decision(9, 50, 50, false, &CFG),
            FlushDecision::Flush {
                count: 4,
                reason: FlushReason::Full
            }
        );
    }

    #[test]
    fn partial_batch_waits_for_the_linger_deadline() {
        assert_eq!(
            flush_decision(2, 40, 60, false, &CFG),
            FlushDecision::WaitUntil(140)
        );
        // Exactly at the deadline flushes.
        assert_eq!(
            flush_decision(2, 40, 140, false, &CFG),
            FlushDecision::Flush {
                count: 2,
                reason: FlushReason::Deadline
            }
        );
        // Past the deadline flushes too.
        assert_eq!(
            flush_decision(3, 40, 500, false, &CFG),
            FlushDecision::Flush {
                count: 3,
                reason: FlushReason::Deadline
            }
        );
    }

    #[test]
    fn drain_flushes_partials_without_waiting() {
        assert_eq!(
            flush_decision(1, 40, 41, true, &CFG),
            FlushDecision::Flush {
                count: 1,
                reason: FlushReason::Drain
            }
        );
        // Full beats drain so the size cap still holds while draining.
        assert_eq!(
            flush_decision(6, 40, 41, true, &CFG),
            FlushDecision::Flush {
                count: 4,
                reason: FlushReason::Full
            }
        );
    }

    #[test]
    fn linger_deadline_saturates_instead_of_overflowing() {
        let cfg = BatcherConfig {
            batch_max: 8,
            deadline_us: u64::MAX,
        };
        assert_eq!(
            flush_decision(1, u64::MAX - 5, 10, false, &cfg),
            FlushDecision::WaitUntil(u64::MAX)
        );
    }
}
