//! The deterministic scheduling engine.
//!
//! The engine owns every scheduling decision — admission, shedding,
//! deadline expiry, batch forming, degradation — as pure state-machine
//! transitions over `(queue state, clock reading)`. It holds **no
//! threads, no clock and no networks**: the threaded
//! [`ServeRuntime`](crate::ServeRuntime) and the single-threaded
//! [`Simulator`](crate::sim::Simulator) both drive this same type, so a
//! golden captured from the simulator pins the runtime's scheduling
//! math.

use std::collections::VecDeque;

use mixq_tensor::Tensor;

use crate::batcher::{flush_decision, FlushDecision, FlushReason};
use crate::config::ServeConfig;
use crate::error::{Priority, ServeError};
use crate::registry::ModelInfo;
use crate::response::{channel, Responder, ResponseHandle};
use crate::stats::ServeStats;

/// One admitted request waiting in (or flushed out of) a model queue.
#[derive(Debug)]
pub struct Pending {
    /// Admission sequence number (0-based, global FIFO order) — the
    /// identifier [`FaultPlan`](crate::FaultPlan) scripts against.
    pub seq: u64,
    /// Model id in the registry.
    pub model: usize,
    /// The request tensor. `None` in simulation, where no real network
    /// runs; the threaded runtime always supplies `Some`.
    pub input: Option<Tensor<f32>>,
    /// Admission instant (clock-domain µs).
    pub arrival_us: u64,
    /// Absolute deadline, if any.
    pub deadline_us: Option<u64>,
    /// Admission priority.
    pub priority: Priority,
    /// The exactly-once response channel.
    pub responder: Responder,
}

impl Pending {
    /// Whether the request's deadline has lapsed at `now_us`.
    pub fn expired(&self, now_us: u64) -> bool {
        self.deadline_us.is_some_and(|d| now_us >= d)
    }
}

/// A flushed batch, ready for a worker.
#[derive(Debug)]
pub struct Batch {
    /// Global flush sequence number (0-based) — the identifier
    /// [`FaultPlan`](crate::FaultPlan) scripts batch faults against.
    pub seq: u64,
    /// Model id.
    pub model: usize,
    /// Index of the variant that should serve the batch.
    pub variant: usize,
    /// Whether `variant` is an overload degradation (≠ 0).
    pub degraded: bool,
    /// What triggered the flush.
    pub reason: FlushReason,
    /// The requests, in admission order.
    pub reqs: Vec<Pending>,
}

/// What the engine wants a worker to do next.
#[derive(Debug)]
pub enum EngineAction {
    /// Execute this batch.
    Run(Batch),
    /// Nothing flushable yet; re-poll at this absolute instant (µs).
    WaitUntil(u64),
    /// All queues empty and still accepting; park until new work.
    Park,
    /// Draining and empty: the worker should exit.
    Stop,
}

/// Deterministic scheduling state: per-model FIFOs plus the counters
/// that name requests and batches.
#[derive(Debug)]
pub struct Engine {
    cfg: ServeConfig,
    models: Vec<ModelInfo>,
    queues: Vec<VecDeque<Pending>>,
    /// Round-robin cursor so one busy model cannot starve the others.
    cursor: usize,
    depth: usize,
    next_seq: u64,
    next_batch_seq: u64,
    accepting: bool,
}

impl Engine {
    /// An engine scheduling for `models` under `cfg`. The config must
    /// already be validated.
    pub fn new(cfg: ServeConfig, models: Vec<ModelInfo>) -> Self {
        let queues = models.iter().map(|_| VecDeque::new()).collect();
        Engine {
            cfg,
            models,
            queues,
            cursor: 0,
            depth: 0,
            next_seq: 0,
            next_batch_seq: 0,
            accepting: true,
        }
    }

    /// The engine's config.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The models the engine schedules for.
    pub fn models(&self) -> &[ModelInfo] {
        &self.models
    }

    /// Total queued requests across all models.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the engine still admits new requests.
    pub fn accepting(&self) -> bool {
        self.accepting
    }

    /// Enter drain mode: refuse new admissions, flush queued partials
    /// immediately (the batcher's drain rule), and report
    /// [`EngineAction::Stop`] once empty.
    pub fn start_drain(&mut self) {
        self.accepting = false;
    }

    /// Admit one request or reject it with a typed error. On success
    /// the caller gets the [`ResponseHandle`] and the admitted request's
    /// sequence number; the engine keeps the responder inside the queue.
    ///
    /// `stats` is updated for every outcome so admission accounting has
    /// a single site.
    pub fn admit(
        &mut self,
        now_us: u64,
        model: usize,
        input: Option<Tensor<f32>>,
        priority: Priority,
        deadline_us: Option<u64>,
        stats: &ServeStats,
    ) -> Result<(ResponseHandle, u64), ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        stats.submitted.fetch_add(1, Relaxed);
        if !self.accepting {
            return Err(ServeError::ShuttingDown);
        }
        debug_assert!(model < self.models.len(), "runtime resolves model ids");
        if self.depth >= self.cfg.queue_capacity {
            stats.rejected_queue_full.fetch_add(1, Relaxed);
            return Err(ServeError::QueueFull {
                depth: self.depth,
                capacity: self.cfg.queue_capacity,
            });
        }
        if priority == Priority::Low && self.depth >= self.cfg.shed_watermark {
            stats.rejected_shed.fetch_add(1, Relaxed);
            return Err(ServeError::ShedLowPriority {
                depth: self.depth,
                watermark: self.cfg.shed_watermark,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let (responder, handle) = channel();
        self.queues[model].push_back(Pending {
            seq,
            model,
            input,
            arrival_us: now_us,
            deadline_us,
            priority,
            responder,
        });
        self.depth += 1;
        stats.accepted.fetch_add(1, Relaxed);
        stats.observe_depth(self.depth);
        Ok((handle, seq))
    }

    /// Resolve every queued request whose deadline has lapsed at
    /// `now_us` (they never reach a worker). Returns how many expired.
    fn expire_queued(&mut self, now_us: u64, stats: &ServeStats) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let mut expired = 0;
        for queue in &mut self.queues {
            let mut kept = VecDeque::with_capacity(queue.len());
            while let Some(pending) = queue.pop_front() {
                if pending.expired(now_us) {
                    let deadline = pending.deadline_us.unwrap_or(now_us);
                    pending.responder.resolve(Err(ServeError::DeadlineExceeded {
                        deadline_us: deadline,
                        now_us,
                    }));
                    stats.deadline_expired.fetch_add(1, Relaxed);
                    expired += 1;
                } else {
                    kept.push_back(pending);
                }
            }
            *queue = kept;
        }
        self.depth -= expired;
        expired
    }

    /// The next thing a worker should do at `now_us`.
    ///
    /// Queued requests past their deadline are expired first. Models are
    /// scanned round-robin from an internal cursor so a hot model cannot
    /// starve the rest. When nothing is flushable the engine reports the
    /// earliest instant anything changes: the soonest linger deadline or
    /// the soonest request deadline.
    pub fn next_action(&mut self, now_us: u64, stats: &ServeStats) -> EngineAction {
        use std::sync::atomic::Ordering::Relaxed;
        self.expire_queued(now_us, stats);
        let n = self.queues.len();
        let drain = !self.accepting;
        let mut wake_at: Option<u64> = None;
        for step in 0..n {
            let m = (self.cursor + step) % n;
            let queue = &self.queues[m];
            let oldest = queue.front().map(|p| p.arrival_us).unwrap_or(0);
            match flush_decision(queue.len(), oldest, now_us, drain, &self.cfg.batcher) {
                FlushDecision::Flush { count, reason } => {
                    self.cursor = (m + 1) % n;
                    let degraded = self.depth >= self.cfg.degrade_watermark
                        && self.models[m].variant_labels.len() > 1;
                    let variant = if degraded {
                        self.models[m].variant_labels.len() - 1
                    } else {
                        0
                    };
                    let reqs: Vec<Pending> = self.queues[m].drain(..count).collect();
                    self.depth -= reqs.len();
                    let seq = self.next_batch_seq;
                    self.next_batch_seq += 1;
                    stats.batches.fetch_add(1, Relaxed);
                    match reason {
                        FlushReason::Full => stats.flush_full.fetch_add(1, Relaxed),
                        FlushReason::Deadline => stats.flush_deadline.fetch_add(1, Relaxed),
                        FlushReason::Drain => stats.flush_drain.fetch_add(1, Relaxed),
                    };
                    return EngineAction::Run(Batch {
                        seq,
                        model: m,
                        variant,
                        degraded,
                        reason,
                        reqs,
                    });
                }
                FlushDecision::WaitUntil(t) => {
                    wake_at = Some(wake_at.map_or(t, |w| w.min(t)));
                }
                FlushDecision::Idle => {}
            }
            // A queued request's own deadline can land before the linger
            // deadline; wake then so expiry is prompt.
            if let Some(d) = self.queues[m].iter().filter_map(|p| p.deadline_us).min() {
                wake_at = Some(wake_at.map_or(d, |w| w.min(d)));
            }
        }
        match wake_at {
            Some(t) => EngineAction::WaitUntil(t),
            None if drain => EngineAction::Stop,
            None => EngineAction::Park,
        }
    }

    /// Fail every queued request with [`ServeError::Shutdown`]. Used on
    /// abortive (non-drain) teardown; drain shutdown flushes instead.
    pub fn abort_queued(&mut self, stats: &ServeStats) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let mut aborted = 0;
        for queue in &mut self.queues {
            while let Some(pending) = queue.pop_front() {
                pending.responder.resolve(Err(ServeError::Shutdown));
                stats.failed.fetch_add(1, Relaxed);
                aborted += 1;
            }
        }
        self.depth -= aborted;
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;
    use crate::error::OutcomeClass;

    fn two_model_engine(cfg: ServeConfig) -> Engine {
        let models = vec![
            ModelInfo {
                name: "a".into(),
                variant_labels: vec!["w8".into(), "w4".into()],
            },
            ModelInfo {
                name: "b".into(),
                variant_labels: vec!["w8".into()],
            },
        ];
        Engine::new(cfg, models)
    }

    fn cfg_small() -> ServeConfig {
        ServeConfig::default()
            .with_queue_capacity(8)
            .with_shed_watermark(6)
            .with_degrade_watermark(4)
            .with_batcher(BatcherConfig {
                batch_max: 3,
                deadline_us: 100,
            })
    }

    #[test]
    fn admission_is_bounded_and_sheds_low_priority() {
        let stats = ServeStats::default();
        let mut engine = two_model_engine(cfg_small());
        let mut handles = Vec::new();
        for _ in 0..6 {
            handles.push(
                engine
                    .admit(0, 0, None, Priority::Normal, None, &stats)
                    .unwrap(),
            );
        }
        // Depth 6 == shed watermark: Low is shed, Normal still admits.
        let shed = engine.admit(0, 0, None, Priority::Low, None, &stats);
        assert!(matches!(shed, Err(ServeError::ShedLowPriority { .. })));
        handles.push(
            engine
                .admit(0, 1, None, Priority::Normal, None, &stats)
                .unwrap(),
        );
        handles.push(
            engine
                .admit(0, 1, None, Priority::High, None, &stats)
                .unwrap(),
        );
        // Depth 8 == capacity: everyone is refused.
        let full = engine.admit(0, 0, None, Priority::High, None, &stats);
        assert!(matches!(full, Err(ServeError::QueueFull { .. })));
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.accepted, 8);
        assert_eq!(snap.rejected_shed, 1);
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.max_depth, 8);
    }

    #[test]
    fn flush_schedule_is_deterministic() {
        let stats = ServeStats::default();
        // Watermark out of the way: this test is about flush timing only.
        let mut engine = two_model_engine(cfg_small().with_degrade_watermark(100));
        // Three model-0 requests at t=10 fill a batch; one model-1
        // request at t=20 lingers.
        for _ in 0..3 {
            engine
                .admit(10, 0, None, Priority::Normal, None, &stats)
                .unwrap();
        }
        engine
            .admit(20, 1, None, Priority::Normal, None, &stats)
            .unwrap();
        match engine.next_action(20, &stats) {
            EngineAction::Run(batch) => {
                assert_eq!(batch.seq, 0);
                assert_eq!(batch.model, 0);
                assert_eq!(batch.reason, FlushReason::Full);
                assert_eq!(batch.reqs.len(), 3);
                assert!(!batch.degraded);
            }
            other => panic!("expected full flush, got {other:?}"),
        }
        // Model 1 has one request from t=20: wait until 120.
        match engine.next_action(20, &stats) {
            EngineAction::WaitUntil(t) => assert_eq!(t, 120),
            other => panic!("expected wait, got {other:?}"),
        }
        match engine.next_action(120, &stats) {
            EngineAction::Run(batch) => {
                assert_eq!(batch.seq, 1);
                assert_eq!(batch.model, 1);
                assert_eq!(batch.reason, FlushReason::Deadline);
                assert_eq!(batch.reqs.len(), 1);
            }
            other => panic!("expected deadline flush, got {other:?}"),
        }
        assert!(matches!(
            engine.next_action(120, &stats),
            EngineAction::Park
        ));
    }

    #[test]
    fn overload_degrades_to_last_variant() {
        let stats = ServeStats::default();
        let mut engine = two_model_engine(cfg_small());
        // Depth 5 >= degrade watermark 4 when the first batch flushes.
        for _ in 0..5 {
            engine
                .admit(0, 0, None, Priority::Normal, None, &stats)
                .unwrap();
        }
        match engine.next_action(0, &stats) {
            EngineAction::Run(batch) => {
                assert!(batch.degraded);
                assert_eq!(batch.variant, 1, "degrades to the last variant");
            }
            other => panic!("expected flush, got {other:?}"),
        }
        // Depth is now 2 < 4: the next (deadline) flush is not degraded.
        match engine.next_action(500, &stats) {
            EngineAction::Run(batch) => {
                assert!(!batch.degraded);
                assert_eq!(batch.variant, 0);
            }
            other => panic!("expected flush, got {other:?}"),
        }
        // Model 1 (single variant) never degrades even under pressure.
        for _ in 0..5 {
            engine
                .admit(1000, 1, None, Priority::Normal, None, &stats)
                .unwrap();
        }
        match engine.next_action(1000, &stats) {
            EngineAction::Run(batch) => {
                assert_eq!(batch.model, 1);
                assert!(!batch.degraded);
            }
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn queued_requests_expire_at_their_deadline() {
        let stats = ServeStats::default();
        let mut engine = two_model_engine(cfg_small());
        let (h, _) = engine
            .admit(0, 0, None, Priority::Normal, Some(50), &stats)
            .unwrap();
        // Before the deadline the engine waits for whichever comes
        // first: the request deadline (50) or the linger deadline (100).
        match engine.next_action(10, &stats) {
            EngineAction::WaitUntil(t) => assert_eq!(t, 50),
            other => panic!("expected wait, got {other:?}"),
        }
        assert!(matches!(engine.next_action(50, &stats), EngineAction::Park));
        let result = h.wait();
        assert!(matches!(result, Err(ServeError::DeadlineExceeded { .. })));
        assert_eq!(result.unwrap_err().class(), OutcomeClass::Deadline);
        assert_eq!(stats.snapshot().deadline_expired, 1);
        assert_eq!(engine.depth(), 0);
    }

    #[test]
    fn drain_flushes_partials_then_stops() {
        let stats = ServeStats::default();
        let mut engine = two_model_engine(cfg_small());
        engine
            .admit(0, 0, None, Priority::Normal, None, &stats)
            .unwrap();
        engine.start_drain();
        let refused = engine.admit(1, 0, None, Priority::Normal, None, &stats);
        assert!(matches!(refused, Err(ServeError::ShuttingDown)));
        match engine.next_action(1, &stats) {
            EngineAction::Run(batch) => {
                assert_eq!(batch.reason, FlushReason::Drain);
                assert_eq!(batch.reqs.len(), 1);
            }
            other => panic!("expected drain flush, got {other:?}"),
        }
        assert!(matches!(engine.next_action(1, &stats), EngineAction::Stop));
    }

    #[test]
    fn round_robin_prevents_starvation() {
        let stats = ServeStats::default();
        let cfg = cfg_small().with_degrade_watermark(100);
        let mut engine = two_model_engine(cfg);
        // Both models stay over batch_max; flushes must alternate.
        for _ in 0..6 {
            engine
                .admit(0, 0, None, Priority::Normal, None, &stats)
                .unwrap();
        }
        // Capacity is 8, so only 2 fit for model 1 — still enough to
        // observe the cursor moving on.
        for _ in 0..2 {
            engine
                .admit(0, 1, None, Priority::Normal, None, &stats)
                .unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..3 {
            match engine.next_action(1_000, &stats) {
                EngineAction::Run(batch) => order.push(batch.model),
                other => panic!("expected flush, got {other:?}"),
            }
        }
        assert_eq!(order, vec![0, 1, 0], "cursor must rotate across models");
    }

    #[test]
    fn abort_fails_queued_requests() {
        let stats = ServeStats::default();
        let mut engine = two_model_engine(cfg_small());
        let (h, _) = engine
            .admit(0, 0, None, Priority::Normal, None, &stats)
            .unwrap();
        assert_eq!(engine.abort_queued(&stats), 1);
        assert_eq!(h.wait(), Err(ServeError::Shutdown));
        assert_eq!(engine.depth(), 0);
    }
}
