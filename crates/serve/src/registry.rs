//! The model registry: named models, each with an ordered list of
//! bit-width variants, all gated through `mixq-verify` at registration.
//!
//! Variant order is the degradation ladder: the first variant is the
//! preferred (highest-accuracy) one and serves normal traffic; the
//! *last* variant is the overload fallback the batcher degrades to.
//! A variant whose graph fails static verification never enters the
//! registry — a malformed deployment artifact is an admission-time
//! error, not a runtime surprise.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mixq_core::convert::IntNetwork;
use mixq_quant::BitWidth;
use mixq_tensor::Shape;
use mixq_verify::verify_graph;

/// One registered bit-width variant of a model.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Caller-supplied label (e.g. `w8`, `w4`).
    pub label: String,
    /// The verified deployment network.
    pub net: Arc<IntNetwork>,
}

/// Registration-time failures. Like admission errors these are typed:
/// a registry never holds an unverified or inconsistent model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A model with this name is already registered.
    DuplicateModel {
        /// The conflicting name.
        model: String,
    },
    /// `register` was called with zero variants.
    NoVariants {
        /// The model name.
        model: String,
    },
    /// A variant's graph failed `mixq-verify` static verification.
    VerificationFailed {
        /// The model name.
        model: String,
        /// The failing variant's label.
        variant: String,
        /// Number of violations the verifier reported.
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
    /// Variants disagree on the single-item input shape, so they cannot
    /// substitute for each other under degradation.
    InputMismatch {
        /// The model name.
        model: String,
        /// The first variant's input shape.
        expected: Shape,
        /// The offending variant's label and shape.
        variant: String,
        /// The offending shape.
        got: Shape,
    },
    /// Variants disagree on the number of output classes.
    ClassesMismatch {
        /// The model name.
        model: String,
        /// The first variant's class count.
        expected: usize,
        /// The offending variant's label.
        variant: String,
        /// The offending class count.
        got: usize,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateModel { model } => {
                write!(f, "model `{model}` is already registered")
            }
            RegistryError::NoVariants { model } => {
                write!(f, "model `{model}` registered with no variants")
            }
            RegistryError::VerificationFailed {
                model,
                variant,
                violations,
                first,
            } => write!(
                f,
                "variant `{model}/{variant}` failed verification with {violations} violation(s); first: {first}"
            ),
            RegistryError::InputMismatch {
                model,
                expected,
                variant,
                got,
            } => write!(
                f,
                "variant `{model}/{variant}` input shape {got:?} differs from the model's {expected:?}"
            ),
            RegistryError::ClassesMismatch {
                model,
                expected,
                variant,
                got,
            } => write!(
                f,
                "variant `{model}/{variant}` has {got} classes, the model has {expected}"
            ),
        }
    }
}

impl Error for RegistryError {}

/// A registered model: its variants in degradation order.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The model's name.
    pub name: String,
    /// Variants, preferred first; the last is the overload fallback.
    pub variants: Vec<Variant>,
}

/// What the scheduling engine needs to know about a model — names only,
/// no networks, so the simulator can schedule without real weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The model's name.
    pub name: String,
    /// Variant labels in degradation order.
    pub variant_labels: Vec<String>,
}

/// Named models with verified bit-width variants.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    // BTreeMap keeps iteration (and hence model-id assignment) in
    // name-insertion-independent deterministic order.
    by_name: BTreeMap<String, usize>,
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` with its variants (preferred first, overload
    /// fallback last). Every variant's graph is statically verified
    /// with `mixq-verify` under the label `name/variant`; any violation
    /// rejects the whole registration. Returns the model's id.
    pub fn register(
        &mut self,
        name: &str,
        variants: Vec<(String, IntNetwork)>,
    ) -> Result<usize, RegistryError> {
        if self.by_name.contains_key(name) {
            return Err(RegistryError::DuplicateModel {
                model: name.to_string(),
            });
        }
        if variants.is_empty() {
            return Err(RegistryError::NoVariants {
                model: name.to_string(),
            });
        }
        let expected_shape = variants[0].1.input_shape();
        let expected_classes = variants[0].1.num_classes();
        for (label, net) in &variants {
            if net.input_shape() != expected_shape {
                return Err(RegistryError::InputMismatch {
                    model: name.to_string(),
                    expected: expected_shape,
                    variant: label.clone(),
                    got: net.input_shape(),
                });
            }
            if net.num_classes() != expected_classes {
                return Err(RegistryError::ClassesMismatch {
                    model: name.to_string(),
                    expected: expected_classes,
                    variant: label.clone(),
                    got: net.num_classes(),
                });
            }
            let report = verify_graph(
                &format!("{name}/{label}"),
                net.graph(),
                net.input_shape(),
                BitWidth::W8,
            );
            if !report.ok() {
                return Err(RegistryError::VerificationFailed {
                    model: name.to_string(),
                    variant: label.clone(),
                    violations: report.violations.len(),
                    first: format!("{:?}", report.violations[0]),
                });
            }
        }
        let id = self.entries.len();
        self.entries.push(ModelEntry {
            name: name.to_string(),
            variants: variants
                .into_iter()
                .map(|(label, net)| Variant {
                    label,
                    net: Arc::new(net),
                })
                .collect(),
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a model id by name.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The entry for model `id`.
    pub fn entry(&self, id: usize) -> &ModelEntry {
        &self.entries[id]
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scheduling-facing view: names and variant labels only, in model-id
    /// order.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.entries
            .iter()
            .map(|e| ModelInfo {
                name: e.name.clone(),
                variant_labels: e.variants.iter().map(|v| v.label.clone()).collect(),
            })
            .collect()
    }
}
