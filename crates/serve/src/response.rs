//! Exactly-once response plumbing.
//!
//! Every admitted request gets one [`Responder`] (held by the runtime)
//! and one [`ResponseHandle`] (held by the caller). The responder
//! resolves the shared slot exactly once; if a worker unwinds or a batch
//! is dropped while holding the responder, its `Drop` impl resolves the
//! request to [`ServeError::WorkerLost`] so the caller can never hang on
//! a lost request.

use std::sync::{Arc, Condvar, Mutex};

use crate::error::{ServeError, ServeResult};

#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<ServeResult>>,
    cv: Condvar,
}

/// The caller's half: wait for (or poll) the request's terminal outcome.
#[derive(Debug, Clone)]
pub struct ResponseHandle {
    slot: Arc<Slot>,
}

impl ResponseHandle {
    /// Block until the request resolves and return its outcome.
    pub fn wait(&self) -> ServeResult {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.slot.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll: `Some` once resolved.
    pub fn try_get(&self) -> Option<ServeResult> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// The runtime's half: resolves the request exactly once.
///
/// Not `Clone` — ownership is the exactly-once guarantee. Dropping an
/// unresolved responder (worker death, batch dropped mid-flight)
/// resolves the request to [`ServeError::WorkerLost`].
#[derive(Debug)]
pub struct Responder {
    slot: Arc<Slot>,
    resolved: bool,
}

impl Responder {
    /// Deliver the terminal outcome and wake the caller.
    pub fn resolve(mut self, result: ServeResult) {
        self.fill(result);
    }

    fn fill(&mut self, result: ServeResult) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_none() {
            *state = Some(result);
        }
        drop(state);
        self.slot.cv.notify_all();
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if !self.resolved {
            self.fill(Err(ServeError::WorkerLost));
        }
    }
}

/// Create a linked responder/handle pair for one request.
pub fn channel() -> (Responder, ResponseHandle) {
    let slot = Arc::new(Slot::default());
    (
        Responder {
            slot: Arc::clone(&slot),
            resolved: false,
        },
        ResponseHandle { slot },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{OutcomeClass, ServeOutput};

    fn output() -> ServeOutput {
        ServeOutput {
            logits: vec![1, 2],
            variant: "w8".into(),
            degraded: false,
            batch_size: 1,
            latency_us: 10,
        }
    }

    #[test]
    fn resolve_wakes_waiter() {
        let (responder, handle) = channel();
        assert!(handle.try_get().is_none());
        let waiter = std::thread::spawn({
            let handle = handle.clone();
            move || handle.wait()
        });
        responder.resolve(Ok(output()));
        assert_eq!(waiter.join().unwrap(), Ok(output()));
        assert_eq!(handle.try_get(), Some(Ok(output())));
    }

    #[test]
    fn dropping_unresolved_responder_resolves_worker_lost() {
        let (responder, handle) = channel();
        drop(responder);
        let result = handle.wait();
        assert_eq!(result, Err(ServeError::WorkerLost));
        assert_eq!(result.unwrap_err().class(), OutcomeClass::Failed);
    }

    #[test]
    fn panicking_thread_resolves_its_requests() {
        let (responder, handle) = channel();
        let worker = std::thread::spawn(move || {
            let _held = responder;
            panic!("scripted");
        });
        assert!(worker.join().is_err());
        assert_eq!(handle.wait(), Err(ServeError::WorkerLost));
    }
}
