//! # mixq-serve — fault-tolerant serving on top of batched integer walks
//!
//! The paper deploys under hard *device* ceilings; this crate applies the
//! same discipline at the *request* level. A [`ServeRuntime`] accepts
//! inference requests against a [`ModelRegistry`] of converted
//! [`IntNetwork`](mixq_core::convert::IntNetwork)s and never lets load or
//! poisoned work take the system down:
//!
//! * **bounded admission** — a capacity-capped queue with typed
//!   [`ServeError::QueueFull`] / [`ServeError::ShedLowPriority`]
//!   rejections instead of unbounded growth;
//! * **deadline-aware batching** — requests coalesce until `batch_max` or
//!   the batcher's `deadline_us` linger expires, whichever first; the
//!   scheduling math ([`batcher::flush_decision`]) is a pure function of
//!   `(queue, clock)` and is golden-tested through the [`sim::Simulator`];
//! * **per-request timeouts** — a request whose deadline lapses in the
//!   queue, or whose batch finishes late, resolves
//!   [`ServeError::DeadlineExceeded`] instead of occupying a worker or
//!   hanging its caller;
//! * **panic isolation + respawn** — a poisoned request panics only its
//!   own batch attempt: innocents are retried individually, the culprit
//!   resolves [`ServeError::WorkerPanicked`], a dying worker thread is
//!   respawned by the supervisor, and an unwinding worker's in-flight
//!   requests are auto-resolved by a drop guard so **no request is ever
//!   lost or hung**;
//! * **graceful degradation** — under overload the batcher reroutes work
//!   to the *last* (lowest-bit) registry variant of a model and records
//!   the substitution in the response, trading accuracy for latency the
//!   way the paper trades bits for memory;
//! * **deterministic fault injection** — a scripted [`FaultPlan`]
//!   (request panics, batch delays, worker kills) plus a [`ManualClock`]
//!   drive every failure path in tests with zero wall-clock or RNG
//!   nondeterminism.
//!
//! Every request submitted to the runtime resolves to **exactly one** of
//! the four outcome classes ([`OutcomeClass`]): `Ok`, `Shed` (typed
//! admission rejection), `Deadline`, or `Failed`.
//!
//! ```text
//!  submit ──► admission ──► per-model FIFO ──► batcher ──► workers ──► respond
//!             (shed/full)    (bounded)         (flush @    (panic-      (Ok /
//!                                              batch_max |  isolated,    Deadline /
//!                                              deadline;   respawned)    Failed)
//!                                              degrade on overload)
//! ```

#![forbid(unsafe_code)]

pub mod batcher;
pub mod clock;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod registry;
pub mod response;
pub mod runtime;
pub mod sim;
pub mod stats;

pub use batcher::{flush_decision, BatcherConfig, FlushDecision, FlushReason};
pub use clock::{ClockSource, ManualClock};
pub use config::ServeConfig;
pub use error::{OutcomeClass, Priority, ServeError, ServeOutput, ServeResult};
pub use fault::FaultPlan;
pub use registry::{ModelInfo, ModelRegistry, RegistryError};
pub use response::ResponseHandle;
pub use runtime::{ServeRuntime, SubmitOptions};
pub use sim::{percentile_us, FlushRecord, ServiceModel, SimReport, SimSubmit, Simulator};
pub use stats::{ServeStats, StatsSnapshot};
