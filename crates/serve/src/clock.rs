//! Clock abstraction: real monotonic time for production, a manually
//! advanced virtual clock for deterministic tests and goldens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A virtual microsecond clock advanced explicitly by the test driver.
///
/// Cloning shares the underlying counter, so the driver, the runtime and
/// every worker observe the same instant. Time only moves when
/// [`advance`](ManualClock::advance) or [`set`](ManualClock::set) is
/// called — there is no wall-clock drift, which is what makes the flush
/// schedule goldenable.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_us: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at t = 0µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in µs.
    pub fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    /// Move time forward by `us` and return the new instant.
    pub fn advance(&self, us: u64) -> u64 {
        self.now_us.fetch_add(us, Ordering::SeqCst) + us
    }

    /// Jump to an absolute instant. Time never moves backwards: setting
    /// an earlier instant leaves the clock where it is.
    pub fn set(&self, us: u64) -> u64 {
        self.now_us.fetch_max(us, Ordering::SeqCst).max(us)
    }
}

/// Where a runtime reads its notion of "now" from.
#[derive(Debug, Clone)]
pub enum ClockSource {
    /// Real elapsed time since the runtime started (production).
    Monotonic {
        /// The runtime's epoch.
        start: Instant,
    },
    /// A shared virtual clock (tests, simulation, fault injection).
    Manual(ManualClock),
}

impl ClockSource {
    /// A monotonic source whose epoch is the moment of this call.
    pub fn monotonic() -> Self {
        ClockSource::Monotonic {
            start: Instant::now(),
        }
    }

    /// Current time in µs since the source's epoch.
    pub fn now_us(&self) -> u64 {
        match self {
            ClockSource::Monotonic { start } => start.elapsed().as_micros() as u64,
            ClockSource::Manual(clock) => clock.now_us(),
        }
    }

    /// Whether this source is manually driven (workers must park on a
    /// condvar instead of sleeping in that case).
    pub fn is_manual(&self) -> bool {
        matches!(self, ClockSource::Manual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_monotonic() {
        let clock = ManualClock::new();
        let alias = clock.clone();
        assert_eq!(clock.now_us(), 0);
        assert_eq!(clock.advance(150), 150);
        assert_eq!(alias.now_us(), 150);
        assert_eq!(alias.set(100), 150, "time must not move backwards");
        assert_eq!(alias.set(400), 400);
        assert_eq!(clock.now_us(), 400);
    }

    #[test]
    fn monotonic_source_moves_forward() {
        let src = ClockSource::monotonic();
        let a = src.now_us();
        let b = src.now_us();
        assert!(b >= a);
        assert!(!src.is_manual());
        assert!(ClockSource::Manual(ManualClock::new()).is_manual());
    }
}
