//! Runtime configuration: every bound the serving layer enforces.

use crate::batcher::BatcherConfig;

/// Configuration for a [`ServeRuntime`](crate::ServeRuntime) or
/// [`Simulator`](crate::sim::Simulator).
///
/// All limits are hard: the queue never exceeds `queue_capacity`, low
/// priority traffic is shed at `shed_watermark`, and flushes issued
/// while depth is at or above `degrade_watermark` reroute to the last
/// (lowest-bit) registry variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Hard cap on queued requests across all models (admission refuses
    /// with `QueueFull` beyond it).
    pub queue_capacity: usize,
    /// Depth at which `Priority::Low` requests are shed.
    pub shed_watermark: usize,
    /// Depth at or above which flushed batches degrade to the last
    /// registry variant.
    pub degrade_watermark: usize,
    /// Batch-forming rules (size cap and linger deadline).
    pub batcher: BatcherConfig,
    /// Number of worker threads (`ServeRuntime` only; the simulator
    /// models a single virtual worker).
    pub workers: usize,
    /// Deadline applied to requests submitted without their own, as a
    /// relative budget in clock-domain µs. `None` means no deadline.
    pub default_deadline_us: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            shed_watermark: 56,
            degrade_watermark: 32,
            batcher: BatcherConfig::default(),
            workers: 2,
            default_deadline_us: None,
        }
    }
}

impl ServeConfig {
    /// Set the hard queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Set the low-priority shed watermark.
    pub fn with_shed_watermark(mut self, depth: usize) -> Self {
        self.shed_watermark = depth;
        self
    }

    /// Set the degradation watermark.
    pub fn with_degrade_watermark(mut self, depth: usize) -> Self {
        self.degrade_watermark = depth;
        self
    }

    /// Set the batch-forming rules.
    pub fn with_batcher(mut self, batcher: BatcherConfig) -> Self {
        self.batcher = batcher;
        self
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the default relative deadline for requests that do not carry
    /// their own.
    pub fn with_default_deadline_us(mut self, us: u64) -> Self {
        self.default_deadline_us = Some(us);
        self
    }

    /// Check internal consistency. Called by the runtime and simulator
    /// constructors; a misconfigured runtime refuses to start rather
    /// than silently violating its own bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".into());
        }
        if self.shed_watermark > self.queue_capacity {
            return Err(format!(
                "shed_watermark {} exceeds queue_capacity {}",
                self.shed_watermark, self.queue_capacity
            ));
        }
        if self.batcher.batch_max == 0 {
            return Err("batcher.batch_max must be >= 1".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_refused() {
        assert!(ServeConfig::default()
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_queue_capacity(8)
            .with_shed_watermark(9)
            .validate()
            .is_err());
        assert!(ServeConfig::default().with_workers(0).validate().is_err());
        let cfg = ServeConfig::default().with_batcher(BatcherConfig {
            batch_max: 0,
            deadline_us: 100,
        });
        assert!(cfg.validate().is_err());
    }
}
