use std::fmt;

use mixq_core::memory::{mib, MemoryBudget, QuantScheme};
use mixq_core::mixed::BitAssignment;
use mixq_models::NetworkSpec;

/// A microcontroller target: clock frequency plus the memory budget the
/// §5 procedure fits networks into.
///
/// # Examples
///
/// ```
/// use mixq_mcu::Device;
///
/// let h7 = Device::stm32h7();
/// assert_eq!(h7.clock_hz(), 400_000_000);
/// assert_eq!(h7.budget().rw_bytes, 512 * 1024);
/// // 40M cycles at 400 MHz = 100 ms = 10 fps.
/// assert!((h7.fps(40_000_000) - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Device {
    name: String,
    clock_hz: u64,
    budget: MemoryBudget,
}

impl Device {
    /// Creates a device description.
    ///
    /// # Panics
    ///
    /// Panics if the clock is zero.
    pub fn new(name: &str, clock_hz: u64, budget: MemoryBudget) -> Self {
        assert!(clock_hz > 0, "clock must be positive");
        Device {
            name: name.to_owned(),
            clock_hz,
            budget,
        }
    }

    /// The paper's evaluation target: STM32H7 at 400 MHz, 2 MB flash,
    /// 512 kB RAM.
    pub fn stm32h7() -> Self {
        Device::new("STM32H7", 400_000_000, MemoryBudget::stm32h7())
    }

    /// A smaller sibling: STM32F4-class at 168 MHz, 1 MB flash, 192 kB RAM
    /// (used by the ablation benches to show budget sensitivity).
    pub fn stm32f4() -> Self {
        Device::new(
            "STM32F4",
            168_000_000,
            MemoryBudget::new(1024 * 1024, 192 * 1024),
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Memory budget.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Latency in milliseconds for a cycle count.
    pub fn latency_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64 * 1e3
    }

    /// Frames per second for a per-inference cycle count.
    pub fn fps(&self, cycles_per_inference: u64) -> f64 {
        self.clock_hz as f64 / cycles_per_inference.max(1) as f64
    }

    /// Checks whether a bit assignment fits this device.
    pub fn fit_report(
        &self,
        spec: &NetworkSpec,
        assignment: &BitAssignment,
        scheme: QuantScheme,
    ) -> FitReport {
        let flash = assignment.flash_bytes(spec, scheme);
        let ram = assignment.peak_rw_bytes(spec);
        FitReport {
            flash_bytes: flash,
            ram_bytes: ram,
            flash_budget: self.budget.ro_bytes,
            ram_budget: self.budget.rw_bytes,
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} MHz ({})",
            self.name,
            self.clock_hz / 1_000_000,
            self.budget
        )
    }
}

/// Whether and how a deployment fits a device's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitReport {
    /// Required flash bytes.
    pub flash_bytes: usize,
    /// Required peak RAM bytes.
    pub ram_bytes: usize,
    /// Available flash.
    pub flash_budget: usize,
    /// Available RAM.
    pub ram_budget: usize,
}

impl FitReport {
    /// Whether both constraints hold.
    pub fn fits(&self) -> bool {
        self.flash_bytes <= self.flash_budget && self.ram_bytes <= self.ram_budget
    }

    /// Flash utilization fraction.
    pub fn flash_utilization(&self) -> f64 {
        self.flash_bytes as f64 / self.flash_budget.max(1) as f64
    }

    /// RAM utilization fraction.
    pub fn ram_utilization(&self) -> f64 {
        self.ram_bytes as f64 / self.ram_budget.max(1) as f64
    }
}

impl fmt::Display for FitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flash {:.2}/{:.2} MiB ({:.0}%), ram {}/{} KiB ({:.0}%) -> {}",
            mib(self.flash_bytes),
            mib(self.flash_budget),
            self.flash_utilization() * 100.0,
            self.ram_bytes / 1024,
            self.ram_budget / 1024,
            self.ram_utilization() * 100.0,
            if self.fits() { "FITS" } else { "DOES NOT FIT" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};

    #[test]
    fn latency_arithmetic() {
        let d = Device::stm32h7();
        assert!((d.latency_ms(400_000) - 1.0).abs() < 1e-9);
        assert!((d.fps(400_000_000) - 1.0).abs() < 1e-9);
        assert!(d.fps(0) > 0.0, "guards division by zero");
    }

    #[test]
    fn fit_report_for_small_model() {
        let spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
        let bits = BitAssignment::uniform8(&spec);
        let report = Device::stm32h7().fit_report(&spec, &bits, QuantScheme::PerChannelIcn);
        assert!(report.fits(), "{report}");
        assert!(report.flash_utilization() < 0.5);
    }

    #[test]
    fn fit_report_for_oversized_model() {
        let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
        let bits = BitAssignment::uniform8(&spec);
        let report = Device::stm32h7().fit_report(&spec, &bits, QuantScheme::PerChannelIcn);
        assert!(!report.fits(), "4.2M weights at 8 bits cannot fit 2 MiB");
        let s = report.to_string();
        assert!(s.contains("DOES NOT FIT"));
    }

    #[test]
    fn device_display() {
        let s = Device::stm32h7().to_string();
        assert!(s.contains("STM32H7") && s.contains("400 MHz"));
        assert_eq!(Device::stm32f4().budget().rw_bytes, 192 * 1024);
    }
}
