use std::fmt;

use mixq_core::memory::QuantScheme;
use mixq_core::mixed::BitAssignment;
use mixq_kernels::{KernelChoice, LayerRun, OpCounts, OpKind};
use mixq_models::{LayerKind, LayerSpec, NetworkSpec};
use mixq_quant::BitWidth;

/// Cycle cost model of a Cortex-M7 running the extended CMSIS-NN kernels
/// (§6's measurement substrate).
///
/// Constants are cycles per abstract operation, calibrated against public
/// CMSIS-NN throughput figures and the paper's end-to-end anchors (see the
/// crate docs). The defaults model:
///
/// * dual-issue `SMLAD` MACs with im2col overhead → ≈ 2 cycles/MAC on
///   dense (standard/pointwise) convolutions;
/// * depthwise convolutions' poor data reuse → ≈ 7 cycles/MAC (CMSIS-NN
///   depthwise kernels are several times less efficient than `conv`);
/// * mask+shift unpacking of 4/2-bit operands;
/// * the per-channel `Zw` subtraction the paper measures as ≈ 20%
///   end-to-end overhead for PC quantization;
/// * one fixed-point multiply+shift+saturate per output for ICN
///   requantization, or `Q` binary-search comparisons for thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct CortexM7CycleModel {
    /// Cycles per MAC, standard/pointwise convolution (8-bit operands,
    /// direct output-stationary loop).
    pub conv_cycles_per_mac: f64,
    /// Cycles per MAC for a dense convolution lowered onto the plain
    /// im2col + GEMM dataflow ([`KernelChoice::Im2colGemm`]): contiguous
    /// operands let `SMLAD` dual-issue more often than the direct loop.
    pub gemm_cycles_per_mac: f64,
    /// Cycles per MAC for the register-blocked, cache-tiled GEMM
    /// ([`KernelChoice::BlockedGemm`]): operand reuse across the microtile
    /// removes most per-MAC load traffic.
    pub blocked_gemm_cycles_per_mac: f64,
    /// Cycles per MAC, depthwise convolution.
    pub dw_cycles_per_mac: f64,
    /// Cycles per MAC, fully connected.
    pub fc_cycles_per_mac: f64,
    /// Extra cycles per sub-byte operand read (mask + shift).
    pub unpack_cycles: f64,
    /// Extra cycles per sub-byte output written (pack).
    pub pack_cycles: f64,
    /// Extra cycles per MAC for the in-loop per-channel `Zw` subtraction.
    pub pc_offset_cycles: f64,
    /// Cycles per ICN/folded requantization (multiply, shift, clamp).
    pub requant_cycles: f64,
    /// Cycles per threshold comparison.
    pub threshold_cmp_cycles: f64,
    /// Cycles per output element stored (write-back of the result code).
    pub act_store_cycles: f64,
    /// Fixed per-layer scheduling overhead.
    pub layer_overhead: u64,
    /// MAC lanes retired per issue slot. The Cortex-M7 is a
    /// **single-issue scalar** core for these integer kernels (`SMLAD`'s
    /// dual 16-bit MAC is already folded into the per-MAC rates), so the
    /// default is `1.0` — an *exact* identity on the MAC term, not an
    /// approximation. Raise it only to model a hypothetical SIMD MCU
    /// (e.g. Helium/M55); host-side SIMD levels and worker threads never
    /// feed into this model, so modeled cycles are invariant under every
    /// `--threads` / `MIXQ_FORCE_SCALAR` setting. That invariance extends
    /// to the vectorized requantization epilogue and SIMD sub-byte
    /// pack/unpack (`mixq_kernels::simd::requant`, `mixq_quant::packing`):
    /// those kernels charge the abstract per-element ledger — `requants`,
    /// `threshold_cmps`, `unpacks` — exactly as the scalar reference does,
    /// so the modeled MCU cost never sees how the host computed the codes.
    pub simd_lanes: f64,
}

impl Default for CortexM7CycleModel {
    fn default() -> Self {
        CortexM7CycleModel {
            conv_cycles_per_mac: 2.1,
            gemm_cycles_per_mac: 1.9,
            blocked_gemm_cycles_per_mac: 1.4,
            dw_cycles_per_mac: 7.0,
            fc_cycles_per_mac: 2.0,
            unpack_cycles: 0.8,
            pack_cycles: 1.0,
            pc_offset_cycles: 0.45,
            requant_cycles: 8.0,
            threshold_cmp_cycles: 3.0,
            act_store_cycles: 0.5,
            layer_overhead: 1500,
            simd_lanes: 1.0,
        }
    }
}

/// Per-layer latency contribution (for Figure-2-style breakdowns).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatency {
    /// Layer name.
    pub name: String,
    /// Estimated steady-state cycles per inference.
    pub cycles: u64,
    /// One-time prepack cycles (weight decode + panel build at graph
    /// build, amortized over the deployment's lifetime — **not** part of
    /// `cycles`). Zero for layers that cache nothing and for breakdowns
    /// computed from shape-level specs.
    pub one_time_cycles: u64,
    /// MAC count.
    pub macs: usize,
}

impl fmt::Display for LayerLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles ({} MACs)",
            self.name, self.cycles, self.macs
        )
    }
}

impl CortexM7CycleModel {
    /// Estimated cycles for one layer under the given precisions and
    /// deployment scheme.
    pub fn layer_cycles(
        &self,
        layer: &LayerSpec,
        weight_bits: BitWidth,
        act_in_bits: BitWidth,
        act_out_bits: BitWidth,
        scheme: QuantScheme,
    ) -> u64 {
        let macs = layer.macs() as f64;
        let out_elems = layer.out_act_elements() as f64;
        let per_mac = match layer.kind() {
            LayerKind::Conv => self.conv_cycles_per_mac,
            LayerKind::DepthwiseConv => self.dw_cycles_per_mac,
            LayerKind::Linear => self.fc_cycles_per_mac,
        };
        let mut cycles = macs * per_mac / self.simd_lanes;
        // Sub-byte operand unpacking in the inner loop.
        let mut unpacked_operands = 0.0;
        if weight_bits != BitWidth::W8 {
            unpacked_operands += 1.0;
        }
        if act_in_bits != BitWidth::W8 {
            unpacked_operands += 1.0;
        }
        cycles += macs * self.unpack_cycles * unpacked_operands;
        if act_out_bits != BitWidth::W8 {
            cycles += out_elems * self.pack_cycles;
        }
        // Per-channel Zw subtraction (§6: ≈ 20% end-to-end).
        if scheme.is_per_channel() {
            cycles += macs * self.pc_offset_cycles;
        }
        // Requantization of every output element.
        cycles += match scheme {
            QuantScheme::PerChannelThresholds => {
                out_elems * self.threshold_cmp_cycles * act_out_bits.bits() as f64
            }
            _ => out_elems * self.requant_cycles,
        };
        cycles as u64 + self.layer_overhead
    }

    /// Estimated cycles for a whole network under a bit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment lengths disagree with the spec.
    pub fn network_cycles(
        &self,
        spec: &NetworkSpec,
        assignment: &BitAssignment,
        scheme: QuantScheme,
    ) -> u64 {
        assert_eq!(assignment.weight_bits.len(), spec.num_layers());
        assert_eq!(assignment.act_bits.len(), spec.num_layers() + 1);
        self.layer_breakdown(spec, assignment, scheme)
            .iter()
            .map(|l| l.cycles)
            .sum()
    }

    /// Per-layer latency breakdown.
    pub fn layer_breakdown(
        &self,
        spec: &NetworkSpec,
        assignment: &BitAssignment,
        scheme: QuantScheme,
    ) -> Vec<LayerLatency> {
        spec.layers()
            .iter()
            .enumerate()
            .map(|(i, l)| LayerLatency {
                name: l.name().to_owned(),
                cycles: self.layer_cycles(
                    l,
                    assignment.weight_bits[i],
                    assignment.act_bits[i],
                    assignment.act_bits[i + 1],
                    scheme,
                ),
                one_time_cycles: 0,
                macs: l.macs(),
            })
            .collect()
    }

    /// Cycles of one executed layer from its measured [`OpCounts`] ledger,
    /// priced for the direct reference kernel —
    /// [`CortexM7CycleModel::kernel_cycles`] with
    /// [`KernelChoice::DirectConv`].
    pub fn op_cycles(&self, kind: OpKind, ops: &OpCounts) -> u64 {
        self.kernel_cycles(kind, KernelChoice::DirectConv, ops)
    }

    /// Cycles of one executed layer from its measured [`OpCounts`] ledger
    /// and the kernel implementation the node actually selected.
    ///
    /// Unlike [`CortexM7CycleModel::cycles_from_counts`], the operator
    /// class is known, so the right per-MAC rate applies — and the
    /// [`KernelChoice`] picks between the direct, GEMM and blocked-GEMM
    /// rates for dense convolutions, so a backend's selection and the
    /// latency model always agree. This is the path the `QGraph` executor's
    /// per-layer records feed.
    pub fn kernel_cycles(&self, kind: OpKind, choice: KernelChoice, ops: &OpCounts) -> u64 {
        let per_mac = match (kind, choice) {
            (OpKind::Conv, KernelChoice::Im2colGemm) => self.gemm_cycles_per_mac,
            (OpKind::Conv, KernelChoice::BlockedGemm) => self.blocked_gemm_cycles_per_mac,
            // Residual adds are MAC-free; their cost is the per-element
            // requantization and load/store traffic priced below.
            (OpKind::Conv | OpKind::Pool | OpKind::Add, _) => self.conv_cycles_per_mac,
            (OpKind::DepthwiseConv, _) => self.dw_cycles_per_mac,
            (OpKind::Linear, _) => self.fc_cycles_per_mac,
        };
        (ops.macs as f64 * per_mac / self.simd_lanes
            + ops.unpacks as f64 * self.unpack_cycles
            + ops.offset_subs as f64 * self.pc_offset_cycles
            + ops.requants as f64 * self.requant_cycles
            + ops.threshold_cmps as f64 * self.threshold_cmp_cycles
            + ops.act_stores as f64 * self.act_store_cycles) as u64
            + self.layer_overhead
    }

    /// Per-layer latency breakdown from a `QGraph` execution ledger — the
    /// measured twin of [`CortexM7CycleModel::layer_breakdown`], which
    /// works from shape-level specs instead. Each layer is priced for the
    /// kernel its node actually selected ([`LayerRun::choice`]); the
    /// one-time packing work of the node's prepack cache
    /// ([`LayerRun::prepack`]) is reported separately in
    /// [`LayerLatency::one_time_cycles`], never folded into the
    /// steady-state per-inference cost — prepacking moved that work from
    /// every inference to graph build, and the model reflects exactly
    /// that.
    pub fn breakdown_from_runs(&self, runs: &[LayerRun]) -> Vec<LayerLatency> {
        runs.iter()
            .map(|r| LayerLatency {
                name: r.name.clone(),
                cycles: self.kernel_cycles(r.kind, r.choice, &r.ops),
                one_time_cycles: self.prepack_cycles(&r.prepack),
                macs: r.ops.macs as usize,
            })
            .collect()
    }

    /// Total steady-state cycles of a `QGraph` execution ledger, priced
    /// per selected kernel (one-time packing excluded — see
    /// [`CortexM7CycleModel::one_time_packing_cycles`]).
    pub fn cycles_from_runs(&self, runs: &[LayerRun]) -> u64 {
        runs.iter()
            .map(|r| self.kernel_cycles(r.kind, r.choice, &r.ops))
            .sum()
    }

    /// Cycles of one-time prepack work from its [`OpCounts`] ledger:
    /// sub-byte decodes and panel stores, with no per-layer scheduling
    /// overhead (packing happens once at graph build, outside the
    /// inference loop).
    pub fn prepack_cycles(&self, ops: &OpCounts) -> u64 {
        (ops.unpacks as f64 * self.unpack_cycles + ops.act_stores as f64 * self.act_store_cycles)
            as u64
    }

    /// Total one-time packing cycles of a run's prepack caches — the
    /// build-time cost that PR-4's kernels paid on **every** inference and
    /// the prepacked graph pays once.
    pub fn one_time_packing_cycles(&self, runs: &[LayerRun]) -> u64 {
        runs.iter().map(|r| self.prepack_cycles(&r.prepack)).sum()
    }

    /// Per-sample steady-state cycles of a **batch-N** execution ledger:
    /// each layer's counts are divided back to one sample
    /// ([`OpCounts::per_sample`] — exact, since every kernel is
    /// batch-linear) before pricing, so the result equals
    /// [`CortexM7CycleModel::cycles_from_runs`] of a single-sample run of
    /// the same graph. The difference between `cycles_from_runs(batch_run)`
    /// and `batch × cycles_from_runs_per_sample(batch_run, batch)` is
    /// exactly the `(N−1) × layers × layer_overhead` dispatch saving a
    /// batched walk earns.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn cycles_from_runs_per_sample(&self, runs: &[LayerRun], batch: u64) -> u64 {
        runs.iter()
            .map(|r| self.kernel_cycles(r.kind, r.choice, &r.ops.per_sample(batch)))
            .sum()
    }

    /// Coarse cycle estimate from measured kernel op counts (the
    /// instrumentation path; cannot distinguish depthwise from dense MACs,
    /// so it uses a blended MAC rate).
    pub fn cycles_from_counts(&self, ops: &OpCounts) -> u64 {
        let blended_mac = (self.conv_cycles_per_mac + self.dw_cycles_per_mac) / 3.0;
        (ops.macs as f64 * blended_mac / self.simd_lanes
            + ops.unpacks as f64 * self.unpack_cycles
            + ops.offset_subs as f64 * self.pc_offset_cycles
            + ops.requants as f64 * self.requant_cycles
            + ops.threshold_cmps as f64 * self.threshold_cmp_cycles
            + ops.act_stores as f64 * self.act_store_cycles) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;
    use mixq_core::memory::MemoryBudget;
    use mixq_core::mixed::{assign_bits, MixedPrecisionConfig};
    use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};

    fn model() -> CortexM7CycleModel {
        CortexM7CycleModel::default()
    }

    #[test]
    fn paper_anchor_fastest_model_near_10_fps() {
        // §6: "the fastest inference model (128_0.25 MixQ-PL), which
        // features a homogeneous 8 bit quantization, runs at 10fps".
        let spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
        let bits = BitAssignment::uniform8(&spec);
        let cycles = model().network_cycles(&spec, &bits, QuantScheme::PerLayerFolded);
        let fps = Device::stm32h7().fps(cycles);
        assert!((7.0..14.0).contains(&fps), "expected ≈10 fps, got {fps:.2}");
    }

    #[test]
    fn paper_anchor_most_accurate_model_about_20x_slower() {
        // §6: 224_0.75 PC+ICN is ≈ 20× slower than 128_0.25 MixQ-PL.
        let fast_spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
        let fast = model().network_cycles(
            &fast_spec,
            &BitAssignment::uniform8(&fast_spec),
            QuantScheme::PerLayerFolded,
        );
        let slow_spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_75).build();
        let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerChannelIcn);
        let slow_bits = assign_bits(&slow_spec, &cfg).expect("feasible");
        let slow = model().network_cycles(&slow_spec, &slow_bits, QuantScheme::PerChannelIcn);
        let ratio = slow as f64 / fast as f64;
        assert!(
            (14.0..32.0).contains(&ratio),
            "expected ≈20x, got {ratio:.1}x"
        );
        let fps = Device::stm32h7().fps(slow);
        assert!((0.3..0.8).contains(&fps), "≈0.5 fps, got {fps:.2}");
    }

    #[test]
    fn paper_anchor_pc_overhead_near_20_percent() {
        // §6: "MixQ-PC-ICN quantization introduces a latency overhead of
        // approx. 20% with respect to the MixQ-PL setting".
        let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
        let bits = BitAssignment::uniform8(&spec);
        let pl = model().network_cycles(&spec, &bits, QuantScheme::PerLayerIcn);
        let pc = model().network_cycles(&spec, &bits, QuantScheme::PerChannelIcn);
        let overhead = pc as f64 / pl as f64 - 1.0;
        assert!(
            (0.10..0.30).contains(&overhead),
            "expected ≈20%, got {:.0}%",
            overhead * 100.0
        );
    }

    #[test]
    fn sub_byte_kernels_cost_more_per_mac() {
        let spec = MobileNetConfig::new(Resolution::R160, WidthMultiplier::X0_5).build();
        let w8 = BitAssignment::uniform8(&spec);
        let mut w4 = w8.clone();
        for b in &mut w4.weight_bits {
            *b = BitWidth::W4;
        }
        let m = model();
        let c8 = m.network_cycles(&spec, &w8, QuantScheme::PerChannelIcn);
        let c4 = m.network_cycles(&spec, &w4, QuantScheme::PerChannelIcn);
        assert!(c4 > c8, "unpacking must cost cycles: {c4} vs {c8}");
    }

    #[test]
    fn depthwise_layers_are_less_efficient() {
        let m = model();
        let dense = LayerSpec::conv("pw", 1, 1, 64, 64, 16, 16);
        let dw = LayerSpec::depthwise("dw", 3, 1, 64, 16, 16);
        let cd = m.layer_cycles(
            &dense,
            BitWidth::W8,
            BitWidth::W8,
            BitWidth::W8,
            QuantScheme::PerLayerIcn,
        );
        let cw = m.layer_cycles(
            &dw,
            BitWidth::W8,
            BitWidth::W8,
            BitWidth::W8,
            QuantScheme::PerLayerIcn,
        );
        // Per MAC, depthwise is ~3x worse even though it has fewer MACs.
        let per_mac_dense = cd as f64 / dense.macs() as f64;
        let per_mac_dw = cw as f64 / dw.macs() as f64;
        assert!(per_mac_dw > 2.0 * per_mac_dense);
    }

    #[test]
    fn thresholds_requant_scales_with_bits() {
        let m = model();
        let l = LayerSpec::conv("pw", 1, 1, 32, 32, 8, 8);
        let t4 = m.layer_cycles(
            &l,
            BitWidth::W8,
            BitWidth::W8,
            BitWidth::W4,
            QuantScheme::PerChannelThresholds,
        );
        let t8 = m.layer_cycles(
            &l,
            BitWidth::W8,
            BitWidth::W8,
            BitWidth::W8,
            QuantScheme::PerChannelThresholds,
        );
        assert!(t8 > t4, "more output bits, more comparisons");
    }

    #[test]
    fn breakdown_sums_to_network_total() {
        let spec = MobileNetConfig::new(Resolution::R160, WidthMultiplier::X0_5).build();
        let bits = BitAssignment::uniform8(&spec);
        let m = model();
        let total = m.network_cycles(&spec, &bits, QuantScheme::PerChannelIcn);
        let breakdown = m.layer_breakdown(&spec, &bits, QuantScheme::PerChannelIcn);
        assert_eq!(breakdown.len(), spec.num_layers());
        assert_eq!(breakdown.iter().map(|l| l.cycles).sum::<u64>(), total);
        // Pointwise layers dominate MobileNet latency.
        let pw_cycles: u64 = breakdown
            .iter()
            .filter(|l| l.name.starts_with("pw"))
            .map(|l| l.cycles)
            .sum();
        assert!(pw_cycles * 2 > total, "pointwise majority");
        // Display is informative.
        assert!(breakdown[0].to_string().contains("cycles"));
    }

    #[test]
    fn kernel_choice_prices_dense_convs_only() {
        let m = model();
        let ops = OpCounts {
            macs: 100_000,
            requants: 1000,
            act_stores: 1000,
            ..OpCounts::default()
        };
        let direct = m.kernel_cycles(OpKind::Conv, KernelChoice::DirectConv, &ops);
        let gemm = m.kernel_cycles(OpKind::Conv, KernelChoice::Im2colGemm, &ops);
        let blocked = m.kernel_cycles(OpKind::Conv, KernelChoice::BlockedGemm, &ops);
        assert!(
            blocked < gemm && gemm < direct,
            "per-MAC rates must order blocked < gemm < direct: {blocked} {gemm} {direct}"
        );
        // op_cycles is the DirectConv special case — the pre-backend rate.
        assert_eq!(direct, m.op_cycles(OpKind::Conv, &ops));
        // Non-conv kinds are choice-insensitive (they have one kernel).
        for kind in [
            OpKind::DepthwiseConv,
            OpKind::Pool,
            OpKind::Linear,
            OpKind::Add,
        ] {
            assert_eq!(
                m.kernel_cycles(kind, KernelChoice::DirectConv, &ops),
                m.kernel_cycles(kind, KernelChoice::BlockedGemm, &ops),
            );
        }
    }

    #[test]
    fn prepack_cycles_are_reported_separately_from_steady_state() {
        let m = model();
        let ops = OpCounts {
            macs: 50_000,
            requants: 500,
            act_stores: 500,
            ..OpCounts::default()
        };
        let prepack = OpCounts {
            unpacks: 1152,
            act_stores: 1152,
            ..OpCounts::default()
        };
        let run = LayerRun {
            name: "pw".into(),
            kind: OpKind::Conv,
            choice: KernelChoice::BlockedGemm,
            ops,
            prepack,
            in_bytes: 0,
            out_bytes: 0,
            out_shape: mixq_tensor::Shape::feature_map(1, 1, 1),
        };
        let br = m.breakdown_from_runs(std::slice::from_ref(&run));
        // Steady-state cycles ignore the prepack ledger entirely...
        assert_eq!(
            br[0].cycles,
            m.kernel_cycles(OpKind::Conv, KernelChoice::BlockedGemm, &ops)
        );
        assert_eq!(m.cycles_from_runs(std::slice::from_ref(&run)), br[0].cycles);
        // ...and the one-time work is priced on its own, without the
        // per-layer scheduling overhead.
        assert_eq!(br[0].one_time_cycles, m.prepack_cycles(&prepack));
        assert_eq!(
            m.one_time_packing_cycles(std::slice::from_ref(&run)),
            br[0].one_time_cycles
        );
        assert!(br[0].one_time_cycles > 0);
        assert!(br[0].one_time_cycles < m.layer_overhead);
    }

    #[test]
    fn per_sample_pricing_inverts_batch_linearity() {
        let m = model();
        let single = OpCounts {
            macs: 10_000,
            requants: 100,
            act_stores: 100,
            unpacks: 300,
            ..OpCounts::default()
        };
        let batch = 8u64;
        let batched = (0..batch).map(|_| single).sum::<OpCounts>();
        let run = |ops| LayerRun {
            name: "c".into(),
            kind: OpKind::Conv,
            choice: KernelChoice::DirectConv,
            ops,
            prepack: OpCounts::default(),
            in_bytes: 0,
            out_bytes: 0,
            out_shape: mixq_tensor::Shape::feature_map(1, 1, 1),
        };
        let batched_run = [run(batched)];
        let single_run = [run(single)];
        assert_eq!(
            m.cycles_from_runs_per_sample(&batched_run, batch),
            m.cycles_from_runs(&single_run)
        );
        // The batched walk pays the per-layer overhead once instead of N
        // times: total batched cycles = N× the per-MAC work + 1× overhead.
        assert_eq!(
            m.cycles_from_runs(&batched_run) + (batch - 1) * m.layer_overhead,
            batch * m.cycles_from_runs(&single_run)
        );
    }

    #[test]
    fn counts_based_estimate_is_positive_and_monotone() {
        let m = model();
        let a = OpCounts {
            macs: 1000,
            ..OpCounts::default()
        };
        let b = OpCounts {
            macs: 1000,
            unpacks: 2000,
            offset_subs: 1000,
            ..OpCounts::default()
        };
        assert!(m.cycles_from_counts(&b) > m.cycles_from_counts(&a));
        assert!(m.cycles_from_counts(&a) > 0);
    }
}
