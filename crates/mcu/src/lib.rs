//! # mixq-mcu
//!
//! The microcontroller target model: device descriptions (memory budget +
//! clock) and a Cortex-M7 cycle model that converts the kernel op counts of
//! `mixq-kernels` — or analytic per-layer costs — into latency, standing in
//! for the paper's measurements on a physical STM32H7 at 400 MHz (§6).
//!
//! The model is calibrated so the paper's end-to-end anchors hold (see
//! `DESIGN.md`): a homogeneous 8-bit MobileNetV1 128_0.25 lands near 10 fps,
//! the most accurate 224_0.75 PC+ICN configuration near 0.5 fps (the
//! "20×" of §6), and per-channel `Zw` subtraction costs ≈ 20% extra
//! latency. Absolute cycle counts are modelled, not measured on silicon —
//! the *trends* are what the reproduction validates.
//!
//! # Examples
//!
//! ```
//! use mixq_mcu::{CortexM7CycleModel, Device};
//! use mixq_core::memory::QuantScheme;
//! use mixq_core::mixed::BitAssignment;
//! use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
//!
//! let device = Device::stm32h7();
//! let spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
//! let bits = BitAssignment::uniform8(&spec);
//! let model = CortexM7CycleModel::default();
//! let cycles = model.network_cycles(&spec, &bits, QuantScheme::PerLayerFolded);
//! let fps = device.fps(cycles);
//! assert!(fps > 5.0 && fps < 20.0, "128_0.25 INT8 ≈ 10 fps, got {fps}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycles;
mod device;
mod energy;

pub use cycles::{CortexM7CycleModel, LayerLatency};
pub use device::{Device, FitReport};
pub use energy::EnergyModel;
