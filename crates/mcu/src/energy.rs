//! Energy model for battery-budget reasoning — the paper's motivating
//! constraint ("the target power envelope must be below tens of mWs to
//! guarantee a battery lifetime of years", §1).
//!
//! Energy per inference is active power × latency; duty-cycled deployments
//! then trade inference rate against average power.

use std::fmt;

use crate::Device;

/// A simple active/sleep power model for an MCU.
///
/// Defaults approximate an STM32H7 at 400 MHz (≈ 240 mW active from the
/// datasheet's ~0.6 mW/MHz class) and a deep-sleep floor of 2 µW — model
/// constants, not silicon measurements.
///
/// # Examples
///
/// ```
/// use mixq_mcu::{Device, EnergyModel};
///
/// let device = Device::stm32h7();
/// let energy = EnergyModel::stm32h7();
/// // A 100 ms inference at ~240 mW costs ~24 mJ.
/// let m_j = energy.inference_energy_mj(&device, 40_000_000);
/// assert!((20.0..30.0).contains(&m_j));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Active power while inferring, in milliwatts.
    pub active_mw: f64,
    /// Sleep power between inferences, in milliwatts.
    pub sleep_mw: f64,
}

impl EnergyModel {
    /// STM32H7-class defaults.
    pub const fn stm32h7() -> Self {
        EnergyModel {
            active_mw: 240.0,
            sleep_mw: 0.002,
        }
    }

    /// Energy of one inference, in millijoules.
    pub fn inference_energy_mj(&self, device: &Device, cycles: u64) -> f64 {
        self.active_mw * device.latency_ms(cycles) / 1e3
    }

    /// Average power (mW) when running `rate_hz` inferences per second and
    /// sleeping the rest of the time.
    ///
    /// Returns `None` if the requested rate exceeds what the latency
    /// allows (duty cycle > 1).
    pub fn average_power_mw(&self, device: &Device, cycles: u64, rate_hz: f64) -> Option<f64> {
        let duty = rate_hz * device.latency_ms(cycles) / 1e3;
        if !(0.0..=1.0).contains(&duty) {
            return None;
        }
        Some(self.active_mw * duty + self.sleep_mw * (1.0 - duty))
    }

    /// Battery life in days for a battery of `battery_mwh` milliwatt-hours
    /// at the given inference rate.
    ///
    /// Returns `None` when the rate is unachievable.
    pub fn battery_life_days(
        &self,
        device: &Device,
        cycles: u64,
        rate_hz: f64,
        battery_mwh: f64,
    ) -> Option<f64> {
        let avg = self.average_power_mw(device, cycles, rate_hz)?;
        Some(battery_mwh / avg / 24.0)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::stm32h7()
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "active {:.0} mW / sleep {:.3} mW",
            self.active_mw, self.sleep_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_cycles() {
        let d = Device::stm32h7();
        let e = EnergyModel::stm32h7();
        let one = e.inference_energy_mj(&d, 40_000_000);
        let two = e.inference_energy_mj(&d, 80_000_000);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_interpolates_active_and_sleep() {
        let d = Device::stm32h7();
        let e = EnergyModel::stm32h7();
        // 100 ms inference at 1 Hz → 10% duty cycle.
        let avg = e.average_power_mw(&d, 40_000_000, 1.0).expect("feasible");
        assert!((avg - (0.1 * 240.0 + 0.9 * 0.002)).abs() < 1e-6);
        // Zero rate → sleep floor.
        let idle = e.average_power_mw(&d, 40_000_000, 0.0).expect("feasible");
        assert!((idle - 0.002).abs() < 1e-9);
    }

    #[test]
    fn unachievable_rate_is_none() {
        let d = Device::stm32h7();
        let e = EnergyModel::stm32h7();
        // 100 ms latency cannot run 20 Hz.
        assert!(e.average_power_mw(&d, 40_000_000, 20.0).is_none());
        assert!(e.battery_life_days(&d, 40_000_000, 20.0, 1000.0).is_none());
    }

    #[test]
    fn battery_life_sane_orders_of_magnitude() {
        let d = Device::stm32h7();
        let e = EnergyModel::stm32h7();
        // A CR123-class 4 Wh battery, one inference per minute of the
        // 10 fps-class model: years of lifetime, matching the §1 pitch.
        let days = e
            .battery_life_days(&d, 40_000_000, 1.0 / 60.0, 4000.0)
            .expect("feasible");
        assert!(days > 365.0, "expected years, got {days} days");
    }

    #[test]
    fn display() {
        assert!(EnergyModel::stm32h7().to_string().contains("240"));
    }
}
