use std::error::Error;
use std::fmt;

use mixq_tensor::Shape;

/// Errors produced by the mixed-precision assignment and the integer-only
/// conversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MixQError {
    /// Algorithm 1 cannot satisfy the read-write budget even at the minimum
    /// activation precision.
    InfeasibleActivations {
        /// Index of the first violating schedule step (one step per conv
        /// layer, plus residual-add, pool and classifier steps).
        layer: usize,
        /// The violating live-set footprint in bytes at the point of
        /// failure (input+output pair on a chain; on a residual graph the
        /// pending skip tensor is included).
        pair_bytes: usize,
        /// The read-write budget in bytes.
        budget: usize,
    },
    /// Algorithm 2 cannot satisfy the read-only budget even at the minimum
    /// weight precision.
    InfeasibleWeights {
        /// Total read-only footprint at minimum precision.
        total_bytes: usize,
        /// The read-only budget in bytes.
        budget: usize,
    },
    /// The network's input quantizer has not been calibrated
    /// ([`mixq_nn::qat::QatNetwork::calibrate_input`] was never called).
    NotCalibrated,
    /// The requested conversion needs fake-quantized activations, but the
    /// network is still in float mode.
    NotFakeQuantized,
    /// A request tensor's per-item shape disagrees with the network's
    /// input declaration. Raised by the `try_*` inference APIs (and the
    /// serving layer built on them) instead of the panic the trusted
    /// internal paths keep — a serving boundary must not trust callers.
    InputShapeMismatch {
        /// The single-item input shape the network was converted with.
        expected: Shape,
        /// The per-item shape of the offending request (its batch
        /// dimension preserved, so oversized batches are visible too).
        got: Shape,
    },
    /// A request tensor's backing buffer length disagrees with its own
    /// declared shape — a malformed request that never describes a valid
    /// image. (Unreachable through the safe [`mixq_tensor::Tensor`]
    /// constructors; checked anyway so the serving boundary holds even if
    /// a caller assembles tensors through future unchecked paths.)
    InputLengthMismatch {
        /// `shape.volume()` of the request.
        expected: usize,
        /// Actual element count of the backing buffer.
        got: usize,
    },
    /// A batched request carried zero items.
    EmptyBatch,
    /// The static verifier (`mixq-verify`) could not prove the deployed
    /// graph safe — an overflow interval, schedule alias, requant gate or
    /// join inconsistency survives. Deployment is refused rather than
    /// shipping a graph whose kernels may be silently wrong on-device.
    VerificationFailed {
        /// Report label (model / backend).
        graph: String,
        /// Number of unproven facts.
        violations: usize,
        /// The first violation's diagnostic, verbatim.
        first: String,
    },
}

impl fmt::Display for MixQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixQError::InfeasibleActivations {
                layer,
                pair_bytes,
                budget,
            } => write!(
                f,
                "live activation set at step/layer {layer} needs {pair_bytes} B, exceeding the {budget} B read-write budget at minimum precision"
            ),
            MixQError::InfeasibleWeights {
                total_bytes,
                budget,
            } => write!(
                f,
                "weights need {total_bytes} B, exceeding the {budget} B read-only budget at minimum precision"
            ),
            MixQError::NotCalibrated => {
                write!(f, "input quantizer not calibrated; call calibrate_input first")
            }
            MixQError::NotFakeQuantized => {
                write!(f, "network is in float mode; enable fake quantization first")
            }
            MixQError::InputShapeMismatch { expected, got } => write!(
                f,
                "request item shape {got:?} does not match the network input {expected:?}"
            ),
            MixQError::InputLengthMismatch { expected, got } => write!(
                f,
                "request buffer holds {got} elements but its shape declares {expected}"
            ),
            MixQError::EmptyBatch => write!(f, "request batch holds zero items"),
            MixQError::VerificationFailed {
                graph,
                violations,
                first,
            } => write!(
                f,
                "static verification of `{graph}` failed with {violations} violation(s); first: {first}"
            ),
        }
    }
}

impl Error for MixQError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = MixQError::InfeasibleActivations {
            layer: 3,
            pair_bytes: 1000,
            budget: 512,
        };
        let s = e.to_string();
        assert!(s.contains("layer 3") && s.contains("1000") && s.contains("512"));
        assert!(MixQError::NotCalibrated.to_string().contains("calibrate"));
        assert!(MixQError::NotFakeQuantized
            .to_string()
            .contains("float mode"));
        let w = MixQError::InfeasibleWeights {
            total_bytes: 9,
            budget: 4,
        };
        assert!(w.to_string().contains("read-only"));
        let s = MixQError::InputShapeMismatch {
            expected: Shape::feature_map(8, 8, 1),
            got: Shape::new(2, 4, 4, 1),
        };
        assert!(s.to_string().contains("does not match"));
        let l = MixQError::InputLengthMismatch {
            expected: 64,
            got: 63,
        };
        assert!(l.to_string().contains("63") && l.to_string().contains("64"));
        assert!(MixQError::EmptyBatch.to_string().contains("zero items"));
    }
}
