use std::error::Error;
use std::fmt;

/// Errors produced by the mixed-precision assignment and the integer-only
/// conversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MixQError {
    /// Algorithm 1 cannot satisfy the read-write budget even at the minimum
    /// activation precision.
    InfeasibleActivations {
        /// Index of the first violating schedule step (one step per conv
        /// layer, plus residual-add, pool and classifier steps).
        layer: usize,
        /// The violating live-set footprint in bytes at the point of
        /// failure (input+output pair on a chain; on a residual graph the
        /// pending skip tensor is included).
        pair_bytes: usize,
        /// The read-write budget in bytes.
        budget: usize,
    },
    /// Algorithm 2 cannot satisfy the read-only budget even at the minimum
    /// weight precision.
    InfeasibleWeights {
        /// Total read-only footprint at minimum precision.
        total_bytes: usize,
        /// The read-only budget in bytes.
        budget: usize,
    },
    /// The network's input quantizer has not been calibrated
    /// ([`mixq_nn::qat::QatNetwork::calibrate_input`] was never called).
    NotCalibrated,
    /// The requested conversion needs fake-quantized activations, but the
    /// network is still in float mode.
    NotFakeQuantized,
    /// The static verifier (`mixq-verify`) could not prove the deployed
    /// graph safe — an overflow interval, schedule alias, requant gate or
    /// join inconsistency survives. Deployment is refused rather than
    /// shipping a graph whose kernels may be silently wrong on-device.
    VerificationFailed {
        /// Report label (model / backend).
        graph: String,
        /// Number of unproven facts.
        violations: usize,
        /// The first violation's diagnostic, verbatim.
        first: String,
    },
}

impl fmt::Display for MixQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixQError::InfeasibleActivations {
                layer,
                pair_bytes,
                budget,
            } => write!(
                f,
                "live activation set at step/layer {layer} needs {pair_bytes} B, exceeding the {budget} B read-write budget at minimum precision"
            ),
            MixQError::InfeasibleWeights {
                total_bytes,
                budget,
            } => write!(
                f,
                "weights need {total_bytes} B, exceeding the {budget} B read-only budget at minimum precision"
            ),
            MixQError::NotCalibrated => {
                write!(f, "input quantizer not calibrated; call calibrate_input first")
            }
            MixQError::NotFakeQuantized => {
                write!(f, "network is in float mode; enable fake quantization first")
            }
            MixQError::VerificationFailed {
                graph,
                violations,
                first,
            } => write!(
                f,
                "static verification of `{graph}` failed with {violations} violation(s); first: {first}"
            ),
        }
    }
}

impl Error for MixQError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = MixQError::InfeasibleActivations {
            layer: 3,
            pair_bytes: 1000,
            budget: 512,
        };
        let s = e.to_string();
        assert!(s.contains("layer 3") && s.contains("1000") && s.contains("512"));
        assert!(MixQError::NotCalibrated.to_string().contains("calibrate"));
        assert!(MixQError::NotFakeQuantized
            .to_string()
            .contains("float mode"));
        let w = MixQError::InfeasibleWeights {
            total_bytes: 9,
            budget: 4,
        };
        assert!(w.to_string().contains("read-only"));
    }
}
