//! Memory-driven mixed-precision bit assignment (paper §5), generalized
//! from the layer chain to the residual DAG the executor runs.
//!
//! Algorithm 1 cuts *activation* precisions until every schedule step's
//! live set fits the read-write budget (Eq. 7), sweeping the schedule
//! forward (cutting step outputs) and backward (cutting step inputs) —
//! on a chain the live set is the classic input+output pair; on a residual
//! graph it also holds the pending skip tensor, which keeps its precision
//! alive across the whole branch and is cut through the residual-add step
//! that consumes it. Algorithm 2 cuts *weight* precisions until packed
//! weights plus static parameters fit the read-only budget (Eq. 6),
//! repeatedly cutting the earliest layer whose footprint share is within
//! `δ` of the maximum — the heuristic that "favorites the cut of central
//! layers with respect to the last layers".
//!
//! ## Tie-break note (documented deviation)
//!
//! The paper's literal `CutBits` rule cuts tensor `x2` only when it is
//! *strictly* larger than `x1` at equal precision. On depthwise layers the
//! two tensors have identical footprints, so a violating pair can deadlock.
//! The default [`TieBreak::CutProducer`] also cuts on *equal* footprints
//! (preferring the layer's output); this reproduces the paper's reported
//! assignments (e.g. `Q1y, Q2y, Q5y = 4` for 192_0.5 at 256 kB RAM, §6).
//! [`TieBreak::Strict`] keeps the literal rule and surfaces the deadlock as
//! an [`MixQError::InfeasibleActivations`] — see the
//! `ablation_mixed_precision` bench.

use std::fmt;

use mixq_models::{GraphSpec, NetworkSpec, TensorSource};
use mixq_quant::BitWidth;

use crate::memory::{
    layer_flash_footprint, network_flash_footprint_with_acts, peak_live_bytes,
    spec_step_live_bytes, spec_tensor_bits, spec_tensor_bytes, weight_bytes, MemoryBudget,
    QuantScheme, RESIDUAL_ADD_PARAM_BYTES,
};
use crate::MixQError;

/// Tie-break rule for Algorithm 1's `CutBits` at equal precision and equal
/// footprint (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Cut when the candidate's footprint is `≥` the other tensor's
    /// (default; reproduces the paper's reported assignments).
    #[default]
    CutProducer,
    /// The paper's literal `>` rule (can deadlock on depthwise layers).
    Strict,
}

/// Configuration for the bit assignment.
///
/// # Examples
///
/// ```
/// use mixq_core::memory::{MemoryBudget, QuantScheme};
/// use mixq_core::mixed::MixedPrecisionConfig;
/// use mixq_quant::BitWidth;
///
/// let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerChannelIcn)
///     .with_delta(0.1)
///     .with_min_bits(BitWidth::W4, BitWidth::W2);
/// assert_eq!(cfg.qa_min, BitWidth::W4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPrecisionConfig {
    /// Device memory budget.
    pub budget: MemoryBudget,
    /// Deployment scheme (affects the static-parameter overhead `MT_A`).
    pub scheme: QuantScheme,
    /// Minimum activation precision `Q_a,min`.
    pub qa_min: BitWidth,
    /// Minimum weight precision `Q_w,min`.
    pub qw_min: BitWidth,
    /// Score margin `δ` of Algorithm 2.
    pub delta: f64,
    /// Tie-break rule of Algorithm 1.
    pub tie_break: TieBreak,
}

impl MixedPrecisionConfig {
    /// Creates a configuration with the paper's defaults
    /// (`Q_min = 2` for both, `δ = 0.05`, producer-biased tie-break).
    pub fn new(budget: MemoryBudget, scheme: QuantScheme) -> Self {
        MixedPrecisionConfig {
            budget,
            scheme,
            qa_min: BitWidth::W2,
            qw_min: BitWidth::W2,
            delta: 0.05,
            tie_break: TieBreak::CutProducer,
        }
    }

    /// Overrides the minimum precisions `(Q_a,min, Q_w,min)`.
    pub fn with_min_bits(mut self, qa_min: BitWidth, qw_min: BitWidth) -> Self {
        self.qa_min = qa_min;
        self.qw_min = qw_min;
        self
    }

    /// Overrides the Algorithm-2 margin `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ δ ≤ 1`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "δ must be a fraction");
        self.delta = delta;
        self
    }

    /// Overrides the tie-break rule.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }
}

/// A complete per-tensor precision assignment.
///
/// `act_bits[i]` is the precision of activation tensor `i` (tensor 0 is the
/// network input, tensor `i+1` is layer `i`'s output, so layer `i` reads
/// `act_bits[i]` and writes `act_bits[i+1]`); `weight_bits[i]` is layer
/// `i`'s weight precision; `res_bits[s]` is the precision of residual skip
/// `s`'s add-output tensor (empty on chain networks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitAssignment {
    /// Activation precisions (`spec.num_layers() + 1` entries).
    pub act_bits: Vec<BitWidth>,
    /// Weight precisions (`spec.num_layers()` entries).
    pub weight_bits: Vec<BitWidth>,
    /// Residual-add output precisions (`spec.num_skips()` entries).
    pub res_bits: Vec<BitWidth>,
}

impl BitAssignment {
    /// The homogeneous 8-bit starting point.
    pub fn uniform8(spec: &NetworkSpec) -> Self {
        BitAssignment {
            act_bits: vec![BitWidth::W8; spec.num_layers() + 1],
            weight_bits: vec![BitWidth::W8; spec.num_layers()],
            res_bits: vec![BitWidth::W8; spec.num_skips()],
        }
    }

    /// Whether any tensor was cut below 8 bits.
    pub fn has_cuts(&self) -> bool {
        self.act_bits.iter().any(|&b| b != BitWidth::W8)
            || self.weight_bits.iter().any(|&b| b != BitWidth::W8)
            || self.res_bits.iter().any(|&b| b != BitWidth::W8)
    }

    /// Total flash footprint under `scheme` (Eq. 6 LHS).
    pub fn flash_bytes(&self, spec: &NetworkSpec, scheme: QuantScheme) -> usize {
        network_flash_footprint_with_acts(spec, scheme, &self.weight_bits, &self.act_bits)
    }

    /// Peak RAM footprint (Eq. 7 over the liveness schedule — matches the
    /// executor's `QGraph::peak_ram_bytes` of the lowered network).
    pub fn peak_rw_bytes(&self, spec: &NetworkSpec) -> usize {
        peak_live_bytes(spec, &self.act_bits, &self.res_bits)
    }

    /// Whether both memory constraints hold (the shared
    /// [`MemoryBudget::fits`] predicate).
    pub fn satisfies(&self, spec: &NetworkSpec, cfg: &MixedPrecisionConfig) -> bool {
        cfg.budget
            .fits(self.flash_bytes(spec, cfg.scheme), self.peak_rw_bytes(spec))
    }
}

impl fmt::Display for BitAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w[")?;
        for b in &self.weight_bits {
            write!(f, "{}", b.bits())?;
        }
        write!(f, "] a[")?;
        for b in &self.act_bits {
            write!(f, "{}", b.bits())?;
        }
        write!(f, "]")?;
        if !self.res_bits.is_empty() {
            write!(f, " r[")?;
            for b in &self.res_bits {
                write!(f, "{}", b.bits())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// The cuttable precision entry behind a schedule tensor: an interior
/// activation (`act_bits[i + 1]`), a residual-add output (`res_bits[s]`),
/// or — for a pool output — the entry of the tensor it aliases. The
/// network input and the logits are never cut, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CutEntry {
    Act(usize),
    Res(usize),
}

/// Mutable per-tensor precision state of Algorithm 1 over a [`GraphSpec`].
struct LiveCutter<'a> {
    graph: &'a GraphSpec,
    act: Vec<BitWidth>,
    res: Vec<BitWidth>,
    qa_min: BitWidth,
    tie: TieBreak,
}

impl LiveCutter<'_> {
    /// RAM bytes of tensor `t` — the same pricing rule the peak model
    /// uses, so cut decisions and the Eq. 7 verdict cannot diverge.
    fn bytes(&self, t: usize) -> usize {
        spec_tensor_bytes(self.graph, &self.act, &self.res, t)
    }

    /// Precision of tensor `t` for `CutBits` comparisons (logits compare
    /// as 8-bit, as the chain algorithm treated the classifier output).
    fn bits(&self, t: usize) -> BitWidth {
        spec_tensor_bits(self.graph, &self.act, &self.res, t).unwrap_or(BitWidth::W8)
    }

    /// Live bytes while step `i` executes (Eq. 7 LHS).
    fn live_bytes(&self, i: usize) -> usize {
        spec_step_live_bytes(self.graph, &self.act, &self.res, i)
    }

    /// The precision entry behind tensor `t`, if it may be cut at all.
    fn entry_of(&self, t: usize) -> Option<CutEntry> {
        match self.graph.tensors()[t].source {
            TensorSource::Input | TensorSource::Logits => None,
            TensorSource::Layer(i) => Some(CutEntry::Act(i + 1)),
            TensorSource::Residual(s) => Some(CutEntry::Res(s)),
            TensorSource::Pool { of } => self.entry_of(of),
        }
    }

    /// Whether tensor `t` can still be cut (has an entry above `Q_a,min`).
    fn cuttable(&self, t: usize) -> bool {
        self.entry_of(t).is_some() && self.bits(t) > self.qa_min
    }

    /// Steps down tensor `t`'s precision entry.
    fn cut(&mut self, t: usize) {
        let stepped = self.bits(t).step_down().expect("cuttable tensor");
        match self.entry_of(t).expect("cuttable tensor") {
            CutEntry::Act(i) => self.act[i] = stepped,
            CutEntry::Res(s) => self.res[s] = stepped,
        }
    }

    /// `CutBits` generalized to a live set: tensor `cand` is cut only when
    /// no other tensor in the comparison set dominates it — where `other`
    /// dominates `cand` iff it has higher precision, or equal precision and
    /// (strictly, under [`TieBreak::CutProducer`]; weakly, under
    /// [`TieBreak::Strict`]) larger footprint. On a chain the set is the
    /// step's pair and this is exactly the paper's rule.
    fn undominated(&self, cand: usize, others: impl Iterator<Item = usize>) -> bool {
        let (qc, mc) = (self.bits(cand), self.bytes(cand));
        for o in others {
            if o == cand {
                continue;
            }
            let (qo, mo) = (self.bits(o), self.bytes(o));
            let dominates = qo > qc
                || (qo == qc
                    && match self.tie {
                        TieBreak::CutProducer => mo > mc,
                        TieBreak::Strict => mo >= mc,
                    });
            if dominates {
                return false;
            }
        }
        true
    }

    /// Comparison set of step `i`: its live tensors plus its output.
    fn step_set(&self, i: usize) -> Vec<usize> {
        let mut set: Vec<usize> = self.graph.live_at(i).collect();
        set.push(self.graph.steps()[i].output);
        set
    }

    /// Cut-candidate priority: widest precision first, then largest
    /// footprint, then latest-produced tensor (the producer bias) — the
    /// single ordering both the backward pass and the relief cut use.
    fn cut_priority(&self, t: usize) -> impl Ord {
        (
            std::cmp::Reverse(self.bits(t)),
            std::cmp::Reverse(self.bytes(t)),
            std::cmp::Reverse(t),
        )
    }

    /// Tries to cut tensor `cand` against the rest of step `i`'s live set.
    fn try_cut(&mut self, i: usize, cand: usize) -> bool {
        if !self.cuttable(cand) {
            return false;
        }
        let set = self.step_set(i);
        if self.undominated(cand, set.into_iter()) {
            self.cut(cand);
            true
        } else {
            false
        }
    }
}

/// Algorithm 1 over the DAG schedule: cut activation bits until every
/// step's live set fits `M_RW`.
///
/// Sweeps the schedule forward (cutting each violating step's *output*)
/// and backward (cutting each violating step's *inputs* — for a
/// residual-add step that includes the pending skip tensor, whose extended
/// live range is priced at every step it spans). If a full sweep stalls
/// while a violation remains, one relief cut is applied to the largest
/// undominated live tensor of the first violating step (on a chain both
/// passes already cover the live pair, so this fires only on residual
/// graphs). Returns the activation and residual-tensor precisions; the
/// network input and the final logits stay at 8 bits, as in the paper.
///
/// # Errors
///
/// [`MixQError::InfeasibleActivations`] if no cut can relieve a violating
/// step's live set.
pub fn cut_activation_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
) -> Result<(Vec<BitWidth>, Vec<BitWidth>), MixQError> {
    let graph = spec.graph();
    let rw = cfg.budget.rw_bytes;
    let mut state = LiveCutter {
        graph: &graph,
        act: vec![BitWidth::W8; spec.num_layers() + 1],
        res: vec![BitWidth::W8; spec.num_skips()],
        qa_min: cfg.qa_min,
        tie: cfg.tie_break,
    };
    let n = graph.steps().len();
    loop {
        if (0..n).all(|i| state.live_bytes(i) <= rw) {
            return Ok((state.act, state.res));
        }
        let mut progressed = false;
        // Forward pass: cut step outputs Q_y (never the logits; a pool
        // output aliases its source tensor and is handled as an input).
        for i in 0..n {
            let out = graph.steps()[i].output;
            while state.live_bytes(i) > rw && state.try_cut(i, out) {
                progressed = true;
            }
        }
        // Backward pass: cut step inputs Q_x (never the network input).
        // Residual-add steps offer both branches, widest-then-largest
        // first — this is where a pending skip tensor gets cut.
        for i in (0..n).rev() {
            while state.live_bytes(i) > rw {
                let mut inputs = graph.steps()[i].inputs.clone();
                inputs.sort_by_key(|&t| state.cut_priority(t));
                if inputs.into_iter().any(|t| state.try_cut(i, t)) {
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if !progressed {
            // Relief: a violating step whose input/output candidates are
            // exhausted may still hold a cuttable *pending* tensor (a skip
            // branch passing through). Cut the largest undominated one.
            let step = (0..n)
                .find(|&i| state.live_bytes(i) > rw)
                .expect("a violation exists when no progress is made");
            let mut live = state.step_set(step);
            live.sort_by_key(|&t| state.cut_priority(t));
            if !live.into_iter().any(|t| state.try_cut(step, t)) {
                return Err(MixQError::InfeasibleActivations {
                    layer: step,
                    pair_bytes: state.live_bytes(step),
                    budget: rw,
                });
            }
        }
    }
}

/// Algorithm 2: cut weight bits until weights + static parameters fit
/// `M_RO`, given the activation assignment (threshold tables scale with the
/// output activation precision).
///
/// # Errors
///
/// [`MixQError::InfeasibleWeights`] if the budget cannot be met even with
/// every layer at `Q_w,min`.
///
/// # Panics
///
/// Panics if `act_bits.len() != spec.num_layers() + 1`.
pub fn cut_weight_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
    act_bits: &[BitWidth],
) -> Result<Vec<BitWidth>, MixQError> {
    let layers = spec.layers();
    assert_eq!(act_bits.len(), layers.len() + 1, "activation count");
    // Weight cuts cannot shrink the residual-add parameter blocks, but
    // Eq. 6 must still price them — otherwise a budget in that band would
    // approve an assignment that fails its own `satisfies` check.
    let add_params = spec.num_skips() * RESIDUAL_ADD_PARAM_BYTES;
    let mut w = vec![BitWidth::W8; layers.len()];
    loop {
        let total: usize = layers
            .iter()
            .enumerate()
            .map(|(i, l)| layer_flash_footprint(l, cfg.scheme, w[i], act_bits[i + 1]))
            .sum::<usize>()
            + add_params;
        if total <= cfg.budget.ro_bytes {
            return Ok(w);
        }
        // Scores over layers still above the minimum precision.
        let weights_total: usize = layers
            .iter()
            .enumerate()
            .map(|(i, l)| weight_bytes(l, w[i]))
            .sum();
        let eligible: Vec<(usize, f64)> = layers
            .iter()
            .enumerate()
            .filter(|(i, _)| w[*i] > cfg.qw_min)
            .map(|(i, l)| {
                (
                    i,
                    weight_bytes(l, w[i]) as f64 / weights_total.max(1) as f64,
                )
            })
            .collect();
        let Some(&(_, r_max)) = eligible.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
            return Err(MixQError::InfeasibleWeights {
                total_bytes: total,
                budget: cfg.budget.ro_bytes,
            });
        };
        // The paper writes `r_i > (R − δ)`; with δ = 0 that would exclude
        // even the maximum itself, so the inclusive form is used.
        let k = eligible
            .iter()
            .filter(|&&(_, r)| r >= r_max - cfg.delta)
            .map(|&(i, _)| i)
            .min()
            .expect("at least the max layer qualifies");
        w[k] = w[k].step_down().expect("eligible layers are above minimum");
    }
}

/// Runs Algorithm 1 then Algorithm 2 (the §5 procedure).
///
/// # Errors
///
/// Propagates infeasibility from either algorithm.
pub fn assign_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
) -> Result<BitAssignment, MixQError> {
    let (act_bits, res_bits) = cut_activation_bits(spec, cfg)?;
    let weight_bits = cut_weight_bits(spec, cfg, &act_bits)?;
    Ok(BitAssignment {
        act_bits,
        weight_bits,
        res_bits,
    })
}

/// Flash footprint of the paper's *MixQ-PL* deployment: per-layer
/// quantization using batch-norm folding where a layer stayed at 8 bits and
/// ICN where the memory-driven procedure cut it below 8
/// ("MixQ-PL indicates per-layer quantization with either the folding of
/// batch-norm parameters or ICN for layers with Q_y < 8 or Q_w < 8", §6).
pub fn hybrid_pl_flash_bytes(spec: &NetworkSpec, assignment: &BitAssignment) -> usize {
    spec.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let wq = assignment.weight_bits[i];
            let aq = assignment.act_bits[i + 1];
            let scheme = if wq == BitWidth::W8 && aq == BitWidth::W8 {
                QuantScheme::PerLayerFolded
            } else {
                QuantScheme::PerLayerIcn
            };
            layer_flash_footprint(l, scheme, wq, aq)
        })
        .sum::<usize>()
        + spec.num_skips() * crate::memory::RESIDUAL_ADD_PARAM_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
    use mixq_models::LayerSpec;
    use mixq_tensor::Shape;

    fn mobilenet(r: Resolution, w: WidthMultiplier) -> NetworkSpec {
        MobileNetConfig::new(r, w).build()
    }

    fn stm32h7_cfg(scheme: QuantScheme) -> MixedPrecisionConfig {
        MixedPrecisionConfig::new(MemoryBudget::stm32h7(), scheme)
    }

    #[test]
    fn small_models_need_no_cuts_at_stm32h7() {
        // §6: "Mobilenet models with width multipliers of 0.25 and 0.5,
        // with the exception of 224_0.5, features no cuts of bit precision."
        for r in Resolution::ALL {
            for w in [WidthMultiplier::X0_25, WidthMultiplier::X0_5] {
                let spec = mobilenet(r, w);
                let cfg = stm32h7_cfg(QuantScheme::PerChannelIcn);
                let a = assign_bits(&spec, &cfg).expect("feasible");
                let label = format!("{r}_{w}");
                if r == Resolution::R224 && w == WidthMultiplier::X0_5 {
                    assert!(a.has_cuts(), "{label} must have cuts");
                } else {
                    assert!(!a.has_cuts(), "{label} must have no cuts: {a}");
                }
            }
        }
    }

    #[test]
    fn cut_224_05_lands_on_pw1_output() {
        // The only violating pair at 8 bits is pw1 (x: 112·112·16,
        // y: 112·112·32 = 602112 B total); the forward pass cuts the output.
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X0_5);
        let cfg = stm32h7_cfg(QuantScheme::PerLayerIcn);
        let (act, res) = cut_activation_bits(&spec, &cfg).expect("feasible");
        assert!(res.is_empty(), "chain spec has no residual tensors");
        for (i, &b) in act.iter().enumerate() {
            if i == 3 {
                assert_eq!(b, BitWidth::W4, "pw1 output cut to 4 bits");
            } else {
                assert_eq!(b, BitWidth::W8, "tensor {i} untouched");
            }
        }
    }

    #[test]
    fn paper_anchor_192_05_at_1mb_256kb() {
        // Table 3 row 2 / §6 text: 192_0.5 under 1 MB RO + 256 kB RW gets
        // activation cuts Q1y, Q2y, Q5y = 4 and 4-bit weights on the last
        // pointwise (pw13) and the classifier.
        let spec = mobilenet(Resolution::R192, WidthMultiplier::X0_5);
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::one_megabyte_small_ram(),
            QuantScheme::PerChannelIcn,
        );
        let a = assign_bits(&spec, &cfg).expect("feasible");
        // Activation tensors: index i+1 is layer i's output. Q1y = output
        // of layer 1 (dw1) = act[2]; Q2y = act[3]; Q5y = act[6].
        let cut_tensors: Vec<usize> = a
            .act_bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != BitWidth::W8)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cut_tensors, vec![2, 3, 6], "Q1y, Q2y, Q5y cut: {a}");
        assert!(a.act_bits[2] == BitWidth::W4);
        // Weight cuts: exactly pw13 and fc.
        let cut_weights: Vec<&str> = spec
            .layers()
            .iter()
            .zip(&a.weight_bits)
            .filter(|(_, &b)| b != BitWidth::W8)
            .map(|(l, _)| l.name())
            .collect();
        assert_eq!(cut_weights, vec!["pw13", "fc"]);
        assert_eq!(a.weight_bits[spec.num_layers() - 1], BitWidth::W4);
        assert!(a.satisfies(&spec, &cfg));
    }

    #[test]
    fn width_10_models_fit_after_aggressive_cuts() {
        for r in Resolution::ALL {
            let spec = mobilenet(r, WidthMultiplier::X1_0);
            let cfg = stm32h7_cfg(QuantScheme::PerChannelIcn);
            let a = assign_bits(&spec, &cfg).expect("feasible");
            assert!(a.has_cuts());
            assert!(a.satisfies(&spec, &cfg), "{r}_1.0 violates budget");
            // 4.2M weights into ≤2 MiB means many sub-byte layers.
            let sub_byte = a.weight_bits.iter().filter(|&&b| b < BitWidth::W8).count();
            assert!(sub_byte > 5, "{r}_1.0 cut only {sub_byte} layers");
        }
    }

    #[test]
    fn all_16_models_feasible_on_stm32h7() {
        // Folded and ICN schemes: every model fits after cuts. The
        // thresholds scheme is excluded — at 8-bit activations its tables
        // cost 2·(2^8−1) B per channel, which alone exceeds 2 MiB for most
        // widths (the exponential blow-up of Table 1).
        for cfg_m in MobileNetConfig::all() {
            let spec = cfg_m.build();
            for scheme in [
                QuantScheme::PerLayerFolded,
                QuantScheme::PerLayerIcn,
                QuantScheme::PerChannelIcn,
            ] {
                let cfg = stm32h7_cfg(scheme);
                let a = assign_bits(&spec, &cfg)
                    .unwrap_or_else(|e| panic!("{} {scheme}: {e}", cfg_m.label()));
                assert!(a.satisfies(&spec, &cfg), "{} {scheme}", cfg_m.label());
            }
        }
    }

    #[test]
    fn thresholds_tables_blow_the_budget_at_8_bit_activations() {
        // 128_0.5 fits easily under ICN but is infeasible under thresholds
        // because weight cuts cannot shrink the cO·(2^Q−1)·i16 tables.
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_5);
        let icn = stm32h7_cfg(QuantScheme::PerChannelIcn);
        assert!(assign_bits(&spec, &icn).is_ok());
        let thr = stm32h7_cfg(QuantScheme::PerChannelThresholds);
        assert!(matches!(
            assign_bits(&spec, &thr),
            Err(MixQError::InfeasibleWeights { .. })
        ));
    }

    #[test]
    fn strict_tie_break_deadlocks_on_depthwise() {
        // A single depthwise layer with equal input/output footprints that
        // violates the budget: the literal rule cannot cut either side.
        let spec = NetworkSpec::new(
            "dw-only",
            Shape::feature_map(16, 16, 8),
            vec![
                LayerSpec::conv("c0", 1, 1, 8, 8, 16, 16),
                LayerSpec::depthwise("dw", 3, 1, 8, 16, 16),
                LayerSpec::linear("fc", 8, 2),
            ],
        );
        let budget = MemoryBudget::new(usize::MAX, 3500); // pair = 4096 at 8 bit
        let strict = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn)
            .with_tie_break(TieBreak::Strict);
        let err = cut_activation_bits(&spec, &strict).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleActivations { .. }));
        // The producer-biased default resolves it.
        let default = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
        let (act, _) = cut_activation_bits(&spec, &default).expect("feasible");
        assert!(act.iter().any(|&b| b < BitWidth::W8));
    }

    #[test]
    fn infeasible_weights_error() {
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X1_0);
        // 4.2M weights can never fit 100 kB even at 2 bits.
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(100 * 1024, 512 * 1024),
            QuantScheme::PerChannelIcn,
        );
        let err = assign_bits(&spec, &cfg).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleWeights { .. }));
    }

    #[test]
    fn infeasible_activations_error() {
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X1_0);
        // conv0's input alone (224·224·3 at fixed 8 bits) exceeds 64 kB.
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(2 << 20, 64 * 1024),
            QuantScheme::PerChannelIcn,
        );
        let err = assign_bits(&spec, &cfg).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleActivations { .. }));
    }

    #[test]
    fn weight_cut_order_prefers_earliest_within_margin() {
        // Two equal-size heavy layers: the earlier one is cut first.
        let spec = NetworkSpec::new(
            "twins",
            Shape::feature_map(8, 8, 64),
            vec![
                LayerSpec::conv("a", 3, 1, 64, 64, 8, 8),
                LayerSpec::conv("b", 3, 1, 64, 64, 8, 8),
                LayerSpec::linear("fc", 64, 2),
            ],
        );
        let w_a = weight_bytes(&spec.layers()[0], BitWidth::W8);
        // Budget forcing exactly one cut beyond static params.
        let overhead: usize = spec
            .layers()
            .iter()
            .map(|l| crate::memory::static_param_bytes(l, QuantScheme::PerLayerIcn, BitWidth::W8))
            .sum();
        let total8: usize = spec
            .layers()
            .iter()
            .map(|l| weight_bytes(l, BitWidth::W8))
            .sum();
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(total8 + overhead - w_a / 4, usize::MAX),
            QuantScheme::PerLayerIcn,
        );
        let w = cut_weight_bits(&spec, &cfg, &[BitWidth::W8; 4]).expect("feasible");
        assert_eq!(w[0], BitWidth::W4, "earliest twin cut first");
        assert_eq!(w[1], BitWidth::W8);
    }

    #[test]
    fn assignment_display_and_uniform() {
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_25);
        let a = BitAssignment::uniform8(&spec);
        assert!(!a.has_cuts());
        let s = a.to_string();
        assert!(s.starts_with("w[8"));
        assert_eq!(a.act_bits.len(), spec.num_layers() + 1);
    }

    #[test]
    fn hybrid_pl_is_cheaper_than_pure_icn_when_uncut() {
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_25);
        let a = BitAssignment::uniform8(&spec);
        let hybrid = hybrid_pl_flash_bytes(&spec, &a);
        let icn = a.flash_bytes(&spec, QuantScheme::PerLayerIcn);
        let folded = a.flash_bytes(&spec, QuantScheme::PerLayerFolded);
        assert_eq!(hybrid, folded, "uncut hybrid = pure FB");
        assert!(hybrid < icn);
    }
}
