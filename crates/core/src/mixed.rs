//! Memory-driven mixed-precision bit assignment (paper §5).
//!
//! Algorithm 1 cuts *activation* precisions until every layer's
//! input+output pair fits the read-write budget (Eq. 7), sweeping the
//! layers forward (cutting outputs) and backward (cutting inputs).
//! Algorithm 2 cuts *weight* precisions until packed weights plus static
//! parameters fit the read-only budget (Eq. 6), repeatedly cutting the
//! earliest layer whose footprint share is within `δ` of the maximum —
//! the heuristic that "favorites the cut of central layers with respect to
//! the last layers".
//!
//! ## Tie-break note (documented deviation)
//!
//! The paper's literal `CutBits` rule cuts tensor `x2` only when it is
//! *strictly* larger than `x1` at equal precision. On depthwise layers the
//! two tensors have identical footprints, so a violating pair can deadlock.
//! The default [`TieBreak::CutProducer`] also cuts on *equal* footprints
//! (preferring the layer's output); this reproduces the paper's reported
//! assignments (e.g. `Q1y, Q2y, Q5y = 4` for 192_0.5 at 256 kB RAM, §6).
//! [`TieBreak::Strict`] keeps the literal rule and surfaces the deadlock as
//! an [`MixQError::InfeasibleActivations`] — see the
//! `ablation_mixed_precision` bench.

use std::fmt;

use mixq_models::NetworkSpec;
use mixq_quant::BitWidth;

use crate::memory::{
    activation_pair_bytes, layer_flash_footprint, network_flash_footprint_with_acts,
    peak_activation_bytes, weight_bytes, MemoryBudget, QuantScheme,
};
use crate::MixQError;

/// Tie-break rule for Algorithm 1's `CutBits` at equal precision and equal
/// footprint (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Cut when the candidate's footprint is `≥` the other tensor's
    /// (default; reproduces the paper's reported assignments).
    #[default]
    CutProducer,
    /// The paper's literal `>` rule (can deadlock on depthwise layers).
    Strict,
}

/// Configuration for the bit assignment.
///
/// # Examples
///
/// ```
/// use mixq_core::memory::{MemoryBudget, QuantScheme};
/// use mixq_core::mixed::MixedPrecisionConfig;
/// use mixq_quant::BitWidth;
///
/// let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerChannelIcn)
///     .with_delta(0.1)
///     .with_min_bits(BitWidth::W4, BitWidth::W2);
/// assert_eq!(cfg.qa_min, BitWidth::W4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPrecisionConfig {
    /// Device memory budget.
    pub budget: MemoryBudget,
    /// Deployment scheme (affects the static-parameter overhead `MT_A`).
    pub scheme: QuantScheme,
    /// Minimum activation precision `Q_a,min`.
    pub qa_min: BitWidth,
    /// Minimum weight precision `Q_w,min`.
    pub qw_min: BitWidth,
    /// Score margin `δ` of Algorithm 2.
    pub delta: f64,
    /// Tie-break rule of Algorithm 1.
    pub tie_break: TieBreak,
}

impl MixedPrecisionConfig {
    /// Creates a configuration with the paper's defaults
    /// (`Q_min = 2` for both, `δ = 0.05`, producer-biased tie-break).
    pub fn new(budget: MemoryBudget, scheme: QuantScheme) -> Self {
        MixedPrecisionConfig {
            budget,
            scheme,
            qa_min: BitWidth::W2,
            qw_min: BitWidth::W2,
            delta: 0.05,
            tie_break: TieBreak::CutProducer,
        }
    }

    /// Overrides the minimum precisions `(Q_a,min, Q_w,min)`.
    pub fn with_min_bits(mut self, qa_min: BitWidth, qw_min: BitWidth) -> Self {
        self.qa_min = qa_min;
        self.qw_min = qw_min;
        self
    }

    /// Overrides the Algorithm-2 margin `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ δ ≤ 1`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "δ must be a fraction");
        self.delta = delta;
        self
    }

    /// Overrides the tie-break rule.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }
}

/// A complete per-tensor precision assignment.
///
/// `act_bits[i]` is the precision of activation tensor `i` (tensor 0 is the
/// network input, tensor `i+1` is layer `i`'s output, so layer `i` reads
/// `act_bits[i]` and writes `act_bits[i+1]`); `weight_bits[i]` is layer
/// `i`'s weight precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitAssignment {
    /// Activation precisions (`spec.num_layers() + 1` entries).
    pub act_bits: Vec<BitWidth>,
    /// Weight precisions (`spec.num_layers()` entries).
    pub weight_bits: Vec<BitWidth>,
}

impl BitAssignment {
    /// The homogeneous 8-bit starting point.
    pub fn uniform8(spec: &NetworkSpec) -> Self {
        BitAssignment {
            act_bits: vec![BitWidth::W8; spec.num_layers() + 1],
            weight_bits: vec![BitWidth::W8; spec.num_layers()],
        }
    }

    /// Whether any tensor was cut below 8 bits.
    pub fn has_cuts(&self) -> bool {
        self.act_bits.iter().any(|&b| b != BitWidth::W8)
            || self.weight_bits.iter().any(|&b| b != BitWidth::W8)
    }

    /// Total flash footprint under `scheme` (Eq. 6 LHS).
    pub fn flash_bytes(&self, spec: &NetworkSpec, scheme: QuantScheme) -> usize {
        network_flash_footprint_with_acts(spec, scheme, &self.weight_bits, &self.act_bits)
    }

    /// Peak RAM footprint (max over Eq. 7 LHS).
    pub fn peak_rw_bytes(&self, spec: &NetworkSpec) -> usize {
        peak_activation_bytes(spec, &self.act_bits)
    }

    /// Whether both memory constraints hold.
    pub fn satisfies(&self, spec: &NetworkSpec, cfg: &MixedPrecisionConfig) -> bool {
        self.flash_bytes(spec, cfg.scheme) <= cfg.budget.ro_bytes
            && self.peak_rw_bytes(spec) <= cfg.budget.rw_bytes
    }
}

impl fmt::Display for BitAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w[")?;
        for b in &self.weight_bits {
            write!(f, "{}", b.bits())?;
        }
        write!(f, "] a[")?;
        for b in &self.act_bits {
            write!(f, "{}", b.bits())?;
        }
        write!(f, "]")
    }
}

/// `CutBits` of Algorithm 1: should tensor 2 (precision `q2`, footprint
/// `m2`) be cut, given the paired tensor 1?
fn cut_bits(
    q1: BitWidth,
    m1: usize,
    q2: BitWidth,
    m2: usize,
    qa_min: BitWidth,
    tie: TieBreak,
) -> bool {
    if q2 <= qa_min {
        return false;
    }
    if q2 > q1 {
        return true;
    }
    if q2 == q1 {
        return match tie {
            TieBreak::Strict => m2 > m1,
            TieBreak::CutProducer => m2 >= m1,
        };
    }
    false
}

/// Algorithm 1: cut activation bits until every layer pair fits `M_RW`.
///
/// Returns the activation precisions (`spec.num_layers() + 1` entries; the
/// network input and the final logits stay at 8 bits, as in the paper).
///
/// # Errors
///
/// [`MixQError::InfeasibleActivations`] if a full forward+backward sweep
/// makes no progress while a pair still violates the budget.
pub fn cut_activation_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
) -> Result<Vec<BitWidth>, MixQError> {
    let layers = spec.layers();
    let l = layers.len();
    let rw = cfg.budget.rw_bytes;
    let mut act = vec![BitWidth::W8; l + 1];
    let pair = |act: &[BitWidth], i: usize| -> usize {
        activation_pair_bytes(&layers[i], act[i], act[i + 1])
    };
    loop {
        if (0..l).all(|i| pair(&act, i) <= rw) {
            return Ok(act);
        }
        let mut progressed = false;
        // Forward pass: cut outputs Q_y^i ≡ Q_x^{i+1} (never the logits).
        for i in 0..l.saturating_sub(1) {
            while pair(&act, i) > rw {
                let m1 = act[i].bytes_for(layers[i].in_act_elements());
                let m2 = act[i + 1].bytes_for(layers[i].out_act_elements());
                if cut_bits(act[i], m1, act[i + 1], m2, cfg.qa_min, cfg.tie_break) {
                    act[i + 1] = act[i + 1].step_down().expect("above minimum");
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        // Backward pass: cut inputs Q_x^i ≡ Q_y^{i-1} (never the input).
        for i in (1..l).rev() {
            while pair(&act, i) > rw {
                let m1 = act[i + 1].bytes_for(layers[i].out_act_elements());
                let m2 = act[i].bytes_for(layers[i].in_act_elements());
                if cut_bits(act[i + 1], m1, act[i], m2, cfg.qa_min, cfg.tie_break) {
                    act[i] = act[i].step_down().expect("above minimum");
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if !progressed {
            let layer = (0..l)
                .find(|&i| pair(&act, i) > rw)
                .expect("a violation exists when no progress is made");
            return Err(MixQError::InfeasibleActivations {
                layer,
                pair_bytes: pair(&act, layer),
                budget: rw,
            });
        }
    }
}

/// Algorithm 2: cut weight bits until weights + static parameters fit
/// `M_RO`, given the activation assignment (threshold tables scale with the
/// output activation precision).
///
/// # Errors
///
/// [`MixQError::InfeasibleWeights`] if the budget cannot be met even with
/// every layer at `Q_w,min`.
///
/// # Panics
///
/// Panics if `act_bits.len() != spec.num_layers() + 1`.
pub fn cut_weight_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
    act_bits: &[BitWidth],
) -> Result<Vec<BitWidth>, MixQError> {
    let layers = spec.layers();
    assert_eq!(act_bits.len(), layers.len() + 1, "activation count");
    let mut w = vec![BitWidth::W8; layers.len()];
    loop {
        let total: usize = layers
            .iter()
            .enumerate()
            .map(|(i, l)| layer_flash_footprint(l, cfg.scheme, w[i], act_bits[i + 1]))
            .sum();
        if total <= cfg.budget.ro_bytes {
            return Ok(w);
        }
        // Scores over layers still above the minimum precision.
        let weights_total: usize = layers
            .iter()
            .enumerate()
            .map(|(i, l)| weight_bytes(l, w[i]))
            .sum();
        let eligible: Vec<(usize, f64)> = layers
            .iter()
            .enumerate()
            .filter(|(i, _)| w[*i] > cfg.qw_min)
            .map(|(i, l)| {
                (
                    i,
                    weight_bytes(l, w[i]) as f64 / weights_total.max(1) as f64,
                )
            })
            .collect();
        let Some(&(_, r_max)) = eligible.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
            return Err(MixQError::InfeasibleWeights {
                total_bytes: total,
                budget: cfg.budget.ro_bytes,
            });
        };
        // The paper writes `r_i > (R − δ)`; with δ = 0 that would exclude
        // even the maximum itself, so the inclusive form is used.
        let k = eligible
            .iter()
            .filter(|&&(_, r)| r >= r_max - cfg.delta)
            .map(|&(i, _)| i)
            .min()
            .expect("at least the max layer qualifies");
        w[k] = w[k].step_down().expect("eligible layers are above minimum");
    }
}

/// Runs Algorithm 1 then Algorithm 2 (the §5 procedure).
///
/// # Errors
///
/// Propagates infeasibility from either algorithm.
pub fn assign_bits(
    spec: &NetworkSpec,
    cfg: &MixedPrecisionConfig,
) -> Result<BitAssignment, MixQError> {
    let act_bits = cut_activation_bits(spec, cfg)?;
    let weight_bits = cut_weight_bits(spec, cfg, &act_bits)?;
    Ok(BitAssignment {
        act_bits,
        weight_bits,
    })
}

/// Flash footprint of the paper's *MixQ-PL* deployment: per-layer
/// quantization using batch-norm folding where a layer stayed at 8 bits and
/// ICN where the memory-driven procedure cut it below 8
/// ("MixQ-PL indicates per-layer quantization with either the folding of
/// batch-norm parameters or ICN for layers with Q_y < 8 or Q_w < 8", §6).
pub fn hybrid_pl_flash_bytes(spec: &NetworkSpec, assignment: &BitAssignment) -> usize {
    spec.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let wq = assignment.weight_bits[i];
            let aq = assignment.act_bits[i + 1];
            let scheme = if wq == BitWidth::W8 && aq == BitWidth::W8 {
                QuantScheme::PerLayerFolded
            } else {
                QuantScheme::PerLayerIcn
            };
            layer_flash_footprint(l, scheme, wq, aq)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
    use mixq_models::LayerSpec;
    use mixq_tensor::Shape;

    fn mobilenet(r: Resolution, w: WidthMultiplier) -> NetworkSpec {
        MobileNetConfig::new(r, w).build()
    }

    fn stm32h7_cfg(scheme: QuantScheme) -> MixedPrecisionConfig {
        MixedPrecisionConfig::new(MemoryBudget::stm32h7(), scheme)
    }

    #[test]
    fn small_models_need_no_cuts_at_stm32h7() {
        // §6: "Mobilenet models with width multipliers of 0.25 and 0.5,
        // with the exception of 224_0.5, features no cuts of bit precision."
        for r in Resolution::ALL {
            for w in [WidthMultiplier::X0_25, WidthMultiplier::X0_5] {
                let spec = mobilenet(r, w);
                let cfg = stm32h7_cfg(QuantScheme::PerChannelIcn);
                let a = assign_bits(&spec, &cfg).expect("feasible");
                let label = format!("{r}_{w}");
                if r == Resolution::R224 && w == WidthMultiplier::X0_5 {
                    assert!(a.has_cuts(), "{label} must have cuts");
                } else {
                    assert!(!a.has_cuts(), "{label} must have no cuts: {a}");
                }
            }
        }
    }

    #[test]
    fn cut_224_05_lands_on_pw1_output() {
        // The only violating pair at 8 bits is pw1 (x: 112·112·16,
        // y: 112·112·32 = 602112 B total); the forward pass cuts the output.
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X0_5);
        let cfg = stm32h7_cfg(QuantScheme::PerLayerIcn);
        let act = cut_activation_bits(&spec, &cfg).expect("feasible");
        for (i, &b) in act.iter().enumerate() {
            if i == 3 {
                assert_eq!(b, BitWidth::W4, "pw1 output cut to 4 bits");
            } else {
                assert_eq!(b, BitWidth::W8, "tensor {i} untouched");
            }
        }
    }

    #[test]
    fn paper_anchor_192_05_at_1mb_256kb() {
        // Table 3 row 2 / §6 text: 192_0.5 under 1 MB RO + 256 kB RW gets
        // activation cuts Q1y, Q2y, Q5y = 4 and 4-bit weights on the last
        // pointwise (pw13) and the classifier.
        let spec = mobilenet(Resolution::R192, WidthMultiplier::X0_5);
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::one_megabyte_small_ram(),
            QuantScheme::PerChannelIcn,
        );
        let a = assign_bits(&spec, &cfg).expect("feasible");
        // Activation tensors: index i+1 is layer i's output. Q1y = output
        // of layer 1 (dw1) = act[2]; Q2y = act[3]; Q5y = act[6].
        let cut_tensors: Vec<usize> = a
            .act_bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != BitWidth::W8)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cut_tensors, vec![2, 3, 6], "Q1y, Q2y, Q5y cut: {a}");
        assert!(a.act_bits[2] == BitWidth::W4);
        // Weight cuts: exactly pw13 and fc.
        let cut_weights: Vec<&str> = spec
            .layers()
            .iter()
            .zip(&a.weight_bits)
            .filter(|(_, &b)| b != BitWidth::W8)
            .map(|(l, _)| l.name())
            .collect();
        assert_eq!(cut_weights, vec!["pw13", "fc"]);
        assert_eq!(a.weight_bits[spec.num_layers() - 1], BitWidth::W4);
        assert!(a.satisfies(&spec, &cfg));
    }

    #[test]
    fn width_10_models_fit_after_aggressive_cuts() {
        for r in Resolution::ALL {
            let spec = mobilenet(r, WidthMultiplier::X1_0);
            let cfg = stm32h7_cfg(QuantScheme::PerChannelIcn);
            let a = assign_bits(&spec, &cfg).expect("feasible");
            assert!(a.has_cuts());
            assert!(a.satisfies(&spec, &cfg), "{r}_1.0 violates budget");
            // 4.2M weights into ≤2 MiB means many sub-byte layers.
            let sub_byte = a.weight_bits.iter().filter(|&&b| b < BitWidth::W8).count();
            assert!(sub_byte > 5, "{r}_1.0 cut only {sub_byte} layers");
        }
    }

    #[test]
    fn all_16_models_feasible_on_stm32h7() {
        // Folded and ICN schemes: every model fits after cuts. The
        // thresholds scheme is excluded — at 8-bit activations its tables
        // cost 2·(2^8−1) B per channel, which alone exceeds 2 MiB for most
        // widths (the exponential blow-up of Table 1).
        for cfg_m in MobileNetConfig::all() {
            let spec = cfg_m.build();
            for scheme in [
                QuantScheme::PerLayerFolded,
                QuantScheme::PerLayerIcn,
                QuantScheme::PerChannelIcn,
            ] {
                let cfg = stm32h7_cfg(scheme);
                let a = assign_bits(&spec, &cfg)
                    .unwrap_or_else(|e| panic!("{} {scheme}: {e}", cfg_m.label()));
                assert!(a.satisfies(&spec, &cfg), "{} {scheme}", cfg_m.label());
            }
        }
    }

    #[test]
    fn thresholds_tables_blow_the_budget_at_8_bit_activations() {
        // 128_0.5 fits easily under ICN but is infeasible under thresholds
        // because weight cuts cannot shrink the cO·(2^Q−1)·i16 tables.
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_5);
        let icn = stm32h7_cfg(QuantScheme::PerChannelIcn);
        assert!(assign_bits(&spec, &icn).is_ok());
        let thr = stm32h7_cfg(QuantScheme::PerChannelThresholds);
        assert!(matches!(
            assign_bits(&spec, &thr),
            Err(MixQError::InfeasibleWeights { .. })
        ));
    }

    #[test]
    fn strict_tie_break_deadlocks_on_depthwise() {
        // A single depthwise layer with equal input/output footprints that
        // violates the budget: the literal rule cannot cut either side.
        let spec = NetworkSpec::new(
            "dw-only",
            Shape::feature_map(16, 16, 8),
            vec![
                LayerSpec::conv("c0", 1, 1, 8, 8, 16, 16),
                LayerSpec::depthwise("dw", 3, 1, 8, 16, 16),
                LayerSpec::linear("fc", 8, 2),
            ],
        );
        let budget = MemoryBudget::new(usize::MAX, 3500); // pair = 4096 at 8 bit
        let strict = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn)
            .with_tie_break(TieBreak::Strict);
        let err = cut_activation_bits(&spec, &strict).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleActivations { .. }));
        // The producer-biased default resolves it.
        let default = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
        let act = cut_activation_bits(&spec, &default).expect("feasible");
        assert!(act.iter().any(|&b| b < BitWidth::W8));
    }

    #[test]
    fn infeasible_weights_error() {
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X1_0);
        // 4.2M weights can never fit 100 kB even at 2 bits.
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(100 * 1024, 512 * 1024),
            QuantScheme::PerChannelIcn,
        );
        let err = assign_bits(&spec, &cfg).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleWeights { .. }));
    }

    #[test]
    fn infeasible_activations_error() {
        let spec = mobilenet(Resolution::R224, WidthMultiplier::X1_0);
        // conv0's input alone (224·224·3 at fixed 8 bits) exceeds 64 kB.
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(2 << 20, 64 * 1024),
            QuantScheme::PerChannelIcn,
        );
        let err = assign_bits(&spec, &cfg).unwrap_err();
        assert!(matches!(err, MixQError::InfeasibleActivations { .. }));
    }

    #[test]
    fn weight_cut_order_prefers_earliest_within_margin() {
        // Two equal-size heavy layers: the earlier one is cut first.
        let spec = NetworkSpec::new(
            "twins",
            Shape::feature_map(8, 8, 64),
            vec![
                LayerSpec::conv("a", 3, 1, 64, 64, 8, 8),
                LayerSpec::conv("b", 3, 1, 64, 64, 8, 8),
                LayerSpec::linear("fc", 64, 2),
            ],
        );
        let w_a = weight_bytes(&spec.layers()[0], BitWidth::W8);
        // Budget forcing exactly one cut beyond static params.
        let overhead: usize = spec
            .layers()
            .iter()
            .map(|l| crate::memory::static_param_bytes(l, QuantScheme::PerLayerIcn, BitWidth::W8))
            .sum();
        let total8: usize = spec
            .layers()
            .iter()
            .map(|l| weight_bytes(l, BitWidth::W8))
            .sum();
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(total8 + overhead - w_a / 4, usize::MAX),
            QuantScheme::PerLayerIcn,
        );
        let w = cut_weight_bits(&spec, &cfg, &[BitWidth::W8; 4]).expect("feasible");
        assert_eq!(w[0], BitWidth::W4, "earliest twin cut first");
        assert_eq!(w[1], BitWidth::W8);
    }

    #[test]
    fn assignment_display_and_uniform() {
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_25);
        let a = BitAssignment::uniform8(&spec);
        assert!(!a.has_cuts());
        let s = a.to_string();
        assert!(s.starts_with("w[8"));
        assert_eq!(a.act_bits.len(), spec.num_layers() + 1);
    }

    #[test]
    fn hybrid_pl_is_cheaper_than_pure_icn_when_uncut() {
        let spec = mobilenet(Resolution::R128, WidthMultiplier::X0_25);
        let a = BitAssignment::uniform8(&spec);
        let hybrid = hybrid_pl_flash_bytes(&spec, &a);
        let icn = a.flash_bytes(&spec, QuantScheme::PerLayerIcn);
        let folded = a.flash_bytes(&spec, QuantScheme::PerLayerFolded);
        assert_eq!(hybrid, folded, "uncut hybrid = pure FB");
        assert!(hybrid < icn);
    }
}
