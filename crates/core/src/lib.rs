//! # mixq-core
//!
//! The paper's primary contribution, end to end:
//!
//! * [`memory`] — the deployment memory model of Table 1 and Eq. 6–7:
//!   per-layer flash footprints (packed weights + `Zx/Zw/Bq/M0/N0/Zy/Thr`
//!   static parameters) under the four quantization schemes, and the
//!   read-write footprint of activation pairs.
//! * [`mixed`] — the **memory-driven mixed-precision assignment** of §5:
//!   Algorithm 1 (cut activation bits, forward/backward sweeps under the
//!   RW budget) and Algorithm 2 (cut weight bits by layer score under the
//!   RO budget), with infeasibility detection.
//! * [`convert`] — conversion of a trained fake-quantized network `g(x)`
//!   into the integer-only deployment model `g'(x)` (§4): batch-norm
//!   folding (PL+FB), the **Integer Channel-Normalization** activation
//!   (PL+ICN / PC+ICN, Eq. 5), and the integer-thresholds alternative.
//! * [`pipeline`] — the Fig. 1 flow as one API: quantize → retrain →
//!   convert → verify → fit report.
//!
//! # Examples
//!
//! ```
//! use mixq_core::memory::{MemoryBudget, QuantScheme};
//! use mixq_core::mixed::{assign_bits, MixedPrecisionConfig};
//! use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
//!
//! // Fit MobileNetV1 192_0.5 into an STM32H7 (2 MB flash, 512 kB RAM).
//! let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
//! let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerChannelIcn);
//! let assignment = assign_bits(&spec, &cfg)?;
//! assert!(assignment.satisfies(&spec, &cfg));
//! # Ok::<(), mixq_core::MixQError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
mod error;
pub mod export;
pub mod memory;
pub mod mixed;
pub mod pipeline;

pub use error::MixQError;
