//! The end-to-end deployment flow of the paper's Figure 1:
//!
//! `f(x)` (float training) → `g(x)` (fake-quantized retraining, §3) →
//! memory-driven bit assignment (§5) → `g'(x)` (integer-only conversion,
//! §4) → verification that `loss(g'(x)) ≈ loss(g(x))`.

use std::fmt;

use mixq_data::Dataset;
use mixq_kernels::{BackendKind, OpCounts};
use mixq_models::micro::network_spec_of;
use mixq_nn::qat::{MicroCnnSpec, QatNetwork};
use mixq_nn::train::{evaluate, train, TrainConfig};

use crate::convert::{convert_with_backend, scheme_granularity, IntNetwork};
use crate::memory::{mib, MemoryBudget, QuantScheme};
use crate::mixed::{assign_bits, BitAssignment, MixedPrecisionConfig};
use crate::MixQError;

/// Configuration of the full deployment pipeline.
///
/// # Examples
///
/// ```no_run
/// use mixq_core::memory::{MemoryBudget, QuantScheme};
/// use mixq_core::pipeline::{deploy, PipelineConfig};
/// use mixq_data::{DatasetSpec, SyntheticKind};
/// use mixq_nn::qat::MicroCnnSpec;
///
/// let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 2).generate(1);
/// let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn)
///     .with_budget(MemoryBudget::new(16 * 1024, 4 * 1024));
/// let (int_net, report) = deploy(&MicroCnnSpec::new(8, 8, 1, 2, &[4]), &ds, &cfg)?;
/// println!("{report}");
/// # Ok::<(), mixq_core::MixQError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Deployment scheme.
    pub scheme: QuantScheme,
    /// Optional device budget; when set, Algorithms 1–2 pick the per-tensor
    /// precisions before the quantization-aware retraining.
    pub budget: Option<MemoryBudget>,
    /// Float pre-training recipe.
    pub float_train: TrainConfig,
    /// Quantization-aware retraining recipe.
    pub qat_train: TrainConfig,
    /// Seed for network initialization.
    pub seed: u64,
    /// Kernel backend the deployment graph is selected with — the default
    /// [`BackendKind::Reference`] keeps every node on the direct kernels
    /// (bit-identical to the pre-backend pipeline); a tiled backend lowers
    /// standard convolutions onto the blocked GEMM. Logits, accuracy and
    /// agreement are identical across backends.
    pub backend: BackendKind,
    /// Samples per graph walk of the deployment-side evaluation (default
    /// 1). A larger batch amortizes per-layer dispatch and prepacked-weight
    /// streaming across samples — bit-identical accuracy and op counts,
    /// only wall-clock (and the Eq. 7 live set, which scales with the
    /// batch) change.
    pub batch: usize,
    /// Worker threads *inside* each graph walk of the deployment-side
    /// evaluation (default 1 = serial). Forwarded to
    /// [`IntNetwork::set_threads`]; logits, accuracy and modeled MCU
    /// cycles are bit-identical at every setting.
    pub threads: usize,
    /// Run the static verifier (`mixq-verify`) over the deployed graph and
    /// fail [`deploy`] with [`MixQError::VerificationFailed`] on any
    /// unproven fact (default `true`). The pass is input-independent — it
    /// proves overflow freedom, requant-gate consistency, schedule
    /// non-aliasing and join agreement for *all* inputs, not the evaluated
    /// samples — and costs one walk over the node metadata.
    pub verify: bool,
}

impl PipelineConfig {
    /// Default pipeline: a few fast epochs of float training then QAT.
    pub fn new(scheme: QuantScheme) -> Self {
        let mut qat = TrainConfig::fast(6);
        if scheme == QuantScheme::PerLayerFolded {
            // The paper enables folding from the 2nd epoch (BN frozen after
            // the 1st).
            qat = qat.with_folding_from(1);
        }
        PipelineConfig {
            scheme,
            budget: None,
            float_train: TrainConfig::fast(12),
            qat_train: qat,
            seed: 42,
            backend: BackendKind::default(),
            batch: 1,
            threads: 1,
            verify: true,
        }
    }

    /// Enables or disables the post-conversion static verification pass.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the device budget (enables the §5 bit assignment).
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the kernel backend the deployment graph is selected with.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the evaluation batch size (samples per graph walk).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Sets the intra-walk worker-thread count (see
    /// [`IntNetwork::set_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds
    /// [`MAX_POOL_THREADS`](mixq_kernels::MAX_POOL_THREADS).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=mixq_kernels::MAX_POOL_THREADS).contains(&threads),
            "threads must be in 1..={}, got {threads}",
            mixq_kernels::MAX_POOL_THREADS
        );
        self.threads = threads;
        self
    }

    /// Overrides the initialization seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides both training recipes.
    pub fn with_training(mut self, float_train: TrainConfig, qat_train: TrainConfig) -> Self {
        self.float_train = float_train;
        self.qat_train = qat_train;
        self
    }
}

/// Everything the pipeline measured, for `EXPERIMENTS.md`-style reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Accuracy of the float network `f(x)`.
    pub float_accuracy: f32,
    /// Accuracy of the fake-quantized network `g(x)` after QAT.
    pub fake_quant_accuracy: f32,
    /// Accuracy of the integer-only network `g'(x)`.
    pub int_accuracy: f32,
    /// Fraction of samples where `g(x)` and `g'(x)` predict the same class.
    pub prediction_agreement: f32,
    /// Actual flash footprint of `g'(x)` in bytes.
    pub flash_bytes: usize,
    /// The bit assignment, when a budget was given.
    pub assignment: Option<BitAssignment>,
    /// Whether the *converted* network fits the budget: actual flash bytes
    /// against `M_RO` and the graph's liveness-planned peak activation RAM
    /// against `M_RW`, through the same [`MemoryBudget::fits`] predicate
    /// `BitAssignment::satisfies` uses. Since the §5 assignment prices the
    /// DAG liveness schedule itself, an assignment-approved network also
    /// passes this check — asserted by `tests/dag_assignment.rs`.
    pub fits_budget: Option<bool>,
    /// Operation counts of one inference.
    pub ops_per_inference: OpCounts,
}

impl fmt::Display for DeploymentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "float {:.1}% -> fake-quant {:.1}% -> integer-only {:.1}% (agreement {:.1}%)",
            self.float_accuracy * 100.0,
            self.fake_quant_accuracy * 100.0,
            self.int_accuracy * 100.0,
            self.prediction_agreement * 100.0
        )?;
        write!(
            f,
            "flash {:.3} MiB; {}",
            mib(self.flash_bytes),
            self.ops_per_inference
        )?;
        if let Some(a) = &self.assignment {
            write!(f, "; bits {a}")?;
        }
        Ok(())
    }
}

/// Runs the full Figure-1 flow on a micro-CNN and a dataset, returning the
/// deployable integer network and the measured report.
///
/// # Errors
///
/// Propagates infeasible bit assignments and conversion preconditions.
pub fn deploy(
    spec: &MicroCnnSpec,
    dataset: &Dataset,
    cfg: &PipelineConfig,
) -> Result<(IntNetwork, DeploymentReport), MixQError> {
    let mut net = QatNetwork::build(spec, cfg.seed);
    // Phase 1: float pre-training (the "pretrained network f(x)").
    let _ = train(&mut net, dataset, &cfg.float_train);
    let float_accuracy = evaluate(&net, dataset);
    // Phase 2: device-aware fine-tuning (fake-quantized graph g(x)).
    net.calibrate_input(dataset.images());
    net.enable_fake_quant(scheme_granularity(cfg.scheme));
    if cfg.scheme == QuantScheme::PerLayerIcn {
        // §6: per-layer weight quantization uses the PACT learned clip;
        // per-channel keeps min/max statistics.
        net.enable_pact_weight_clips();
    }
    let mut assignment = None;
    if let Some(budget) = cfg.budget {
        // The spec carries the residual skips, so Algorithms 1–2 price the
        // same DAG liveness the executor will run.
        let net_spec = network_spec_of(&net, "pipeline");
        let mp_cfg = MixedPrecisionConfig::new(budget, cfg.scheme);
        let bits = assign_bits(&net_spec, &mp_cfg)?;
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, bits.weight_bits[i]);
            net.set_act_bits(i, bits.act_bits[i + 1]);
        }
        for (r, &b) in bits.res_bits.iter().enumerate() {
            net.set_residual_act_bits(r, b);
        }
        net.set_linear_weight_bits(bits.weight_bits[net.num_blocks()]);
        assignment = Some(bits);
    }
    let _ = train(&mut net, dataset, &cfg.qat_train);
    let fake_quant_accuracy = evaluate(&net, dataset);
    // Phase 3: integer-only conversion (deployment graph g'(x)), each node
    // bound to the backend-selected kernel.
    let mut int_net = convert_with_backend(&net, cfg.scheme, &cfg.backend)?;
    if cfg.verify {
        // Static verification of the deployment graph: refuse to ship a
        // schedule the verifier cannot prove overflow-free, alias-free and
        // requant-consistent for all inputs.
        let g = int_net.graph();
        let (shape, bits) = g
            .input_decl()
            .expect("converted graphs declare their input");
        let report = mixq_verify::verify_graph("pipeline", g, shape, bits);
        if !report.ok() {
            return Err(MixQError::VerificationFailed {
                graph: report.graph,
                violations: report.violations.len(),
                first: report.violations[0].to_string(),
            });
        }
    }
    int_net.set_threads(cfg.threads);
    let (int_accuracy, _) = int_net.evaluate_batch(dataset, cfg.batch);
    // Phase 4: verification — loss(g'(x)) ≈ loss(g(x)) at prediction level.
    let prediction_agreement = prediction_agreement(&net, &int_net, dataset);
    let (_, ops) = int_net.infer(&dataset.sample(0).images);
    let report = DeploymentReport {
        float_accuracy,
        fake_quant_accuracy,
        int_accuracy,
        prediction_agreement,
        flash_bytes: int_net.flash_bytes(),
        fits_budget: cfg
            .budget
            .map(|b| b.fits(int_net.flash_bytes(), int_net.peak_ram_bytes())),
        assignment,
        ops_per_inference: ops,
    };
    Ok((int_net, report))
}

/// Fraction of samples where the fake-quantized network `g(x)` and the
/// integer-only deployment graph `g'(x)` predict the same class — the
/// paper's Figure-1 verification step, with the integer side running
/// through the [`QGraph`](mixq_kernels::QGraph) executor behind
/// [`IntNetwork::predict`]. An empty dataset counts as full agreement.
pub fn prediction_agreement(net: &QatNetwork, int_net: &IntNetwork, dataset: &Dataset) -> f32 {
    if dataset.is_empty() {
        return 1.0;
    }
    let mut agree = 0usize;
    for i in 0..dataset.len() {
        let s = dataset.sample(i);
        let fq_class = argmax_f32(net.forward(&s.images).data());
        if fq_class == int_net.predict(&s.images) {
            agree += 1;
        }
    }
    agree as f32 / dataset.len() as f32
}

fn argmax_f32(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_data::{DatasetSpec, SyntheticKind};

    fn dataset() -> Dataset {
        DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 2)
            .with_samples(96)
            .with_noise(0.03)
            .with_amplitude_base(1.0)
            .generate(5)
    }

    #[test]
    fn full_pipeline_pc_icn() {
        let ds = dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6]);
        let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn);
        let (int_net, report) = deploy(&spec, &ds, &cfg).expect("pipeline runs");
        assert!(
            report.float_accuracy > 0.75,
            "float {}",
            report.float_accuracy
        );
        assert!(
            report.int_accuracy > 0.7,
            "integer-only {}",
            report.int_accuracy
        );
        assert!(
            report.prediction_agreement > 0.9,
            "agreement {}",
            report.prediction_agreement
        );
        assert_eq!(int_net.scheme(), QuantScheme::PerChannelIcn);
        assert!(report.flash_bytes > 0);
        let display = report.to_string();
        assert!(display.contains("integer-only"));
    }

    #[test]
    fn pipeline_with_budget_assigns_bits() {
        let ds = dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6, 8]);
        // A tight RO budget forcing weight cuts on the micro-CNN.
        let net = QatNetwork::build(&spec, 42);
        let ns = network_spec_of(&net, "probe");
        let full8 = crate::memory::network_flash_footprint(
            &ns,
            QuantScheme::PerChannelIcn,
            &vec![mixq_quant::BitWidth::W8; ns.num_layers()],
        );
        let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn)
            .with_budget(MemoryBudget::new(full8 * 3 / 4, 64 * 1024));
        let (_, report) = deploy(&spec, &ds, &cfg).expect("feasible");
        let a = report.assignment.as_ref().expect("assignment present");
        assert!(a.has_cuts(), "budget forces cuts");
        assert_eq!(report.fits_budget, Some(true));
    }

    #[test]
    fn tiled_backend_pipeline_matches_reference_accuracy() {
        use mixq_kernels::KernelChoice;
        let ds = dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6]);
        let reference = PipelineConfig::new(QuantScheme::PerChannelIcn);
        let tiled = reference.clone().with_backend(BackendKind::tiled());
        let (net_ref, rep_ref) = deploy(&spec, &ds, &reference).expect("pipeline runs");
        let (net_tiled, rep_tiled) = deploy(&spec, &ds, &tiled).expect("pipeline runs");
        // Same training seed, bit-identical kernels: every accuracy-shaped
        // number agrees; only the selected dataflows (and therefore the op
        // ledgers) differ.
        assert_eq!(rep_ref.float_accuracy, rep_tiled.float_accuracy);
        assert_eq!(rep_ref.fake_quant_accuracy, rep_tiled.fake_quant_accuracy);
        assert_eq!(rep_ref.int_accuracy, rep_tiled.int_accuracy);
        assert_eq!(rep_ref.prediction_agreement, rep_tiled.prediction_agreement);
        assert_eq!(rep_ref.flash_bytes, rep_tiled.flash_bytes);
        assert!(net_ref
            .kernel_choices()
            .iter()
            .all(|&c| c == KernelChoice::DirectConv));
        assert!(net_tiled
            .kernel_choices()
            .contains(&KernelChoice::BlockedGemm));
        let scratch = net_tiled.graph().peak_scratch_bytes(
            mixq_tensor::Shape::feature_map(8, 8, 1),
            mixq_quant::BitWidth::W8,
        );
        assert!(scratch > 0, "GEMM-lowered nodes price im2col scratch");
    }

    #[test]
    fn infeasible_budget_propagates() {
        let ds = dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6]);
        let cfg =
            PipelineConfig::new(QuantScheme::PerChannelIcn).with_budget(MemoryBudget::new(64, 64));
        assert!(deploy(&spec, &ds, &cfg).is_err());
    }
}
