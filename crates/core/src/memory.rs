//! The deployment memory model (paper §4.1, Table 1, and Eq. 6–7).
//!
//! Read-only (flash) memory holds the bit-packed weights plus each layer's
//! static parameters; read-write (RAM) memory holds, at every step of the
//! inference, every activation tensor still needed — for a chain that is
//! the running layer's input+output pair, for a residual graph it also
//! includes the pending skip tensor. [`peak_live_bytes`] prices that live
//! set over the [`GraphSpec`] schedule, mirroring
//! the executor's `QGraph::peak_ram_bytes` plan step for step.
//!
//! Static-parameter datatypes (§4.1): `Zx`, `Zy` are UINT8; `Zw` is UINT8
//! per-layer or INT16 per-channel; `Bq`, `M0` are INT32; `N0` is INT8;
//! threshold entries are INT16 (`c_O · 2^Q` of them — the datatype implied
//! by Table 2's 2.35 MB footprint; see DESIGN.md). Residual-add nodes
//! store two `M0`/`N0` branch multipliers plus three zero-points
//! ([`RESIDUAL_ADD_PARAM_BYTES`]).

use std::fmt;

use mixq_models::{GraphSpec, LayerSpec, NetworkSpec, TensorSource};
use mixq_quant::BitWidth;

/// The four integer-only deployment schemes compared in the paper
/// (Table 1 / Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// Per-layer quantization with batch-norm folding (Jacob et al. \[11\]).
    PerLayerFolded,
    /// Per-layer quantization with ICN activation layers (ours).
    PerLayerIcn,
    /// Per-channel quantization with ICN activation layers (ours).
    PerChannelIcn,
    /// Per-channel quantization with integer thresholds \[21, 8\].
    PerChannelThresholds,
}

impl QuantScheme {
    /// All schemes, in Table 2 order.
    pub const ALL: [QuantScheme; 4] = [
        QuantScheme::PerLayerFolded,
        QuantScheme::PerLayerIcn,
        QuantScheme::PerChannelIcn,
        QuantScheme::PerChannelThresholds,
    ];

    /// The paper's row label.
    pub const fn label(self) -> &'static str {
        match self {
            QuantScheme::PerLayerFolded => "PL+FB",
            QuantScheme::PerLayerIcn => "PL+ICN",
            QuantScheme::PerChannelIcn => "PC+ICN",
            QuantScheme::PerChannelThresholds => "PC+Thresholds",
        }
    }

    /// Whether weights are quantized per channel.
    pub const fn is_per_channel(self) -> bool {
        matches!(
            self,
            QuantScheme::PerChannelIcn | QuantScheme::PerChannelThresholds
        )
    }
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A device memory budget: `M_RO` (flash) and `M_RW` (RAM) in bytes.
///
/// # Examples
///
/// ```
/// use mixq_core::memory::MemoryBudget;
///
/// let h7 = MemoryBudget::stm32h7();
/// assert_eq!(h7.ro_bytes, 2 * 1024 * 1024);
/// assert_eq!(h7.rw_bytes, 512 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryBudget {
    /// Read-only (flash) bytes for weights and static parameters.
    pub ro_bytes: usize,
    /// Read-write (RAM) bytes for activation tensors.
    pub rw_bytes: usize,
}

impl MemoryBudget {
    /// Creates a budget.
    pub const fn new(ro_bytes: usize, rw_bytes: usize) -> Self {
        MemoryBudget { ro_bytes, rw_bytes }
    }

    /// The STM32H7 of §6: 2 MB flash, 512 kB RAM.
    pub const fn stm32h7() -> Self {
        MemoryBudget::new(2 * 1024 * 1024, 512 * 1024)
    }

    /// The Table-3 configuration: 1 MB flash, 512 kB RAM.
    pub const fn one_megabyte() -> Self {
        MemoryBudget::new(1024 * 1024, 512 * 1024)
    }

    /// The Table-3 small configuration: 1 MB flash, 256 kB RAM.
    pub const fn one_megabyte_small_ram() -> Self {
        MemoryBudget::new(1024 * 1024, 256 * 1024)
    }

    /// Whether a deployment needing `ro_used` flash bytes and `rw_used`
    /// peak RAM bytes fits this budget — the single Eq. 6/7 predicate
    /// shared by `BitAssignment::satisfies` and the deployment report's
    /// `fits_budget`, so the two checks cannot diverge.
    pub const fn fits(&self, ro_used: usize, rw_used: usize) -> bool {
        ro_used <= self.ro_bytes && rw_used <= self.rw_bytes
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RO {:.2} MiB + RW {} KiB",
            self.ro_bytes as f64 / (1024.0 * 1024.0),
            self.rw_bytes / 1024
        )
    }
}

/// Bytes of the packed weight tensor of `layer` at precision `bits`
/// (`mem(w_i, Q_w^i)` of Eq. 6).
pub fn weight_bytes(layer: &LayerSpec, bits: BitWidth) -> usize {
    bits.bytes_for(layer.weight_elements())
}

/// Bytes of the static per-layer parameters `MT_A^i` of Eq. 6, per Table 1.
///
/// `act_out_bits` only matters for the thresholds scheme, whose table size
/// is `c_O · 2^Q` entries.
pub fn static_param_bytes(layer: &LayerSpec, scheme: QuantScheme, act_out_bits: BitWidth) -> usize {
    let co = layer.out_channels();
    // Zx and Zy: one UINT8 each, every scheme.
    let zx_zy = 2;
    match scheme {
        QuantScheme::PerLayerFolded => {
            // Zw u8 + Bq cO·i32 + M0 i32 + N0 i8.
            zx_zy + 1 + 4 * co + 4 + 1
        }
        QuantScheme::PerLayerIcn => {
            // Zw u8 + Bq cO·i32 + M0 cO·i32 + N0 cO·i8.
            zx_zy + 1 + 4 * co + 4 * co + co
        }
        QuantScheme::PerChannelIcn => {
            // Zw cO·i16 + Bq cO·i32 + M0 cO·i32 + N0 cO·i8.
            zx_zy + 2 * co + 4 * co + 4 * co + co
        }
        QuantScheme::PerChannelThresholds => {
            // Zw cO·i16 + Thr cO·(2^Q − 1)·i16 (bias folded into the
            // thresholds; Table 1 budgets cO·2^Q slots, but 2^Q − 1
            // thresholds suffice and reconcile Table 2's 2.35 MB).
            zx_zy + 2 * co + 2 * co * (act_out_bits.levels() as usize - 1)
        }
    }
}

/// Flash footprint of one layer: packed weights plus static parameters.
pub fn layer_flash_footprint(
    layer: &LayerSpec,
    scheme: QuantScheme,
    weight_bits: BitWidth,
    act_out_bits: BitWidth,
) -> usize {
    weight_bytes(layer, weight_bits) + static_param_bytes(layer, scheme, act_out_bits)
}

/// Total flash footprint of a network under per-layer weight precisions
/// (Eq. 6 left-hand side), assuming 8-bit activations for the thresholds
/// tables.
///
/// # Panics
///
/// Panics if `weight_bits.len() != spec.num_layers()`.
pub fn network_flash_footprint(
    spec: &NetworkSpec,
    scheme: QuantScheme,
    weight_bits: &[BitWidth],
) -> usize {
    network_flash_footprint_with_acts(
        spec,
        scheme,
        weight_bits,
        &vec![BitWidth::W8; spec.num_layers() + 1],
    )
}

/// Flash bytes of one residual-add node's static parameters: two `M0`/`N0`
/// branch multipliers (5 bytes each) plus `Z_a`, `Z_b`, `Z_y` (UINT8 each)
/// — the spec-level twin of the kernel's `QAdd::flash_bytes`, asserted
/// equal in the deployment-consistency tests.
pub const RESIDUAL_ADD_PARAM_BYTES: usize = 2 * 5 + 3;

/// Total flash footprint with explicit activation precisions
/// (`act_bits[i]` = precision of activation tensor `i`, where tensor 0 is
/// the network input and tensor `i+1` is layer `i`'s output). Residual
/// skips each add one [`RESIDUAL_ADD_PARAM_BYTES`] block.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn network_flash_footprint_with_acts(
    spec: &NetworkSpec,
    scheme: QuantScheme,
    weight_bits: &[BitWidth],
    act_bits: &[BitWidth],
) -> usize {
    assert_eq!(
        weight_bits.len(),
        spec.num_layers(),
        "one weight precision per layer"
    );
    assert_eq!(
        act_bits.len(),
        spec.num_layers() + 1,
        "one activation precision per tensor"
    );
    spec.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| layer_flash_footprint(l, scheme, weight_bits[i], act_bits[i + 1]))
        .sum::<usize>()
        + spec.num_skips() * RESIDUAL_ADD_PARAM_BYTES
}

/// RAM footprint of layer `i`'s activation pair (Eq. 7 on a chain):
/// `mem(x_i, Q_x) + mem(y_i, Q_y)` — the classic double-buffer bound. On a
/// residual graph the pair *understates* the live set (it misses the
/// pending skip tensor); [`peak_live_bytes`] prices the true set.
pub fn activation_pair_bytes(layer: &LayerSpec, qx: BitWidth, qy: BitWidth) -> usize {
    qx.bytes_for(layer.in_act_elements()) + qy.bytes_for(layer.out_act_elements())
}

/// Resolves tensor `t`'s RAM bytes under an assignment: activations are
/// packed at their assigned precision, pool outputs inherit their input's
/// precision, logits are `i32`.
pub(crate) fn spec_tensor_bytes(
    graph: &GraphSpec,
    act_bits: &[BitWidth],
    res_bits: &[BitWidth],
    t: usize,
) -> usize {
    let tensor = graph.tensors()[t];
    match spec_tensor_bits(graph, act_bits, res_bits, t) {
        Some(bits) => bits.bytes_for(tensor.elements),
        None => 4 * tensor.elements,
    }
}

/// The assigned precision of tensor `t`, or `None` for the `i32` logits.
pub(crate) fn spec_tensor_bits(
    graph: &GraphSpec,
    act_bits: &[BitWidth],
    res_bits: &[BitWidth],
    t: usize,
) -> Option<BitWidth> {
    match graph.tensors()[t].source {
        TensorSource::Input => Some(act_bits[0]),
        TensorSource::Layer(i) => Some(act_bits[i + 1]),
        TensorSource::Residual(s) => Some(res_bits[s]),
        TensorSource::Pool { of } => spec_tensor_bits(graph, act_bits, res_bits, of),
        TensorSource::Logits => None,
    }
}

/// Live activation bytes while step `i` of the schedule executes: every
/// tensor still needed plus the step's output (Eq. 7's left-hand side,
/// generalized from a pair to the schedule's true live set).
pub(crate) fn spec_step_live_bytes(
    graph: &GraphSpec,
    act_bits: &[BitWidth],
    res_bits: &[BitWidth],
    i: usize,
) -> usize {
    let pending: usize = graph
        .live_at(i)
        .map(|t| spec_tensor_bytes(graph, act_bits, res_bits, t))
        .sum();
    pending + spec_tensor_bytes(graph, act_bits, res_bits, graph.steps()[i].output)
}

/// Peak activation RAM of the liveness-planned schedule (Eq. 7): for every
/// step, the bytes of all tensors still needed plus the step's output,
/// each at its assigned precision; the maximum over steps. Matches the
/// executor's `QGraph::peak_ram_bytes` of the lowered network exactly —
/// on a chain it degenerates to the classic largest input+output pair, on
/// a residual graph the pending skip tensor is priced too.
///
/// # Panics
///
/// Panics unless `act_bits.len() == spec.num_layers() + 1` and
/// `res_bits.len() == spec.num_skips()`.
pub fn peak_live_bytes(spec: &NetworkSpec, act_bits: &[BitWidth], res_bits: &[BitWidth]) -> usize {
    assert_eq!(act_bits.len(), spec.num_layers() + 1, "activation count");
    assert_eq!(res_bits.len(), spec.num_skips(), "residual tensor count");
    let graph = spec.graph();
    (0..graph.steps().len())
        .map(|i| spec_step_live_bytes(&graph, act_bits, res_bits, i))
        .max()
        .unwrap_or(0)
}

/// Peak RAM for a chain (skip-free) spec under an activation assignment —
/// [`peak_live_bytes`] with no residual tensors.
///
/// # Panics
///
/// Panics if the spec declares skips (pass `res_bits` to
/// [`peak_live_bytes`] instead) or on an activation-count mismatch.
pub fn peak_activation_bytes(spec: &NetworkSpec, act_bits: &[BitWidth]) -> usize {
    assert!(
        spec.skips().is_empty(),
        "residual spec: use peak_live_bytes with per-skip precisions"
    );
    peak_live_bytes(spec, act_bits, &[])
}

/// Pretty bytes → MiB with two decimals (the paper's "MB" are mebibytes;
/// its Table 2 footprints only reconcile under that reading).
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};

    fn mobilenet_224_10() -> NetworkSpec {
        MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build()
    }

    #[test]
    fn table1_row_shapes() {
        // A 3x3 conv with 8 in and 16 out channels.
        let l = LayerSpec::conv("c", 3, 1, 8, 16, 10, 10);
        let co = 16;
        // PL+FB: 2 + 1 + 4co + 5.
        assert_eq!(
            static_param_bytes(&l, QuantScheme::PerLayerFolded, BitWidth::W8),
            2 + 1 + 4 * co + 4 + 1
        );
        // PL+ICN adds per-channel M0 (i32) and N0 (i8).
        assert_eq!(
            static_param_bytes(&l, QuantScheme::PerLayerIcn, BitWidth::W8),
            2 + 1 + 4 * co + 4 * co + co
        );
        // PC+ICN upgrades Zw to i16 per channel.
        assert_eq!(
            static_param_bytes(&l, QuantScheme::PerChannelIcn, BitWidth::W8),
            2 + 2 * co + 4 * co + 4 * co + co
        );
        // Thresholds: 2^Q i16 entries per channel, no Bq/M0/N0.
        assert_eq!(
            static_param_bytes(&l, QuantScheme::PerChannelThresholds, BitWidth::W4),
            2 + 2 * co + 2 * co * 15
        );
    }

    #[test]
    fn threshold_tables_grow_exponentially_with_q() {
        let l = LayerSpec::conv("c", 1, 1, 4, 4, 4, 4);
        let t2 = static_param_bytes(&l, QuantScheme::PerChannelThresholds, BitWidth::W2);
        let t4 = static_param_bytes(&l, QuantScheme::PerChannelThresholds, BitWidth::W4);
        let t8 = static_param_bytes(&l, QuantScheme::PerChannelThresholds, BitWidth::W8);
        assert!(t4 > t2 && t8 > t4);
        // Table slots: cO·(2^Q − 1).
        assert_eq!(t8 - t4, 2 * 4 * (255 - 15));
    }

    #[test]
    fn weight_bytes_pack_sub_byte() {
        let l = LayerSpec::conv("c", 3, 1, 3, 32, 10, 10);
        assert_eq!(weight_bytes(&l, BitWidth::W8), 864);
        assert_eq!(weight_bytes(&l, BitWidth::W4), 432);
        assert_eq!(weight_bytes(&l, BitWidth::W2), 216);
    }

    #[test]
    fn table2_fp32_and_int8_anchor() {
        let spec = mobilenet_224_10();
        // FP32: 4 bytes/weight ⇒ ≈ 16.06 MiB (paper reports 16.27 "MB",
        // which also counts FP32 batch-norm tensors: ≈ +0.17 MiB).
        let fp32 = spec.total_weight_elements() * 4;
        assert!((mib(fp32) - 16.06).abs() < 0.05, "{}", mib(fp32));
        // PL+FB INT8: paper says 4.06 MB.
        let int8 = network_flash_footprint(
            &spec,
            QuantScheme::PerLayerFolded,
            &vec![BitWidth::W8; spec.num_layers()],
        );
        assert!((mib(int8) - 4.06).abs() < 0.03, "{}", mib(int8));
    }

    #[test]
    fn table2_int4_anchors() {
        let spec = mobilenet_224_10();
        let w4 = vec![BitWidth::W4; spec.num_layers()];
        let a8 = vec![BitWidth::W8; spec.num_layers() + 1];
        let plfb = network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerFolded, &w4, &a8);
        let plicn = network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerIcn, &w4, &a8);
        let pcicn = network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelIcn, &w4, &a8);
        // Thresholds with 4-bit activations everywhere (the INT4 row).
        let a4 = vec![BitWidth::W4; spec.num_layers() + 1];
        let thr =
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelThresholds, &w4, &a4);
        // Paper Table 2: 2.05 / 2.10 / 2.12 / 2.35 MB.
        assert!((mib(plfb) - 2.05).abs() < 0.02, "PL+FB {}", mib(plfb));
        assert!((mib(plicn) - 2.10).abs() < 0.02, "PL+ICN {}", mib(plicn));
        assert!((mib(pcicn) - 2.12).abs() < 0.02, "PC+ICN {}", mib(pcicn));
        // Our accounting gives 2.37 MiB (paper: 2.35; see DESIGN.md on the
        // i16/slot-count assumption).
        assert!((mib(thr) - 2.35).abs() < 0.04, "Thresholds {}", mib(thr));
        // And the ordering the paper reports.
        assert!(plfb < plicn && plicn < pcicn && pcicn < thr);
    }

    #[test]
    fn activation_pair_arithmetic() {
        let l = LayerSpec::conv("c", 3, 2, 16, 32, 96, 96);
        // 8-bit: 96·96·16 + 48·48·32.
        assert_eq!(
            activation_pair_bytes(&l, BitWidth::W8, BitWidth::W8),
            96 * 96 * 16 + 48 * 48 * 32
        );
        // Output at 4 bits halves the second term.
        assert_eq!(
            activation_pair_bytes(&l, BitWidth::W8, BitWidth::W4),
            96 * 96 * 16 + 48 * 48 * 32 / 2
        );
    }

    #[test]
    fn peak_activation_finds_the_binding_pair() {
        let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
        let a8 = vec![BitWidth::W8; spec.num_layers() + 1];
        // DESIGN.md anchor: max pair is pw1 at 432 KiB.
        assert_eq!(peak_activation_bytes(&spec, &a8), 442_368);
    }

    #[test]
    fn budgets() {
        assert_eq!(MemoryBudget::stm32h7().rw_bytes, 524_288);
        assert_eq!(MemoryBudget::one_megabyte().ro_bytes, 1_048_576);
        assert_eq!(MemoryBudget::one_megabyte_small_ram().rw_bytes, 262_144);
        let s = MemoryBudget::stm32h7().to_string();
        assert!(s.contains("2.00 MiB"));
        // The shared Eq. 6/7 predicate: inclusive on both axes.
        let b = MemoryBudget::new(100, 10);
        assert!(b.fits(100, 10));
        assert!(!b.fits(101, 10));
        assert!(!b.fits(100, 11));
    }

    #[test]
    fn liveness_peak_prices_residual_live_sets() {
        // A squeeze bottleneck with an identity skip: the pairwise model
        // sees at most 768 B, the schedule's add step holds 1536 B.
        let spec = NetworkSpec::new(
            "squeeze",
            mixq_tensor::Shape::feature_map(8, 8, 2),
            vec![
                LayerSpec::conv("a", 3, 1, 2, 8, 8, 8),
                LayerSpec::conv("b", 1, 1, 8, 4, 8, 8),
                LayerSpec::conv("c", 1, 1, 4, 8, 8, 8),
                LayerSpec::linear("fc", 8, 3),
            ],
        )
        .with_skip(0, 2);
        let a8 = vec![BitWidth::W8; spec.num_layers() + 1];
        assert_eq!(peak_live_bytes(&spec, &a8, &[BitWidth::W8]), 1536);
        // Halving the residual-add output shrinks only the add step.
        assert_eq!(peak_live_bytes(&spec, &a8, &[BitWidth::W4]), 1280);
        // The flash model prices the add's parameter block.
        let w8 = vec![BitWidth::W8; spec.num_layers()];
        let chain = NetworkSpec::new("chain", spec.input(), spec.layers().to_vec());
        assert_eq!(
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelIcn, &w8, &a8),
            network_flash_footprint_with_acts(&chain, QuantScheme::PerChannelIcn, &w8, &a8)
                + RESIDUAL_ADD_PARAM_BYTES
        );
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(QuantScheme::PerLayerFolded.label(), "PL+FB");
        assert!(QuantScheme::PerChannelIcn.is_per_channel());
        assert!(!QuantScheme::PerLayerIcn.is_per_channel());
        assert_eq!(QuantScheme::ALL.len(), 4);
    }
}
