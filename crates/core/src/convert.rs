//! Conversion of a trained fake-quantized network `g(x)` into the
//! integer-only deployment model `g'(x)` (paper §4).
//!
//! For every `conv → batch-norm → quant-act` block the transfer function
//! (Eq. 3) is rewritten over integer codes (Eq. 4):
//!
//! ```text
//! Y = quant_act(Zy + (S_i·S_w/S_o)·(γ/σ)·(Φ + Bq)),
//! Φ = Σ (X − Zx)(W − Zw),   Bq = round((B − µ + β·σ/γ)/(S_i·S_w))
//! ```
//!
//! and the per-channel multiplier `M = (S_i·S_w/S_o)(γ/σ)` is decomposed as
//! `M0·2^N0` (Eq. 5) — the **Integer Channel-Normalization** activation.
//! The [`QuantScheme`] selects how the multiplier is realized: folded into
//! the weights per layer (PL+FB), stored per channel (PL+ICN / PC+ICN), or
//! expanded into exact integer thresholds (PC+Thresholds).

use std::sync::Arc;

use mixq_data::Dataset;
use mixq_kernels::{
    ActivationArena, AnyOp, Backend, GraphRun, KernelChoice, OpCounts, QActivation, QAdd, QAvgPool,
    QConv2d, QConvWeights, QGraph, QLinear, ReferenceBackend, Requantizer, ThreadPool,
    ThresholdChannel, WeightOffset, MAX_POOL_THREADS,
};
use mixq_nn::qat::{ConvBlock, QatMode, QatNetwork};
use mixq_nn::ConvKind;
use mixq_quant::{BitWidth, ChannelParams, FixedPointMultiplier, Granularity, QuantParams};
use mixq_tensor::{Shape, Tensor};

use crate::memory::QuantScheme;
use crate::MixQError;

/// Smallest |γ| treated as non-degenerate (a trained batch-norm never gets
/// near this; guards the `β·σ/γ` term of Eq. 4).
const GAMMA_EPS: f32 = 1e-6;

/// The integer-only deployment network `g'(x)`: a [`QGraph`] of integer
/// kernels plus the input quantizer.
///
/// Inference, flash accounting and peak-RAM accounting all delegate to the
/// graph — the network is a thin façade that adds input quantization and
/// dataset-level evaluation.
///
/// See the [crate-level example](crate) and `examples/quickstart.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntNetwork {
    input_quant: QuantParams,
    input_shape: Shape,
    graph: QGraph,
    scheme: QuantScheme,
    /// Worker threads each single graph walk splits its row/channel blocks
    /// across (1 = serial). A host-throughput knob only: logits, op counts
    /// and modeled MCU cycles are bit-identical at every setting.
    threads: usize,
}

impl IntNetwork {
    /// The deployment scheme this network was converted with.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// The executable deployment graph.
    pub fn graph(&self) -> &QGraph {
        &self.graph
    }

    /// Mutable access to the deployment graph — deployment-time rewrites
    /// and fault-injection tests forge nodes through this. A mutated
    /// graph carries no proof: re-run `mixq-verify` before trusting it
    /// (the serving registry does so on registration).
    pub fn graph_mut(&mut self) -> &mut QGraph {
        &mut self.graph
    }

    /// The convolution layers, in execution order.
    pub fn layers(&self) -> Vec<&QConv2d> {
        self.graph.convs()
    }

    /// The classifier head.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no head (a converted network always does).
    pub fn linear(&self) -> &QLinear {
        self.graph.head().expect("converted network has a head")
    }

    /// The 8-bit input quantizer.
    pub fn input_quant(&self) -> &QuantParams {
        &self.input_quant
    }

    /// The single-item input shape the network was converted with
    /// (`(1, h, w, c)`).
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Number of classifier outputs (logits per sample).
    pub fn num_classes(&self) -> usize {
        self.linear().out_features()
    }

    /// Checks an untrusted request tensor against the network's input
    /// declaration, returning its batch size — the non-panicking serving
    /// boundary the `try_*` inference APIs and `mixq-serve` admission run
    /// before any kernel touches the data.
    ///
    /// # Errors
    ///
    /// [`MixQError::EmptyBatch`] for a zero-item batch,
    /// [`MixQError::InputLengthMismatch`] when the backing buffer length
    /// disagrees with the declared shape, and
    /// [`MixQError::InputShapeMismatch`] when the per-item shape is not
    /// the network's input shape (oversized batches of wrong-shaped items
    /// included).
    pub fn validate_request(&self, images: &Tensor<f32>) -> Result<usize, MixQError> {
        let shape = images.shape();
        if shape.n == 0 {
            return Err(MixQError::EmptyBatch);
        }
        if images.data().len() != shape.volume() {
            return Err(MixQError::InputLengthMismatch {
                expected: shape.volume(),
                got: images.data().len(),
            });
        }
        if shape.with_batch(1) != self.input_shape {
            return Err(MixQError::InputShapeMismatch {
                expected: self.input_shape,
                got: shape,
            });
        }
        Ok(shape.n)
    }

    /// Worker threads used *inside* each graph walk (see
    /// [`IntNetwork::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the number of worker threads each single graph walk splits its
    /// im2col row blocks (GEMM paths) and output-channel blocks (direct /
    /// depthwise paths) across. `1` (the default) keeps every walk serial.
    ///
    /// This is intra-walk parallelism — orthogonal to
    /// [`IntNetwork::evaluate_parallel_batch`], which shards *batches*
    /// across threads with serial walks. Don't multiply the two: the
    /// product is the total thread count.
    ///
    /// Logits, `OpCounts` and modeled MCU cycles are bit-identical at
    /// every setting (asserted by the threading proptests); only host
    /// wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds
    /// [`MAX_POOL_THREADS`].
    pub fn set_threads(&mut self, threads: usize) {
        assert!(
            (1..=MAX_POOL_THREADS).contains(&threads),
            "threads must be in 1..={MAX_POOL_THREADS}, got {threads}"
        );
        self.threads = threads;
    }

    /// Attaches a fresh worker pool to `arena` when `threads > 1` — one
    /// pool per evaluation call, reused across every walk that shares the
    /// arena, so steady state stays allocation-free.
    fn attach_pool(&self, arena: &mut ActivationArena) {
        if self.threads > 1 {
            arena.set_pool(Arc::new(ThreadPool::new(self.threads)));
        }
    }

    /// The kernel implementation each graph node resolved to, in schedule
    /// order — all `DirectConv` for a [`ReferenceBackend`] conversion.
    pub fn kernel_choices(&self) -> Vec<KernelChoice> {
        self.graph.kernel_choices()
    }

    /// Re-resolves every node's kernel against a different backend without
    /// re-running the conversion — logits are bit-identical across
    /// backends, so retargeting is free of accuracy effects.
    ///
    /// # Panics
    ///
    /// Panics if the backend selects a kernel some node does not support.
    pub fn select_backend(&mut self, backend: &dyn Backend) {
        self.graph.select_kernels(backend);
    }

    /// Quantizes a float image into the input activation.
    ///
    /// # Panics
    ///
    /// Panics if the image is not a single item of the expected shape.
    pub fn quantize_input(&self, image: &Tensor<f32>) -> QActivation {
        assert_eq!(image.shape(), self.input_shape, "input shape");
        let codes: Vec<u8> = image
            .data()
            .iter()
            .map(|&v| self.input_quant.quantize(v) as u8)
            .collect();
        QActivation::from_codes(
            self.input_shape,
            &codes,
            BitWidth::W8,
            self.input_quant.zero_point() as u8,
        )
    }

    /// Runs integer-only inference on one float image, returning the `i32`
    /// logits and the operation counts.
    pub fn infer(&self, image: &Tensor<f32>) -> (Vec<i32>, OpCounts) {
        let run = self.infer_detailed(image);
        let ops = run.total_ops();
        (run.into_logits(), ops)
    }

    /// Runs integer-only inference keeping the full per-layer ledger — the
    /// record cycle models turn into per-layer latency breakdowns.
    pub fn infer_detailed(&self, image: &Tensor<f32>) -> GraphRun {
        self.graph.run(self.quantize_input(image))
    }

    /// [`IntNetwork::infer`] behind the request validation of
    /// [`IntNetwork::validate_request`]: a wrong-shape, wrong-length or
    /// batched tensor comes back as a typed [`MixQError`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// See [`IntNetwork::validate_request`]; a multi-item batch is an
    /// [`MixQError::InputShapeMismatch`] here (use
    /// [`IntNetwork::try_infer_batch`]).
    pub fn try_infer(&self, image: &Tensor<f32>) -> Result<(Vec<i32>, OpCounts), MixQError> {
        let batch = self.validate_request(image)?;
        if batch != 1 {
            return Err(MixQError::InputShapeMismatch {
                expected: self.input_shape,
                got: image.shape(),
            });
        }
        Ok(self.infer(image))
    }

    /// [`IntNetwork::infer_batch`] behind the request validation of
    /// [`IntNetwork::validate_request`] — the serving layer's workhorse.
    ///
    /// # Errors
    ///
    /// See [`IntNetwork::validate_request`].
    pub fn try_infer_batch(
        &self,
        images: &Tensor<f32>,
    ) -> Result<(Vec<Vec<i32>>, OpCounts), MixQError> {
        self.validate_request(images)?;
        Ok(self.infer_batch(images))
    }

    /// Predicted class of one image.
    pub fn predict(&self, image: &Tensor<f32>) -> usize {
        let (logits, _) = self.infer(image);
        argmax(&logits)
    }

    /// Quantizes a float image drawing code scratch and packed storage
    /// from `arena` — together with
    /// [`QGraph::infer_pooled`](mixq_kernels::QGraph::infer_pooled), the
    /// allocation-free steady-state inference path.
    ///
    /// # Panics
    ///
    /// Panics if the image is not a single item of the expected shape.
    pub fn quantize_input_pooled(
        &self,
        image: &Tensor<f32>,
        arena: &mut ActivationArena,
    ) -> QActivation {
        assert_eq!(image.shape(), self.input_shape, "input shape");
        let mut codes = arena.take_scratch();
        codes.clear();
        codes.extend(
            image
                .data()
                .iter()
                .map(|&v| self.input_quant.quantize(v) as u8),
        );
        let act = QActivation::from_codes_in(
            self.input_shape,
            &codes,
            BitWidth::W8,
            self.input_quant.zero_point() as u8,
            arena.take_packed(),
        );
        arena.put_scratch(codes);
        act
    }

    /// Quantizes `count` consecutive items of a stacked `(N, h, w, c)`
    /// image tensor, starting at `start`, into **one** batched activation
    /// `(count, h, w, c)`, drawing all buffers from `arena` — the batch
    /// twin of [`IntNetwork::quantize_input_pooled`], feeding
    /// [`QGraph::infer_batch`](mixq_kernels::QGraph::infer_batch) without
    /// heap allocation in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the tensor's item shape disagrees with the network input,
    /// the range is out of bounds, or `count` is zero.
    pub fn quantize_input_items_pooled(
        &self,
        images: &Tensor<f32>,
        start: usize,
        count: usize,
        arena: &mut ActivationArena,
    ) -> QActivation {
        assert!(count > 0, "batch must hold at least one item");
        assert_eq!(
            images.shape().with_batch(1),
            self.input_shape,
            "input item shape"
        );
        assert!(start + count <= images.shape().n, "batch range");
        let item = self.input_shape.volume();
        let mut codes = arena.take_scratch();
        codes.clear();
        codes.extend(
            images.data()[start * item..(start + count) * item]
                .iter()
                .map(|&v| self.input_quant.quantize(v) as u8),
        );
        let act = QActivation::from_codes_in(
            self.input_shape.with_batch(count),
            &codes,
            BitWidth::W8,
            self.input_quant.zero_point() as u8,
            arena.take_packed(),
        );
        arena.put_scratch(codes);
        act
    }

    /// Runs integer-only inference on a stacked `(N, h, w, c)` image
    /// tensor in **one graph walk**, returning the per-sample logits (one
    /// `Vec` per item, in order) and the total op counts. Bit-identical to
    /// N [`IntNetwork::infer`] calls; the batch amortizes per-layer
    /// dispatch and streams each node's prepacked weights across all
    /// samples.
    pub fn infer_batch(&self, images: &Tensor<f32>) -> (Vec<Vec<i32>>, OpCounts) {
        let batch = images.shape().n;
        let mut arena = ActivationArena::new();
        self.attach_pool(&mut arena);
        let mut logits = Vec::new();
        let mut ops = OpCounts::default();
        let x = self.quantize_input_items_pooled(images, 0, batch, &mut arena);
        self.graph.infer_batch(x, &mut arena, &mut logits, &mut ops);
        let classes = self.linear().out_features();
        let per_sample = logits.chunks(classes).map(<[i32]>::to_vec).collect();
        (per_sample, ops)
    }

    /// Classification accuracy over a dataset plus total op counts —
    /// [`IntNetwork::evaluate_batch`] one sample at a time.
    ///
    /// The whole evaluation shares one activation arena: code scratch and
    /// packed activation storage are recycled across samples, so the loop
    /// allocates nothing after its first iteration (asserted by the
    /// `allocation_free` integration test).
    pub fn evaluate(&self, dataset: &Dataset) -> (f32, OpCounts) {
        self.evaluate_batch(dataset, 1)
    }

    /// Classification accuracy over a dataset, walking the graph once per
    /// `batch` samples: each walk quantizes the next `batch` images into
    /// one stacked activation and sweeps every layer across all of them,
    /// so per-layer dispatch and prepacked-weight streaming are amortized.
    /// Accuracy and `OpCounts` are bit-identical to the sample-at-a-time
    /// path (asserted by the batch proptests); only wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn evaluate_batch(&self, dataset: &Dataset, batch: usize) -> (f32, OpCounts) {
        assert!(batch > 0, "batch size must be positive");
        let mut ops = OpCounts::default();
        if dataset.is_empty() {
            return (0.0, ops);
        }
        let mut arena = ActivationArena::new();
        self.attach_pool(&mut arena);
        let mut logits = Vec::new();
        let mut correct = 0usize;
        let n = dataset.len();
        let classes = self.linear().out_features();
        let mut start = 0usize;
        while start < n {
            let count = batch.min(n - start);
            let x = self.quantize_input_items_pooled(dataset.images(), start, count, &mut arena);
            self.graph.infer_batch(x, &mut arena, &mut logits, &mut ops);
            for (j, row) in logits.chunks(classes).enumerate() {
                if argmax(row) == dataset.labels()[start + j] {
                    correct += 1;
                }
            }
            start += count;
        }
        (correct as f32 / n as f32, ops)
    }

    /// [`IntNetwork::evaluate`] sharded across `workers` threads —
    /// [`IntNetwork::evaluate_parallel_batch`] with single-sample batches.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn evaluate_parallel(&self, dataset: &Dataset, workers: usize) -> (f32, OpCounts) {
        self.evaluate_parallel_batch(dataset, workers, 1)
    }

    /// [`IntNetwork::evaluate_batch`] sharded across `workers` threads
    /// (`std::thread::scope`), one arena per worker. The shards are
    /// **whole batches**, not samples: the dataset is split into
    /// `⌈n / batch⌉` batches first and each worker walks a contiguous run
    /// of them, so every graph walk keeps its full batch width (only the
    /// final batch of the dataset may be partial). Accuracy and `OpCounts`
    /// are identical to the sequential path — batches are disjoint and the
    /// ledger sums are order-independent.
    ///
    /// Each worker's walks stay **serial** regardless of
    /// [`IntNetwork::set_threads`]: combining batch-level sharding with
    /// intra-walk splitting would oversubscribe the host.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `batch` is zero.
    pub fn evaluate_parallel_batch(
        &self,
        dataset: &Dataset,
        workers: usize,
        batch: usize,
    ) -> (f32, OpCounts) {
        assert!(workers > 0, "need at least one worker");
        assert!(batch > 0, "batch size must be positive");
        if dataset.is_empty() {
            return (0.0, OpCounts::default());
        }
        let n = dataset.len();
        let num_batches = n.div_ceil(batch);
        let workers = workers.min(num_batches);
        let chunk = num_batches.div_ceil(workers);
        let classes = self.linear().out_features();
        let mut results = vec![(0usize, OpCounts::default()); workers];
        std::thread::scope(|s| {
            for (w, slot) in results.iter_mut().enumerate() {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(num_batches);
                s.spawn(move || {
                    let mut arena = ActivationArena::new();
                    let mut logits = Vec::new();
                    let mut ops = OpCounts::default();
                    let mut correct = 0usize;
                    for b in lo..hi {
                        let start = b * batch;
                        let count = batch.min(n - start);
                        let x = self.quantize_input_items_pooled(
                            dataset.images(),
                            start,
                            count,
                            &mut arena,
                        );
                        self.graph.infer_batch(x, &mut arena, &mut logits, &mut ops);
                        for (j, row) in logits.chunks(classes).enumerate() {
                            if argmax(row) == dataset.labels()[start + j] {
                                correct += 1;
                            }
                        }
                    }
                    *slot = (correct, ops);
                });
            }
        });
        let (correct, ops) = results
            .into_iter()
            .fold((0usize, OpCounts::default()), |(c, o), (c2, o2)| {
                (c + c2, o + o2)
            });
        (correct as f32 / n as f32, ops)
    }

    /// A copy of the network whose threshold tables are saturated to the
    /// INT16 storage range Table 2's footprint implies — what a deployment
    /// that stores tables as `int16_t` actually executes. No-op for
    /// non-threshold schemes. See the `ablation_mixed_precision` bench for
    /// the end-to-end accuracy comparison.
    pub fn with_saturated_thresholds(&self) -> IntNetwork {
        let mut net = self.clone();
        for node in net.graph.nodes_mut() {
            if let AnyOp::Conv(c) = node.op_mut() {
                *c = QConv2d::new(
                    c.weights().clone(),
                    c.geometry(),
                    c.requant().saturated_i16(),
                );
            }
        }
        net
    }

    /// Peak RAM of the inference (Eq. 7 evaluated on the *actual* converted
    /// tensors): the liveness-planned high-water mark of the graph's
    /// schedule, with each tensor at its deployed precision. On a chain
    /// this is the classic largest input+output pair; on a residual graph
    /// the pending skip tensor is priced too, and the value matches the
    /// executor's measured `GraphRun::peak_live_bytes` exactly.
    pub fn peak_ram_bytes(&self) -> usize {
        self.peak_ram_bytes_batch(1)
    }

    /// [`IntNetwork::peak_ram_bytes`] for batch-N inference: every tensor
    /// of the live set carries the batch dimension, so the Eq. 7 peak
    /// scales with the batch — the price of amortizing weight streaming
    /// across samples, which a deployment must trade against its `M_RW`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn peak_ram_bytes_batch(&self, batch: usize) -> usize {
        assert!(batch > 0, "batch size must be positive");
        self.graph
            .peak_ram_bytes(self.input_shape.with_batch(batch), BitWidth::W8)
    }

    /// Largest transient scratch buffer any node needs with its selected
    /// kernel at batch N (the im2col expansion widens to `K × N·cols`);
    /// zero for a reference-selected graph.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn peak_scratch_bytes_batch(&self, batch: usize) -> usize {
        assert!(batch > 0, "batch size must be positive");
        self.graph
            .peak_scratch_bytes(self.input_shape.with_batch(batch), BitWidth::W8)
    }

    /// Read-only bytes of all prepacked weight operands the deployment
    /// graph caches ([`QGraph::prepacked_bytes`](mixq_kernels::QGraph::prepacked_bytes))
    /// — flash-side accounting, separate from the Table-1 model of
    /// [`IntNetwork::flash_bytes`].
    pub fn prepacked_bytes(&self) -> usize {
        self.graph.prepacked_bytes()
    }

    /// Drops every node's prepack cache
    /// ([`QGraph::clear_prepack`](mixq_kernels::QGraph::clear_prepack)),
    /// reverting to per-call packing — for deployments that cannot afford
    /// the panel copies, and for benchmarking the amortization itself.
    /// Bit-identical, only slower.
    pub fn clear_prepack(&mut self) {
        self.graph.clear_prepack();
    }

    /// Actual flash bytes of this network: packed weights plus every static
    /// parameter at its §4.1 datatype. Cross-checked against the Table-1
    /// memory model in the integration tests.
    pub fn flash_bytes(&self) -> usize {
        self.graph.flash_bytes()
    }
}

fn argmax(logits: &[i32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The granularity a scheme quantizes weights with.
pub fn scheme_granularity(scheme: QuantScheme) -> Granularity {
    if scheme.is_per_channel() {
        Granularity::PerChannel
    } else {
        Granularity::PerLayer
    }
}

/// Converts a trained fake-quantized network into an integer-only model
/// with the reference kernel backend (direct kernels on every node) —
/// [`convert_with_backend`] with [`ReferenceBackend`].
///
/// # Errors
///
/// See [`convert_with_backend`].
pub fn convert(net: &QatNetwork, scheme: QuantScheme) -> Result<IntNetwork, MixQError> {
    convert_with_backend(net, scheme, &ReferenceBackend)
}

/// Converts a trained fake-quantized network into an integer-only model,
/// resolving every graph node's kernel implementation through `backend` at
/// build time. All backends produce bit-identical logits; they differ in
/// the selected dataflow per node ([`KernelChoice`]) and therefore in the
/// modeled cycles and transient scratch RAM.
///
/// The network must be in fake-quant mode with a calibrated input
/// quantizer; its batch-norm statistics are read as frozen inference
/// parameters (the paper freezes them after the first epoch).
///
/// # Errors
///
/// [`MixQError::NotCalibrated`] / [`MixQError::NotFakeQuantized`] when the
/// network is not ready for deployment conversion.
pub fn convert_with_backend(
    net: &QatNetwork,
    scheme: QuantScheme,
    backend: &dyn Backend,
) -> Result<IntNetwork, MixQError> {
    let input_quant = *net.input_quant().ok_or(MixQError::NotCalibrated)?;
    if net.mode() != QatMode::FakeQuant {
        return Err(MixQError::NotFakeQuantized);
    }
    let granularity = scheme_granularity(scheme);
    let mut graph = QGraph::with_input(net.input_shape(), BitWidth::W8);
    // Scale and zero-point of the tensor flowing *into* each block.
    let mut s_in = input_quant.scale();
    let mut z_in = input_quant.zero_point();
    // Tensor id and scale of each block's (post-residual) output, so skip
    // connections can reference their source branch in the DAG.
    let mut cur_id = 0usize;
    let mut out_ids = Vec::with_capacity(net.num_blocks());
    let mut out_scales = Vec::with_capacity(net.num_blocks());
    for (i, block) in net.blocks().iter().enumerate() {
        let out_q = block.act().quant_params();
        let layer = convert_block(block, scheme, granularity, s_in, z_in)?;
        let kind = if block.conv().kind() == ConvKind::Depthwise {
            "dw"
        } else {
            "conv"
        };
        cur_id = graph.push_node(format!("{kind}{i}"), layer, &[cur_id]);
        let mut s_cur = out_q.scale();
        if let Some(r) = net.residual_ending_at(i) {
            // Lower the skip join to a requantizing add: both branches are
            // zero-based PACT activations, the output lives on the
            // residual activation's grid.
            let skip = &net.residuals()[r];
            let s_res = skip.act().quant_params().scale();
            let add = QAdd::from_scales(
                s_cur as f64,
                out_scales[skip.from()] as f64,
                s_res as f64,
                0,
                0,
                0,
                skip.act().bits(),
            );
            cur_id = graph.push_node(format!("add{i}"), add, &[cur_id, out_ids[skip.from()]]);
            s_cur = s_res;
        }
        out_ids.push(cur_id);
        out_scales.push(s_cur);
        s_in = s_cur;
        z_in = 0; // PACT activations are zero-based
    }
    graph.push("avgpool", QAvgPool);
    // The classifier consumes the pooled features (same scale/zero-point).
    graph.push("fc", convert_linear(net, granularity, s_in, z_in));
    graph.select_kernels(backend);
    Ok(IntNetwork {
        input_quant,
        input_shape: net.input_shape(),
        graph,
        scheme,
        threads: 1,
    })
}

fn quantize_weights(
    weights: &Tensor<f32>,
    quantizer: &ChannelParams,
    depthwise: bool,
) -> QConvWeights {
    let codes = quantizer.quantize_tensor(weights);
    let offset = if quantizer.is_per_channel() {
        WeightOffset::PerChannel(
            quantizer
                .iter()
                .map(|q| q.zero_point().clamp(i16::MIN as i32, i16::MAX as i32) as i16)
                .collect(),
        )
    } else {
        WeightOffset::PerLayer(quantizer.channel(0).zero_point().clamp(0, 255) as u8)
    };
    QConvWeights::new(
        weights.shape(),
        depthwise,
        codes.data(),
        quantizer.bits(),
        offset,
    )
}

fn convert_block(
    block: &ConvBlock,
    scheme: QuantScheme,
    granularity: Granularity,
    s_in: f32,
    _z_in: i32,
) -> Result<QConv2d, MixQError> {
    let conv = block.conv();
    let depthwise = conv.kind() == ConvKind::Depthwise;
    let out_q = block.act().quant_params();
    let s_out = out_q.scale();
    let out_bits = block.act().bits();
    let co = conv.out_channels();
    let zy = 0i32;

    let requant;
    let qweights;
    match scheme {
        QuantScheme::PerLayerFolded => {
            // Fold batch-norm into the weights, then per-layer quantize.
            let (w_folded, b_folded, _) = block.folded_params();
            let quantizer =
                ChannelParams::from_granularity(&w_folded, block.weight_bits(), granularity);
            qweights = quantize_weights(&w_folded, &quantizer, depthwise);
            let sw = quantizer.channel(0).scale();
            let m = (s_in as f64 * sw as f64) / s_out as f64;
            let bq: Vec<i32> = b_folded
                .iter()
                .map(|&b| (b as f64 / (s_in as f64 * sw as f64)).round() as i32)
                .collect();
            requant = Requantizer::folded(bq, FixedPointMultiplier::from_real(m), zy, out_bits);
        }
        QuantScheme::PerLayerIcn | QuantScheme::PerChannelIcn => {
            // Honours a learned PACT weight clip when present (PL path).
            let quantizer = block.weight_quantizer(granularity);
            qweights = quantize_weights(conv.weights(), &quantizer, depthwise);
            let mut bq = Vec::with_capacity(co);
            let mut mult = Vec::with_capacity(co);
            for c in 0..co {
                let (m, b) = icn_channel_params(block, c, s_in, s_out, quantizer.channel(c));
                bq.push(b.round() as i32);
                mult.push(FixedPointMultiplier::from_real(m));
            }
            requant = Requantizer::icn(bq, mult, zy, out_bits);
        }
        QuantScheme::PerChannelThresholds => {
            let quantizer = block.weight_quantizer(granularity);
            qweights = quantize_weights(conv.weights(), &quantizer, depthwise);
            let mut channels = Vec::with_capacity(co);
            for c in 0..co {
                let (m, b) = icn_channel_params(block, c, s_in, s_out, quantizer.channel(c));
                // Keep the offset real-valued: thresholds are exact.
                channels.push(ThresholdChannel::from_transfer(m, m * b, zy, out_bits));
            }
            requant = Requantizer::thresholds(channels, zy, out_bits);
        }
    }
    Ok(QConv2d::new(qweights, conv.geometry(), requant))
}

/// Per-channel `(M, Bq)` of Eq. 4: `M = (S_i·S_w/S_o)·(γ/σ)` and
/// `Bq = (B − µ + β·σ/γ)/(S_i·S_w)` (returned unrounded).
fn icn_channel_params(
    block: &ConvBlock,
    c: usize,
    s_in: f32,
    s_out: f32,
    wq: &QuantParams,
) -> (f64, f64) {
    let bn = block.bn();
    let gamma_raw = bn.gamma()[c];
    let gamma = if gamma_raw.abs() < GAMMA_EPS {
        GAMMA_EPS.copysign(if gamma_raw == 0.0 { 1.0 } else { gamma_raw })
    } else {
        gamma_raw
    };
    let sigma = bn.running_std()[c];
    let mu = bn.running_mean()[c];
    let beta = bn.beta()[c];
    let bias = block.conv().bias()[c];
    let sw = wq.scale();
    let si_sw = s_in as f64 * sw as f64;
    let m = si_sw / s_out as f64 * (gamma as f64 / sigma as f64);
    let bq = (bias as f64 - mu as f64 + beta as f64 * sigma as f64 / gamma as f64) / si_sw;
    (m, bq)
}

fn convert_linear(net: &QatNetwork, granularity: Granularity, s_in: f32, z_in: i32) -> QLinear {
    let lin = net.linear();
    let quantizer =
        ChannelParams::from_granularity(lin.weights(), net.linear_weight_bits(), granularity);
    let qweights = quantize_weights(lin.weights(), &quantizer, false);
    // Common logits scale: the largest per-class scale, so every rescale
    // multiplier is ≤ 1 (headroom-safe on the MCU).
    let s_ref: f64 = (0..lin.out_features())
        .map(|o| s_in as f64 * quantizer.channel(o).scale() as f64)
        .fold(f64::MIN, f64::max);
    let mut bq = Vec::with_capacity(lin.out_features());
    let mut rescale = Vec::with_capacity(lin.out_features());
    for o in 0..lin.out_features() {
        let s_o = s_in as f64 * quantizer.channel(o).scale() as f64;
        bq.push((lin.bias()[o] as f64 / s_o).round() as i32);
        rescale.push(FixedPointMultiplier::from_real(s_o / s_ref));
    }
    let _ = z_in; // the kernel reads Zx from the activation itself
    QLinear::new(qweights, bq, Some(rescale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_data::{DatasetSpec, SyntheticKind};
    use mixq_nn::qat::MicroCnnSpec;
    use mixq_nn::train::{train, TrainConfig};

    fn trained_net(granularity: Granularity, bits: BitWidth) -> (QatNetwork, Dataset) {
        let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
            .with_samples(96)
            .with_noise(0.05)
            .with_amplitude_base(2.0)
            .generate(31);
        let spec = MicroCnnSpec::new(8, 8, 2, 3, &[6, 8]);
        let mut net = QatNetwork::build(&spec, 77);
        let _ = train(&mut net, &ds, &TrainConfig::fast(6));
        net.calibrate_input(ds.images());
        net.enable_fake_quant(granularity);
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, bits);
        }
        net.set_linear_weight_bits(bits);
        let _ = train(&mut net, &ds, &TrainConfig::fast(4));
        (net, ds)
    }

    #[test]
    fn conversion_requires_calibration_and_fake_quant() {
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let net = QatNetwork::build(&spec, 0);
        assert_eq!(
            convert(&net, QuantScheme::PerChannelIcn).unwrap_err(),
            MixQError::NotCalibrated
        );
        let mut net2 = QatNetwork::build(&spec, 0);
        net2.calibrate_input(&Tensor::full(Shape::feature_map(8, 8, 1), 1.0));
        assert_eq!(
            convert(&net2, QuantScheme::PerChannelIcn).unwrap_err(),
            MixQError::NotFakeQuantized
        );
    }

    #[test]
    fn icn_inference_matches_fake_quant_accuracy() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W8);
        let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        let fq_acc = mixq_nn::train::evaluate(&net, &ds);
        let (int_acc, ops) = int_net.evaluate(&ds);
        assert!(
            (fq_acc - int_acc).abs() <= 0.05,
            "fake-quant {fq_acc} vs integer {int_acc}"
        );
        assert!(ops.macs > 0);
    }

    #[test]
    fn icn_codes_match_fake_quant_activations_within_one_lsb() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W8);
        let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        // Compare the first block's activation codes on a few samples.
        let mut total = 0usize;
        let mut off_by_more = 0usize;
        for i in 0..8 {
            let sample = ds.sample(i);
            // Integer path.
            let mut ops = OpCounts::default();
            let x = int_net.quantize_input(&sample.images);
            let y_int = int_net.layers()[0].execute(&x, &mut ops);
            // Fake-quant path, re-quantized to codes.
            let q_in = net.input_quant().unwrap();
            let x_fq = q_in.fake_quantize_tensor(&sample.images);
            let block = &net.blocks()[0];
            let wq = block
                .weight_quantizer(Granularity::PerChannel)
                .fake_quantize_tensor(block.conv().weights());
            let z = block.conv().forward_with(&x_fq, &wq);
            let z = block.bn().forward_eval(&z);
            let (a, _) = block.act().forward(&z);
            let qp = block.act().quant_params();
            for (idx, &v) in a.data().iter().enumerate() {
                let code_fq = qp.quantize(v) as i64;
                let code_int = y_int.codes()[idx] as i64;
                total += 1;
                if (code_fq - code_int).abs() > 1 {
                    off_by_more += 1;
                }
            }
        }
        assert_eq!(
            off_by_more, 0,
            "codes differing by >1 LSB: {off_by_more}/{total}"
        );
    }

    #[test]
    fn tiled_backend_conversion_is_bit_identical_in_logits() {
        use mixq_kernels::{BackendKind, TiledBackend};
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W4);
        let reference = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        let tiled =
            convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
                .expect("convertible");
        // Standard convolutions lowered onto the blocked GEMM; depthwise,
        // pool, head and the reference conversion stay direct.
        assert!(tiled.kernel_choices().contains(&KernelChoice::BlockedGemm));
        assert!(reference
            .kernel_choices()
            .iter()
            .all(|&c| c == KernelChoice::DirectConv));
        for i in 0..8 {
            let img = &ds.sample(i).images;
            assert_eq!(reference.infer(img).0, tiled.infer(img).0, "sample {i}");
        }
        // Retargeting an existing network reproduces the build-time choices.
        let mut retargeted = reference.clone();
        retargeted.select_backend(&BackendKind::tiled());
        assert_eq!(retargeted.kernel_choices(), tiled.kernel_choices());
        assert_eq!(retargeted, tiled);
    }

    #[test]
    fn thresholds_agree_with_icn_predictions() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W4);
        let icn = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        let thr = convert(&net, QuantScheme::PerChannelThresholds).expect("convertible");
        let mut agree = 0usize;
        for i in 0..ds.len() {
            let s = ds.sample(i);
            if icn.predict(&s.images) == thr.predict(&s.images) {
                agree += 1;
            }
        }
        let rate = agree as f32 / ds.len() as f32;
        assert!(rate > 0.9, "ICN vs thresholds agreement too low: {rate}");
    }

    #[test]
    fn thresholds_use_comparisons_not_multiplies() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W4);
        let thr = convert(&net, QuantScheme::PerChannelThresholds).expect("convertible");
        let (_, ops) = thr.infer(&ds.sample(0).images);
        assert!(ops.threshold_cmps > 0);
        // Only the classifier rescale and pool division count as requants.
        let icn = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        let (_, ops_icn) = icn.infer(&ds.sample(0).images);
        assert!(ops_icn.requants > ops.requants);
    }

    #[test]
    fn folded_scheme_runs_and_eight_bit_stays_accurate() {
        // At 8 bits, folding is nearly lossless — the paper's PL+FB INT8
        // baseline works; the collapse only appears at INT4 (Table 2).
        let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
            .with_samples(96)
            .with_noise(0.05)
            .with_amplitude_base(2.0)
            .generate(31);
        let spec = MicroCnnSpec::new(8, 8, 2, 3, &[6, 8]);
        let mut net = QatNetwork::build(&spec, 77);
        let _ = train(&mut net, &ds, &TrainConfig::fast(6));
        net.calibrate_input(ds.images());
        net.enable_fake_quant(Granularity::PerLayer);
        net.set_fold_bn(true);
        let _ = train(&mut net, &ds, &TrainConfig::fast(4));
        let fq_acc = mixq_nn::train::evaluate(&net, &ds);
        let int_net = convert(&net, QuantScheme::PerLayerFolded).expect("convertible");
        let (int_acc, _) = int_net.evaluate(&ds);
        assert!(
            (fq_acc - int_acc).abs() <= 0.08,
            "PL+FB INT8: fake-quant {fq_acc} vs integer {int_acc}"
        );
    }

    #[test]
    fn per_channel_offsets_cost_inner_loop_subtractions() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W8);
        let pc = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        let (_, ops_pc) = pc.infer(&ds.sample(0).images);
        assert_eq!(ops_pc.offset_subs, ops_pc.macs, "PC: one sub per MAC");
        let (net_pl, _) = trained_net(Granularity::PerLayer, BitWidth::W8);
        let pl = convert(&net_pl, QuantScheme::PerLayerIcn).expect("convertible");
        let (_, ops_pl) = pl.infer(&ds.sample(0).images);
        assert_eq!(ops_pl.offset_subs, 0, "PL: no in-loop subs");
    }

    #[test]
    fn untrusted_requests_are_rejected_with_typed_errors() {
        let (net, ds) = trained_net(Granularity::PerChannel, BitWidth::W8);
        let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
        assert_eq!(int_net.input_shape(), Shape::feature_map(8, 8, 2));
        assert_eq!(int_net.num_classes(), 3);
        // Wrong per-item shape.
        let bad = Tensor::full(Shape::feature_map(4, 4, 2), 0.5);
        assert!(matches!(
            int_net.try_infer(&bad),
            Err(MixQError::InputShapeMismatch { .. })
        ));
        // Oversized request: right item volume, absurd spatial dims.
        let huge = Tensor::full(Shape::new(1, 64, 64, 2), 0.5);
        assert!(matches!(
            int_net.try_infer_batch(&huge),
            Err(MixQError::InputShapeMismatch { .. })
        ));
        // Zero-item batch.
        let empty = Tensor::zeros(Shape::new(0, 8, 8, 2));
        assert!(matches!(
            int_net.try_infer_batch(&empty),
            Err(MixQError::EmptyBatch)
        ));
        // A batch through try_infer (single-sample API) is typed too.
        let two = Tensor::full(Shape::new(2, 8, 8, 2), 0.5);
        assert!(matches!(
            int_net.try_infer(&two),
            Err(MixQError::InputShapeMismatch { .. })
        ));
        // Well-formed requests pass through bit-identically.
        let img = &ds.sample(0).images;
        assert_eq!(
            int_net.try_infer(img).expect("valid").0,
            int_net.infer(img).0
        );
        let (rows, _) = int_net
            .try_infer_batch(&two_stack(&ds))
            .expect("valid batch");
        assert_eq!(rows[0], int_net.infer(&ds.sample(0).images).0);
        assert_eq!(rows[1], int_net.infer(&ds.sample(1).images).0);
    }

    fn two_stack(ds: &Dataset) -> Tensor<f32> {
        let a = &ds.sample(0).images;
        let b = &ds.sample(1).images;
        let mut data = a.data().to_vec();
        data.extend_from_slice(b.data());
        Tensor::from_vec(a.shape().with_batch(2), data).expect("stacked")
    }

    #[test]
    fn flash_bytes_reflects_sub_byte_packing() {
        let (mut net, _) = trained_net(Granularity::PerChannel, BitWidth::W8);
        let w8 = convert(&net, QuantScheme::PerChannelIcn)
            .expect("convertible")
            .flash_bytes();
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, BitWidth::W4);
        }
        net.set_linear_weight_bits(BitWidth::W4);
        let w4 = convert(&net, QuantScheme::PerChannelIcn)
            .expect("convertible")
            .flash_bytes();
        assert!(w4 < w8, "4-bit packing must shrink flash: {w4} vs {w8}");
    }
}
