use std::error::Error;
use std::fmt;

use crate::Shape;

/// Errors produced by tensor construction and reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match the number of elements
    /// implied by the shape.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors were expected to share a shape but do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch {
            expected: 12,
            actual: 10,
        };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("10"));

        let err = TensorError::ShapeMismatch {
            left: Shape::new(1, 2, 2, 3),
            right: Shape::new(1, 2, 2, 4),
        };
        assert!(err.to_string().contains("mismatch"));
    }
}
