//! # mixq-tensor
//!
//! Minimal NHWC tensor substrate used by every other `mixq` crate.
//!
//! The paper's inference graphs (MobileNetV1 family and the micro-CNNs used
//! for quantization-aware training) only need dense, row-major, NHWC tensors
//! with `f32` (training / fake-quant) and integer (`u8`/`i32`) storage for
//! the integer-only deployment path. This crate provides exactly that — a
//! deliberately small, well-tested surface rather than a general ndarray.
//!
//! # Examples
//!
//! ```
//! use mixq_tensor::{Shape, Tensor};
//!
//! let mut t = Tensor::<f32>::zeros(Shape::new(1, 2, 2, 3));
//! *t.at_mut(0, 1, 1, 2) = 7.0;
//! assert_eq!(t.at(0, 1, 1, 2), 7.0);
//! assert_eq!(t.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod geometry;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub use error::TensorError;
pub use geometry::{ConvGeometry, Padding};
pub use shape::Shape;
pub use tensor::Tensor;
