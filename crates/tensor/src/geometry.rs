use std::fmt;

/// Spatial padding mode of a convolution.
///
/// MobileNetV1 uses TensorFlow-style `SAME` padding everywhere; `Valid` is
/// provided for the micro-CNNs and for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Padding {
    /// Output spatial size is `ceil(input / stride)`; zero-pad as needed.
    #[default]
    Same,
    /// No padding; output size is `floor((input - kernel) / stride) + 1`.
    Valid,
}

impl fmt::Display for Padding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Padding::Same => write!(f, "same"),
            Padding::Valid => write!(f, "valid"),
        }
    }
}

/// Geometry of a 2-D convolution: kernel, stride and padding.
///
/// Encapsulates the output-size and padding arithmetic shared by the float
/// layers, the fake-quantized layers, the integer kernels and the memory
/// model, so they can never disagree about shapes.
///
/// # Examples
///
/// ```
/// use mixq_tensor::{ConvGeometry, Padding};
///
/// // MobileNetV1 stem: 3x3 stride-2 SAME convolution on 224x224.
/// let g = ConvGeometry::new(3, 3, 2, Padding::Same);
/// assert_eq!(g.output_size(224, 224), (112, 112));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (equal in both spatial dimensions, as in the paper's models).
    pub stride: usize,
    /// Padding mode.
    pub padding: Padding,
}

impl ConvGeometry {
    /// Creates a new geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel or stride is zero.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: Padding) -> Self {
        assert!(kh > 0 && kw > 0, "kernel dimensions must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvGeometry {
            kh,
            kw,
            stride,
            padding,
        }
    }

    /// Geometry of a 1x1 (pointwise) convolution.
    pub fn pointwise() -> Self {
        ConvGeometry::new(1, 1, 1, Padding::Same)
    }

    /// Output spatial size `(h_out, w_out)` for an `(h_in, w_in)` input.
    pub fn output_size(&self, h_in: usize, w_in: usize) -> (usize, usize) {
        match self.padding {
            Padding::Same => (h_in.div_ceil(self.stride), w_in.div_ceil(self.stride)),
            Padding::Valid => (
                (h_in.saturating_sub(self.kh)) / self.stride + 1,
                (w_in.saturating_sub(self.kw)) / self.stride + 1,
            ),
        }
    }

    /// Top/left zero-padding amounts `(pad_top, pad_left)` (TensorFlow SAME
    /// semantics: total padding split with the extra cell on the
    /// bottom/right).
    pub fn pad_top_left(&self, h_in: usize, w_in: usize) -> (usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0),
            Padding::Same => {
                let (h_out, w_out) = self.output_size(h_in, w_in);
                let pad_h = ((h_out - 1) * self.stride + self.kh).saturating_sub(h_in);
                let pad_w = ((w_out - 1) * self.stride + self.kw).saturating_sub(w_in);
                (pad_h / 2, pad_w / 2)
            }
        }
    }

    /// Number of kernel positions, `kh * kw`.
    pub const fn kernel_area(&self) -> usize {
        self.kh * self.kw
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        ConvGeometry::new(3, 3, 1, Padding::Same)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_output_sizes() {
        let s1 = ConvGeometry::new(3, 3, 1, Padding::Same);
        assert_eq!(s1.output_size(7, 7), (7, 7));
        let s2 = ConvGeometry::new(3, 3, 2, Padding::Same);
        assert_eq!(s2.output_size(224, 224), (112, 112));
        assert_eq!(s2.output_size(7, 7), (4, 4));
        assert_eq!(s2.output_size(112, 112), (56, 56));
    }

    #[test]
    fn valid_padding_output_sizes() {
        let g = ConvGeometry::new(3, 3, 1, Padding::Valid);
        assert_eq!(g.output_size(5, 5), (3, 3));
        let g2 = ConvGeometry::new(2, 2, 2, Padding::Valid);
        assert_eq!(g2.output_size(4, 4), (2, 2));
    }

    #[test]
    fn same_padding_amounts() {
        // 3x3 stride 1: one pixel on each side -> top/left = 1.
        let g = ConvGeometry::new(3, 3, 1, Padding::Same);
        assert_eq!(g.pad_top_left(7, 7), (1, 1));
        // 3x3 stride 2 on even input: TF pads 0 on top/left, 1 on bottom/right.
        let g2 = ConvGeometry::new(3, 3, 2, Padding::Same);
        assert_eq!(g2.pad_top_left(224, 224), (0, 0));
        // 3x3 stride 2 on odd input: symmetric single pixel.
        assert_eq!(g2.pad_top_left(7, 7), (1, 1));
        // Valid never pads.
        let v = ConvGeometry::new(3, 3, 1, Padding::Valid);
        assert_eq!(v.pad_top_left(9, 9), (0, 0));
    }

    #[test]
    fn pointwise_helper() {
        let p = ConvGeometry::pointwise();
        assert_eq!(p.kernel_area(), 1);
        assert_eq!(p.output_size(14, 14), (14, 14));
        assert_eq!(p.pad_top_left(14, 14), (0, 0));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = ConvGeometry::new(3, 3, 0, Padding::Same);
    }

    #[test]
    fn display_padding() {
        assert_eq!(Padding::Same.to_string(), "same");
        assert_eq!(Padding::Valid.to_string(), "valid");
    }
}
