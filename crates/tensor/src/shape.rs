use std::fmt;

/// The shape of a dense NHWC tensor: `(n, h, w, c)`.
///
/// Fully-connected activations are modelled as `(n, 1, 1, c)`, weight tensors
/// of a `k_h × k_w` convolution with `c_i` input and `c_o` output channels as
/// `(c_o, k_h, k_w, c_i)` (output channel outermost, matching the paper's
/// per-channel quantization axis).
///
/// # Examples
///
/// ```
/// use mixq_tensor::Shape;
///
/// let s = Shape::new(1, 224, 224, 3);
/// assert_eq!(s.volume(), 150_528);
/// assert_eq!(s.index(0, 0, 0, 2), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Batch (or output-channel for weight tensors).
    pub n: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels (innermost, contiguous).
    pub c: usize,
}

impl Shape {
    /// Creates a new shape.
    pub const fn new(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape { n, h, w, c }
    }

    /// Shape of a flat vector `(1, 1, 1, c)`.
    pub const fn vector(c: usize) -> Self {
        Shape::new(1, 1, 1, c)
    }

    /// Shape of a feature map `(1, h, w, c)` (single image).
    pub const fn feature_map(h: usize, w: usize, c: usize) -> Self {
        Shape::new(1, h, w, c)
    }

    /// Total number of elements.
    pub const fn volume(&self) -> usize {
        self.n * self.h * self.w * self.c
    }

    /// Number of elements in one batch item.
    pub const fn item_volume(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Number of spatial positions (`h · w`) in one batch item.
    pub const fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Row-major NHWC linear index of `(n, y, x, c)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every coordinate is in bounds.
    #[inline]
    pub fn index(&self, n: usize, y: usize, x: usize, c: usize) -> usize {
        debug_assert!(n < self.n && y < self.h && x < self.w && c < self.c);
        ((n * self.h + y) * self.w + x) * self.c + c
    }

    /// Returns the same shape with a different batch size.
    pub const fn with_batch(&self, n: usize) -> Self {
        Shape::new(n, self.h, self.w, self.c)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.h, self.w, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_index_are_consistent() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.item_volume(), 60);
        assert_eq!(s.pixels(), 12);
        // Last element maps to volume - 1.
        assert_eq!(s.index(1, 2, 3, 4), 119);
        // Channel stride is 1.
        assert_eq!(s.index(0, 0, 0, 1) - s.index(0, 0, 0, 0), 1);
        // Width stride is c.
        assert_eq!(s.index(0, 0, 1, 0) - s.index(0, 0, 0, 0), 5);
        // Height stride is w*c.
        assert_eq!(s.index(0, 1, 0, 0) - s.index(0, 0, 0, 0), 20);
    }

    #[test]
    fn helpers() {
        assert_eq!(Shape::vector(10), Shape::new(1, 1, 1, 10));
        assert_eq!(Shape::feature_map(4, 4, 8), Shape::new(1, 4, 4, 8));
        assert_eq!(Shape::new(1, 2, 2, 2).with_batch(7).n, 7);
        assert_eq!(format!("{}", Shape::new(1, 2, 3, 4)), "[1x2x3x4]");
    }

    #[test]
    fn index_enumerates_row_major() {
        let s = Shape::new(2, 2, 2, 2);
        let mut expected = 0;
        for n in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    for c in 0..2 {
                        assert_eq!(s.index(n, y, x, c), expected);
                        expected += 1;
                    }
                }
            }
        }
    }
}
