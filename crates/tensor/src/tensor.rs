use crate::{Shape, TensorError};

/// A dense, row-major, NHWC tensor.
///
/// `T` is typically `f32` during training/fake-quantization and `u8`/`i32`
/// on the integer-only deployment path.
///
/// # Examples
///
/// ```
/// use mixq_tensor::{Shape, Tensor};
///
/// let t = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0f32, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.at(0, 0, 1, 1), 4.0);
/// let doubled = t.map(|v| v * 2.0);
/// assert_eq!(doubled.data()[3], 8.0);
/// # Ok::<(), mixq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zero for numeric types).
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![T::default(); shape.volume()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: T) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.volume()],
        }
    }
}

impl<T> Tensor<T> {
    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major NHWC).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major NHWC).
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reinterprets the buffer under a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(self, shape: Shape) -> Result<Self, TensorError> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }
}

impl<T: Copy> Tensor<T> {
    /// Element at `(n, y, x, c)`.
    #[inline]
    pub fn at(&self, n: usize, y: usize, x: usize, c: usize) -> T {
        self.data[self.shape.index(n, y, x, c)]
    }

    /// Mutable element at `(n, y, x, c)`.
    #[inline]
    pub fn at_mut(&mut self, n: usize, y: usize, x: usize, c: usize) -> &mut T {
        let idx = self.shape.index(n, y, x, c);
        &mut self.data[idx]
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns the `n`-th batch item as a new single-item tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n >= shape().n`.
    pub fn batch_item(&self, n: usize) -> Tensor<T> {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let vol = self.shape.item_volume();
        Tensor {
            shape: self.shape.with_batch(1),
            data: self.data[n * vol..(n + 1) * vol].to_vec(),
        }
    }

    /// Iterates over the values of channel `c` across all `(n, y, x)`.
    pub fn channel_iter(&self, c: usize) -> impl Iterator<Item = T> + '_ {
        let ch = self.shape.c;
        self.data.iter().skip(c).step_by(ch).copied()
    }
}

impl Tensor<f32> {
    /// Maximum absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Minimum and maximum element, or `(0.0, 0.0)` for an empty tensor.
    pub fn min_max(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Elementwise `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor<f32>) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Sum of squared differences against `other`, useful as an error metric.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn squared_distance(&self, other: &Tensor<f32>) -> Result<f64, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum())
    }
}

impl<T: Copy + Default> Default for Tensor<T> {
    fn default() -> Self {
        Tensor::zeros(Shape::new(0, 0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(Shape::new(1, 2, 2, 2), (0..8).map(|v| v as f32).collect())
            .expect("valid length");
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        assert_eq!(t.at(0, 1, 1, 1), 7.0);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Tensor::from_vec(Shape::new(1, 2, 2, 2), vec![0.0f32; 7]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 8,
                actual: 7
            }
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::vector(6), vec![1, 2, 3, 4, 5, 6]).unwrap();
        let r = t.clone().reshape(Shape::new(1, 2, 3, 1)).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::new(1, 2, 3, 2)).is_err());
    }

    #[test]
    fn map_and_inplace() {
        let t = Tensor::from_vec(Shape::vector(3), vec![1.0f32, -2.0, 3.0]).unwrap();
        let abs = t.map(|v| v.abs());
        assert_eq!(abs.data(), &[1.0, 2.0, 3.0]);
        let mut u = t;
        u.map_inplace(|v| v * 10.0);
        assert_eq!(u.data(), &[10.0, -20.0, 30.0]);
    }

    #[test]
    fn batch_item_extracts_slice() {
        let t = Tensor::from_vec(Shape::new(2, 1, 1, 3), vec![1, 2, 3, 4, 5, 6]).expect("valid");
        let b1 = t.batch_item(1);
        assert_eq!(b1.shape(), Shape::new(1, 1, 1, 3));
        assert_eq!(b1.data(), &[4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "batch index")]
    fn batch_item_out_of_range_panics() {
        let t = Tensor::<i32>::zeros(Shape::new(1, 1, 1, 1));
        let _ = t.batch_item(1);
    }

    #[test]
    fn channel_iter_strides_channels() {
        let t = Tensor::from_vec(Shape::new(1, 1, 3, 2), vec![0, 10, 1, 11, 2, 12]).unwrap();
        let c0: Vec<i32> = t.channel_iter(0).collect();
        let c1: Vec<i32> = t.channel_iter(1).collect();
        assert_eq!(c0, vec![0, 1, 2]);
        assert_eq!(c1, vec![10, 11, 12]);
    }

    #[test]
    fn float_statistics() {
        let t = Tensor::from_vec(Shape::vector(4), vec![-3.0f32, 1.0, 2.0, 0.0]).unwrap();
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.min_max(), (-3.0, 2.0));
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn add_assign_and_distance() {
        let mut a = Tensor::from_vec(Shape::vector(2), vec![1.0f32, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(2), vec![0.5f32, 0.5]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.5]);
        let d = a.squared_distance(&b).unwrap();
        assert!((d - (1.0 + 4.0)).abs() < 1e-9);

        let c = Tensor::<f32>::zeros(Shape::vector(3));
        assert!(a.add_assign(&c).is_err());
        assert!(a.squared_distance(&c).is_err());
    }

    #[test]
    fn zeros_full_default() {
        let z = Tensor::<f32>::zeros(Shape::vector(3));
        assert_eq!(z.data(), &[0.0, 0.0, 0.0]);
        let f = Tensor::full(Shape::vector(2), 9u8);
        assert_eq!(f.data(), &[9, 9]);
        assert!(Tensor::<f32>::default().is_empty());
    }
}
