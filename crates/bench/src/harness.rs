//! Shared runners for the accuracy-shaped benches: train the folding-stress
//! micro-CNN under a scheme/precision and report fake-quant and
//! integer-only accuracy (the synthetic stand-in for the paper's ImageNet
//! numbers; see `DESIGN.md`).

use mixq_core::convert::{convert, scheme_granularity};
use mixq_core::memory::QuantScheme;
use mixq_data::{Dataset, DatasetSpec, SyntheticKind};
use mixq_models::micro::folding_stress_cnn;
use mixq_nn::qat::QatNetwork;
use mixq_nn::train::{evaluate, train, TrainConfig};
use mixq_quant::BitWidth;

/// Result of one synthetic accuracy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRun {
    /// Float accuracy before quantization.
    pub float_acc: f32,
    /// Fake-quantized training accuracy after QAT.
    pub fake_quant_acc: f32,
    /// Integer-only held-out accuracy.
    pub int_acc: f32,
    /// Actual flash bytes of the converted model.
    pub flash_bytes: usize,
}

/// The standard stress dataset: 4 classes, 2 channels whose amplitudes
/// differ 40× (the batch-norm scale diversity that breaks PL+FB folding).
pub fn stress_dataset(seed: u64) -> Dataset {
    DatasetSpec::new(SyntheticKind::ChannelBits, 12, 12, 2, 4)
        .with_samples(320)
        .with_noise(0.06)
        .with_amplitude_base(40.0)
        .generate(seed)
}

/// Trains the folding-stress CNN under `scheme` with homogeneous weight
/// precision `bits` and measures the accuracy chain.
pub fn run_stress_scheme(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
    seed: u64,
) -> AccuracyRun {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, seed);
    let _ = train(&mut net, train_set, &TrainConfig::fast(12));
    let float_acc = evaluate(&net, train_set);
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    if scheme == QuantScheme::PerLayerIcn {
        net.enable_pact_weight_clips();
    }
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let qat_cfg = if scheme == QuantScheme::PerLayerFolded {
        TrainConfig::fast(8).with_folding_from(1)
    } else {
        TrainConfig::fast(8)
    };
    let _ = train(&mut net, train_set, &qat_cfg);
    let fake_quant_acc = evaluate(&net, train_set);
    let int_net = convert(&net, scheme).expect("trained network converts");
    let (int_acc, _) = int_net.evaluate(test_set);
    AccuracyRun {
        float_acc,
        fake_quant_acc,
        int_acc,
        flash_bytes: int_net.flash_bytes(),
    }
}

/// Post-training quantization (no retraining after enabling fake
/// quantization): trains in float, quantizes, converts, measures. PTQ
/// exposes the raw PL-vs-PC robustness gap that QAT partially repairs.
pub fn run_stress_ptq(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
    seed: u64,
) -> AccuracyRun {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, seed);
    let _ = train(&mut net, train_set, &TrainConfig::fast(12));
    let float_acc = evaluate(&net, train_set);
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    if scheme == QuantScheme::PerLayerFolded {
        net.set_fold_bn(true);
    }
    let fake_quant_acc = evaluate(&net, train_set);
    let int_net = convert(&net, scheme).expect("trained network converts");
    let (int_acc, _) = int_net.evaluate(test_set);
    AccuracyRun {
        float_acc,
        fake_quant_acc,
        int_acc,
        flash_bytes: int_net.flash_bytes(),
    }
}

/// Prints a horizontal rule sized for the benches' tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_runner_smoke() {
        let ds = stress_dataset(3);
        let split = ds.split(0.8, 1);
        let run = run_stress_scheme(
            &split.train,
            &split.test,
            QuantScheme::PerChannelIcn,
            BitWidth::W8,
            11,
        );
        assert!(run.float_acc > 0.8);
        assert!(run.int_acc > 0.7);
        assert!(run.flash_bytes > 0);
    }
}
