//! Shared runners for the accuracy-shaped benches: train the folding-stress
//! micro-CNN under a scheme/precision and report fake-quant and
//! integer-only accuracy (the synthetic stand-in for the paper's ImageNet
//! numbers; see `DESIGN.md`).

use mixq_core::convert::{convert_with_backend, scheme_granularity};
use mixq_core::memory::QuantScheme;
use mixq_data::{Dataset, DatasetSpec, SyntheticKind};
use mixq_kernels::BackendKind;
use mixq_models::micro::folding_stress_cnn;
use mixq_nn::qat::QatNetwork;
use mixq_nn::train::{evaluate, train, TrainConfig};
use mixq_quant::BitWidth;

/// Result of one synthetic accuracy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRun {
    /// Float accuracy before quantization.
    pub float_acc: f32,
    /// Fake-quantized training accuracy after QAT.
    pub fake_quant_acc: f32,
    /// Integer-only held-out accuracy.
    pub int_acc: f32,
    /// Actual flash bytes of the converted model.
    pub flash_bytes: usize,
}

/// The standard stress dataset: 4 classes, 2 channels whose amplitudes
/// differ 40× (the batch-norm scale diversity that breaks PL+FB folding).
pub fn stress_dataset(seed: u64) -> Dataset {
    DatasetSpec::new(SyntheticKind::ChannelBits, 12, 12, 2, 4)
        .with_samples(320)
        .with_noise(0.06)
        .with_amplitude_base(40.0)
        .generate(seed)
}

/// Trains the folding-stress CNN under `scheme` with homogeneous weight
/// precision `bits` and measures the accuracy chain.
pub fn run_stress_scheme(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
    seed: u64,
) -> AccuracyRun {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, seed);
    let _ = train(&mut net, train_set, &TrainConfig::fast(12));
    let float_acc = evaluate(&net, train_set);
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    if scheme == QuantScheme::PerLayerIcn {
        net.enable_pact_weight_clips();
    }
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let qat_cfg = if scheme == QuantScheme::PerLayerFolded {
        TrainConfig::fast(8).with_folding_from(1)
    } else {
        TrainConfig::fast(8)
    };
    let _ = train(&mut net, train_set, &qat_cfg);
    let fake_quant_acc = evaluate(&net, train_set);
    let int_net =
        convert_with_backend(&net, scheme, &backend_arg()).expect("trained network converts");
    let (int_acc, _) = int_net.evaluate(test_set);
    AccuracyRun {
        float_acc,
        fake_quant_acc,
        int_acc,
        flash_bytes: int_net.flash_bytes(),
    }
}

/// Post-training quantization (no retraining after enabling fake
/// quantization): trains in float, quantizes, converts, measures. PTQ
/// exposes the raw PL-vs-PC robustness gap that QAT partially repairs.
pub fn run_stress_ptq(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
    seed: u64,
) -> AccuracyRun {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, seed);
    let _ = train(&mut net, train_set, &TrainConfig::fast(12));
    let float_acc = evaluate(&net, train_set);
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    if scheme == QuantScheme::PerLayerFolded {
        net.set_fold_bn(true);
    }
    let fake_quant_acc = evaluate(&net, train_set);
    let int_net =
        convert_with_backend(&net, scheme, &backend_arg()).expect("trained network converts");
    let (int_acc, _) = int_net.evaluate(test_set);
    AccuracyRun {
        float_acc,
        fake_quant_acc,
        int_acc,
        flash_bytes: int_net.flash_bytes(),
    }
}

/// Prints a horizontal rule sized for the benches' tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// The `--json <path>` target from the bench binary's arguments, if given.
///
/// Each Table/Figure bench accepts `--json` and writes its *deterministic*
/// shape-math outputs (footprints, bit assignments — never timings or
/// trained accuracies) as machine-readable JSON; the golden-regression CI
/// job diffs those files against the checked-in goldens under
/// `tests/goldens/`. Unknown arguments (e.g. the `--bench` flag cargo
/// passes to harness-free targets) are ignored.
pub fn json_out_path() -> Option<std::path::PathBuf> {
    arg_value("--json").map(std::path::PathBuf::from)
}

/// The value following `flag` in the bench binary's arguments, if present
/// — the one argv scan behind every flag parser here. Unknown arguments
/// (e.g. the `--bench` flag cargo passes to harness-free targets) are
/// ignored.
///
/// # Panics
///
/// Panics if the flag is present without a value.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

/// The kernel backend selected by the bench binary's `--backend
/// reference|tiled` flag ([`BackendKind::Reference`] when absent).
///
/// Every bench accepts the flag; the ones that execute integer graphs
/// route their conversions through it, so the CI bench-smoke matrix keeps
/// both dispatch paths exercised in release mode. Logits are bit-identical
/// across backends, so accuracy-shaped bench output never changes with the
/// flag — only kernel dataflow, modeled cycles and host timing do.
///
/// # Panics
///
/// Panics on an unknown backend name.
pub fn backend_arg() -> BackendKind {
    match arg_value("--backend").as_deref() {
        None => BackendKind::default(),
        Some("reference") => BackendKind::Reference,
        Some("tiled") => BackendKind::tiled(),
        Some(other) => panic!("unknown backend `{other}` (expected reference|tiled)"),
    }
}

/// The batch size selected by the bench binary's `--batch N` flag (1 when
/// absent). Benches that execute integer graphs walk them once per `N`
/// samples through the batched inference path, so the CI bench-smoke
/// matrix keeps batch-1 and batch-N execution both exercised in release
/// mode. Logits are bit-identical across batch sizes; only wall-clock
/// changes.
///
/// # Panics
///
/// Panics on a malformed or zero batch value.
pub fn batch_arg() -> usize {
    let Some(v) = arg_value("--batch") else {
        return 1;
    };
    let n: usize = v.parse().unwrap_or_else(|_| panic!("bad batch `{v}`"));
    assert!(n > 0, "batch must be positive");
    n
}

/// The intra-walk worker-thread count selected by the bench binary's
/// `--threads N` flag (1 when absent). Benches that execute integer
/// graphs forward it to
/// [`IntNetwork::set_threads`](mixq_core::convert::IntNetwork::set_threads),
/// splitting each single graph walk's row/channel blocks across a worker
/// pool. Logits are bit-identical across thread counts; only host
/// wall-clock changes.
///
/// # Panics
///
/// Panics on a malformed or out-of-range thread count.
pub fn threads_arg() -> usize {
    let Some(v) = arg_value("--threads") else {
        return 1;
    };
    let n: usize = v.parse().unwrap_or_else(|_| panic!("bad threads `{v}`"));
    assert!(
        (1..=mixq_kernels::MAX_POOL_THREADS).contains(&n),
        "threads must be in 1..={}",
        mixq_kernels::MAX_POOL_THREADS
    );
    n
}

/// Host parallelism as a plain count (1 when the OS cannot say).
///
/// This is the single gate every multicore speedup target goes through:
/// benches compare it against the worker count a target needs and report
/// the target as JSON `null` (skipped) rather than `false` when the host
/// cannot express that many genuine workers — a 1-core container must
/// never look like a perf regression.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Appends a multicore target flag to a measured-JSON object: a real
/// boolean when the host has at least `required_cores`, JSON `null`
/// otherwise. Returns whether the target was actually evaluated so the
/// caller can mirror the skip decision on stdout.
pub fn gated_target(obj: &mut JsonObject, key: &str, met: bool, required_cores: usize) -> bool {
    if available_cores() >= required_cores {
        obj.bool(key, met);
        true
    } else {
        obj.raw(key, "null".to_string());
        false
    }
}

/// Host-environment metadata stamped into **measured** bench JSON
/// (`--bench-json` outputs only — the deterministic goldens never include
/// it): compiler target, detected/active SIMD level, CPU features the
/// dispatcher probes, and the thread configuration. Keys are stable so the
/// perf-trajectory tooling can attribute throughput shifts to host changes.
pub fn host_meta(threads: usize) -> JsonObject {
    let mut meta = JsonObject::new();
    // `scripts/bench-report.sh` exports the exact `rustc -vV` host triple;
    // fall back to a coarse arch-os stamp when run outside the script.
    let target = std::env::var("MIXQ_RUSTC_TARGET")
        .unwrap_or_else(|_| format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS));
    meta.string("rustc_target", &target);
    meta.string("simd_level", mixq_kernels::simd::active_level().label());
    let features: Vec<String> = detected_cpu_features()
        .into_iter()
        .map(|f| format!("\"{f}\""))
        .collect();
    meta.raw("cpu_features", json_array(features));
    meta.int("threads", threads);
    meta.int("available_parallelism", available_cores());
    meta
}

/// The vector-ISA features the SIMD dispatcher probes that are present on
/// this CPU, in a fixed order.
fn detected_cpu_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            features.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    features.push("neon");
    features
}

/// The `--bench-json <path>` target from the bench binary's arguments, if
/// given. Unlike [`json_out_path`] (deterministic shape-math goldens),
/// this file receives **measured** host numbers — throughput tables the
/// perf-trajectory tooling (`scripts/bench-report.sh`) collects across
/// PRs; it is never golden-diffed.
pub fn bench_json_out_path() -> Option<std::path::PathBuf> {
    arg_value("--bench-json").map(std::path::PathBuf::from)
}

/// A minimal deterministic JSON writer for the golden outputs: an object
/// whose values are appended in insertion order (stable key order ⇒ stable
/// byte-for-byte files, so a plain `diff` is the regression check).
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a string field (the value is escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        self.fields.push((key.to_owned(), format!("\"{escaped}\"")));
        self
    }

    /// Appends an integer field.
    pub fn int(&mut self, key: &str, value: usize) -> &mut Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Appends an already-rendered JSON value (e.g. a nested array).
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_owned(), value));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders a JSON array of pre-rendered values.
pub fn json_array(values: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = values.into_iter().collect();
    format!("[{}]", body.join(", "))
}

/// Writes rendered JSON to `path` (creating parent directories), with a
/// trailing newline so the checked-in goldens stay POSIX-friendly.
///
/// # Panics
///
/// Panics if the file cannot be written — a golden run must not silently
/// skip its output.
pub fn write_json(path: &std::path::Path, rendered: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create JSON output directory");
    }
    std::fs::write(path, format!("{rendered}\n")).expect("write JSON output");
    println!("json written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_runner_smoke() {
        let ds = stress_dataset(3);
        let split = ds.split(0.8, 1);
        let run = run_stress_scheme(
            &split.train,
            &split.test,
            QuantScheme::PerChannelIcn,
            BitWidth::W8,
            11,
        );
        assert!(run.float_acc > 0.8);
        assert!(run.int_acc > 0.7);
        assert!(run.flash_bytes > 0);
    }
}
