//! # mixq-bench
//!
//! Shared harness for the benchmark targets that regenerate every table and
//! figure of the paper's evaluation (§6 + appendix). Each `benches/*.rs`
//! target is a `harness = false` main that prints the regenerated rows next
//! to the paper-reported values; `EXPERIMENTS.md` records both.
//!
//! * [`reference`](mod@reference) — the numbers the paper reports (Tables 2–4), used for
//!   side-by-side comparison. ImageNet accuracies cannot be re-measured
//!   without the dataset (see `DESIGN.md`, "Substitutions"); footprints,
//!   bit assignments and latency trends are recomputed from scratch.
//! * [`harness`] — the synthetic-data training runner shared by the
//!   accuracy-shaped benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reference;
