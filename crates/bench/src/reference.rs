//! Paper-reported reference values (for side-by-side printing only; none of
//! these feed back into the reproduction's computations).

/// One row of the paper's Table 2 (integer-only MobilenetV1_224_1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Quantization method label as printed in the paper.
    pub method: &'static str,
    /// Reported ImageNet Top-1 accuracy (percent).
    pub top1: f32,
    /// Reported weight memory footprint in MB (MiB reading), if given.
    pub footprint_mb: Option<f32>,
}

/// The paper's Table 2.
pub const TABLE2: [Table2Row; 6] = [
    Table2Row {
        method: "Full-precision",
        top1: 70.9,
        footprint_mb: Some(16.27),
    },
    Table2Row {
        method: "PL+FB INT8",
        top1: 70.1,
        footprint_mb: Some(4.06),
    },
    Table2Row {
        method: "PL+FB INT4",
        top1: 0.1,
        footprint_mb: Some(2.05),
    },
    Table2Row {
        method: "PL+ICN INT4",
        top1: 61.75,
        footprint_mb: Some(2.10),
    },
    Table2Row {
        method: "PC+ICN INT4",
        top1: 66.41,
        footprint_mb: Some(2.12),
    },
    Table2Row {
        method: "PC+Thresholds INT4",
        top1: 66.46,
        footprint_mb: Some(2.35),
    },
];

/// Paper Table 4 (appendix): Top-1 of the 16 mixed-precision models under
/// `M_RO = 2 MB, M_RW = 512 kB`, as `(label, MixQ-PL, MixQ-PC-ICN)`.
pub const TABLE4: [(&str, f32, f32); 16] = [
    ("224_1.0", 59.61, 64.29),
    ("224_0.75", 67.06, 68.02),
    ("224_0.5", 63.12, 63.48),
    ("224_0.25", 50.76, 51.70),
    ("192_1.0", 61.94, 65.88),
    ("192_0.75", 64.67, 67.23),
    ("192_0.5", 59.50, 62.93),
    ("192_0.25", 48.12, 49.75),
    ("160_1.0", 59.49, 64.46),
    ("160_0.75", 64.75, 65.70),
    ("160_0.5", 59.55, 61.25),
    ("160_0.25", 44.77, 47.79),
    ("128_1.0", 49.44, 49.44),
    ("128_0.75", 60.44, 63.53),
    ("128_0.5", 54.20, 58.22),
    ("128_0.25", 43.45, 44.68),
];

/// Paper Table 3: the 1 MB comparison rows that are ours (mixed-precision
/// integer-only), as `(model, budget description, Top-1)`.
pub const TABLE3_OURS: [(&str, &str, f32); 2] = [
    ("224_0.5", "1MB RO + 512kB RW", 62.9),
    ("192_0.5", "1MB RO + 256kB RW", 60.2),
];

/// Paper Table 3: the comparison rows from other works, as
/// `(model, method, Top-1, footprint MB)`.
pub const TABLE3_OTHERS: [(&str, &str, f32, f32); 4] = [
    ("MobilenetV1_224_0.5", "INT8 PL+FB [11]", 60.7, 1.34),
    ("MobilenetV1_224_0.25", "INT8 PL+FB [11]", 48.0, 0.47),
    ("MobilenetV1 [22]", "MIX not-uniform", 57.14, 1.09),
    ("SqueezeNext [5]", "MIX not-uniform", 68.02, 1.09),
];

/// Reference Top-1 for a model label under MixQ-PL.
pub fn table4_pl(label: &str) -> Option<f32> {
    TABLE4.iter().find(|r| r.0 == label).map(|r| r.1)
}

/// Reference Top-1 for a model label under MixQ-PC-ICN.
pub fn table4_pc_icn(label: &str) -> Option<f32> {
    TABLE4.iter().find(|r| r.0 == label).map(|r| r.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lookup() {
        assert_eq!(table4_pl("224_0.75"), Some(67.06));
        assert_eq!(table4_pc_icn("192_0.5"), Some(62.93));
        assert_eq!(table4_pl("999_9"), None);
    }

    #[test]
    fn pc_icn_dominates_pl_in_table4() {
        // The appendix table's own consistency: PC-ICN ≥ PL on every row.
        for (label, pl, pc) in TABLE4 {
            assert!(pc >= pl, "{label}: {pc} < {pl}");
        }
    }

    #[test]
    fn table2_rows_are_ordered_by_method() {
        assert_eq!(TABLE2[0].method, "Full-precision");
        assert_eq!(TABLE2.len(), 6);
        // The collapse row.
        assert!(TABLE2[2].top1 < 1.0);
    }
}
