//! Serving under load: the `mixq-serve` runtime's latency/shed/degrade
//! behavior as offered load sweeps from idle to overload.
//!
//! Two views, mirroring `table_walk_scaling`:
//!
//! * **deterministic schedule** (`--json`, golden-tested) — the
//!   discrete-event [`Simulator`] replays fixed submission traces
//!   (64 requests at inter-arrival {200, 100, 50, 20, 5} µs, every 8th at
//!   `Low` priority, 800 µs deadlines) against the *real* engine state
//!   machine with a fixed integer [`ServiceModel`], plus one faulted
//!   trace (a scripted panic, a worker kill and a delayed batch). Every
//!   outcome count, flush tally, queue depth and p50/p99 in the golden
//!   is a pure integer function of the trace, so a byte-diff pins the
//!   admission, shed, degradation, deadline and fault-recovery math the
//!   threaded runtime shares;
//! * **measured latency** (stdout and `--bench-json`, never goldened) —
//!   a real [`ServeRuntime`] on the monotonic clock serves a verified
//!   w8→w4 registry of the tiny residual CNN while the bench offers
//!   64 single-image requests at each inter-arrival × worker count. The
//!   report records accepted/shed/degraded splits and the p50/p99
//!   latency of completed requests per row — the paper-facing "what does
//!   overload cost" table. Every submitted request must still resolve
//!   (exactly-once audit on every row). The 4-worker comparison is
//!   reported `null`/skipped (not `false`) through the shared
//!   [`gated_target`] helper when the host cannot run 4 genuine workers.
//!
//! Run with: `cargo bench --bench table_serve_load`
//! (`--json <path>` writes the deterministic golden, `--bench-json
//! <path>` the measured load table for `scripts/bench-report.sh`).

use std::time::Duration;

use mixq_bench::harness::{
    available_cores, bench_json_out_path, gated_target, host_meta, json_array, json_out_path, rule,
    write_json, JsonObject,
};
use mixq_core::convert::{convert_with_backend, IntNetwork};
use mixq_core::memory::QuantScheme;
use mixq_data::{Dataset, DatasetSpec, SyntheticKind};
use mixq_kernels::TiledBackend;
use mixq_models::micro::mobilenet_like_residual;
use mixq_nn::qat::QatNetwork;
use mixq_quant::{BitWidth, Granularity};
use mixq_serve::{
    percentile_us, BatcherConfig, FaultPlan, ModelInfo, ModelRegistry, Priority, ServeConfig,
    ServeError, ServeRuntime, ServiceModel, SimReport, SimSubmit, Simulator, SubmitOptions,
};

const RES: usize = 8;
const CLASSES: usize = 4;
const REQUESTS: usize = 64;
/// Offered inter-arrival gaps (virtual µs) for the simulated sweep. The
/// service model drains a full batch of 8 in 200 µs (25 µs/request), so
/// the sweep crosses from under-load (200 µs gaps) through degradation
/// onset (20 µs) to 5× overload (5 µs gaps) where backpressure sheds and
/// queued requests blow their 800 µs deadlines.
const SIM_GAPS_US: [u64; 5] = [200, 100, 50, 20, 5];
/// Offered inter-arrival gaps (real µs) for the measured sweep.
const LOAD_GAPS_US: [u64; 3] = [500, 200, 100];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig::default()
        .with_queue_capacity(32)
        .with_shed_watermark(24)
        .with_degrade_watermark(12)
        .with_batcher(BatcherConfig {
            batch_max: 8,
            deadline_us: 500,
        })
        .with_workers(workers)
}

/// A fixed offered-load trace: `REQUESTS` submissions `gap_us` apart,
/// every 8th at `Low` priority (shed fodder), all with an 800 µs deadline.
fn load_trace(gap_us: u64) -> Vec<SimSubmit> {
    (0..REQUESTS as u64)
        .map(|i| {
            let sub = SimSubmit::at(i * gap_us, "cnn").deadline(800);
            if i % 8 == 7 {
                sub.priority(Priority::Low)
            } else {
                sub
            }
        })
        .collect()
}

/// Histogram of a simulated trace's outcome labels by class prefix.
fn outcome_counts(report: &SimReport) -> (usize, usize, usize, usize, usize) {
    let count = |pred: &dyn Fn(&str) -> bool| report.outcomes.iter().filter(|o| pred(o)).count();
    (
        count(&|o| o.starts_with("ok:") && !o.ends_with(":degraded")),
        count(&|o| o.ends_with(":degraded")),
        count(&|o| o.starts_with("shed:")),
        count(&|o| o == "deadline"),
        count(&|o| o.starts_with("failed:")),
    )
}

fn sim_row_json(gap_us: u64, faulted: bool, report: &SimReport) -> String {
    let (ok, degraded, shed, deadline, failed) = outcome_counts(report);
    let reasons = |r: &str| report.flushes.iter().filter(|f| f.reason == r).count();
    let mut obj = JsonObject::new();
    obj.int("inter_arrival_us", gap_us as usize)
        .bool("faulted", faulted)
        .int("requests", report.outcomes.len())
        .int("ok", ok)
        .int("ok_degraded", degraded)
        .int("shed", shed)
        .int("deadline", deadline)
        .int("failed", failed)
        .int("batches", report.flushes.len())
        .int("flush_full", reasons("full"))
        .int("flush_deadline", reasons("deadline"))
        .int("flush_drain", reasons("drain"))
        .int("max_depth", report.stats.max_depth)
        .int("p50_us", report.p50_us as usize)
        .int("p99_us", report.p99_us as usize);
    obj.render()
}

/// An untrained but calibrated tiny residual CNN converted to the
/// integer deployment graph — fast to build, real kernels end to end.
fn tiny_net(bits: BitWidth, ds: &Dataset) -> IntNetwork {
    let spec = mobilenet_like_residual(RES, 3, 8, CLASSES);
    let mut net = QatNetwork::build(&spec, 41);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    if bits != BitWidth::W8 {
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, bits);
        }
        net.set_linear_weight_bits(bits);
    }
    convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("calibrated network converts")
}

struct MeasuredRow {
    workers: usize,
    gap_us: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    deadline: u64,
    failed: u64,
    p50_us: u64,
    p99_us: u64,
}

/// Offers `REQUESTS` single-image requests at `gap_us` spacing to a
/// fresh runtime and waits for every handle: the exactly-once audit plus
/// the measured latency distribution of the completed requests.
fn measured_run(registry: ModelRegistry, workers: usize, gap_us: u64, ds: &Dataset) -> MeasuredRow {
    let mut runtime =
        ServeRuntime::start(registry, serve_cfg(workers)).expect("runtime starts on real time");
    let mut handles = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let image = ds.sample(i % ds.len()).images;
        let opts = if i % 8 == 7 {
            SubmitOptions::default().with_priority(Priority::Low)
        } else {
            SubmitOptions::default()
        };
        handles.push(runtime.submit("cnn", image, opts));
        std::thread::sleep(Duration::from_micros(gap_us));
    }
    let (mut ok, mut degraded, mut shed, mut deadline, mut failed) = (0u64, 0, 0, 0, 0);
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        let result = match handle {
            Ok(h) => h.wait(),
            Err(e) => Err(e),
        };
        match result {
            Ok(out) => {
                if out.degraded {
                    degraded += 1;
                } else {
                    ok += 1;
                }
                latencies.push(out.latency_us);
            }
            Err(ServeError::DeadlineExceeded { .. }) => deadline += 1,
            Err(e) if e.class() == mixq_serve::OutcomeClass::Shed => shed += 1,
            Err(_) => failed += 1,
        }
    }
    let stats = runtime.shutdown();
    // The runtime's core guarantee, audited on every measured row: no
    // request is lost or double-resolved, and the queue stayed bounded.
    assert_eq!(
        ok + degraded + shed + deadline + failed,
        REQUESTS as u64,
        "every request resolves exactly once"
    );
    assert_eq!(stats.submitted, REQUESTS as u64);
    assert_eq!(stats.resolved() + shed, REQUESTS as u64);
    assert!(stats.max_depth <= 32, "queue depth bounded by capacity");
    latencies.sort_unstable();
    MeasuredRow {
        workers,
        gap_us,
        ok,
        degraded,
        shed,
        deadline,
        failed,
        p50_us: percentile_us(&latencies, 50),
        p99_us: percentile_us(&latencies, 99),
    }
}

fn main() {
    // ---- deterministic schedule sweep (the golden) -------------------
    let models = vec![ModelInfo {
        name: "cnn".into(),
        variant_labels: vec!["w8".into(), "w4".into()],
    }];
    let service = ServiceModel {
        base_us: 80,
        per_item_us: 15,
    };
    let sim = Simulator::new(serve_cfg(1), models.clone(), service, FaultPlan::new())
        .expect("config validates");

    println!(
        "serving under load — {REQUESTS} requests/trace, batch_max 8, linger 500us, \
         queue 32 (shed Low at 24, degrade w8->w4 at 12), 800us deadlines"
    );
    println!("\n== simulated schedule (virtual us; goldenable) ==");
    println!(
        "{:<10} {:>4} {:>9} {:>6} {:>9} {:>7} {:>8} {:>8} {:>8}",
        "gap_us", "ok", "degraded", "shed", "deadline", "failed", "batches", "p50_us", "p99_us"
    );
    rule(76);
    let mut sim_rows = Vec::new();
    for &gap in &SIM_GAPS_US {
        let report = sim.run(&load_trace(gap));
        let (ok, degraded, shed, deadline, failed) = outcome_counts(&report);
        println!(
            "{gap:<10} {ok:>4} {degraded:>9} {shed:>6} {deadline:>9} {failed:>7} {:>8} {:>8} {:>8}",
            report.flushes.len(),
            report.p50_us,
            report.p99_us
        );
        sim_rows.push(sim_row_json(gap, false, &report));
    }

    // The faulted replay: same 50 µs trace with a scripted request
    // panic, a delayed batch and a worker kill — the golden also pins
    // the bisect-retry and respawn accounting.
    let faults = FaultPlan::new()
        .panic_on_request(7)
        .delay_batch(1, 900)
        .kill_worker_on_batch(2);
    let faulted_sim =
        Simulator::new(serve_cfg(1), models, service, faults).expect("config validates");
    let faulted = faulted_sim.run(&load_trace(50));
    let (ok, degraded, shed, deadline, failed) = outcome_counts(&faulted);
    println!(
        "{:<10} {ok:>4} {degraded:>9} {shed:>6} {deadline:>9} {failed:>7} {:>8} {:>8} {:>8}",
        "50+faults",
        faulted.flushes.len(),
        faulted.p50_us,
        faulted.p99_us
    );
    assert!(failed > 0, "scripted faults must surface as Failed");
    assert_eq!(
        faulted.stats.resolved() + faulted.stats.rejected_queue_full + faulted.stats.rejected_shed,
        faulted.stats.submitted,
        "faulted trace still resolves every request"
    );
    sim_rows.push(sim_row_json(50, true, &faulted));

    if let Some(path) = json_out_path() {
        let mut root = JsonObject::new();
        root.string("bench", "table_serve_load")
            .string("model", "cnn[w8,w4] (mobilenet_like_residual 8px)")
            .int("requests_per_trace", REQUESTS)
            .int("service_base_us", service.base_us as usize)
            .int("service_per_item_us", service.per_item_us as usize)
            .raw("loads", json_array(sim_rows));
        write_json(&path, &root.render());
    }

    // ---- measured latency sweep (never goldened) ---------------------
    println!("\n== measured serving latency (real clock; never goldened) ==");
    let ds = DatasetSpec::new(SyntheticKind::Bars, RES, RES, 3, CLASSES)
        .with_samples(8)
        .with_noise(0.05)
        .generate(9);
    let w8 = tiny_net(BitWidth::W8, &ds);
    let w4 = tiny_net(BitWidth::W4, &ds);
    println!(
        "{:<8} {:<8} {:>4} {:>9} {:>6} {:>9} {:>7} {:>9} {:>9}",
        "workers", "gap_us", "ok", "degraded", "shed", "deadline", "failed", "p50_us", "p99_us"
    );
    rule(76);
    let mut rows: Vec<MeasuredRow> = Vec::new();
    for &workers in &WORKER_COUNTS {
        for &gap in &LOAD_GAPS_US {
            let mut registry = ModelRegistry::new();
            registry
                .register(
                    "cnn",
                    vec![("w8".into(), w8.clone()), ("w4".into(), w4.clone())],
                )
                .expect("verified variants register");
            let row = measured_run(registry, workers, gap, &ds);
            println!(
                "{:<8} {:<8} {:>4} {:>9} {:>6} {:>9} {:>7} {:>9} {:>9}",
                row.workers,
                row.gap_us,
                row.ok,
                row.degraded,
                row.shed,
                row.deadline,
                row.failed,
                row.p50_us,
                row.p99_us
            );
            rows.push(row);
        }
    }

    let heaviest = *LOAD_GAPS_US.last().expect("non-empty sweep");
    let p99_at = |workers: usize| {
        rows.iter()
            .find(|r| r.workers == workers && r.gap_us == heaviest)
            .map(|r| r.p99_us)
            .expect("row measured")
    };
    let (p99_1w, p99_4w) = (p99_at(1), p99_at(4));
    let cores = available_cores();
    rule(76);
    // Same rule as the walk-scaling bench: the 4-worker latency target
    // only means something when 4 workers can actually run in parallel.
    if cores >= 4 {
        println!(
            "4-worker p99 at {heaviest}us gaps: {p99_4w}us vs 1-worker {p99_1w}us (target: <=)"
        );
    } else {
        println!(
            "4-worker p99 at {heaviest}us gaps: {p99_4w}us vs 1-worker {p99_1w}us — \
             target skipped (host has {cores} core{})",
            if cores == 1 { "" } else { "s" }
        );
    }

    if let Some(path) = bench_json_out_path() {
        let json_rows = rows.iter().map(|r| {
            let mut obj = JsonObject::new();
            obj.int("workers", r.workers)
                .int("inter_arrival_us", r.gap_us as usize)
                .int("ok", r.ok as usize)
                .int("ok_degraded", r.degraded as usize)
                .int("shed", r.shed as usize)
                .int("deadline", r.deadline as usize)
                .int("failed", r.failed as usize)
                .int("p50_us", r.p50_us as usize)
                .int("p99_us", r.p99_us as usize);
            obj.render()
        });
        let mut root = JsonObject::new();
        root.string("bench", "table_serve_load")
            .string("model", "cnn[w8,w4] (mobilenet_like_residual 8px)")
            .raw("host", host_meta(1).render())
            .int("requests_per_row", REQUESTS)
            .raw("latency", json_array(json_rows))
            .int("available_parallelism", cores);
        gated_target(&mut root, "meets_4w_p99_target", p99_4w <= p99_1w, 4);
        write_json(&path, &root.render());
    }
}
