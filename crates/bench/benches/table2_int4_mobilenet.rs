//! Regenerates **Table 2**: integer-only MobilenetV1_224_1.0 under the four
//! deployment schemes.
//!
//! Two parts:
//! 1. the **weight memory footprint column** is recomputed exactly from the
//!    MobileNetV1_224_1.0 architecture and the Table-1 memory model;
//! 2. the **accuracy column** cannot be re-measured without ImageNet, so we
//!    print the paper-reported Top-1 next to the *measured* accuracy of the
//!    same schemes on the synthetic folding-stress task (`DESIGN.md`,
//!    "Substitutions") — the shape to verify is PL+FB's INT4 collapse and
//!    the ICN/thresholds recovery.
//!
//! Run with: `cargo bench --bench table2_int4_mobilenet`
//! (`-- --json <path>` additionally emits the recomputed part-1 footprints
//! as JSON for the golden-regression CI job; the trained part-2 accuracies
//! are deliberately excluded from the goldens.)

use mixq_bench::harness::{json_array, json_out_path, rule, run_stress_scheme, stress_dataset};
use mixq_bench::harness::{write_json, JsonObject};
use mixq_bench::reference::TABLE2;
use mixq_core::memory::{
    mib, network_flash_footprint, network_flash_footprint_with_acts, QuantScheme,
};
use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
use mixq_quant::BitWidth;

fn main() {
    let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
    let l = spec.num_layers();
    let w8 = vec![BitWidth::W8; l];
    let w4 = vec![BitWidth::W4; l];
    let a8 = vec![BitWidth::W8; l + 1];
    let a4 = vec![BitWidth::W4; l + 1];

    println!("== Table 2 (part 1): MobilenetV1_224_1.0 weight memory footprint ==");
    println!("{:<22} {:>12} {:>12}", "method", "paper (MB)", "ours (MiB)");
    rule(48);
    let fp32 = spec.total_weight_elements() * 4;
    let rows: [(&str, usize); 6] = [
        ("Full-precision", fp32),
        (
            "PL+FB INT8",
            network_flash_footprint(&spec, QuantScheme::PerLayerFolded, &w8),
        ),
        (
            "PL+FB INT4",
            network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerFolded, &w4, &a8),
        ),
        (
            "PL+ICN INT4",
            network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerIcn, &w4, &a8),
        ),
        (
            "PC+ICN INT4",
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelIcn, &w4, &a8),
        ),
        (
            "PC+Thresholds INT4",
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelThresholds, &w4, &a4),
        ),
    ];
    for ((label, bytes), reference) in rows.iter().zip(TABLE2.iter()) {
        println!(
            "{:<22} {:>12} {:>12.2}",
            label,
            reference
                .footprint_mb
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            mib(*bytes)
        );
    }

    if let Some(path) = json_out_path() {
        let json_rows = json_array(rows.iter().map(|(label, bytes)| {
            let mut row = JsonObject::new();
            row.string("method", label).int("footprint_bytes", *bytes);
            row.render()
        }));
        let mut doc = JsonObject::new();
        doc.string("table", "table2_int4_mobilenet")
            .string("model", spec.name())
            .raw("rows", json_rows);
        write_json(&path, &doc.render());
    }

    println!();
    println!("== Table 2 (part 2): accuracy shape on the synthetic stand-in ==");
    println!("(paper Top-1 is ImageNet; ours is the folding-stress micro-CNN — compare *shape*)");
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "method", "paper Top-1", "ours fq-train", "ours int"
    );
    rule(64);
    let ds = stress_dataset(11);
    let split = ds.split(0.8, 3);
    let cases = [
        (
            "PL+FB INT8",
            QuantScheme::PerLayerFolded,
            BitWidth::W8,
            70.1,
        ),
        ("PL+FB INT4", QuantScheme::PerLayerFolded, BitWidth::W4, 0.1),
        ("PL+ICN INT4", QuantScheme::PerLayerIcn, BitWidth::W4, 61.75),
        (
            "PC+ICN INT4",
            QuantScheme::PerChannelIcn,
            BitWidth::W4,
            66.41,
        ),
        (
            "PC+Thresholds INT4",
            QuantScheme::PerChannelThresholds,
            BitWidth::W4,
            66.46,
        ),
    ];
    for (label, scheme, bits, paper) in cases {
        let run = run_stress_scheme(&split.train, &split.test, scheme, bits, 4242);
        println!(
            "{:<22} {:>11.2}% {:>13.1}% {:>11.1}%",
            label,
            paper,
            run.fake_quant_acc * 100.0,
            run.int_acc * 100.0
        );
    }
    println!();
    println!("expected shape: the PL+FB INT4 row collapses (paper: 0.1%); ICN rows hold;");
    println!("PC ≥ PL; thresholds track PC+ICN; footprints order FB < PL+ICN < PC+ICN < Thr.");
}
