//! Regenerates **Table 1**: memory requirements of a quantized
//! convolutional layer under the four deployment schemes, with the §4.1
//! datatypes, evaluated on a representative MobileNetV1 layer and across
//! `Q ∈ {2, 4, 8}`.
//!
//! Run with: `cargo bench --bench table1_layer_memory`
//! (`-- --json <path>` additionally emits the evaluated bytes as JSON for
//! the golden-regression CI job.)

use mixq_bench::harness::{json_array, json_out_path, write_json, JsonObject};
use mixq_core::memory::{static_param_bytes, weight_bytes, QuantScheme};
use mixq_models::LayerSpec;
use mixq_quant::BitWidth;

fn main() {
    // A mid-network MobileNetV1 layer: 3x3, 64 -> 128 channels.
    let layer = LayerSpec::conv("pw-mid", 3, 1, 64, 128, 28, 28);
    let co = layer.out_channels();
    println!("== Table 1: memory requirements of a quantized conv layer ==");
    println!(
        "layer: {} ({} weight elements, c_O = {co})",
        layer,
        layer.weight_elements()
    );
    println!();
    println!("symbolic parameter counts (paper Table 1):");
    println!(
        "{:<16} {:>4} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>9}",
        "scheme", "Zx", "Zw", "Bq", "M0", "N0", "Zy", "", "Thr"
    );
    println!(
        "{:<16} {:>4} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>9}",
        "PL+FB [11]", "1", "1", "cO", "1", "1", "1", "", "-"
    );
    println!(
        "{:<16} {:>4} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>9}",
        "PL+ICN (our)", "1", "1", "cO", "cO", "cO", "1", "", "-"
    );
    println!(
        "{:<16} {:>4} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>9}",
        "PC+ICN (our)", "1", "cO", "cO", "cO", "cO", "1", "", "-"
    );
    println!(
        "{:<16} {:>4} {:>6} {:>4} {:>4} {:>4} {:>4} {:>4} {:>9}",
        "PC+Thr [21,8]", "1", "cO", "-", "-", "-", "1", "", "cO·2^Q"
    );
    println!();
    println!("evaluated bytes (weights packed at Q bits; §4.1 datatypes):");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "scheme", "Q=8", "Q=4", "Q=2", "static @Q=4"
    );
    for scheme in QuantScheme::ALL {
        let row: Vec<String> = [BitWidth::W8, BitWidth::W4, BitWidth::W2]
            .iter()
            .map(|&q| {
                let total = weight_bytes(&layer, q) + static_param_bytes(&layer, scheme, q);
                format!("{total}")
            })
            .collect();
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>14}",
            scheme.label(),
            row[0],
            row[1],
            row[2],
            static_param_bytes(&layer, scheme, BitWidth::W4)
        );
    }
    println!();
    println!(
        "note: the thresholds scheme's static cost grows as cO·2^Q \
         (paper §4.1) — at Q=8 it is {} B vs {} B for PC+ICN.",
        static_param_bytes(&layer, QuantScheme::PerChannelThresholds, BitWidth::W8),
        static_param_bytes(&layer, QuantScheme::PerChannelIcn, BitWidth::W8)
    );

    if let Some(path) = json_out_path() {
        let rows = json_array(QuantScheme::ALL.iter().map(|&scheme| {
            let mut row = JsonObject::new();
            row.string("scheme", scheme.label());
            for q in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
                row.int(
                    &format!("total_bytes_q{}", q.bits()),
                    weight_bytes(&layer, q) + static_param_bytes(&layer, scheme, q),
                );
            }
            row.int(
                "static_bytes_q4",
                static_param_bytes(&layer, scheme, BitWidth::W4),
            );
            row.render()
        }));
        let mut doc = JsonObject::new();
        doc.string("table", "table1_layer_memory")
            .string("layer", &layer.to_string())
            .int("weight_elements", layer.weight_elements())
            .raw("rows", rows);
        write_json(&path, &doc.render());
    }
}
