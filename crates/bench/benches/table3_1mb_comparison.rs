//! Regenerates **Table 3**: mixed-precision models under a 1 MB read-only
//! budget, next to the state-of-the-art rows the paper quotes.
//!
//! Our rows recompute the bit assignment and footprint from scratch; the
//! accuracy column is paper-reported (ImageNet). The §6 text anchor —
//! 192_0.5 at 1 MB + 256 kB cuts `Q1y, Q2y, Q5y` to 4 bits and puts pw13
//! and the classifier at 4-bit weights — is checked explicitly.
//!
//! Run with: `cargo bench --bench table3_1mb_comparison`

use mixq_bench::harness::rule;
use mixq_bench::reference::{TABLE3_OTHERS, TABLE3_OURS};
use mixq_core::memory::{mib, MemoryBudget, QuantScheme};
use mixq_core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
use mixq_quant::BitWidth;

fn main() {
    println!("== Table 3: comparison at M_RO = 1 MB ==");
    println!(
        "{:<24} {:<22} {:>12} {:>14} {:>10}",
        "model", "method", "paper Top-1", "constraints", "ours(MiB)"
    );
    rule(88);

    let ours = [
        (
            MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_5),
            MemoryBudget::one_megabyte(),
            TABLE3_OURS[0],
        ),
        (
            MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5),
            MemoryBudget::one_megabyte_small_ram(),
            TABLE3_OURS[1],
        ),
    ];
    for (cfg_m, budget, (label, desc, top1)) in ours {
        let spec = cfg_m.build();
        let cfg = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
        match assign_bits(&spec, &cfg) {
            Ok(a) => {
                println!(
                    "{:<24} {:<22} {:>11.1}% {:>14} {:>10.3}",
                    format!("MobilenetV1_{label}"),
                    "MixQ-PC-ICN (ours)",
                    top1,
                    desc,
                    mib(a.flash_bytes(&spec, QuantScheme::PerChannelIcn))
                );
                let cut_w: Vec<String> = spec
                    .layers()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| a.weight_bits[*i] != BitWidth::W8)
                    .map(|(i, l)| format!("{}:w{}", l.name(), a.weight_bits[i].bits()))
                    .collect();
                let cut_a: Vec<String> = a
                    .act_bits
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b != BitWidth::W8)
                    .map(|(i, b)| format!("Q{}y:{}", i.saturating_sub(1), b.bits()))
                    .collect();
                println!(
                    "{:<24} cuts: weights [{}], activations [{}]",
                    "",
                    cut_w.join(" "),
                    cut_a.join(" ")
                );
            }
            Err(e) => println!("MobilenetV1_{label}: INFEASIBLE ({e})"),
        }
    }
    for (model, method, top1, mb) in TABLE3_OTHERS {
        println!(
            "{:<24} {:<22} {:>11.2}% {:>14} {:>10}",
            model,
            method,
            top1,
            format!("{mb:.2} MB"),
            "-"
        );
    }

    // The §6 anchor, asserted loudly.
    let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
    let cfg = MixedPrecisionConfig::new(
        MemoryBudget::one_megabyte_small_ram(),
        QuantScheme::PerChannelIcn,
    );
    let a = assign_bits(&spec, &cfg).expect("feasible");
    let anchor_ok = a.act_bits[2] == BitWidth::W4
        && a.act_bits[3] == BitWidth::W4
        && a.act_bits[6] == BitWidth::W4
        && a.weight_bits[spec.num_layers() - 1] == BitWidth::W4
        && a.weight_bits[spec.num_layers() - 2] == BitWidth::W4;
    println!();
    println!(
        "§6 anchor (192_0.5 @ 1MB+256kB → Q1y,Q2y,Q5y = 4; pw13, fc at w4): {}",
        if anchor_ok { "REPRODUCED" } else { "MISMATCH" }
    );
    println!(
        "note: non-uniform rows ([22], [5]) are floating-point codebook methods — not \
         integer-only deployable on MCUs (paper §2); listed for completeness."
    );
}
