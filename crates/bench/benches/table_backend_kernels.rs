//! Backend kernel table: Reference vs Tiled backend on the residual
//! MobileNet (`mobilenet_like_residual`), per layer.
//!
//! Three views of the same graph:
//!
//! * **selection** — the `KernelChoice` each backend resolved per node
//!   (deterministic shape math; golden-tested via `--json`), with the
//!   im2col scratch each choice prices;
//! * **modeled cycles** — the Cortex-M7 cycle model priced per selected
//!   kernel from the executed ledger (deterministic; golden-tested);
//! * **measured host latency** — median wall time of the naive
//!   `execute_gemm` vs the register-blocked `execute_blocked` inner kernel
//!   on each dense convolution's real input, plus whole-graph runs per
//!   backend (host-dependent; printed only, never goldened). The blocked
//!   kernel must beat the naive GEMM ≥ 1.1× on the pointwise layers —
//!   the margin shrank when the naive GEMM stopped rebuilding its weight
//!   matrix through per-element packed extraction (it now borrows 8-bit
//!   weight bytes directly), so both dataflows are faster in absolute
//!   terms than the PR-4 versions.
//!
//! Run with: `cargo bench --bench table_backend_kernels`
//! (`--json <path>` writes the deterministic selection table;
//! `--backend reference|tiled` picks the whole-graph timing target).

use std::hint::black_box;
use std::time::Instant;

use mixq_bench::harness::{
    backend_arg, batch_arg, json_array, json_out_path, rule, write_json, JsonObject,
};
use mixq_core::convert::{convert_with_backend, IntNetwork};
use mixq_core::memory::QuantScheme;
use mixq_data::{DatasetSpec, SyntheticKind};
use mixq_kernels::{
    AnyOp, Backend, OpCounts, OpOutput, QActivation, QOp, ReferenceBackend, TiledBackend,
};
use mixq_mcu::CortexM7CycleModel;
use mixq_models::micro::mobilenet_like_residual;
use mixq_nn::qat::QatNetwork;
use mixq_quant::{BitWidth, Granularity};
use mixq_tensor::Shape;

const SAMPLES: usize = 15;

/// Median wall time of `f` over `SAMPLES` timed runs, in microseconds.
fn time_us<T>(mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..2 {
        black_box(f());
    }
    let mut runs: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

/// Executes the graph node by node keeping every intermediate activation
/// live, so each layer can be re-timed on its real input.
fn intermediates(net: &IntNetwork, x: &QActivation) -> Vec<Option<QActivation>> {
    let graph = net.graph();
    let mut slots: Vec<Option<QActivation>> = vec![None; graph.len() + 1];
    slots[0] = Some(x.clone());
    for (i, node) in graph.nodes().iter().enumerate() {
        let inputs: Vec<&QActivation> = node
            .inputs()
            .iter()
            .map(|&t| slots[t].as_ref().expect("topological order"))
            .collect();
        let mut ops = OpCounts::default();
        if let OpOutput::Act(a) = node.op().execute(&inputs, &mut ops) {
            slots[i + 1] = Some(a);
        }
    }
    slots
}

fn main() {
    let res = 32usize;
    let spec = mobilenet_like_residual(res, 3, 8, 4);
    let ds = DatasetSpec::new(SyntheticKind::Bars, res, res, 3, 4)
        .with_samples(8)
        .with_noise(0.05)
        .generate(5);
    let mut net = QatNetwork::build(&spec, 77);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    let reference = convert_with_backend(&net, QuantScheme::PerChannelIcn, &ReferenceBackend)
        .expect("calibrated network converts");
    let tiled = convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("calibrated network converts");

    let image = &ds.sample(0).images;
    let run_ref = reference.infer_detailed(image);
    let run_tiled = tiled.infer_detailed(image);
    assert_eq!(
        run_ref.logits, run_tiled.logits,
        "backends are bit-identical"
    );

    let model = CortexM7CycleModel::default();
    let br_ref = model.breakdown_from_runs(&run_ref.layers);
    let br_tiled = model.breakdown_from_runs(&run_tiled.layers);
    let input_shape = Shape::feature_map(res, res, 3);
    let scratch_ref = reference
        .graph()
        .peak_scratch_bytes(input_shape, BitWidth::W8);
    let scratch_tiled = tiled.graph().peak_scratch_bytes(input_shape, BitWidth::W8);

    println!(
        "backend kernel table — mobilenet_like_residual {res}px (width/8), {} nodes",
        reference.graph().len()
    );
    println!(
        "\n== per-node selection and modeled Cortex-M7 cycles ({} vs {}) ==",
        ReferenceBackend.name(),
        TiledBackend::default().name()
    );
    println!(
        "{:<10} {:<7} {:<13} {:>10} {:>12} {:>12} {:>7}",
        "node", "kind", "tiled choice", "macs", "cyc ref", "cyc tiled", "model×"
    );
    rule(78);
    let mut json_nodes = Vec::new();
    for (i, (lr, lt)) in run_ref.layers.iter().zip(&run_tiled.layers).enumerate() {
        println!(
            "{:<10} {:<7} {:<13} {:>10} {:>12} {:>12} {:>6.2}x",
            lr.name,
            lr.kind.label(),
            lt.choice.label(),
            lt.ops.macs,
            br_ref[i].cycles,
            br_tiled[i].cycles,
            br_ref[i].cycles as f64 / br_tiled[i].cycles as f64
        );
        let mut obj = JsonObject::new();
        obj.string("name", &lr.name)
            .string("kind", lr.kind.label())
            .string("reference_choice", lr.choice.label())
            .string("tiled_choice", lt.choice.label())
            .int("macs_tiled", lt.ops.macs as usize)
            .int("cycles_reference", br_ref[i].cycles as usize)
            .int("cycles_tiled", br_tiled[i].cycles as usize);
        json_nodes.push(obj.render());
    }
    let total_ref: u64 = br_ref.iter().map(|l| l.cycles).sum();
    let total_tiled: u64 = br_tiled.iter().map(|l| l.cycles).sum();
    rule(78);
    println!(
        "totals: {total_ref} -> {total_tiled} modeled cycles ({:.2}x); peak im2col scratch {} -> {} B",
        total_ref as f64 / total_tiled as f64,
        scratch_ref,
        scratch_tiled
    );

    // Measured host latency of the two GEMM dataflows on each dense conv's
    // real input (the direct loop shown for context).
    println!("\n== measured host latency: naive im2col GEMM vs blocked GEMM ==");
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "node", "kind", "direct µs", "gemm µs", "blocked µs", "speedup"
    );
    rule(68);
    let x = reference.quantize_input(image);
    let slots = intermediates(&reference, &x);
    let (mut pw_gemm_us, mut pw_blocked_us) = (0.0f64, 0.0f64);
    for node in reference.graph().nodes() {
        let AnyOp::Conv(conv) = node.op() else {
            continue;
        };
        if conv.weights().is_depthwise() {
            continue;
        }
        let input = slots[node.inputs()[0]]
            .as_ref()
            .expect("conv input is live");
        let direct = time_us(|| {
            let mut ops = OpCounts::default();
            conv.execute(black_box(input), &mut ops)
        });
        let gemm = time_us(|| {
            let mut ops = OpCounts::default();
            conv.execute_gemm(black_box(input), &mut ops)
        });
        let blocked = time_us(|| {
            let mut ops = OpCounts::default();
            conv.execute_blocked(black_box(input), &mut ops)
        });
        let pointwise = conv.geometry().kernel_area() == 1;
        if pointwise {
            pw_gemm_us += gemm;
            pw_blocked_us += blocked;
        }
        println!(
            "{:<10} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
            node.name(),
            if pointwise { "pw" } else { "conv" },
            direct,
            gemm,
            blocked,
            gemm / blocked
        );
    }
    rule(68);
    println!(
        "pointwise layers: naive gemm {pw_gemm_us:.1} µs -> blocked {pw_blocked_us:.1} µs \
         ({:.2}x; target >= 1.1x)",
        pw_gemm_us / pw_blocked_us
    );

    // Whole-graph host run under the --backend/--batch flags (every leg of
    // the CI bench-smoke matrix exercises a different dispatch path).
    let flagged = backend_arg();
    let batch = batch_arg().min(ds.len());
    let mut target = reference.clone();
    target.select_backend(&flagged);
    let us = if batch > 1 {
        let mut arena = mixq_kernels::ActivationArena::new();
        let mut logits = Vec::new();
        let mut ops = OpCounts::default();
        time_us(|| {
            let xb = target.quantize_input_items_pooled(ds.images(), 0, batch, &mut arena);
            target
                .graph()
                .infer_batch(xb, &mut arena, &mut logits, &mut ops);
        }) / batch as f64
    } else {
        time_us(|| target.infer_detailed(black_box(image)))
    };
    println!(
        "\nwhole-graph run ({} backend, batch {batch}): {us:.1} µs/inference (host)",
        flagged.name()
    );

    if let Some(path) = json_out_path() {
        let mut root = JsonObject::new();
        root.string("bench", "table_backend_kernels")
            .string("network", &format!("mobilenet_like_residual_{res}px_w8"))
            .int("nodes", reference.graph().len())
            .raw("layers", json_array(json_nodes))
            .int("modeled_cycles_reference", total_ref as usize)
            .int("modeled_cycles_tiled", total_tiled as usize)
            .int("peak_scratch_reference", scratch_ref)
            .int("peak_scratch_tiled", scratch_tiled)
            .int("peak_ram_bytes", reference.peak_ram_bytes())
            .int("flash_bytes", reference.flash_bytes());
        write_json(&path, &root.render());
    }
}
