//! Single-walk scaling: samples/sec of one batched graph walk of the W4
//! residual MobileNet under the prepacked tiled backend, across
//! threads ∈ {1, 2, 4} × {forced-scalar, auto-detected SIMD} — the PR-6
//! headline against the PR-5 scalar serial baseline (threads 1, scalar).
//!
//! Three views:
//!
//! * **deterministic shape math** (`--json`, golden-tested) — node count,
//!   modeled Cortex-M7 cycles of one inference (invariant under every
//!   host thread/SIMD setting — the model prices abstract op counts, and
//!   those are bit-identical), the batch-8 Eq. 7 peak RAM, prepacked
//!   panel bytes, and the `partition_bounds` row splits the worker pool
//!   uses on the stem conv's im2col matrix;
//! * **measured throughput** (stdout and `--bench-json`, never goldened)
//!   — steady-state samples/sec per thread × SIMD configuration through
//!   the pooled batched path. Targets: auto-SIMD at 1 thread ≥ 1.25×
//!   (floor) / ≥ 1.5× (stretch) the scalar 1-thread baseline, and the
//!   4-thread intra-walk configuration ≥ 2.5× scalar 1-thread — the
//!   latter reported `null`/skipped (not `false`) when the host's
//!   `available_parallelism` (recorded in the JSON) cannot express 4
//!   genuine workers;
//! * **bit-identity** — every configuration must produce identical
//!   logits *and* identical `OpCounts` (asserted on every run), so
//!   modeled MCU cycles never move with host execution strategy.
//!
//! Run with: `cargo bench --bench table_walk_scaling`
//! (`--json <path>` writes the deterministic golden, `--bench-json
//! <path>` the measured scaling table for `scripts/bench-report.sh`).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mixq_bench::harness::{
    available_cores, bench_json_out_path, gated_target, host_meta, json_array, json_out_path, rule,
    threads_arg, write_json, JsonObject,
};
use mixq_core::convert::{convert_with_backend, IntNetwork};
use mixq_core::memory::QuantScheme;
use mixq_data::{DatasetSpec, SyntheticKind};
use mixq_kernels::{
    partition_bounds, simd, ActivationArena, OpCounts, SimdLevel, ThreadPool, TiledBackend,
    MAX_POOL_THREADS,
};
use mixq_mcu::CortexM7CycleModel;
use mixq_models::micro::mobilenet_like_residual;
use mixq_nn::qat::QatNetwork;
use mixq_tensor::Tensor;

const BATCH: usize = 8;
const THREADS: [usize; 3] = [1, 2, 4];
const SWEEPS: usize = 7;

/// Steady-state samples/sec of full sweeps over `images`, one graph walk
/// per [`BATCH`] samples, with an intra-walk pool of `threads` attached
/// outside the timed region. Returns the median-of-sweeps throughput plus
/// the full-dataset logits and total op counts of one sweep for the
/// bit-identity cross-checks.
fn walk_throughput(
    net: &IntNetwork,
    images: &Tensor<f32>,
    threads: usize,
) -> (f64, Vec<i32>, OpCounts) {
    let n = images.shape().n;
    assert_eq!(n % BATCH, 0, "sweep uses full batches only");
    let mut arena = ActivationArena::new();
    if threads > 1 {
        arena.set_pool(Arc::new(ThreadPool::new(threads)));
    }
    let mut logits = Vec::new();
    let mut all_logits = Vec::new();
    let mut ops = OpCounts::default();
    let mut sweep_ops = OpCounts::default();
    let sweep = |arena: &mut ActivationArena,
                 logits: &mut Vec<i32>,
                 ops: &mut OpCounts,
                 mut keep: Option<(&mut Vec<i32>, &mut OpCounts)>| {
        let mut start = 0usize;
        while start < n {
            let x = net.quantize_input_items_pooled(images, start, BATCH, arena);
            net.graph().infer_batch(x, arena, logits, ops);
            if let Some((all, _)) = keep.as_mut() {
                all.extend(logits.iter().copied());
            }
            start += BATCH;
        }
        if let Some((_, total)) = keep {
            *total = *ops;
        }
    };
    // Warm-up: grow the arena to steady capacity and capture the logits
    // and ledger for the caller's identity checks.
    sweep(
        &mut arena,
        &mut logits,
        &mut ops,
        Some((&mut all_logits, &mut sweep_ops)),
    );
    let mut runs: Vec<f64> = (0..SWEEPS)
        .map(|_| {
            let t = Instant::now();
            sweep(&mut arena, &mut logits, &mut ops, None);
            black_box(&logits);
            t.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    (n as f64 / runs[runs.len() / 2], all_logits, sweep_ops)
}

fn main() {
    let res = 32usize;
    let spec = mobilenet_like_residual(res, 3, 8, 4);
    let ds = DatasetSpec::new(SyntheticKind::Bars, res, res, 3, 4)
        .with_samples(32)
        .with_noise(0.05)
        .generate(5);
    let mut net = QatNetwork::build(&spec, 77);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(mixq_quant::Granularity::PerChannel);
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, mixq_quant::BitWidth::W4);
    }
    net.set_linear_weight_bits(mixq_quant::BitWidth::W4);
    let tiled = convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("calibrated network converts");

    println!(
        "single-walk scaling — mobilenet_like_residual {res}px (width/8) W4, {} nodes, \
         batch {BATCH}, tiled backend",
        tiled.graph().len()
    );
    println!(
        "detected SIMD level: {} (MIXQ_FORCE_SCALAR overrides to scalar)",
        simd::active_level().label()
    );

    // Measured scaling sweep: threads × {scalar, auto SIMD}. Forcing is
    // process-global, so each configuration sets it, measures, and the
    // loop restores auto detection afterwards.
    println!("\n== measured single-walk throughput (samples/sec; never goldened) ==");
    println!(
        "{:<9} {:>14} {:>14} {:>8}",
        "threads", "scalar", "simd", "simd×"
    );
    rule(48);
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut baseline: Option<(Vec<i32>, OpCounts)> = None;
    for &t in &THREADS {
        simd::set_forced(Some(SimdLevel::Scalar));
        let (sps_scalar, l_scalar, o_scalar) = walk_throughput(&tiled, ds.images(), t);
        simd::set_forced(None);
        let (sps_simd, l_simd, o_simd) = walk_throughput(&tiled, ds.images(), t);
        // Bit-identity across every configuration: logits and the abstract
        // op ledger (and therefore modeled MCU cycles) never move.
        let (bl, bo) = baseline.get_or_insert_with(|| (l_scalar.clone(), o_scalar));
        assert_eq!(&l_scalar, bl, "scalar logits diverged at {t} threads");
        assert_eq!(&l_simd, bl, "SIMD logits diverged at {t} threads");
        assert_eq!(o_scalar, *bo, "scalar op counts diverged at {t} threads");
        assert_eq!(o_simd, *bo, "SIMD op counts diverged at {t} threads");
        println!(
            "{t:<9} {sps_scalar:>14.1} {sps_simd:>14.1} {:>7.2}x",
            sps_simd / sps_scalar
        );
        rows.push((t, sps_scalar, sps_simd));
    }
    let model = CortexM7CycleModel::default();
    let (_, base_ops) = baseline.as_ref().expect("sweep measured").clone();
    let modeled = model.cycles_from_counts(&base_ops);
    println!("modeled Cortex-M7 cycles per sweep (invariant across all configs): {modeled}");

    let scalar_1t = rows[0].1;
    let simd_1t = rows[0].2;
    let simd_4t = rows.iter().find(|r| r.0 == 4).expect("4-thread row").2;
    let speedup_simd = simd_1t / scalar_1t;
    let speedup_4t = simd_4t / scalar_1t;
    // The multi-thread target is only expressible when the host can
    // actually run 4 workers in parallel; on a smaller machine the pool
    // still runs (bit-identity above) but the speedup is meaningless, so
    // the flag is skipped (null in the JSON) rather than reported false.
    // `gated_target` below applies the same rule to the measured JSON.
    let cores = available_cores();
    rule(48);
    println!(
        "SIMD @1T vs scalar @1T: {speedup_simd:.2}x (targets >= 1.25x floor, >= 1.5x stretch)"
    );
    if cores >= 4 {
        println!("SIMD @4T vs scalar @1T: {speedup_4t:.2}x (target >= 2.5x)");
    } else {
        println!(
            "SIMD @4T vs scalar @1T: {speedup_4t:.2}x — target skipped (host has {cores} core{})",
            if cores == 1 { "" } else { "s" }
        );
    }

    // A `--threads N` flag run for the CI bench-smoke matrix: exercises
    // the deploy-style plumbing (`IntNetwork::set_threads`) end to end.
    let flagged_threads = threads_arg();
    let mut flagged = tiled.clone();
    flagged.set_threads(flagged_threads);
    let (flagged_logits, _) = flagged.infer_batch(ds.images());
    let (base_logits, _) = baseline.expect("sweep measured");
    assert_eq!(
        flagged_logits.concat(),
        base_logits,
        "set_threads walk must be bit-identical"
    );
    println!("flagged run (threads {flagged_threads}): logits bit-identical");

    if let Some(path) = json_out_path() {
        // Deterministic golden: shape math, the modeled-cycle invariant,
        // and the exact row splits the pool would use on the stem conv's
        // batch-8 im2col matrix (rows = batch × (res/2)²).
        let stem_rows = BATCH * (res / 2) * (res / 2);
        let splits = THREADS.iter().map(|&t| {
            let mut bounds = [0usize; MAX_POOL_THREADS + 1];
            let parts = partition_bounds(stem_rows, t, &mut bounds);
            let mut obj = JsonObject::new();
            obj.int("threads", t).int("parts", parts).raw(
                "bounds",
                json_array(bounds[..=parts].iter().map(|b| b.to_string())),
            );
            obj.render()
        });
        let mut root = JsonObject::new();
        root.string("bench", "table_walk_scaling")
            .string("network", &format!("mobilenet_like_residual_{res}px_w4"))
            .int("nodes", tiled.graph().len())
            .int("batch", BATCH)
            .int("modeled_cycles_per_sweep", modeled as usize)
            .int("peak_ram_bytes_batch8", tiled.peak_ram_bytes_batch(BATCH))
            .int("prepacked_bytes", tiled.prepacked_bytes())
            .int("flash_bytes", tiled.flash_bytes())
            .int("stem_im2col_rows", stem_rows)
            .raw("row_splits", json_array(splits));
        write_json(&path, &root.render());
    }
    if let Some(path) = bench_json_out_path() {
        let mut root = JsonObject::new();
        root.string("bench", "table_walk_scaling")
            .string("network", &format!("mobilenet_like_residual_{res}px_w4"))
            .raw("host", host_meta(flagged_threads).render())
            .int("batch", BATCH);
        let cfg_rows = rows.iter().map(|&(t, s, v)| {
            let mut obj = JsonObject::new();
            obj.int("threads", t)
                .raw("scalar_samples_per_sec", format!("{s:.1}"))
                .raw("simd_samples_per_sec", format!("{v:.1}"));
            obj.render()
        });
        root.raw("throughput", json_array(cfg_rows))
            .int("available_parallelism", cores)
            .raw("speedup_simd_1t_vs_scalar_1t", format!("{speedup_simd:.2}"))
            .raw("speedup_simd_4t_vs_scalar_1t", format!("{speedup_4t:.2}"))
            .bool("meets_1_25x_simd_target", speedup_simd >= 1.25)
            .bool("meets_1_5x_simd_target", speedup_simd >= 1.5);
        gated_target(&mut root, "meets_2_5x_4t_target", speedup_4t >= 2.5, 4);
        write_json(&path, &root.render());
    }
}
