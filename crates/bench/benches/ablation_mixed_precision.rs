//! Ablations of the design choices `DESIGN.md` calls out:
//!
//! 1. **Algorithm 1 tie-break** — the paper-literal strict rule vs the
//!    producer-biased default (`≥`): the strict rule deadlocks on
//!    depthwise layers whose input/output footprints are equal.
//! 2. **Algorithm 2 margin δ** — how the score margin trades early-layer
//!    cuts against tail cuts.
//! 3. **ICN mantissa width** — requantization error of the Q31 fixed-point
//!    decomposition vs exact thresholds, over a dense accumulator sweep.
//! 4. **Threshold datatype** — how many threshold entries of converted
//!    networks would overflow the INT16 storage Table 2's footprint
//!    implies, and the **end-to-end accuracy** of actually executing the
//!    saturated-INT16 tables vs the full-range ones.
//!
//! Run with: `cargo bench --bench ablation_mixed_precision`

use mixq_bench::harness::{rule, stress_dataset};
use mixq_core::convert::convert;
use mixq_core::convert::scheme_granularity;
use mixq_core::memory::{MemoryBudget, QuantScheme};
use mixq_core::mixed::{assign_bits, cut_activation_bits, MixedPrecisionConfig, TieBreak};
use mixq_kernels::{Requantizer, ThresholdChannel};
use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
use mixq_nn::qat::QatNetwork;
use mixq_nn::train::{train, TrainConfig};
use mixq_quant::{BitWidth, FixedPointMultiplier};

fn main() {
    ablation_tie_break();
    ablation_delta();
    ablation_mantissa();
    ablation_threshold_datatype();
    ablation_saturated_thresholds_end_to_end();
    ablation_cycle_model_sensitivity();
}

fn ablation_tie_break() {
    println!("== ablation 1: Algorithm 1 tie-break rule ==");
    // 224_1.0 at a tight RAM budget stresses the depthwise pairs.
    let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
    for rw_kb in [512usize, 384, 320] {
        let budget = MemoryBudget::new(2 << 20, rw_kb * 1024);
        for (name, tie) in [
            ("strict (paper-literal)", TieBreak::Strict),
            ("cut-producer (default)", TieBreak::CutProducer),
        ] {
            let cfg =
                MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn).with_tie_break(tie);
            match cut_activation_bits(&spec, &cfg) {
                Ok((act, _)) => {
                    let cuts = act.iter().filter(|&&b| b != BitWidth::W8).count();
                    println!("  RW {rw_kb:>3} kB, {name:<24}: ok, {cuts} tensors cut");
                }
                Err(e) => println!("  RW {rw_kb:>3} kB, {name:<24}: DEADLOCK ({e})"),
            }
        }
    }
    println!();
}

fn ablation_delta() {
    println!("== ablation 2: Algorithm 2 margin δ ==");
    let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
    println!(
        "  {:<8} {:>8} {:>10}  first/last cut layer",
        "δ", "cuts", "flash MiB"
    );
    for delta in [0.0, 0.02, 0.05, 0.1, 0.25] {
        let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerChannelIcn)
            .with_delta(delta);
        match assign_bits(&spec, &cfg) {
            Ok(a) => {
                let cut: Vec<&str> = spec
                    .layers()
                    .iter()
                    .zip(&a.weight_bits)
                    .filter(|(_, &b)| b != BitWidth::W8)
                    .map(|(l, _)| l.name())
                    .collect();
                println!(
                    "  {:<8} {:>8} {:>10.2}  {} .. {}",
                    delta,
                    cut.len(),
                    mixq_core::memory::mib(a.flash_bytes(&spec, QuantScheme::PerChannelIcn)),
                    cut.first().unwrap_or(&"-"),
                    cut.last().unwrap_or(&"-")
                );
            }
            Err(e) => println!("  {delta:<8} INFEASIBLE ({e})"),
        }
    }
    println!("  (larger δ pulls cuts towards earlier layers, the paper's heuristic intent)");
    println!();
}

fn ablation_mantissa() {
    println!("== ablation 3: ICN Q31 mantissa vs exact thresholds ==");
    rule(60);
    let bits = BitWidth::W4;
    let mut icn_diffs = 0u64;
    let mut total = 0u64;
    for m_i in 1..40 {
        let m = m_i as f64 * 0.013;
        let icn = Requantizer::icn(vec![7], vec![FixedPointMultiplier::from_real(m)], 0, bits);
        let thr = ThresholdChannel::from_affine(m, 7, 0, bits);
        let (mut r, mut c) = (0, 0);
        for phi in -400..400i64 {
            let a = icn.apply(0, phi, &mut r, &mut c);
            let b = thr.eval(phi, &mut c);
            total += 1;
            if a != b {
                icn_diffs += 1;
            }
        }
    }
    println!(
        "  ICN(Q31) vs exact thresholds over {total} evaluations: {icn_diffs} code \
         differences ({:.4}%)",
        icn_diffs as f64 / total as f64 * 100.0
    );
    println!("  (the paper reports ≤0.05% accuracy delta between the two, Table 2)");
    println!();
}

/// Figure 2's conclusions must not hinge on the cycle model's calibration:
/// perturb every constant ±30% and check the qualitative claims
/// (latency ordering across the model grid, positive PC overhead,
/// an order-of-magnitude fps span) survive.
fn ablation_cycle_model_sensitivity() {
    use mixq_core::mixed::BitAssignment;
    use mixq_mcu::{CortexM7CycleModel, Device};

    println!();
    println!("== ablation 5: cycle-model calibration sensitivity ==");
    let device = Device::stm32h7();
    let configs = MobileNetConfig::all();
    let assignments: Vec<_> = configs
        .iter()
        .map(|c| {
            let spec = c.build();
            let cfg = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerChannelIcn);
            let a = assign_bits(&spec, &cfg).expect("feasible");
            (spec, a)
        })
        .collect();
    let baseline_order = |model: &CortexM7CycleModel| -> Vec<String> {
        let mut v: Vec<(String, u64)> = configs
            .iter()
            .zip(&assignments)
            .map(|(c, (spec, a))| {
                (
                    c.label(),
                    model.network_cycles(spec, a, QuantScheme::PerChannelIcn),
                )
            })
            .collect();
        v.sort_by_key(|x| x.1);
        v.into_iter().map(|x| x.0).collect()
    };
    let nominal = baseline_order(&CortexM7CycleModel::default());
    for (name, factor) in [("-30%", 0.7), ("nominal", 1.0), ("+30%", 1.3)] {
        let m = CortexM7CycleModel {
            conv_cycles_per_mac: 2.1 * factor,
            dw_cycles_per_mac: 7.0 / factor, // perturb in opposite directions
            unpack_cycles: 0.8 * factor,
            pc_offset_cycles: 0.45 * factor,
            requant_cycles: 8.0 * factor,
            ..CortexM7CycleModel::default()
        };
        let order = baseline_order(&m);
        let agree = order.iter().zip(&nominal).filter(|(a, b)| a == b).count();
        // PC overhead under this perturbation.
        let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
        let bits = BitAssignment::uniform8(&spec);
        let pl = m.network_cycles(&spec, &bits, QuantScheme::PerLayerIcn);
        let pc = m.network_cycles(&spec, &bits, QuantScheme::PerChannelIcn);
        let span = {
            let fast = m.network_cycles(
                &assignments[0].0,
                &assignments[0].1,
                QuantScheme::PerChannelIcn,
            );
            let slow = configs
                .iter()
                .zip(&assignments)
                .map(|(_, (spec, a))| m.network_cycles(spec, a, QuantScheme::PerChannelIcn))
                .max()
                .unwrap_or(fast);
            slow as f64 / fast as f64
        };
        println!(
            "  {name:>8}: latency-rank agreement {agree}/16, PC overhead {:+.0}%, fps span {:.0}x",
            (pc as f64 / pl as f64 - 1.0) * 100.0,
            span
        );
    }
    println!("  (rank agreement should stay high and overhead/span positive under ±30%)");
}

fn ablation_threshold_datatype() {
    println!("== ablation 4: INT16 threshold storage ==");
    let ds = stress_dataset(11);
    let split = ds.split(0.8, 3);
    let spec = mixq_models::micro::folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, 4242);
    let _ = train(&mut net, &split.train, &TrainConfig::fast(10));
    net.calibrate_input(split.train.images());
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelThresholds));
    let _ = train(&mut net, &split.train, &TrainConfig::fast(6));
    let int_net = convert(&net, QuantScheme::PerChannelThresholds).expect("convertible");
    let mut total = 0usize;
    let mut beyond_i16 = 0usize;
    let mut lossy = 0usize;
    let mut in_bits = mixq_quant::BitWidth::W8;
    for layer in int_net.layers() {
        let wshape = layer.weights().shape();
        let macs_per_output = if layer.weights().is_depthwise() {
            wshape.h * wshape.w
        } else {
            wshape.h * wshape.w * wshape.c
        };
        // Reachable accumulator magnitude: |Φ| ≤ macs/output · qmax_x · qmax_w.
        let reach =
            (macs_per_output as i64) * in_bits.qmax() as i64 * layer.weights().bits().qmax() as i64;
        if let Requantizer::Thresholds { channels, .. } = layer.requant() {
            for ch in channels {
                for &t in ch.thresholds() {
                    total += 1;
                    if !(i16::MIN as i64..=i16::MAX as i64).contains(&t) {
                        beyond_i16 += 1;
                        if t.abs() <= reach {
                            lossy += 1;
                        }
                    }
                }
            }
        }
        in_bits = layer.requant().out_bits();
    }
    println!(
        "  converted stress CNN stores {total} thresholds; beyond i16: {beyond_i16}, \
         of which *reachable* by the accumulator (i.e. truly lossy if saturated): {lossy}"
    );
    println!(
        "  (Table 2's 2.35 MB implies INT16 entries; unreachable thresholds encode \
         always/never-crossed codes and saturate losslessly — the lossy count is what \
         a deployment must watch)"
    );
}

/// Ablation 4b: execute the saturated tables. `ThresholdChannel::
/// saturated_i16` clamps every entry to the INT16 storage range; here the
/// whole converted network is rewritten (`IntNetwork::
/// with_saturated_thresholds`) and re-evaluated end to end, so the
/// datatype decision is measured as accuracy, not just overflow counts.
fn ablation_saturated_thresholds_end_to_end() {
    println!("== ablation 4b: saturated INT16 tables, end-to-end accuracy ==");
    let ds = stress_dataset(11);
    let split = ds.split(0.8, 3);
    let spec = mixq_models::micro::folding_stress_cnn(2, 4);
    for bits in [BitWidth::W4, BitWidth::W2] {
        let mut net = QatNetwork::build(&spec, 4242);
        let _ = train(&mut net, &split.train, &TrainConfig::fast(10));
        net.calibrate_input(split.train.images());
        net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelThresholds));
        for i in 0..net.num_blocks() {
            net.set_weight_bits(i, bits);
        }
        net.set_linear_weight_bits(bits);
        let _ = train(&mut net, &split.train, &TrainConfig::fast(6));
        let full = convert(&net, QuantScheme::PerChannelThresholds).expect("convertible");
        let saturated = full.with_saturated_thresholds();
        let (acc_full, _) = full.evaluate(&split.test);
        let (acc_sat, _) = saturated.evaluate(&split.test);
        println!(
            "  W{} weights: full-range tables {:>5.1}% | saturated INT16 {:>5.1}% ({})",
            bits.bits(),
            acc_full * 100.0,
            acc_sat * 100.0,
            if (acc_full - acc_sat).abs() < 1e-6 {
                "lossless here — saturated entries unreachable"
            } else {
                "lossy — accumulator reaches the clamped entries"
            }
        );
    }
    println!();
}
