//! `verify_zoo` — static verification sweep over the model zoo.
//!
//! Runs `mixq-verify` over (1) every MobileNetV1 spec of the paper's
//! Figure 2 grid × a {W8, W4, W2, mixed} bit assignment (pure shape
//! math, no training), (2) the lowered `QGraph` of every trainable micro
//! model × {reference, tiled} backend × bit assignment × quantization
//! scheme (seeded build + calibration, deterministic), and (3) a set of
//! deliberately forged inputs — an oversized dot chunk, an aliasing
//! liveness schedule, a dropped terminal, a mismatched residual join —
//! asserting each is rejected with the expected diagnostic.
//!
//! Everything here is input-independent static analysis, so the JSON is
//! goldenable byte-for-byte: `tests/goldens/verify_zoo.json`. The bench
//! itself asserts every zoo report verifies and every forged case is
//! rejected, so the CI bench-smoke leg doubles as a verifier regression
//! gate.

use mixq_bench::harness::{json_array, json_out_path, rule, write_json, JsonObject};
use mixq_core::convert::convert_with_backend;
use mixq_core::memory::QuantScheme;
use mixq_data::{DatasetSpec, SyntheticKind};
use mixq_kernels::backend::{Backend, ReferenceBackend, TiledBackend};
use mixq_kernels::QAdd;
use mixq_models::micro::{
    folding_stress_cnn, mobilenet_like_residual, network_spec_of, quickstart_cnn,
};
use mixq_models::mobilenet::MobileNetConfig;
use mixq_models::NetworkSpec;
use mixq_nn::qat::{MicroCnnSpec, QatNetwork};
use mixq_quant::{BitWidth, Granularity};
use mixq_tensor::Shape;
use mixq_verify::{
    check_dot_geometry, check_schedule, verify_add_node, verify_graph, verify_spec, VerifyReport,
    Violation,
};

/// One compact JSON row per report: enough to pin the verifier's proven
/// bounds without goldening every node certificate.
fn report_row(r: &VerifyReport) -> String {
    let k_max = r.nodes.iter().map(|n| n.k).max().unwrap_or(0);
    let chunk_max = r.nodes.iter().map(|n| n.chunk).max().unwrap_or(0);
    let acc_hi = r.nodes.iter().map(|n| n.acc.1).max().unwrap_or(0);
    let phi_lo = r.nodes.iter().map(|n| n.phi.0).min().unwrap_or(0);
    let simd = r.nodes.iter().filter(|n| n.vectorizable).count();
    let corr32 = r.nodes.iter().all(|n| n.corrections_fit_i32);
    let mut o = JsonObject::new();
    o.string("graph", &r.graph)
        .int("nodes", r.nodes.len())
        .int("violations", r.violations.len())
        .bool("ok", r.ok())
        .int("k_max", k_max)
        .int("chunk_max", chunk_max)
        .raw("acc_hi_max", acc_hi.to_string())
        .raw("phi_lo_min", phi_lo.to_string())
        .int("simd_nodes", simd)
        .bool("corrections_fit_i32", corr32)
        .int("peak_ram_bytes", r.peak_ram_bytes)
        .int("peak_scratch_bytes", r.peak_scratch_bytes);
    o.render()
}

/// The four bit assignments of the sweep; `mixed` cycles W8/W4/W2 over
/// the layers, the memory-driven pattern's worst interleaving for the
/// verifier (every width boundary appears on some edge).
const ASSIGNMENTS: [&str; 4] = ["w8", "w4", "w2", "mixed"];

fn spec_widths(name: &str, n: usize) -> (Vec<BitWidth>, Vec<BitWidth>) {
    let cycle = [BitWidth::W8, BitWidth::W4, BitWidth::W2];
    match name {
        "w8" => (vec![BitWidth::W8; n], vec![BitWidth::W8; n]),
        "w4" => (vec![BitWidth::W4; n], vec![BitWidth::W4; n]),
        "w2" => (vec![BitWidth::W2; n], vec![BitWidth::W4; n]),
        "mixed" => (
            (0..n).map(|i| cycle[i % 3]).collect(),
            (0..n).map(|i| cycle[i % 2]).collect(),
        ),
        other => panic!("unknown assignment `{other}`"),
    }
}

fn spec_reports(spec: &NetworkSpec, label: &str, rows: &mut Vec<String>) -> usize {
    let mut checked = 0;
    for a in ASSIGNMENTS {
        let (w, x) = spec_widths(a, spec.num_layers());
        let report = verify_spec(&format!("{label}/{a}"), spec, &w, &x);
        assert!(report.ok(), "{}", report.render());
        rows.push(report_row(&report));
        checked += 1;
    }
    checked
}

/// Applies one named assignment to a built QAT network's weight widths
/// (activations stay at the calibrated W8 the executor quantizes inputs
/// to; residual joins keep their planned output widths).
fn apply_weights(net: &mut QatNetwork, name: &str) {
    let cycle = [BitWidth::W8, BitWidth::W4, BitWidth::W2];
    for i in 0..net.num_blocks() {
        let b = match name {
            "w8" => BitWidth::W8,
            "w4" => BitWidth::W4,
            "w2" => BitWidth::W2,
            "mixed" => cycle[i % 3],
            other => panic!("unknown assignment `{other}`"),
        };
        net.set_weight_bits(i, b);
    }
}

fn calibrated(spec: &MicroCnnSpec, seed: u64, ds_kind: SyntheticKind) -> QatNetwork {
    let input = spec.input_shape();
    let ds = DatasetSpec::new(ds_kind, input.h, input.w, input.c, 4)
        .with_samples(8)
        .with_noise(0.05)
        .generate(seed);
    let mut net = QatNetwork::build(spec, seed);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    net
}

fn graph_reports(
    model: &str,
    spec: &MicroCnnSpec,
    seed: u64,
    schemes: &[(QuantScheme, &str)],
    rows: &mut Vec<String>,
) -> usize {
    let backends: [(&dyn Backend, &str); 2] = [
        (&ReferenceBackend, "ref"),
        (&TiledBackend::default(), "tiled"),
    ];
    let mut checked = 0;
    for a in ASSIGNMENTS {
        let mut net = calibrated(spec, seed, SyntheticKind::Bars);
        apply_weights(&mut net, a);
        for (scheme, scheme_tag) in schemes {
            for (backend, btag) in backends {
                let int = convert_with_backend(&net, *scheme, backend)
                    .expect("calibrated network converts");
                let g = int.graph();
                let (shape, bits) = g.input_decl().expect("deployed graph declares its input");
                let label = format!("{model}/{btag}/{scheme_tag}/{a}");
                let report = verify_graph(&label, g, shape, bits);
                assert!(report.ok(), "{}", report.render());
                rows.push(report_row(&report));
                checked += 1;
            }
        }
    }
    checked
}

/// A forged-input case: the violation kinds the verifier must raise.
fn forged_row(case: &str, violations: &[Violation]) -> String {
    assert!(!violations.is_empty(), "forged case `{case}` was accepted");
    let kinds = violations
        .iter()
        .map(|v| format!("\"{}\"", v.kind()))
        .collect::<Vec<_>>()
        .join(", ");
    let mut o = JsonObject::new();
    o.string("case", case)
        .raw("kinds", format!("[{kinds}]"))
        .string("diagnostic", &violations[0].to_string());
    o.render()
}

fn forged_cases() -> Vec<String> {
    let mut rows = Vec::new();

    // An im2col row one element past the gemv2 dispatch contract:
    // arithmetically still safe (32769·255·255 < 2^31), so exactly one
    // violation — the contract, not the arithmetic.
    let (_, v) = check_dot_geometry("conv_forged", 40000, 32769, 255, 255);
    assert_eq!(v.len(), 1, "contract-only forgery raises exactly one");
    rows.push(forged_row("dot_chunk_exceeds_contract", &v));

    // A chunk past the arithmetic i32 bound as well (33100·255·255 > 2^31):
    // both lines crossed, both reported.
    let (_, v) = check_dot_geometry("conv_forged", 33100, 33100, 255, 255);
    assert_eq!(v.len(), 2, "overflowing forgery raises both");
    rows.push(forged_row("dot_chunk_overflows_i32", &v));

    // A liveness schedule that reclaims tensor 0 after step 0 while step 2
    // still reads it — the arena would alias the bytes.
    let inputs = vec![vec![0], vec![1], vec![0, 2]];
    let v = check_schedule(&inputs, &[0, 1, 2, 3]);
    rows.push(forged_row("schedule_aliases_live_tensor", &v));

    // A schedule that drops the terminal tensor early.
    let inputs = vec![vec![0], vec![1], vec![2]];
    let v = check_schedule(&inputs, &[0, 1, 2, 2]);
    rows.push(forged_row("schedule_drops_terminal", &v));

    // A residual join whose declared branch-b scale (0.6) disagrees with
    // the multiplier baked from the real one (0.25).
    let add = QAdd::from_scales(0.5, 0.25, 1.0, 10, 12, 7, BitWidth::W8)
        .with_declared_scales(0.5, 0.6, 1.0);
    let shape = Shape::feature_map(4, 4, 8);
    let (_, v) = verify_add_node(
        "add_forged",
        &add,
        [shape, shape],
        [BitWidth::W8, BitWidth::W8],
        [Some(10), Some(12)],
    );
    rows.push(forged_row("join_declared_scale_mismatch", &v));

    // The same join with a branch-a producer whose zero-point (11)
    // disagrees with what the add subtracts (10).
    let add = QAdd::from_scales(0.5, 0.25, 1.0, 10, 12, 7, BitWidth::W8);
    let (_, v) = verify_add_node(
        "add_forged",
        &add,
        [shape, shape],
        [BitWidth::W8, BitWidth::W8],
        [Some(11), Some(12)],
    );
    rows.push(forged_row("join_edge_zero_point_mismatch", &v));

    rows
}

fn main() {
    println!("verify_zoo — static graph/kernel verification sweep");

    // 1. Shape-level: the full Figure 2 MobileNet grid × assignments.
    let mut spec_rows = Vec::new();
    let mut spec_checked = 0;
    for cfg in MobileNetConfig::all() {
        spec_checked += spec_reports(&cfg.build(), &cfg.label(), &mut spec_rows);
    }
    // Residual micro topology at spec level (ResidualAdd + pool steps).
    let residual_net = QatNetwork::build(&mobilenet_like_residual(16, 2, 8, 4), 77);
    let residual_spec = network_spec_of(&residual_net, "micro_residual");
    spec_checked += spec_reports(&residual_spec, "micro_residual", &mut spec_rows);
    println!("spec sweep: {spec_checked} reports, all verified");

    // 2. Graph-level: lowered micro models × backend × scheme × assignment.
    let icn = [(QuantScheme::PerChannelIcn, "icn")];
    let all_schemes = [
        (QuantScheme::PerLayerFolded, "folded"),
        (QuantScheme::PerLayerIcn, "pl_icn"),
        (QuantScheme::PerChannelIcn, "icn"),
        (QuantScheme::PerChannelThresholds, "thr"),
    ];
    let mut graph_rows = Vec::new();
    let mut graph_checked = 0;
    graph_checked += graph_reports(
        "residual16",
        &mobilenet_like_residual(16, 2, 8, 4),
        77,
        &all_schemes,
        &mut graph_rows,
    );
    graph_checked += graph_reports("quickstart", &quickstart_cnn(4), 31, &icn, &mut graph_rows);
    graph_checked += graph_reports(
        "folding",
        &folding_stress_cnn(2, 4),
        55,
        &all_schemes,
        &mut graph_rows,
    );
    println!("graph sweep: {graph_checked} reports, all verified");

    // 3. Forged inputs must be rejected with precise diagnostics.
    let forged = forged_cases();
    println!("forged cases: {} rejected", forged.len());

    rule(72);
    println!(
        "total: {} verified reports, {} forged rejections",
        spec_checked + graph_checked,
        forged.len()
    );

    if let Some(path) = json_out_path() {
        let mut top = JsonObject::new();
        top.string("bench", "verify_zoo")
            .int("spec_reports", spec_checked)
            .int("graph_reports", graph_checked)
            .raw("spec", json_array(spec_rows))
            .raw("graph", json_array(graph_rows))
            .raw("forged", json_array(forged));
        write_json(&path, &top.render());
    }
}
