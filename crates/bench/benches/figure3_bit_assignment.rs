//! Regenerates **Figure 3** (appendix): the per-tensor weight and
//! activation bit precisions of every Mixed-Precision MobileNetV1 model
//! under `M_RO = 2 MB, M_RW = 512 kB`, for both MixQ-PL and MixQ-PC-ICN.
//!
//! The paper plots these as bar charts; we print one row per layer with
//! the weight (w) and output-activation (a) precision, which carries the
//! same information.
//!
//! Run with: `cargo bench --bench figure3_bit_assignment`
//! (`-- --json <path>` additionally emits every bit map as JSON for the
//! golden-regression CI job.)

use mixq_bench::harness::{json_array, json_out_path, rule, write_json, JsonObject};
use mixq_core::memory::{mib, QuantScheme};
use mixq_core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq_mcu::Device;
use mixq_models::mobilenet::MobileNetConfig;
use mixq_quant::BitWidth;

fn bitmap(bits: &[BitWidth]) -> String {
    bits.iter()
        .map(|b| char::from_digit(b.bits(), 10).unwrap_or('?'))
        .collect()
}

fn main() {
    let device = Device::stm32h7();
    let mut csv = String::from("model,config,layer,weight_bits,act_out_bits\n");
    let mut json_rows = Vec::new();
    println!(
        "== Figure 3: per-tensor bit precision under {} ==",
        device.budget()
    );
    println!("(one digit per layer, conv0 dw1 pw1 ... dw13 pw13 fc; a = output activations)");
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        println!();
        println!("model {}", cfg_m.label());
        rule(70);
        for (scheme, name) in [
            (QuantScheme::PerLayerIcn, "MixQ-PL"),
            (QuantScheme::PerChannelIcn, "MixQ-PC-ICN"),
        ] {
            let cfg = MixedPrecisionConfig::new(device.budget(), scheme);
            match assign_bits(&spec, &cfg) {
                Ok(a) => {
                    for (i, l) in spec.layers().iter().enumerate() {
                        csv.push_str(&format!(
                            "{},{},{},{},{}\n",
                            cfg_m.label(),
                            name,
                            l.name(),
                            a.weight_bits[i].bits(),
                            a.act_bits[i + 1].bits()
                        ));
                    }
                    println!(
                        "{:<12} w[{}] a[{}]  flash {:.2} MiB, peak RAM {} KiB",
                        name,
                        bitmap(&a.weight_bits),
                        bitmap(&a.act_bits[1..]),
                        mib(a.flash_bytes(&spec, scheme)),
                        a.peak_rw_bytes(&spec) / 1024
                    );
                    let cut: Vec<String> = spec
                        .layers()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| {
                            a.weight_bits[*i] != BitWidth::W8 || a.act_bits[*i + 1] != BitWidth::W8
                        })
                        .map(|(i, l)| {
                            format!(
                                "{}(w{}/a{})",
                                l.name(),
                                a.weight_bits[i].bits(),
                                a.act_bits[i + 1].bits()
                            )
                        })
                        .collect();
                    if cut.is_empty() {
                        println!("{:<12} no cuts", "");
                    } else {
                        println!("{:<12} cuts: {}", "", cut.join(" "));
                    }
                    let mut row = JsonObject::new();
                    row.string("model", &cfg_m.label())
                        .string("config", name)
                        .string("weight_bits", &bitmap(&a.weight_bits))
                        .string("act_bits", &bitmap(&a.act_bits))
                        .int("flash_bytes", a.flash_bytes(&spec, scheme))
                        .int("peak_rw_bytes", a.peak_rw_bytes(&spec));
                    json_rows.push(row.render());
                }
                Err(e) => println!("{name}: INFEASIBLE ({e})"),
            }
        }
    }

    if let Some(path) = json_out_path() {
        let mut doc = JsonObject::new();
        doc.string("figure", "figure3_bit_assignment")
            .string("device", &device.to_string())
            .raw("rows", json_array(json_rows));
        write_json(&path, &doc.render());
    }
    let dir = std::path::Path::new("target/bench-data");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("figure3.csv");
        if std::fs::write(&path, csv).is_ok() {
            println!();
            println!("bit maps written to {}", path.display());
        }
    }
}
