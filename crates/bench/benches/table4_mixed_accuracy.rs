//! Regenerates **Table 4** (appendix): Top-1 accuracy of the 16
//! mixed-precision MobileNetV1 models under MixQ-PL and MixQ-PC-ICN.
//!
//! ImageNet accuracies are paper-reported; what this bench *recomputes* is
//! (a) every model's bit assignment and footprint under both
//! configurations, confirming they genuinely fit the device, and (b) the
//! PL-vs-PC accuracy gap **measured** on the synthetic stand-in (the paper's
//! key qualitative claim: MixQ-PC-ICN ≥ MixQ-PL on every row, by up to
//! ≈ 4%).
//!
//! Run with: `cargo bench --bench table4_mixed_accuracy`
//! (`-- --json <path>` additionally emits the recomputed assignments and
//! footprints as JSON for the golden-regression CI job; the trained
//! synthetic accuracies are deliberately excluded from the goldens.)

use mixq_bench::harness::{json_array, json_out_path, write_json, JsonObject};
use mixq_bench::harness::{rule, run_stress_ptq, run_stress_scheme, stress_dataset};
use mixq_bench::reference::TABLE4;
use mixq_core::memory::{mib, QuantScheme};
use mixq_core::mixed::{assign_bits, hybrid_pl_flash_bytes, MixedPrecisionConfig};
use mixq_mcu::Device;
use mixq_models::mobilenet::MobileNetConfig;
use mixq_quant::BitWidth;

fn main() {
    let device = Device::stm32h7();
    println!("== Table 4: Top-1 of mixed-precision MobileNetV1 models ==");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>12} {:>6}",
        "model", "PL (paper)", "PC-ICN (paper)", "PL MiB", "PC MiB", "fits"
    );
    rule(72);
    let mut json_rows = Vec::new();
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        let (pl_ref, pc_ref) = TABLE4
            .iter()
            .find(|r| r.0 == cfg_m.label())
            .map(|r| (r.1, r.2))
            .expect("reference row exists");
        let pl_cfg = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerLayerIcn);
        let pc_cfg = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerChannelIcn);
        let pl = assign_bits(&spec, &pl_cfg).expect("PL feasible");
        let pc = assign_bits(&spec, &pc_cfg).expect("PC feasible");
        let pl_bytes = hybrid_pl_flash_bytes(&spec, &pl);
        let pc_bytes = pc.flash_bytes(&spec, QuantScheme::PerChannelIcn);
        let fits = device.budget().fits(pl_bytes, pl.peak_rw_bytes(&spec))
            && device.budget().fits(pc_bytes, pc.peak_rw_bytes(&spec));
        println!(
            "{:<10} {:>11.2}% {:>13.2}% {:>12.2} {:>12.2} {:>6}",
            cfg_m.label(),
            pl_ref,
            pc_ref,
            mib(pl_bytes),
            mib(pc_bytes),
            if fits { "yes" } else { "NO" }
        );
        let mut row = JsonObject::new();
        row.string("model", &cfg_m.label())
            .string("pl_assignment", &pl.to_string())
            .string("pc_assignment", &pc.to_string())
            .int("pl_flash_bytes", pl_bytes)
            .int("pc_flash_bytes", pc_bytes)
            .int("pl_peak_rw_bytes", pl.peak_rw_bytes(&spec))
            .int("pc_peak_rw_bytes", pc.peak_rw_bytes(&spec))
            .bool("fits", fits);
        json_rows.push(row.render());
    }

    if let Some(path) = json_out_path() {
        let mut doc = JsonObject::new();
        doc.string("table", "table4_mixed_accuracy")
            .string("device", &device.to_string())
            .raw("rows", json_array(json_rows));
        write_json(&path, &doc.render());
    }

    println!();
    println!("measured PL-vs-PC gap on the synthetic stand-in (folding-stress task, INT4):");
    let ds = stress_dataset(11);
    let split = ds.split(0.8, 3);
    let pl = run_stress_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerLayerIcn,
        BitWidth::W4,
        4242,
    );
    let pc = run_stress_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerChannelIcn,
        BitWidth::W4,
        4242,
    );
    println!(
        "  MixQ-PL      : fake-quant {:.1}%, integer {:.1}%",
        pl.fake_quant_acc * 100.0,
        pl.int_acc * 100.0
    );
    println!(
        "  MixQ-PC-ICN  : fake-quant {:.1}%, integer {:.1}%",
        pc.fake_quant_acc * 100.0,
        pc.int_acc * 100.0
    );
    println!(
        "  gap (PC - PL): {:+.1}% (paper Table 4: PC-ICN ≥ PL on all 16 rows, up to ≈ +4%)",
        (pc.int_acc - pl.int_acc) * 100.0
    );

    println!();
    println!("same comparison *without* retraining (post-training quantization, INT2 —");
    println!("the raw robustness gap QAT partially repairs):");
    let pl2 = run_stress_ptq(
        &split.train,
        &split.test,
        QuantScheme::PerLayerIcn,
        BitWidth::W2,
        4242,
    );
    let pc2 = run_stress_ptq(
        &split.train,
        &split.test,
        QuantScheme::PerChannelIcn,
        BitWidth::W2,
        4242,
    );
    println!(
        "  PTQ PL-ICN  INT2: fake-quant {:.1}%, integer {:.1}%",
        pl2.fake_quant_acc * 100.0,
        pl2.int_acc * 100.0
    );
    println!(
        "  PTQ PC-ICN  INT2: fake-quant {:.1}%, integer {:.1}%",
        pc2.fake_quant_acc * 100.0,
        pc2.int_acc * 100.0
    );
    println!(
        "  PTQ gap (PC - PL): {:+.1}%",
        (pc2.int_acc - pl2.int_acc) * 100.0
    );
}
