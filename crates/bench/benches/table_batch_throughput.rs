//! Batch-N graph throughput: samples/sec of the residual MobileNet
//! (`mobilenet_like_residual`) for batch ∈ {1, 4, 8, 32} under the
//! reference and tiled backends, against the PR-4 baseline that packed
//! the blocked-GEMM weight panel on **every call**.
//!
//! Three views:
//!
//! * **deterministic shape math** (`--json`, golden-tested) — the batched
//!   Eq. 7 peak RAM and the selected kernels' im2col scratch per batch
//!   size, plus the read-only footprint of the prepacked weight panels;
//!   timings are deliberately excluded so the golden stays byte-stable;
//! * **measured throughput** (stdout and `--bench-json`, never goldened) —
//!   steady-state samples/sec per backend × batch through the pooled
//!   batched inference path, and the speedup of the prepacked tiled
//!   backend at batch 8 over the per-call-packing baseline
//!   (`QGraph::clear_prepack` + batch 1). Target ≥ 1.5×;
//! * **bit-identity** — every backend × batch combination must produce
//!   identical logits for the same samples (asserted on every run).
//!
//! Run with: `cargo bench --bench table_batch_throughput`
//! (`--json <path>` writes the deterministic table, `--bench-json <path>`
//! the measured throughput for `scripts/bench-report.sh`,
//! `--backend reference|tiled` and `--batch N` pick the summary line's
//! configuration).

use std::hint::black_box;
use std::time::Instant;

use mixq_bench::harness::{
    backend_arg, batch_arg, bench_json_out_path, host_meta, json_array, json_out_path, rule,
    threads_arg, write_json, JsonObject,
};
use mixq_core::convert::{convert_with_backend, IntNetwork};
use mixq_core::memory::QuantScheme;
use mixq_data::{DatasetSpec, SyntheticKind};
use mixq_kernels::{ActivationArena, Backend, OpCounts, ReferenceBackend, TiledBackend};
use mixq_models::micro::mobilenet_like_residual;
use mixq_nn::qat::QatNetwork;
use mixq_tensor::Tensor;

const BATCHES: [usize; 4] = [1, 4, 8, 32];
const SWEEPS: usize = 7;

/// Steady-state throughput of one backend at one batch size: median wall
/// time of a full sweep over `images` (walking the graph once per `batch`
/// samples through the pooled batched path), as samples/sec. Also returns
/// the logits of the first batch for the bit-identity cross-check.
fn throughput(net: &IntNetwork, images: &Tensor<f32>, batch: usize) -> (f64, Vec<i32>) {
    throughput_threaded(net, images, batch, 1)
}

/// [`throughput`] with an intra-walk worker pool of `threads` attached to
/// the arena (created once, outside the timed sweeps, like a deployment
/// would).
fn throughput_threaded(
    net: &IntNetwork,
    images: &Tensor<f32>,
    batch: usize,
    threads: usize,
) -> (f64, Vec<i32>) {
    let n = images.shape().n;
    assert_eq!(n % batch, 0, "sweep uses full batches only");
    let mut arena = ActivationArena::new();
    if threads > 1 {
        arena.set_pool(std::sync::Arc::new(mixq_kernels::ThreadPool::new(threads)));
    }
    let mut logits = Vec::new();
    let mut ops = OpCounts::default();
    let mut first_logits = Vec::new();
    let sweep = |arena: &mut ActivationArena,
                 logits: &mut Vec<i32>,
                 ops: &mut OpCounts,
                 mut keep_first: Option<&mut Vec<i32>>| {
        let mut start = 0usize;
        while start < n {
            let x = net.quantize_input_items_pooled(images, start, batch, arena);
            net.graph().infer_batch(x, arena, logits, ops);
            if start == 0 {
                if let Some(first) = keep_first.take() {
                    first.extend(logits.iter().copied());
                }
            }
            start += batch;
        }
    };
    // Warm-up: grow every arena buffer to its steady capacity, and keep
    // the first batch's logits for the caller's bit-identity check (the
    // timed sweeps below run capture-free).
    sweep(&mut arena, &mut logits, &mut ops, Some(&mut first_logits));
    let mut runs: Vec<f64> = (0..SWEEPS)
        .map(|_| {
            let t = Instant::now();
            sweep(&mut arena, &mut logits, &mut ops, None);
            black_box(&logits);
            t.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    let median = runs[runs.len() / 2];
    (n as f64 / median, first_logits)
}

fn main() {
    let res = 32usize;
    let spec = mobilenet_like_residual(res, 3, 8, 4);
    let ds = DatasetSpec::new(SyntheticKind::Bars, res, res, 3, 4)
        .with_samples(32)
        .with_noise(0.05)
        .generate(5);
    let mut net = QatNetwork::build(&spec, 77);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(mixq_quant::Granularity::PerChannel);
    // 4-bit weights — the paper's mixed low-precision regime, where the
    // per-call cost the prepack amortizes includes the sub-byte weight
    // decode, not just the panel interleave.
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, mixq_quant::BitWidth::W4);
    }
    net.set_linear_weight_bits(mixq_quant::BitWidth::W4);
    let reference = convert_with_backend(&net, QuantScheme::PerChannelIcn, &ReferenceBackend)
        .expect("calibrated network converts");
    let tiled = convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("calibrated network converts");

    println!(
        "batch throughput — mobilenet_like_residual {res}px (width/8), {} nodes, {} samples",
        reference.graph().len(),
        ds.len()
    );
    println!(
        "prepacked panels: reference {} B, tiled {} B (read-only, on top of {} B packed flash)",
        reference.prepacked_bytes(),
        tiled.prepacked_bytes(),
        reference.flash_bytes()
    );

    // Deterministic shape math per batch: the Eq. 7 live set and the
    // im2col scratch both learn the batch dimension.
    println!("\n== batched memory model (deterministic; golden-tested) ==");
    println!(
        "{:<7} {:>14} {:>18} {:>15}",
        "batch", "peak RAM B", "scratch (ref) B", "scratch (tiled) B"
    );
    rule(58);
    let mut json_batches = Vec::new();
    for &b in &BATCHES {
        let ram = reference.peak_ram_bytes_batch(b);
        let s_ref = reference.peak_scratch_bytes_batch(b);
        let s_tiled = tiled.peak_scratch_bytes_batch(b);
        println!("{b:<7} {ram:>14} {s_ref:>18} {s_tiled:>15}");
        let mut obj = JsonObject::new();
        obj.int("batch", b)
            .int("peak_ram_bytes", ram)
            .int("peak_scratch_reference", s_ref)
            .int("peak_scratch_tiled", s_tiled);
        json_batches.push(obj.render());
    }

    // Measured steady-state throughput per backend × batch, plus the
    // per-call-packing baseline (PR-4 behaviour: panels rebuilt every
    // call) for the amortization headline.
    println!("\n== measured host throughput (samples/sec; never goldened) ==");
    println!(
        "{:<7} {:>16} {:>16} {:>10}",
        "batch", "reference", "tiled", "tiled×"
    );
    rule(54);
    let mut thr: Vec<(usize, f64, f64)> = Vec::new();
    let mut logits_at_batch1 = Vec::new();
    for &b in &BATCHES {
        let (sps_ref, lr) = throughput(&reference, ds.images(), b);
        let (sps_tiled, lt) = throughput(&tiled, ds.images(), b);
        // Bit-identity across backend and batch: the first b samples'
        // logits must agree with the batch-1 reference rows.
        assert_eq!(lr, lt, "backends must be bit-identical at batch {b}");
        if b == 1 {
            logits_at_batch1 = lr.clone();
        } else {
            let classes = logits_at_batch1.len();
            assert_eq!(
                &lr[..classes],
                &logits_at_batch1[..],
                "batch-{b} row 0 must equal the batch-1 logits"
            );
        }
        println!(
            "{b:<7} {sps_ref:>16.1} {sps_tiled:>16.1} {:>9.2}x",
            sps_tiled / sps_ref
        );
        thr.push((b, sps_ref, sps_tiled));
    }
    // The PR-4 baseline, measured the way PR 4's bench measured it: the
    // blocked path with no prepack caches, one `infer_detailed` graph walk
    // per sample — weight panels, sub-byte weight decodes and the im2col
    // buffer all rebuilt per call.
    let mut percall = tiled.clone();
    percall.clear_prepack();
    let sps_percall = {
        let n = ds.len();
        let sweep = || {
            for i in 0..n {
                black_box(percall.infer_detailed(black_box(&ds.sample(i).images)));
            }
        };
        sweep(); // warm-up
        let mut runs: Vec<f64> = (0..SWEEPS)
            .map(|_| {
                let t = Instant::now();
                sweep();
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        n as f64 / runs[runs.len() / 2]
    };
    let sps_tiled_b8 = thr.iter().find(|t| t.0 == 8).expect("batch 8 measured").2;
    let speedup = sps_tiled_b8 / sps_percall;
    rule(54);
    println!(
        "per-call-packing blocked baseline (batch 1): {sps_percall:.1} samples/sec\n\
         prepacked tiled at batch 8: {sps_tiled_b8:.1} samples/sec — {speedup:.2}x (target >= 1.5x)"
    );

    // Whole-run summary under the bench-smoke flags.
    let flagged_backend = backend_arg();
    let flagged_batch = batch_arg();
    let flagged_threads = threads_arg();
    let mut flagged = reference.clone();
    flagged.select_backend(&flagged_backend);
    flagged.set_threads(flagged_threads);
    let batch = flagged_batch.min(ds.len());
    let batch = (1..=batch).rev().find(|b| ds.len() % b == 0).unwrap_or(1);
    let (sps, flagged_first) = throughput_threaded(&flagged, ds.images(), batch, flagged_threads);
    // Threaded walks must reproduce the serial batch-1 reference logits.
    let classes = logits_at_batch1.len();
    assert_eq!(
        &flagged_first[..classes],
        &logits_at_batch1[..],
        "threaded walk must be bit-identical to the serial logits"
    );
    println!(
        "\nflagged run ({} backend, batch {batch}, threads {flagged_threads}): {sps:.1} samples/sec",
        flagged_backend.name()
    );

    if let Some(path) = json_out_path() {
        let mut root = JsonObject::new();
        root.string("bench", "table_batch_throughput")
            .string("network", &format!("mobilenet_like_residual_{res}px_w4"))
            .int("nodes", reference.graph().len())
            .raw("batches", json_array(json_batches.clone()))
            .int("prepacked_bytes_reference", reference.prepacked_bytes())
            .int("prepacked_bytes_tiled", tiled.prepacked_bytes())
            .int("flash_bytes", reference.flash_bytes());
        write_json(&path, &root.render());
    }
    if let Some(path) = bench_json_out_path() {
        let mut root = JsonObject::new();
        root.string("bench", "table_batch_throughput")
            .string("network", &format!("mobilenet_like_residual_{res}px_w4"))
            .raw("host", host_meta(flagged_threads).render());
        let rows = thr.iter().map(|&(b, r, t)| {
            let mut obj = JsonObject::new();
            obj.int("batch", b)
                .raw("reference_samples_per_sec", format!("{r:.1}"))
                .raw("tiled_samples_per_sec", format!("{t:.1}"));
            obj.render()
        });
        root.raw("throughput", json_array(rows))
            .raw(
                "percall_packing_samples_per_sec",
                format!("{sps_percall:.1}"),
            )
            .raw("tiled_batch8_samples_per_sec", format!("{sps_tiled_b8:.1}"))
            .raw("speedup_batch8_vs_percall", format!("{speedup:.2}"))
            .bool("meets_1_5x_target", speedup >= 1.5);
        write_json(&path, &root.render());
    }
}
