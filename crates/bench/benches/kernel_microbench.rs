//! Microbenchmarks of the integer kernels (the substrate behind Figure 2's
//! latency axis): convolution at 8/4/2-bit operands, depthwise vs
//! pointwise, and ICN vs thresholds requantization — plus the `QGraph`
//! executor against a hand-rolled layer loop.
//!
//! These measure *host* throughput with a simple median-of-samples timer
//! (the build environment has no registry access for criterion; the shape
//! under test is relative, not absolute). The MCU latency itself comes
//! from the cycle model. Expected shape: sub-byte kernels pay an unpack
//! cost, per-channel offsets cost extra work, thresholds replace
//! multiplies with comparisons.
//!
//! Run with: `cargo bench --bench kernel_microbench`

use std::hint::black_box;
use std::time::Instant;

use mixq_bench::harness::{backend_arg, batch_arg};
use mixq_kernels::{
    Backend, OpCounts, QActivation, QAvgPool, QConv2d, QConvWeights, QGraph, Requantizer,
    ThresholdChannel, WeightOffset,
};
use mixq_quant::{BitWidth, FixedPointMultiplier};
use mixq_tensor::{ConvGeometry, Padding, Shape};

/// Times `f` over `samples` timed runs (after warmup) and reports the
/// median duration in microseconds.
fn time_us<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..2 {
        black_box(f());
    }
    let mut runs: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

fn report(group: &str, name: &str, us: f64) {
    println!("{group:>18} / {name:<14} {us:>10.1} µs");
}

fn conv_layer(weight_bits: BitWidth, per_channel: bool, thresholds: bool) -> QConv2d {
    let co = 16;
    let ci = 16;
    let wshape = Shape::new(co, 3, 3, ci);
    let codes: Vec<u8> = (0..wshape.volume())
        .map(|i| (i % weight_bits.levels() as usize) as u8)
        .collect();
    let offset = if per_channel {
        WeightOffset::PerChannel(vec![1i16; co])
    } else {
        WeightOffset::PerLayer(1)
    };
    let weights = QConvWeights::new(wshape, false, &codes, weight_bits, offset);
    let requant = if thresholds {
        Requantizer::thresholds(
            (0..co)
                .map(|c| ThresholdChannel::from_affine(0.002 + c as f64 * 1e-4, 3, 0, BitWidth::W4))
                .collect(),
            0,
            BitWidth::W4,
        )
    } else {
        Requantizer::icn(
            vec![3; co],
            vec![FixedPointMultiplier::from_real(0.002); co],
            0,
            BitWidth::W4,
        )
    };
    QConv2d::new(weights, ConvGeometry::new(3, 3, 1, Padding::Same), requant)
}

fn input(bits: BitWidth) -> QActivation {
    let shape = Shape::feature_map(16, 16, 16);
    let codes: Vec<u8> = (0..shape.volume())
        .map(|i| (i % bits.levels() as usize) as u8)
        .collect();
    QActivation::from_codes(shape, &codes, bits, 0)
}

const SAMPLES: usize = 20;

fn bench_conv_bitwidths() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let conv = conv_layer(bits, false, false);
        let x = input(BitWidth::W8);
        let us = time_us(SAMPLES, || {
            let mut ops = OpCounts::default();
            conv.execute(black_box(&x), &mut ops)
        });
        report("conv16x16x16_3x3", &format!("weights_{bits}"), us);
    }
}

fn bench_pc_vs_pl() {
    for (name, per_channel) in [("per_layer", false), ("per_channel", true)] {
        let conv = conv_layer(BitWidth::W8, per_channel, false);
        let x = input(BitWidth::W8);
        let us = time_us(SAMPLES, || {
            let mut ops = OpCounts::default();
            conv.execute(black_box(&x), &mut ops)
        });
        report("offset_mode", name, us);
    }
}

fn bench_requant_modes() {
    for (name, thresholds) in [("icn", false), ("thresholds", true)] {
        let conv = conv_layer(BitWidth::W4, true, thresholds);
        let x = input(BitWidth::W4);
        let us = time_us(SAMPLES, || {
            let mut ops = OpCounts::default();
            conv.execute(black_box(&x), &mut ops)
        });
        report("requant_mode", name, us);
    }
}

fn icn_identity(co: usize, bits: BitWidth) -> Requantizer {
    Requantizer::icn(
        vec![0; co],
        vec![FixedPointMultiplier::from_real(0.01); co],
        0,
        bits,
    )
}

fn depthwise(co: usize) -> QConv2d {
    let w = QConvWeights::new(
        Shape::new(co, 3, 3, 1),
        true,
        &vec![1u8; co * 9],
        BitWidth::W8,
        WeightOffset::PerLayer(0),
    );
    QConv2d::new(
        w,
        ConvGeometry::new(3, 3, 1, Padding::Same),
        icn_identity(co, BitWidth::W8),
    )
}

fn pointwise(co: usize) -> QConv2d {
    let w = QConvWeights::new(
        Shape::new(co, 1, 1, co),
        false,
        &vec![1u8; co * co],
        BitWidth::W8,
        WeightOffset::PerLayer(0),
    );
    QConv2d::new(w, ConvGeometry::pointwise(), icn_identity(co, BitWidth::W8))
}

fn bench_depthwise_vs_pointwise() {
    let co = 32;
    let dw = depthwise(co);
    let pw = pointwise(co);
    let shape = Shape::feature_map(16, 16, co);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 256) as u8).collect();
    let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        dw.execute(black_box(&x), &mut ops)
    });
    report("dw_vs_pw", "depthwise_3x3", us);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        pw.execute(black_box(&x), &mut ops)
    });
    report("dw_vs_pw", "pointwise_1x1", us);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        QAvgPool.execute(black_box(&x), &mut ops)
    });
    report("dw_vs_pw", "avgpool", us);
}

/// The three dense-convolution dataflows head to head: the direct
/// output-stationary loop, the naive im2col + GEMM, and the
/// register-blocked GEMM.
fn bench_conv_dataflows() {
    let co = 32;
    let pw = pointwise(co);
    let shape = Shape::feature_map(16, 16, co);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 256) as u8).collect();
    let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        pw.execute(black_box(&x), &mut ops)
    });
    report("conv_dataflow", "direct", us);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        pw.execute_gemm(black_box(&x), &mut ops)
    });
    report("conv_dataflow", "im2col_gemm", us);
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        pw.execute_blocked(black_box(&x), &mut ops)
    });
    report("conv_dataflow", "blocked_gemm", us);
}

/// Per-phase breakdown of the blocked-GEMM dataflow: where does a layer's
/// time actually go between the im2col gather, the dot-product core, the
/// requantization epilogue and the sub-byte pack/unpack? The phases are
/// timed in isolation with the same operands the fused kernel sees, so
/// the section shows directly what the vectorized epilogue and the SIMD
/// pack/unpack kernels removed from the post-GEMM tail (force
/// `MIXQ_FORCE_SCALAR=1` to compare against the scalar reference).
fn bench_phase_breakdown() {
    use mixq_kernels::simd::{self, requant as vreq};
    use mixq_quant::PackedTensor;

    let conv = conv_layer(BitWidth::W4, true, false);
    let x4 = input(BitWidth::W4);
    let x8 = input(BitWidth::W8);
    let out_shape = conv.output_shape(x8.shape());
    let pixels = out_shape.pixels();
    let co = out_shape.c;
    let level = simd::active_level();

    // Phase 1: the im2col gather (sub-byte input → exercises the staged
    // one-shot SIMD decode; 8-bit input → the pure memcpy gather).
    let mut scratch = Vec::new();
    for (name, x) in [("im2col_w4_in", &x4), ("im2col_w8_in", &x8)] {
        let us = time_us(SAMPLES, || {
            let mut ops = OpCounts::default();
            conv.im2col_into(black_box(x), &mut scratch, &mut ops);
            ops
        });
        report("phase_breakdown", name, us);
    }

    // Phase 2: the full blocked GEMM (dot-product core + fused epilogue).
    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        conv.execute_blocked(black_box(&x8), &mut ops)
    });
    report("phase_breakdown", "gemm_blocked", us);

    // Phase 3: the requantization epilogue alone, over exactly the
    // accumulator volume the layer produces.
    let accs: Vec<i32> = (0..pixels * co).map(|i| (i as i32 % 4093) - 2046).collect();
    let plan = conv.plan();
    let req = conv.requant();
    let mut codes = vec![0u8; pixels * co];
    let us = time_us(SAMPLES, || {
        let (mut rq, mut tc) = (0u64, 0u64);
        for p in 0..pixels {
            vreq::apply_i32_block(
                plan,
                req,
                level,
                0,
                black_box(&accs[p * co..(p + 1) * co]),
                &mut codes[p * co..(p + 1) * co],
                &mut rq,
                &mut tc,
            );
        }
        rq
    });
    report("phase_breakdown", "requant_epilogue", us);
    let us = time_us(SAMPLES, || {
        let (mut rq, mut tc) = (0u64, 0u64);
        for (i, &a) in accs.iter().enumerate() {
            codes[i] = req.apply(i % co, black_box(a) as i64, &mut rq, &mut tc);
        }
        rq
    });
    report("phase_breakdown", "requant_scalar", us);

    // Phase 4: sub-byte pack/unpack of the produced code volume.
    let mut packed = Vec::new();
    let us = time_us(SAMPLES, || {
        packed =
            PackedTensor::pack_into(black_box(&codes), BitWidth::W4, std::mem::take(&mut packed))
                .into_bytes();
        packed.len()
    });
    report("phase_breakdown", "pack_w4", us);
    let tensor = PackedTensor::pack(&codes, BitWidth::W4);
    let mut unpacked = vec![0u8; codes.len()];
    let us = time_us(SAMPLES, || tensor.unpack_into(black_box(&mut unpacked)));
    report("phase_breakdown", "unpack_w4", us);
}

/// The graph executor's arena (reused output buffers) against the naive
/// per-layer loop that allocates a fresh activation every layer, under the
/// `--backend` flag's kernel selection.
fn bench_graph_vs_loop() {
    let co = 32;
    let layers = vec![depthwise(co), pointwise(co), depthwise(co), pointwise(co)];
    let shape = Shape::feature_map(16, 16, co);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 256) as u8).collect();
    let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);

    let backend = backend_arg();
    let mut graph = QGraph::with_input(shape, BitWidth::W8);
    for (i, l) in layers.iter().enumerate() {
        graph.push(format!("blk{i}"), l.clone());
    }
    graph.select_kernels(&backend);
    let us = time_us(SAMPLES, || {
        let run = graph.run(black_box(x.clone()));
        run.total_ops()
    });
    report("graph_executor", &format!("qgraph_{}", backend.name()), us);

    // Batch-N walk under the --batch flag: one graph traversal for the
    // whole batch, per-sample time reported.
    let batch = batch_arg();
    let batched_shape = shape.with_batch(batch);
    let batched_codes: Vec<u8> = (0..batched_shape.volume())
        .map(|i| (i % 256) as u8)
        .collect();
    let xb = QActivation::from_codes(batched_shape, &batched_codes, BitWidth::W8, 0);
    let us = time_us(SAMPLES, || {
        let run = graph.run(black_box(xb.clone()));
        run.total_ops()
    }) / batch as f64;
    report(
        "graph_executor",
        &format!("qgraph_{}_batch{batch}_per_sample", backend.name()),
        us,
    );

    let us = time_us(SAMPLES, || {
        let mut ops = OpCounts::default();
        let mut a = black_box(x.clone());
        for l in &layers {
            a = l.execute(&a, &mut ops);
        }
        ops
    });
    report("graph_executor", "naive_loop", us);
}

fn main() {
    println!("kernel microbench (median of {SAMPLES} runs, host CPU)");
    bench_conv_bitwidths();
    bench_pc_vs_pl();
    bench_requant_modes();
    bench_depthwise_vs_pointwise();
    bench_conv_dataflows();
    bench_phase_breakdown();
    bench_graph_vs_loop();
}
