//! Criterion microbenchmarks of the integer kernels (the substrate behind
//! Figure 2's latency axis): convolution at 8/4/2-bit operands, depthwise
//! vs pointwise, and ICN vs thresholds requantization.
//!
//! These measure *host* throughput; the MCU latency comes from the cycle
//! model. The shape to check here is relative: sub-byte kernels pay an
//! unpack cost, per-channel offsets cost extra work, thresholds replace
//! multiplies with comparisons.
//!
//! Run with: `cargo bench --bench kernel_microbench`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mixq_kernels::{
    OpCounts, QActivation, QAvgPool, QConv2d, QConvWeights, Requantizer, ThresholdChannel,
    WeightOffset,
};
use mixq_quant::{BitWidth, FixedPointMultiplier};
use mixq_tensor::{ConvGeometry, Padding, Shape};

fn conv_layer(weight_bits: BitWidth, per_channel: bool, thresholds: bool) -> QConv2d {
    let co = 16;
    let ci = 16;
    let wshape = Shape::new(co, 3, 3, ci);
    let codes: Vec<u8> = (0..wshape.volume())
        .map(|i| (i % weight_bits.levels() as usize) as u8)
        .collect();
    let offset = if per_channel {
        WeightOffset::PerChannel(vec![1i16; co])
    } else {
        WeightOffset::PerLayer(1)
    };
    let weights = QConvWeights::new(wshape, false, &codes, weight_bits, offset);
    let requant = if thresholds {
        Requantizer::thresholds(
            (0..co)
                .map(|c| ThresholdChannel::from_affine(0.002 + c as f64 * 1e-4, 3, 0, BitWidth::W4))
                .collect(),
            0,
            BitWidth::W4,
        )
    } else {
        Requantizer::icn(
            vec![3; co],
            vec![FixedPointMultiplier::from_real(0.002); co],
            0,
            BitWidth::W4,
        )
    };
    QConv2d::new(weights, ConvGeometry::new(3, 3, 1, Padding::Same), requant)
}

fn input(bits: BitWidth) -> QActivation {
    let shape = Shape::feature_map(16, 16, 16);
    let codes: Vec<u8> = (0..shape.volume())
        .map(|i| (i % bits.levels() as usize) as u8)
        .collect();
    QActivation::from_codes(shape, &codes, bits, 0)
}

fn bench_conv_bitwidths(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv16x16x16_3x3");
    group.sample_size(20);
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let conv = conv_layer(bits, false, false);
        let x = input(BitWidth::W8);
        group.bench_function(format!("weights_{bits}"), |b| {
            b.iter(|| {
                let mut ops = OpCounts::default();
                black_box(conv.execute(black_box(&x), &mut ops))
            })
        });
    }
    group.finish();
}

fn bench_pc_vs_pl(c: &mut Criterion) {
    let mut group = c.benchmark_group("offset_mode");
    group.sample_size(20);
    for (name, per_channel) in [("per_layer", false), ("per_channel", true)] {
        let conv = conv_layer(BitWidth::W8, per_channel, false);
        let x = input(BitWidth::W8);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ops = OpCounts::default();
                black_box(conv.execute(black_box(&x), &mut ops))
            })
        });
    }
    group.finish();
}

fn bench_requant_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("requant_mode");
    group.sample_size(20);
    for (name, thresholds) in [("icn", false), ("thresholds", true)] {
        let conv = conv_layer(BitWidth::W4, true, thresholds);
        let x = input(BitWidth::W4);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ops = OpCounts::default();
                black_box(conv.execute(black_box(&x), &mut ops))
            })
        });
    }
    group.finish();
}

fn bench_depthwise_vs_pointwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("dw_vs_pw");
    group.sample_size(20);
    let co = 32;
    let dw_w = QConvWeights::new(
        Shape::new(co, 3, 3, 1),
        true,
        &vec![1u8; co * 9],
        BitWidth::W8,
        WeightOffset::PerLayer(0),
    );
    let dw = QConv2d::new(
        dw_w,
        ConvGeometry::new(3, 3, 1, Padding::Same),
        Requantizer::icn(
            vec![0; co],
            vec![FixedPointMultiplier::from_real(0.01); co],
            0,
            BitWidth::W8,
        ),
    );
    let pw_w = QConvWeights::new(
        Shape::new(co, 1, 1, co),
        false,
        &vec![1u8; co * co],
        BitWidth::W8,
        WeightOffset::PerLayer(0),
    );
    let pw = QConv2d::new(
        pw_w,
        ConvGeometry::pointwise(),
        Requantizer::icn(
            vec![0; co],
            vec![FixedPointMultiplier::from_real(0.01); co],
            0,
            BitWidth::W8,
        ),
    );
    let shape = Shape::feature_map(16, 16, co);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 256) as u8).collect();
    let x = QActivation::from_codes(shape, &codes, BitWidth::W8, 0);
    group.bench_function("depthwise_3x3", |b| {
        b.iter(|| {
            let mut ops = OpCounts::default();
            black_box(dw.execute(black_box(&x), &mut ops))
        })
    });
    group.bench_function("pointwise_1x1", |b| {
        b.iter(|| {
            let mut ops = OpCounts::default();
            black_box(pw.execute(black_box(&x), &mut ops))
        })
    });
    group.bench_function("avgpool", |b| {
        b.iter(|| {
            let mut ops = OpCounts::default();
            black_box(QAvgPool.execute(black_box(&x), &mut ops))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_bitwidths,
    bench_pc_vs_pl,
    bench_requant_modes,
    bench_depthwise_vs_pointwise
);
criterion_main!(benches);
