//! Regenerates **Figure 2**: the accuracy–latency trade-off of the 16
//! mixed-precision MobileNetV1 models on the STM32H7
//! (`M_RO = 2 MB, M_RW = 512 kB`), for the MixQ-PL and MixQ-PC-ICN
//! configurations.
//!
//! Latency comes from the Cortex-M7 cycle model over the bit assignments
//! the §5 procedure produces; accuracy is the paper-reported Top-1
//! (Table 4) since ImageNet cannot be re-measured. The *shape* under test:
//! fps spans ≈ 20× from 128_0.25 to 224_0.75, MixQ-PC-ICN costs ≈ 20%
//! extra latency and wins ≈ 1–5% accuracy, and the Pareto frontier is
//! mostly MixQ-PC-ICN points.
//!
//! Run with: `cargo bench --bench figure2_latency_accuracy`

use mixq_bench::harness::rule;
use mixq_bench::reference::{table4_pc_icn, table4_pl};
use mixq_core::memory::QuantScheme;
use mixq_core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq_mcu::{CortexM7CycleModel, Device};
use mixq_models::mobilenet::MobileNetConfig;

#[derive(Debug, Clone)]
struct Point {
    label: String,
    config: &'static str,
    latency_ms: f64,
    fps: f64,
    top1: f32,
}

fn main() {
    let device = Device::stm32h7();
    let model = CortexM7CycleModel::default();
    let mut points: Vec<Point> = Vec::new();
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        // MixQ-PL: per-layer quantization, folding on uncut layers.
        let cfg_pl = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerLayerIcn);
        if let Ok(a) = assign_bits(&spec, &cfg_pl) {
            let cycles = model.network_cycles(&spec, &a, QuantScheme::PerLayerIcn);
            points.push(Point {
                label: cfg_m.label(),
                config: "MixQ-PL",
                latency_ms: device.latency_ms(cycles),
                fps: device.fps(cycles),
                top1: table4_pl(&cfg_m.label()).unwrap_or(f32::NAN),
            });
        }
        // MixQ-PC-ICN.
        let cfg_pc = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerChannelIcn);
        if let Ok(a) = assign_bits(&spec, &cfg_pc) {
            let cycles = model.network_cycles(&spec, &a, QuantScheme::PerChannelIcn);
            points.push(Point {
                label: cfg_m.label(),
                config: "MixQ-PC-ICN",
                latency_ms: device.latency_ms(cycles),
                fps: device.fps(cycles),
                top1: table4_pc_icn(&cfg_m.label()).unwrap_or(f32::NAN),
            });
        }
    }

    println!("== Figure 2: accuracy-latency on {} ==", device);
    println!(
        "{:<10} {:<12} {:>12} {:>8} {:>12}",
        "model", "config", "latency(ms)", "fps", "Top-1(paper)"
    );
    rule(58);
    points.sort_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms));
    for p in &points {
        println!(
            "{:<10} {:<12} {:>12.1} {:>8.2} {:>11.2}%",
            p.label, p.config, p.latency_ms, p.fps, p.top1
        );
    }

    // Pareto frontier (max accuracy at each latency prefix).
    println!();
    println!("Pareto frontier (accuracy-optimal as latency grows):");
    let mut best = f32::NEG_INFINITY;
    let mut pc_points = 0usize;
    let mut frontier = 0usize;
    for p in &points {
        if p.top1 > best {
            best = p.top1;
            frontier += 1;
            if p.config == "MixQ-PC-ICN" {
                pc_points += 1;
            }
            println!(
                "  {:<10} {:<12} {:>9.1} ms {:>7.2}%",
                p.label, p.config, p.latency_ms, p.top1
            );
        }
    }
    println!(
        "frontier points: {frontier}, of which MixQ-PC-ICN: {pc_points} \
         (paper: \"Pareto frontiers are mostly populated by MixQ-PC-ICN\")"
    );

    // The §6 headline numbers.
    let fastest = points
        .iter()
        .filter(|p| p.config == "MixQ-PL")
        .min_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms))
        .expect("points exist");
    let most_accurate = points
        .iter()
        .max_by(|a, b| a.top1.total_cmp(&b.top1))
        .expect("points exist");
    println!();
    println!(
        "fastest: {} {} at {:.2} fps (paper: 128_0.25 MixQ-PL at 10 fps)",
        fastest.label, fastest.config, fastest.fps
    );
    println!(
        "most accurate: {} {} at {:.2} fps, {:.2}% (paper: 224_0.75 PC+ICN, ~20x slower)",
        most_accurate.label, most_accurate.config, most_accurate.fps, most_accurate.top1
    );
    println!(
        "fps span: {:.1}x",
        fastest.fps / most_accurate.fps.max(1e-9)
    );

    // Emit the series as CSV for plotting.
    let mut csv = String::from("model,config,latency_ms,fps,top1_paper\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{:.3},{:.4},{:.2}\n",
            p.label, p.config, p.latency_ms, p.fps, p.top1
        ));
    }
    let dir = std::path::Path::new("target/bench-data");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("figure2.csv");
        if std::fs::write(&path, csv).is_ok() {
            println!("series written to {}", path.display());
        }
    }
}
