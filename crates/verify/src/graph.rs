//! Static verification of a lowered [`QGraph`].
//!
//! [`verify_graph`] walks the deployed schedule once, node by node, and
//! runs interval range analysis through each resolved kernel's exact
//! dataflow:
//!
//! * **u8 codes** — `[0, 2^Q − 1]` from the tensor plan's bit widths;
//! * **dot-product chunks** — the `i32` accumulation run the blocked GEMM
//!   hands `gemv2` (`k` on the fused hot path, `MAX_DOT_LEN & !1` chunks
//!   on the `blocked_rows_long` cold path, odd-`k` tails included);
//! * **folded `Φ`** — the per-channel `i64` totals after the hoisted
//!   zero-point corrections, bounded *tightly* from the actual weight
//!   codes (not the generic `±k·qx·qw` hull);
//! * **requantization** — the saturating `Φ + Bq` input, the fixed-point
//!   `M0·2^N0` shift gate, and threshold-table monotonicity.
//!
//! Each fact that cannot be proven becomes a structured
//! [`Violation`]; the per-node bounds that *were* proven are returned as
//! [`NodeCert`]s so callers (and the goldened `verify_zoo` bench) can
//! assert tightness, not just absence of failure.

use mixq_kernels::simd::MAX_DOT_LEN;
use mixq_kernels::{AnyOp, KernelChoice, QAdd, QConv2d, QGraph, QLinear, QOp, Requantizer};
use mixq_quant::BitWidth;
use mixq_tensor::Shape;

use crate::interval::Interval;
use crate::report::{NodeCert, VerifyReport, Violation};

/// Relative tolerance for the `QAdd` declared-scale consistency check:
/// `FixedPointMultiplier::from_real` is exact to ~2^-31, so any honest
/// construction sits far inside this.
const JOIN_SCALE_RTOL: f64 = 1e-6;

/// Checks the dot-product geometry one GEMM-lowered layer hands to
/// `gemv2`: the dispatch contract (`chunk ≤ MAX_DOT_LEN`, the bound the
/// u16-pair SIMD cores are proven for) and the arithmetic bound (the
/// worst-case unsigned partial sum `chunk·qx·qw` must fit `i32`).
///
/// The two are deliberately separate facts: `MAX_DOT_LEN = 32768` is
/// stricter than the arithmetic limit `⌊2³¹/(255·255)⌋ = 33025`, so a
/// forged chunk of, say, `MAX_DOT_LEN + 1` violates the contract while
/// still being arithmetically safe — the verifier reports exactly which
/// line was crossed.
///
/// Returns the proven `i32`-chunk accumulator interval plus any
/// violations.
pub fn check_dot_geometry(
    node: &str,
    k: usize,
    chunk: usize,
    qx: u32,
    qw: u32,
) -> (Interval, Vec<Violation>) {
    let mut violations = Vec::new();
    if chunk > MAX_DOT_LEN {
        violations.push(Violation::DotLengthExceedsKernel {
            node: node.to_string(),
            k,
            chunk,
            max: MAX_DOT_LEN,
        });
    }
    let acc = Interval::new(0, chunk as i128 * qx as i128 * qw as i128);
    if !acc.fits_i32() {
        let (lo, hi) = acc.clamped_i64();
        violations.push(Violation::AccOverflow {
            node: node.to_string(),
            stage: "i32-chunk",
            lo,
            hi,
            bound: "i32",
        });
    }
    (acc, violations)
}

/// The chunk length the blocked dispatch actually accumulates in `i32`
/// before flushing to `i64`: the whole `k` on the fused hot path, or the
/// even-truncated `MAX_DOT_LEN` chunk on the `blocked_rows_long` cold
/// path (whose final chunk also absorbs the odd-`k` tail element, still
/// within the same bound).
pub fn blocked_chunk_len(k: usize) -> usize {
    if k <= MAX_DOT_LEN {
        k
    } else {
        MAX_DOT_LEN & !1
    }
}

/// Tight per-output-channel intervals of the folded accumulator
/// `Φ_c(X, Zx) = Σ_i x_i·(w_i − Zw_c) − Zx·base_c` computed from the
/// layer's *actual* weight codes, with `x_i ∈ [0, qx]` free per tap and
/// the input zero-point ranging over `zx` (pass a point interval when the
/// producer's zero-point is statically known, `[0, qx]` otherwise).
///
/// The returned bounds are achievable: `hi` is attained by setting
/// `x_i = qx` exactly where `w_i > Zw_c` (and 0 elsewhere) at the
/// `zx` endpoint minimizing the correction — the adversarial corner tests
/// drive these inputs through the kernels and assert the interval is met.
pub fn conv_phi_intervals(conv: &QConv2d, in_bits: BitWidth, zx: Interval) -> Vec<Interval> {
    let w = conv.weights();
    let codes = w.codes();
    let qx = in_bits.qmax() as i128;
    let co_n = w.out_channels();
    let taps = conv.geometry().kernel_area() * if w.is_depthwise() { 1 } else { w.in_channels() };
    let mut out = Vec::with_capacity(co_n);
    for co in 0..co_n {
        let zw = w.offset().at(co) as i128;
        let row = &codes[co * taps..(co + 1) * taps];
        let (mut lo, mut hi, mut sum) = (0i128, 0i128, 0i128);
        for &c in row {
            let d = c as i128 - zw;
            sum += c as i128;
            if d > 0 {
                hi += qx * d;
            } else {
                lo += qx * d;
            }
        }
        let base = sum - taps as i128 * zw;
        let phi = Interval::new(lo, hi).add(zx.mul_const(-base));
        out.push(phi);
    }
    out
}

/// Per-channel `base_c = Σ W − k·Zw` values of a conv layer (the
/// prepacked correction table), recomputed from the weight codes.
fn conv_bases(conv: &QConv2d) -> Vec<i128> {
    let w = conv.weights();
    let codes = w.codes();
    let co_n = w.out_channels();
    let taps = conv.geometry().kernel_area() * if w.is_depthwise() { 1 } else { w.in_channels() };
    (0..co_n)
        .map(|co| {
            let zw = w.offset().at(co) as i128;
            let sum: i128 = codes[co * taps..(co + 1) * taps]
                .iter()
                .map(|&c| c as i128)
                .sum();
            sum - taps as i128 * zw
        })
        .collect()
}

/// Recomputes the SIMD-expressibility gate straight from the requantizer
/// parameters (independently of the stored `RequantPlan`): fixed-point
/// schemes need every effective shift `31 − N0 ≥ 0`; threshold schemes
/// need `qmax ≤ 15` and regular table lengths. Returns the expected gate
/// and, when `false`, the reason.
pub fn requant_gate(req: &Requantizer) -> (bool, String) {
    match req {
        Requantizer::FoldedPerLayer { mult, .. } => {
            if mult.shift() < 0 {
                (
                    false,
                    format!("layer multiplier shift {} < 0 (N0 > 31)", mult.shift()),
                )
            } else {
                (true, String::new())
            }
        }
        Requantizer::Icn { mult, .. } => {
            for (c, m) in mult.iter().enumerate() {
                if m.shift() < 0 {
                    return (
                        false,
                        format!("channel {c} multiplier shift {} < 0 (N0 > 31)", m.shift()),
                    );
                }
            }
            (true, String::new())
        }
        Requantizer::Thresholds {
            channels, out_bits, ..
        } => {
            let qmax = out_bits.qmax() as usize;
            if qmax > 15 {
                return (
                    false,
                    format!("{qmax}-entry tables exceed the 15-threshold vector budget"),
                );
            }
            for (c, ch) in channels.iter().enumerate() {
                if !ch.is_empty() && ch.len() != qmax {
                    return (
                        false,
                        format!(
                            "channel {c} table has {} entries, expected {qmax}",
                            ch.len()
                        ),
                    );
                }
            }
            (true, String::new())
        }
    }
}

/// Validates a liveness schedule against the uses it must serve: every
/// read of tensor `t` at step `i` needs `last_uses[t] ≥ i` (otherwise the
/// arena reclaims the bytes and a later allocation aliases them), every
/// tensor's entry must cover its defining step, and the terminal tensor
/// must survive the whole run.
///
/// `node_inputs[i]` are the tensor ids step `i` reads (tensor `t + 1` is
/// defined by step `t`; tensor 0 is the graph input).
pub fn check_schedule(node_inputs: &[Vec<usize>], last_uses: &[usize]) -> Vec<Violation> {
    let n = node_inputs.len();
    let mut violations = Vec::new();
    if last_uses.len() != n + 1 {
        violations.push(Violation::ScheduleMalformed {
            detail: format!(
                "schedule covers {} tensors, graph defines {}",
                last_uses.len(),
                n + 1
            ),
        });
        return violations;
    }
    for (i, inputs) in node_inputs.iter().enumerate() {
        for &t in inputs {
            if t > i {
                violations.push(Violation::ScheduleMalformed {
                    detail: format!("step {i} reads tensor {t} before it is defined"),
                });
                continue;
            }
            if last_uses[t] < i {
                violations.push(Violation::ScheduleAliasing {
                    tensor: t,
                    freed_after: last_uses[t],
                    used_at: i,
                });
            }
        }
    }
    if n > 0 && last_uses[n] < n {
        violations.push(Violation::TerminalDropped {
            tensor: n,
            freed_after: last_uses[n],
            needed_until: n,
        });
    }
    violations
}

/// Statically verifies a lowered graph: per-node overflow intervals for
/// the resolved kernels, requant plan gating, schedule aliasing, scratch
/// sufficiency and join consistency. See the module docs for the abstract
/// domains; `label` tags the report (model / backend / assignment).
pub fn verify_graph(label: &str, g: &QGraph, input: Shape, in_bits: BitWidth) -> VerifyReport {
    let mut violations = Vec::new();

    if let Some((decl_shape, decl_bits)) = g.input_decl() {
        if decl_shape.item_volume() != input.item_volume() || decl_bits != in_bits {
            violations.push(Violation::ShapeMismatch {
                node: "<input>".to_string(),
                detail: format!(
                    "graph declares input {decl_shape} @ {decl_bits:?}, verifying {input} @ {in_bits:?}"
                ),
            });
        }
    }

    let (shapes, bits) = g.tensor_plan(input, in_bits);
    let last = g.last_uses();
    let node_inputs: Vec<Vec<usize>> = g.nodes().iter().map(|n| n.inputs().to_vec()).collect();
    violations.extend(check_schedule(&node_inputs, &last));

    // Static zero-point propagation: the code of real zero on each edge,
    // where the producer determines it (input zero-points are a runtime
    // property of the activation, so tensor 0 stays unknown).
    let mut zp: Vec<Option<i64>> = vec![None; shapes.len()];

    let mut certs = Vec::with_capacity(g.len());
    let mut computed_peak_ram = 0usize;
    let mut max_scratch = 0usize;
    let planned_scratch = g.peak_scratch_bytes(input, in_bits);

    for (i, node) in g.nodes().iter().enumerate() {
        let in_shapes: Vec<Shape> = node.inputs().iter().map(|&t| shapes[t]).collect();
        let in_bits_v: Vec<BitWidth> = node.inputs().iter().map(|&t| bits[t]).collect();

        // Eq. 7 live-set walk, independent of the planner's own loop.
        let out_bytes = node.op().output_bytes(&in_shapes, &in_bits_v);
        let live: usize = (0..=i)
            .filter(|&t| last.get(t).is_some_and(|&l| l >= i))
            .map(|t| bits[t].bytes_for(shapes[t].volume()))
            .sum();
        computed_peak_ram = computed_peak_ram.max(live + out_bytes);

        let scratch = node
            .op()
            .scratch_bytes(node.choice(), &in_shapes, &in_bits_v);
        max_scratch = max_scratch.max(scratch);
        if scratch > planned_scratch {
            violations.push(Violation::ScratchShortfall {
                node: node.name().to_string(),
                needed_bytes: scratch,
                planned_bytes: planned_scratch,
            });
        }

        let cert = match node.op() {
            AnyOp::Conv(conv) => verify_conv(
                node.name(),
                conv,
                node.choice(),
                in_shapes[0],
                in_bits_v[0],
                zp[node.inputs()[0]],
                &mut violations,
            ),
            AnyOp::Linear(lin) => verify_linear(
                node.name(),
                lin,
                in_bits_v[0],
                zp[node.inputs()[0]],
                &mut violations,
            ),
            AnyOp::Pool(_) => verify_pool(node.name(), in_shapes[0], in_bits_v[0]),
            AnyOp::Add(add) => verify_add(
                node.name(),
                add,
                &in_shapes,
                &in_bits_v,
                [zp[node.inputs()[0]], zp[node.inputs()[1]]],
                &mut violations,
            ),
        };
        certs.push(cert);

        // Output zero-point for downstream edges.
        let out_t = i + 1;
        zp[out_t] = match node.op() {
            AnyOp::Conv(conv) => Some(conv.requant().zero_point() as i64),
            AnyOp::Pool(_) => zp[node.inputs()[0]],
            AnyOp::Add(add) => Some(add.zero_point() as i64),
            AnyOp::Linear(_) => None, // i32 logits carry no code zero-point
        };
    }

    let planned_ram = g.peak_ram_bytes(input, in_bits);
    if computed_peak_ram != planned_ram {
        violations.push(Violation::RamPlanMismatch {
            computed: computed_peak_ram,
            planned: planned_ram,
        });
    }

    VerifyReport {
        graph: label.to_string(),
        nodes: certs,
        violations,
        peak_ram_bytes: planned_ram,
        peak_scratch_bytes: planned_scratch,
    }
}

fn verify_conv(
    name: &str,
    conv: &QConv2d,
    choice: KernelChoice,
    in_shape: Shape,
    in_bits: BitWidth,
    zp_in: Option<i64>,
    violations: &mut Vec<Violation>,
) -> NodeCert {
    let w = conv.weights();
    let qx = in_bits.qmax();
    let qw = w.bits().qmax();
    let depthwise = w.is_depthwise();
    let expected_c = if depthwise {
        w.out_channels()
    } else {
        w.in_channels()
    };
    if in_shape.c != expected_c {
        violations.push(Violation::ShapeMismatch {
            node: name.to_string(),
            detail: format!(
                "input has {} channels, weights expect {expected_c}",
                in_shape.c
            ),
        });
    }
    if depthwise && choice.is_gemm() {
        violations.push(Violation::ShapeMismatch {
            node: name.to_string(),
            detail: "depthwise layer lowered to a GEMM kernel".to_string(),
        });
    }
    let taps = conv.geometry().kernel_area() * if depthwise { 1 } else { w.in_channels() };

    // i32 accumulation stage of the resolved kernel.
    let (chunk, acc) = match (depthwise, choice) {
        // Depthwise fast path: i32 accumulator over zero-point-subtracted
        // products, `kernel_area` taps per channel.
        (true, _) => {
            let acc =
                Interval::new(-(qx as i128) * qw as i128, qx as i128 * qw as i128).sum_of(taps);
            if !acc.fits_i32() {
                let (lo, hi) = acc.clamped_i64();
                violations.push(Violation::AccOverflow {
                    node: name.to_string(),
                    stage: "depthwise-i32",
                    lo,
                    hi,
                    bound: "i32",
                });
            }
            (taps, acc)
        }
        // Blocked GEMM: unsigned code dot products in i32 chunks.
        (false, KernelChoice::BlockedGemm) => {
            let chunk = blocked_chunk_len(taps);
            let (acc, geo) = check_dot_geometry(name, taps, chunk, qx, qw);
            violations.extend(geo);
            (chunk, acc)
        }
        // Direct / naive GEMM paths accumulate (x − Zx)(w − Zw) in i64.
        (false, _) => {
            let acc =
                Interval::new(-(qx as i128) * qw as i128, qx as i128 * qw as i128).sum_of(taps);
            if !acc.fits_i64() {
                let (lo, hi) = acc.clamped_i64();
                violations.push(Violation::AccOverflow {
                    node: name.to_string(),
                    stage: "i64-acc",
                    lo,
                    hi,
                    bound: "i64",
                });
            }
            (taps, acc)
        }
    };

    // Tight folded-Φ interval per channel, hulled for the certificate.
    let zx = match zp_in {
        Some(z) => Interval::point(z.into()),
        None => Interval::new(0, qx as i128),
    };
    let phis = conv_phi_intervals(conv, in_bits, zx);
    let phi_hull = phis
        .iter()
        .copied()
        .reduce(Interval::hull)
        .unwrap_or(Interval::ZERO);

    // Requantization: the saturating Φ + Bq input must fit i32 for the
    // fixed-point schemes to be exact; thresholds compare in i64.
    let req = conv.requant();
    match req {
        Requantizer::FoldedPerLayer { bq, .. } | Requantizer::Icn { bq, .. } => {
            for (c, phi) in phis.iter().enumerate() {
                let v = phi.add_const(bq[c] as i128);
                if !v.fits_i32() {
                    let (lo, hi) = v.clamped_i64();
                    violations.push(Violation::AccOverflow {
                        node: name.to_string(),
                        stage: "requant-bias",
                        lo,
                        hi,
                        bound: "i32",
                    });
                    break; // one per node is diagnostic enough
                }
            }
        }
        Requantizer::Thresholds { channels, .. } => {
            if !phi_hull.fits_i64() {
                let (lo, hi) = phi_hull.clamped_i64();
                violations.push(Violation::AccOverflow {
                    node: name.to_string(),
                    stage: "threshold-phi",
                    lo,
                    hi,
                    bound: "i64",
                });
            }
            for (c, ch) in channels.iter().enumerate() {
                if !ch.is_empty() && !threshold_monotone(ch.thresholds()) {
                    violations.push(Violation::ThresholdNotMonotone {
                        node: name.to_string(),
                        channel: c,
                    });
                }
            }
        }
    }

    // Plan gate cross-check: the stored RequantPlan vs the gate
    // recomputed from the parameters.
    let (expected_gate, reason) = requant_gate(req);
    let plan_gate = conv.plan().vectorizable();
    if expected_gate != plan_gate {
        violations.push(Violation::PlanGateMismatch {
            node: name.to_string(),
            plan_vectorizable: plan_gate,
            reason: if expected_gate {
                "parameters are expressible but the plan forces scalar".to_string()
            } else {
                reason
            },
        });
    }

    // Output zero-point must be a representable code.
    let zy = req.zero_point() as i64;
    let out_qmax = req.out_bits().qmax();
    if zy < 0 || zy > out_qmax as i64 {
        violations.push(Violation::ZeroPointOutOfRange {
            node: name.to_string(),
            zero_point: zy,
            qmax: out_qmax,
        });
    }

    // vector_gemm correction operands: Σ X ≤ k·qx, Zw, base — all i32?
    let sx_max = taps as i128 * qx as i128;
    let corrections_fit = Interval::new(0, sx_max).fits_i32()
        && conv_bases(conv)
            .iter()
            .all(|&b| Interval::point(b).fits_i32());

    NodeCert {
        node: name.to_string(),
        op: if depthwise { "dwconv" } else { "conv" },
        choice: choice.label(),
        k: taps,
        chunk,
        acc: acc.clamped_i64(),
        phi: phi_hull.clamped_i64(),
        vectorizable: plan_gate,
        corrections_fit_i32: corrections_fit,
    }
}

fn verify_linear(
    name: &str,
    lin: &QLinear,
    in_bits: BitWidth,
    zp_in: Option<i64>,
    violations: &mut Vec<Violation>,
) -> NodeCert {
    let w = lin.weights();
    let qx = in_bits.qmax() as i128;
    let k = lin.in_features();
    let codes = w.codes();
    let zx = match zp_in {
        Some(z) => Interval::point(z.into()),
        None => Interval::new(0, qx),
    };
    // Tight per-class logit interval from the actual weights: each term
    // (x − Zx)(w − Zw) with x free in [0, qx].
    let mut hull = Interval::ZERO;
    let mut all_fit = true;
    for (o, &bq) in lin.bq().iter().enumerate() {
        let zw = w.offset().at(o) as i128;
        let mut logit = Interval::point(bq as i128);
        for &c in &codes[o * k..(o + 1) * k] {
            let x = Interval::new(0, qx);
            logit = logit.add(x.sub(zx).mul_const(c as i128 - zw));
        }
        if !logit.fits_i32() {
            all_fit = false;
        }
        hull = hull.hull(logit);
    }
    if !all_fit {
        let (lo, hi) = hull.clamped_i64();
        violations.push(Violation::AccOverflow {
            node: name.to_string(),
            stage: "logits",
            lo,
            hi,
            bound: "i32",
        });
    }
    NodeCert {
        node: name.to_string(),
        op: "fc",
        choice: "direct",
        k,
        chunk: k,
        acc: hull.clamped_i64(),
        phi: hull.clamped_i64(),
        vectorizable: false, // the head is a single scalar dot per class
        corrections_fit_i32: all_fit,
    }
}

fn verify_pool(name: &str, in_shape: Shape, in_bits: BitWidth) -> NodeCert {
    // u64 code sum over the pooled area; the mean is again a code.
    let area = (in_shape.h * in_shape.w) as i128;
    let sum = Interval::new(0, in_bits.qmax() as i128 * area);
    NodeCert {
        node: name.to_string(),
        op: "pool",
        choice: "direct",
        k: area as usize,
        chunk: area as usize,
        acc: sum.clamped_i64(),
        phi: Interval::code(in_bits).clamped_i64(),
        vectorizable: true,
        corrections_fit_i32: true,
    }
}

/// Verifies one residual-join node in isolation — the hook the
/// adversarial tests and the `verify_zoo` forged section use to feed a
/// deliberately inconsistent [`QAdd`] (mismatched declared scales, wrong
/// edge zero-points) to the same checker [`verify_graph`] runs, without
/// having to lower a whole graph around it.
///
/// `zp_in` are the statically-known producer zero-points of the two
/// branches (`None` where unknown, as for a graph input).
pub fn verify_add_node(
    name: &str,
    add: &QAdd,
    in_shapes: [Shape; 2],
    in_bits: [BitWidth; 2],
    zp_in: [Option<i64>; 2],
) -> (NodeCert, Vec<Violation>) {
    let mut violations = Vec::new();
    let cert = verify_add(name, add, &in_shapes, &in_bits, zp_in, &mut violations);
    (cert, violations)
}

fn verify_add(
    name: &str,
    add: &QAdd,
    in_shapes: &[Shape],
    in_bits: &[BitWidth],
    zp_in: [Option<i64>; 2],
    violations: &mut Vec<Violation>,
) -> NodeCert {
    if in_shapes[0] != in_shapes[1] {
        violations.push(Violation::ShapeMismatch {
            node: name.to_string(),
            detail: format!(
                "residual branches disagree: {} vs {}",
                in_shapes[0], in_shapes[1]
            ),
        });
    }
    let (ma, mb) = add.multipliers();
    let (za, zb) = add.input_zero_points();
    let zy = add.zero_point() as i64;
    let out_qmax = add.out_bits().qmax();
    if zy < 0 || zy > out_qmax as i64 {
        violations.push(Violation::ZeroPointOutOfRange {
            node: name.to_string(),
            zero_point: zy,
            qmax: out_qmax,
        });
    }
    // Edge zero-point agreement: the add subtracts Z_a/Z_b; the producer
    // of each branch determines what the code of real zero actually is.
    for (branch, (z_stored, z_prod)) in [("a", (za, zp_in[0])), ("b", (zb, zp_in[1]))] {
        if let Some(expected) = z_prod {
            if expected != z_stored as i64 {
                violations.push(Violation::ZeroPointMismatch {
                    node: name.to_string(),
                    branch,
                    expected,
                    got: z_stored as i64,
                });
            }
        }
    }
    // Declared-scale consistency: the baked multiplier must realize the
    // declared S_branch/S_out ratio.
    if let Some((sa, sb, sy)) = add.declared_scales() {
        for (branch, declared, m) in [("a", sa / sy, ma), ("b", sb / sy, mb)] {
            let realized = m.to_real();
            let denom = declared.abs().max(f64::MIN_POSITIVE);
            if ((realized - declared) / denom).abs() > JOIN_SCALE_RTOL {
                violations.push(Violation::JoinScaleMismatch {
                    node: name.to_string(),
                    branch,
                    declared_ratio: declared,
                    realized_ratio: realized,
                });
            }
        }
    }
    // Value range: Z_y + M_a(q_a − Z_a) + M_b(q_b − Z_b) in i64, clamped
    // to the output code range — overflow-free by construction, recorded
    // for the certificate.
    let va = Interval::code(in_bits[0])
        .add_const(-(za as i128))
        .apply_fixed(ma);
    let vb = Interval::code(in_bits[1])
        .add_const(-(zb as i128))
        .apply_fixed(mb);
    let v = va.add(vb).add_const(zy as i128);
    NodeCert {
        node: name.to_string(),
        op: "add",
        choice: "direct",
        k: 0,
        chunk: 0,
        acc: v.clamped_i64(),
        phi: v.clamped_i64(),
        vectorizable: true, // LUT-gathered; always expressible
        corrections_fit_i32: true,
    }
}

/// Whether a threshold table is monotone (either direction) — the
/// property the binary search in `ThresholdChannel::eval` relies on.
fn threshold_monotone(t: &[i64]) -> bool {
    t.windows(2).all(|w| w[0] <= w[1]) || t.windows(2).all(|w| w[0] >= w[1])
}
