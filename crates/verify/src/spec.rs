//! Shape-level verification of a [`NetworkSpec`] under a bit assignment.
//!
//! Before a single weight is trained, the worst-case overflow and
//! geometry facts are already determined by shapes and widths: the dot
//! length `k` of every layer, the chunking the blocked GEMM would use,
//! and the generic accumulator hull `±k·qx·qw` (weights unknown, so the
//! symmetric bound replaces [`conv_phi_intervals`]'s tight one). This is
//! the deployment-time pre-check: it runs over every model-zoo spec ×
//! assignment in the `verify_zoo` bench with no training, deterministic
//! and goldenable.
//!
//! [`conv_phi_intervals`]: crate::graph::conv_phi_intervals

use mixq_models::{LayerKind, NetworkSpec, SpecOp};
use mixq_quant::BitWidth;

use crate::graph::{blocked_chunk_len, check_dot_geometry, check_schedule};
use crate::interval::Interval;
use crate::report::{NodeCert, VerifyReport, Violation};

/// Verifies a spec under per-layer widths: `w_bits[i]` / `a_bits[i]` are
/// the weight and *input-activation* precision of layer `i` (both of
/// length `spec.num_layers()`).
///
/// # Panics
///
/// Panics if the width slices don't cover the layers.
pub fn verify_spec(
    label: &str,
    spec: &NetworkSpec,
    w_bits: &[BitWidth],
    a_bits: &[BitWidth],
) -> VerifyReport {
    assert_eq!(
        w_bits.len(),
        spec.num_layers(),
        "one weight width per layer"
    );
    assert_eq!(
        a_bits.len(),
        spec.num_layers(),
        "one activation width per layer"
    );
    let graph = spec.graph();
    let mut violations = Vec::new();

    // The lowered schedule's liveness plan, checked structurally.
    let node_inputs: Vec<Vec<usize>> = graph.steps().iter().map(|s| s.inputs.clone()).collect();
    violations.extend(check_schedule(&node_inputs, graph.last_uses()));

    let mut certs = Vec::with_capacity(graph.steps().len());
    for step in graph.steps() {
        let cert = match step.op {
            SpecOp::Layer(i) => {
                let layer = &spec.layers()[i];
                let qx = a_bits[i].qmax();
                let qw = w_bits[i].qmax();
                match layer.kind() {
                    LayerKind::Conv | LayerKind::Linear => {
                        let k = if layer.kind() == LayerKind::Linear {
                            layer.in_channels()
                        } else {
                            layer.kernel() * layer.kernel() * layer.in_channels()
                        };
                        let chunk = blocked_chunk_len(k);
                        let (acc, geo) = check_dot_geometry(layer.name(), k, chunk, qx, qw);
                        violations.extend(geo);
                        let phi =
                            Interval::new(-(qx as i128) * qw as i128, qx as i128 * qw as i128)
                                .sum_of(k);
                        NodeCert {
                            node: layer.name().to_string(),
                            op: if layer.kind() == LayerKind::Linear {
                                "fc"
                            } else {
                                "conv"
                            },
                            choice: "spec",
                            k,
                            chunk,
                            acc: acc.clamped_i64(),
                            phi: phi.clamped_i64(),
                            vectorizable: true,
                            corrections_fit_i32: Interval::new(0, k as i128 * qx as i128)
                                .fits_i32(),
                        }
                    }
                    LayerKind::DepthwiseConv => {
                        let k = layer.kernel() * layer.kernel();
                        let acc =
                            Interval::new(-(qx as i128) * qw as i128, qx as i128 * qw as i128)
                                .sum_of(k);
                        if !acc.fits_i32() {
                            let (lo, hi) = acc.clamped_i64();
                            violations.push(Violation::AccOverflow {
                                node: layer.name().to_string(),
                                stage: "depthwise-i32",
                                lo,
                                hi,
                                bound: "i32",
                            });
                        }
                        NodeCert {
                            node: layer.name().to_string(),
                            op: "dwconv",
                            choice: "spec",
                            k,
                            chunk: k,
                            acc: acc.clamped_i64(),
                            phi: acc.clamped_i64(),
                            vectorizable: true,
                            corrections_fit_i32: true,
                        }
                    }
                }
            }
            SpecOp::ResidualAdd(s) => {
                let to = spec.skips()[s].to();
                let bits = a_bits[to];
                let v = Interval::code(bits);
                NodeCert {
                    node: format!("add{s}"),
                    op: "add",
                    choice: "spec",
                    k: 0,
                    chunk: 0,
                    acc: v.clamped_i64(),
                    phi: v.clamped_i64(),
                    vectorizable: true,
                    corrections_fit_i32: true,
                }
            }
            SpecOp::AvgPool => {
                let last = spec.num_layers() - 1;
                let layer = &spec.layers()[last];
                let area = layer.in_h() * layer.in_w();
                let sum = Interval::new(0, a_bits[last].qmax() as i128 * area as i128);
                NodeCert {
                    node: "avgpool".to_string(),
                    op: "pool",
                    choice: "spec",
                    k: area,
                    chunk: area,
                    acc: sum.clamped_i64(),
                    phi: Interval::code(a_bits[last]).clamped_i64(),
                    vectorizable: true,
                    corrections_fit_i32: true,
                }
            }
        };
        certs.push(cert);
    }

    VerifyReport {
        graph: label.to_string(),
        nodes: certs,
        violations,
        peak_ram_bytes: 0,
        peak_scratch_bytes: 0,
    }
}

/// [`verify_spec`] with one uniform weight and activation width.
pub fn verify_spec_uniform(
    label: &str,
    spec: &NetworkSpec,
    w: BitWidth,
    a: BitWidth,
) -> VerifyReport {
    let n = spec.num_layers();
    verify_spec(label, spec, &vec![w; n], &vec![a; n])
}
